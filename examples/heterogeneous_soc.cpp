// Heterogeneous SoC co-design walkthrough: combines the heterogeneous
// timing table, the annealing mapper, the buffer-capacity explorer and the
// trace/Gantt output - the "design a media SoC before RTL exists" workflow
// the paper's analysis speed enables.
//
// Scenario: two streaming applications must share a platform with two slow
// general-purpose cores and one fast DSP. We (1) model per-type execution
// times, (2) let the mapper place actors using the probabilistic estimate,
// (3) size the channel buffers on the Pareto frontier, and (4) inspect the
// final schedule as an ASCII Gantt chart validated by simulation.
#include <iostream>
#include <vector>

#include "api/workbench.h"
#include "gen/graph_generator.h"
#include "platform/heterogeneous.h"
#include "sim/trace_export.h"
#include "util/stats.h"
#include "util/table.h"

using namespace procon;

int main() {
  // Two generated streaming applications (5-6 actors each).
  util::Rng rng(4242);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 5;
  gopts.max_actors = 6;
  const auto apps = gen::generate_graphs(rng, gopts, 2, "app");

  // Platform: two general-purpose cores (type 0) and one DSP (type 1).
  constexpr platform::NodeType kCore = 0;
  constexpr platform::NodeType kDsp = 1;
  platform::Platform plat;
  plat.add_node("core0", kCore);
  plat.add_node("core1", kCore);
  plat.add_node("dsp0", kDsp);

  // Execution times: every actor runs 3x faster on the DSP.
  platform::HeterogeneousTiming timing(apps, 2);
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) {
      timing.set(i, a, kDsp, std::max<sdf::Time>(1, apps[i].actor(a).exec_time / 3));
    }
  }

  // Mapping exploration: score = worst estimated slowdown of the
  // *heterogeneous* system, so the mapper weighs "fast but contended DSP"
  // against "slow but private core" automatically. The session is opened on
  // the heterogeneous-applied graphs; candidate scoring shards across its
  // thread pool (speculative annealing, deterministic for any pool size).
  platform::Mapping start = platform::Mapping::load_balanced(apps, plat);
  platform::System base(std::vector<sdf::Graph>(apps), plat, start);
  api::Workbench explorer(timing.apply(base));
  dse::MapperOptions mopts;
  mopts.iterations = 600;
  const auto mapped = explorer.optimise_mapping(mopts);
  std::cout << "mapping exploration: score "
            << util::format_double(mapped->initial_score, 2) << " -> "
            << util::format_double(mapped->score, 2) << " after "
            << mapped->evaluations << " trajectory evaluations ("
            << mapped.provenance.evaluations << " scored on "
            << mapped.provenance.threads << " thread(s))\n\n";

  // Materialise the chosen heterogeneous system as its own session.
  platform::System chosen_base(std::vector<sdf::Graph>(apps), plat, mapped->mapping);
  api::Workbench bench(timing.apply(chosen_base));
  const platform::System& chosen = bench.system();

  // Buffer sizing for each application on its own Pareto frontier (the
  // incremental explorer patches one reverse channel per candidate).
  util::Table buffers("Buffer sizing (per application, analytic)");
  buffers.set_header({"app", "frontier points", "min-buffer period",
                      "full-speed period", "tokens at full speed"});
  for (sdf::AppId i = 0; i < bench.app_count(); ++i) {
    const auto frontier = bench.buffer_frontier(i);
    buffers.add_row({chosen.app(i).name(),
                     std::to_string(frontier->points.size()),
                     util::format_double(frontier->points.front().period, 1),
                     util::format_double(frontier->points.back().period, 1),
                     std::to_string(frontier->points.back().total_tokens)});
  }
  std::cout << buffers.render() << '\n';

  // Validate with the simulator and show the schedule.
  sim::SimOptions sopts{.horizon = 200'000};
  sopts.collect_trace = true;
  const auto result = bench.simulate(sopts);
  util::Table periods("Validation: estimate vs simulation");
  periods.set_header({"app", "estimated", "simulated"});
  const auto est = bench.contention();
  for (sdf::AppId i = 0; i < bench.app_count(); ++i) {
    periods.add_row({chosen.app(i).name(),
                     util::format_double((*est)[i].estimated_period, 1),
                     util::format_double(result->apps[i].average_period, 1)});
  }
  std::cout << periods.render() << '\n';

  std::cout << "schedule snapshot (letters = applications, '.' = idle):\n"
            << sim::render_gantt(chosen, *result, 0, 3000, 90) << '\n';
  std::cout << "(a VCD waveform of the same trace is available via sim::to_vcd)\n";
  return 0;
}
