// Heterogeneous SoC co-design walkthrough: combines the heterogeneous
// timing table, the annealing mapper, the buffer-capacity explorer and the
// trace/Gantt output - the "design a media SoC before RTL exists" workflow
// the paper's analysis speed enables.
//
// Scenario: two streaming applications must share a platform with two slow
// general-purpose cores and one fast DSP. We (1) model per-type execution
// times, (2) let the mapper place actors using the probabilistic estimate,
// (3) size the channel buffers on the Pareto frontier, and (4) inspect the
// final schedule as an ASCII Gantt chart validated by simulation.
#include <iostream>
#include <vector>

#include "dse/buffer_explorer.h"
#include "dse/mapper.h"
#include "gen/graph_generator.h"
#include "platform/heterogeneous.h"
#include "sim/simulator.h"
#include "sim/trace_export.h"
#include "util/stats.h"
#include "util/table.h"

using namespace procon;

int main() {
  // Two generated streaming applications (5-6 actors each).
  util::Rng rng(4242);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 5;
  gopts.max_actors = 6;
  const auto apps = gen::generate_graphs(rng, gopts, 2, "app");

  // Platform: two general-purpose cores (type 0) and one DSP (type 1).
  constexpr platform::NodeType kCore = 0;
  constexpr platform::NodeType kDsp = 1;
  platform::Platform plat;
  plat.add_node("core0", kCore);
  plat.add_node("core1", kCore);
  plat.add_node("dsp0", kDsp);

  // Execution times: every actor runs 3x faster on the DSP.
  platform::HeterogeneousTiming timing(apps, 2);
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) {
      timing.set(i, a, kDsp, std::max<sdf::Time>(1, apps[i].actor(a).exec_time / 3));
    }
  }

  // Mapping exploration: score = worst estimated slowdown of the
  // *heterogeneous* system, so the mapper weighs "fast but contended DSP"
  // against "slow but private core" automatically.
  auto score = [&](const platform::Mapping& m) {
    platform::System sys(std::vector<sdf::Graph>(apps), plat, m);
    return dse::evaluate_mapping(timing.apply(sys).apps(), plat, m);
  };
  platform::Mapping start = platform::Mapping::load_balanced(apps, plat);
  dse::MapperOptions mopts;
  mopts.iterations = 600;
  // Anneal on the heterogeneous-applied graphs: wrap by re-applying timing
  // inside the evaluation via a System rebuild each step.
  platform::System base(std::vector<sdf::Graph>(apps), plat, start);
  const platform::System het_start = timing.apply(base);
  const dse::MapperResult mapped =
      dse::optimise_mapping(het_start.apps(), plat, start, mopts);
  std::cout << "mapping exploration: score " << util::format_double(mapped.initial_score, 2)
            << " -> " << util::format_double(mapped.score, 2) << " after "
            << mapped.evaluations << " analytic evaluations\n\n";

  // Materialise the chosen heterogeneous system.
  platform::System chosen_base(std::vector<sdf::Graph>(apps), plat, mapped.mapping);
  const platform::System chosen = timing.apply(chosen_base);
  (void)score;

  // Buffer sizing for each application on its own Pareto frontier.
  util::Table buffers("Buffer sizing (per application, analytic)");
  buffers.set_header({"app", "frontier points", "min-buffer period",
                      "full-speed period", "tokens at full speed"});
  for (sdf::AppId i = 0; i < chosen.app_count(); ++i) {
    const auto frontier = dse::explore_buffer_tradeoff(chosen.app(i));
    buffers.add_row({chosen.app(i).name(), std::to_string(frontier.size()),
                     util::format_double(frontier.front().period, 1),
                     util::format_double(frontier.back().period, 1),
                     std::to_string(frontier.back().total_tokens)});
  }
  std::cout << buffers.render() << '\n';

  // Validate with the simulator and show the schedule.
  sim::SimOptions sopts{.horizon = 200'000};
  sopts.collect_trace = true;
  const auto result = sim::simulate(chosen, sopts);
  util::Table periods("Validation: estimate vs simulation");
  periods.set_header({"app", "estimated", "simulated"});
  const auto est = prob::ContentionEstimator().estimate(chosen);
  for (sdf::AppId i = 0; i < chosen.app_count(); ++i) {
    periods.add_row({chosen.app(i).name(),
                     util::format_double(est[i].estimated_period, 1),
                     util::format_double(result.apps[i].average_period, 1)});
  }
  std::cout << periods.render() << '\n';

  std::cout << "schedule snapshot (letters = applications, '.' = idle):\n"
            << sim::render_gantt(chosen, result, 0, 3000, 90) << '\n';
  std::cout << "(a VCD waveform of the same trace is available via sim::to_vcd)\n";
  return 0;
}
