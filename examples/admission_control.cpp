// Run-time admission control (the paper's Section 6 application): a
// resource manager decides on-line whether a newly requested application
// can start without violating the QoS of the ones already running, using
// the O(1)-per-actor composability updates (Eq. 6-9) instead of
// re-analysing the whole system.
//
// Scenario: a media device runs a video call (decoder + encoder). The user
// opens a photo viewer, then a game; the game's admission would break the
// call's QoS and is rejected; after the call ends, the game fits.
#include <iostream>
#include <vector>

#include "admission/admission.h"
#include "api/workbench.h"
#include "gen/graph_generator.h"
#include "util/rng.h"

using namespace procon;

namespace {

std::vector<platform::NodeId> spread_mapping(const sdf::Graph& g,
                                             std::size_t node_count) {
  std::vector<platform::NodeId> nodes(g.actor_count());
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
    nodes[a] = static_cast<platform::NodeId>(a % node_count);
  }
  return nodes;
}

void report(const char* who, const admission::Decision& d) {
  std::cout << who << ": " << (d.admitted ? "ADMITTED" : "REJECTED");
  if (d.admitted) {
    std::cout << " (predicted period " << static_cast<long>(d.predicted_period)
              << ")";
  } else {
    std::cout << "\n  reason: " << d.reason;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 4;
  admission::AdmissionController controller(platform::Platform::homogeneous(kNodes));

  // Four applications generated as random DSP-like SDFGs (the library's
  // SDF3-substitute generator); QoS bounds chosen relative to their
  // isolation periods.
  util::Rng rng(1234);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  const sdf::Graph decoder = gen::generate_graph(rng, gopts, "video_decoder");
  const sdf::Graph encoder = gen::generate_graph(rng, gopts, "video_encoder");
  const sdf::Graph viewer = gen::generate_graph(rng, gopts, "photo_viewer");
  const sdf::Graph game = gen::generate_graph(rng, gopts, "game");

  std::cout << "--- call starts: decoder + encoder with tight QoS ---\n";
  const auto d1 = controller.request(decoder, spread_mapping(decoder, kNodes),
                                     admission::QoS{700.0});
  report("video_decoder", d1);
  const auto d2 = controller.request(encoder, spread_mapping(encoder, kNodes),
                                     admission::QoS{1100.0});
  report("video_encoder", d2);

  std::cout << "\n--- user opens the photo viewer (lenient QoS) ---\n";
  const auto d3 = controller.request(viewer, spread_mapping(viewer, kNodes),
                                     admission::QoS{2500.0});
  report("photo_viewer", d3);

  // Before actually requesting, ask what WOULD happen: the what-if API
  // evaluates the hypothetical admission (same verdict as request()) plus a
  // full contention report over a zero-copy view of the admitted set —
  // nothing is committed, no snapshot copy is taken.
  std::cout << "\n--- resource manager probes: what if the game were admitted? ---\n";
  const auto probe = controller.what_if_admit(game, spread_mapping(game, kNodes),
                                              admission::QoS{2500.0});
  std::cout << "what-if verdict: " << (probe.admissible ? "would admit" : "would reject")
            << "\n";
  if (!probe.admissible) std::cout << "  reason: " << probe.reason << "\n";
  std::cout << "  full estimator report over the would-be set ("
            << probe.estimates.size() << " apps, candidate last):\n";
  for (const auto& e : probe.estimates) {
    std::cout << "    estimated period " << static_cast<long>(e.estimated_period)
              << " (isolation " << static_cast<long>(e.isolation_period) << ")\n";
  }

  std::cout << "\n--- user launches a game (the call's QoS must survive - this one breaks it) ---\n";
  const auto d4 = controller.request(game, spread_mapping(game, kNodes),
                                     admission::QoS{2500.0});
  report("game", d4);

  // The dual probe: what would the peers gain if the encoder left?
  if (d2.admitted) {
    const auto relief = controller.what_if_remove(*d2.handle);
    std::cout << "\nwhat if the encoder stopped? surviving peers' predicted periods:";
    for (const double p : relief.peer_periods) {
      if (p > 0.0) std::cout << " " << static_cast<long>(p);
    }
    std::cout << " (admitted set untouched: " << controller.admitted_count()
              << " apps)\n";
  }

  if (d1.admitted) {
    std::cout << "\ncurrent predicted period of the decoder: "
              << static_cast<long>(controller.predicted_period(*d1.handle))
              << "\n";
  }

  std::cout << "\n--- call ends: decoder and encoder leave (O(1) removal) ---\n";
  if (d1.admitted) controller.remove(*d1.handle);
  if (d2.admitted) controller.remove(*d2.handle);
  std::cout << "admitted applications now: " << controller.admitted_count() << "\n";

  std::cout << "\n--- game retries ---\n";
  const auto d5 = controller.request(game, spread_mapping(game, kNodes),
                                     admission::QoS{2500.0});
  report("game", d5);

  // Cross-check: the controller's O(1)-per-actor composability updates
  // approximate what a full session-level analysis of the currently
  // admitted set computes. Snapshot the live set into a Workbench and
  // compare.
  if (d3.admitted && d5.admitted) {
    api::Workbench bench(controller.snapshot_system(),
                         api::WorkbenchOptions{.threads = 1});
    const auto est = bench.contention(
        prob::EstimatorOptions{.method = prob::Method::CompositionInverse});
    std::cout << "\nfull-session cross-check (composability-inverse estimate):\n";
    std::cout << "  photo_viewer: controller "
              << static_cast<long>(controller.predicted_period(*d3.handle))
              << " vs workbench "
              << static_cast<long>((*est)[0].estimated_period) << "\n";
    std::cout << "  game:         controller "
              << static_cast<long>(controller.predicted_period(*d5.handle))
              << " vs workbench "
              << static_cast<long>((*est)[1].estimated_period) << "\n";
  }
  return 0;
}
