// A multi-featured media device: the motivating scenario of the paper's
// introduction. A portable device decodes video (H.263), audio (MP3) and
// images (JPEG) concurrently on a small heterogeneous MPSoC, and the
// designer wants per-application throughput for every feature combination
// without simulating each one.
//
// The three decoder task graphs below follow the classical SDF models used
// in the dataflow literature (Sriram & Bhattacharyya; SDF3's example set):
// multi-rate where the standards are (H.263: 1 frame = 99 macroblocks at
// QCIF; MP3: 2 granules per frame), execution times in microseconds of the
// same order as published measurements.
#include <iomanip>
#include <iostream>
#include <vector>

#include "api/workbench.h"
#include "util/stats.h"
#include "util/table.h"

using namespace procon;

namespace {

/// H.263 QCIF decoder: VLD -> IQ/IDCT (99 macroblocks/frame) -> MC -> out.
sdf::Graph h263_decoder() {
  sdf::Graph g("H263");
  const auto vld = g.add_actor("vld", 2600);
  const auto idct = g.add_actor("idct", 40);    // per macroblock
  const auto mc = g.add_actor("mc", 40);        // per macroblock
  const auto frame = g.add_actor("frame", 500); // reconstruction + display
  g.add_channel(vld, idct, 99, 1, 0);   // one VLD emits 99 macroblocks
  g.add_channel(idct, mc, 1, 1, 0);
  g.add_channel(mc, frame, 1, 99, 0);   // frame consumes all macroblocks
  g.add_channel(frame, vld, 1, 1, 1);   // single-frame pipeline feedback
  return g;
}

/// MP3 decoder: huffman -> requantise -> (2 granules) imdct -> synth.
sdf::Graph mp3_decoder() {
  sdf::Graph g("MP3");
  const auto huff = g.add_actor("huffman", 700);
  const auto req = g.add_actor("requant", 400);
  const auto imdct = g.add_actor("imdct", 500);  // per granule
  const auto synth = g.add_actor("synth", 600);  // per granule
  g.add_channel(huff, req, 1, 1, 0);
  g.add_channel(req, imdct, 2, 1, 0);   // a frame holds two granules
  g.add_channel(imdct, synth, 1, 1, 0);
  g.add_channel(synth, huff, 1, 2, 2);  // feedback: next frame after both
  return g;
}

/// JPEG decoder: parse -> (6 MCU blocks) idct -> colour conversion.
sdf::Graph jpeg_decoder() {
  sdf::Graph g("JPEG");
  const auto parse = g.add_actor("parse", 1200);
  const auto idct = g.add_actor("jidct", 300);  // per MCU
  const auto cc = g.add_actor("colour", 900);
  g.add_channel(parse, idct, 6, 1, 0);
  g.add_channel(idct, cc, 1, 6, 0);
  g.add_channel(cc, parse, 1, 1, 1);
  return g;
}

}  // namespace

int main() {
  // Platform: a RISC host, a DSP and a pixel accelerator. Front-end actors
  // (parsers / VLD / huffman) share the RISC, transform kernels share the
  // DSP, and back-end filters share the accelerator - the natural
  // heterogeneous assignment the paper's device model assumes.
  std::vector<sdf::Graph> apps{h263_decoder(), mp3_decoder(), jpeg_decoder()};
  platform::Platform plat;
  const auto risc = plat.add_node("RISC");
  const auto dsp = plat.add_node("DSP");
  const auto accel = plat.add_node("ACCEL");

  platform::Mapping map(apps);
  // H263: vld->RISC, idct->DSP, mc->ACCEL, frame->ACCEL.
  map.assign(0, 0, risc);
  map.assign(0, 1, dsp);
  map.assign(0, 2, accel);
  map.assign(0, 3, accel);
  // MP3: huffman->RISC, requant->DSP, imdct->DSP, synth->ACCEL.
  map.assign(1, 0, risc);
  map.assign(1, 1, dsp);
  map.assign(1, 2, dsp);
  map.assign(1, 3, accel);
  // JPEG: parse->RISC, idct->DSP, colour->ACCEL.
  map.assign(2, 0, risc);
  map.assign(2, 1, dsp);
  map.assign(2, 2, accel);

  // One analysis session for the whole device: per-application engines are
  // built once, and all 2^3 - 1 feature combinations are estimated in a
  // single sweep that shards across the session's thread pool.
  api::Workbench bench(
      platform::System(std::move(apps), std::move(plat), std::move(map)));

  std::cout << "Multi-featured media device: H.263 + MP3 + JPEG on RISC/DSP/ACCEL\n\n";

  api::SweepOptions sweep_opts;
  sweep_opts.with_wcrt = true;
  const auto swept = bench.sweep_all_use_cases(sweep_opts);

  util::Table table("Per-feature period (time units) per use-case");
  table.set_header({"use-case", "app", "isolation", "estimated", "worst-case",
                    "simulated"});
  for (const api::UseCaseResult& uc : *swept) {
    const auto sim =
        bench.simulate(uc.use_case, sim::SimOptions{.horizon = 2'000'000});
    std::string label;
    for (const auto id : uc.use_case) {
      label += bench.system().app(id).name().substr(0, 1);
    }
    for (std::size_t i = 0; i < uc.estimates.size(); ++i) {
      table.add_row({label, bench.system().app(uc.use_case[i]).name(),
                     util::format_double(uc.estimates[i].isolation_period, 0),
                     util::format_double(uc.estimates[i].estimated_period, 0),
                     util::format_double(uc.bounds[i].worst_case_period, 0),
                     sim->apps[i].converged
                         ? util::format_double(sim->apps[i].average_period, 0)
                         : "n/a"});
    }
  }
  std::cout << table.render() << '\n';
  std::cout << "(sweep of " << swept.provenance.evaluations << " use-cases on "
            << swept.provenance.threads << " thread(s): "
            << util::format_double(swept.provenance.wall_ms, 2) << " ms)\n\n";

  std::cout << "Reading: the probabilistic estimate answers \"can the device\n"
               "decode video while playing MP3?\" per combination without\n"
               "simulating it; the worst-case column shows how much capacity a\n"
               "conservative bound would waste.\n";
  return 0;
}
