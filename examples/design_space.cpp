// Design-space exploration: because the probabilistic estimate is orders
// of magnitude cheaper than simulation, a designer can score many candidate
// mappings analytically and only simulate the winner (the workflow the
// paper's speed numbers enable).
//
// This example opens one Workbench session, scores the paper's index
// mapping, a load-balanced mapping and 200 random mappings in a single
// sharded score_mappings query (one engine-set clone per worker), ranks
// them by the estimated worst normalised period, then validates the best
// and worst candidates against simulation.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "api/workbench.h"
#include "gen/graph_generator.h"
#include "util/stats.h"
#include "util/table.h"

using namespace procon;

int main() {
  util::Rng rng(77);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 6;
  gopts.max_actors = 8;
  const auto apps = gen::generate_graphs(rng, gopts, 5);
  const std::size_t kNodes = 8;
  const platform::Platform plat = platform::Platform::homogeneous(kNodes);

  struct Candidate {
    std::string label;
    platform::Mapping mapping;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"index", platform::Mapping::by_index(apps, plat)});
  candidates.push_back(
      {"load-balanced", platform::Mapping::load_balanced(apps, plat)});
  for (int k = 0; k < 200; ++k) {
    candidates.push_back({"random#" + std::to_string(k),
                          platform::Mapping::random(apps, plat, rng)});
  }

  // One session scores every candidate; the engines are built once and the
  // candidates shard across the pool (results independent of thread count).
  api::Workbench bench(platform::System(std::vector<sdf::Graph>(apps), plat,
                                        candidates.front().mapping));
  std::vector<platform::Mapping> mappings;
  mappings.reserve(candidates.size());
  for (const Candidate& c : candidates) mappings.push_back(c.mapping);
  const auto scores = bench.score_mappings(mappings);
  std::cout << "scored " << scores.provenance.evaluations << " mappings on "
            << scores.provenance.threads << " thread(s) in "
            << util::format_double(scores.provenance.wall_ms, 1) << " ms\n\n";

  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (*scores)[a] < (*scores)[b];
  });

  util::Table top("Top 5 and bottom 2 mappings by estimated worst slowdown");
  top.set_header({"rank", "mapping", "estimated worst slowdown"});
  for (std::size_t i = 0; i < 5 && i < order.size(); ++i) {
    top.add_row({std::to_string(i + 1), candidates[order[i]].label,
                 util::format_double((*scores)[order[i]], 2)});
  }
  for (std::size_t i = order.size() - 2; i < order.size(); ++i) {
    top.add_row({std::to_string(i + 1), candidates[order[i]].label,
                 util::format_double((*scores)[order[i]], 2)});
  }
  std::cout << top.render() << '\n';

  // Validate the analytic ranking by simulating the extremes in a
  // throwaway session per candidate mapping.
  auto simulate_worst = [&](const Candidate& c) {
    api::Workbench candidate_bench(
        platform::System(std::vector<sdf::Graph>(apps), plat, c.mapping),
        api::WorkbenchOptions{.threads = 1});
    const auto sim = candidate_bench.simulate(sim::SimOptions{.horizon = 500'000});
    const auto est = candidate_bench.contention();
    double worst = 0.0;
    for (std::size_t i = 0; i < sim->apps.size(); ++i) {
      worst = std::max(worst,
                       sim->apps[i].average_period / (*est)[i].isolation_period);
    }
    return worst;
  };
  const double best_sim = simulate_worst(candidates[order.front()]);
  const double worst_sim = simulate_worst(candidates[order.back()]);
  std::cout << "simulated worst slowdown - best candidate ("
            << candidates[order.front()].label
            << "): " << util::format_double(best_sim, 2) << ", worst candidate ("
            << candidates[order.back()].label
            << "): " << util::format_double(worst_sim, 2) << "\n";
  std::cout << (best_sim <= worst_sim
                    ? "the estimator's ranking is confirmed by simulation.\n"
                    : "ranking inversion - investigate this seed.\n");
  return 0;
}
