// Design-space exploration: because the probabilistic estimate is orders
// of magnitude cheaper than simulation, a designer can score many candidate
// mappings analytically and only simulate the winner (the workflow the
// paper's speed numbers enable).
//
// This example compares the paper's index mapping, a load-balanced mapping
// and 200 random mappings for five generated applications, ranks them by
// the estimated worst normalised period, then validates the best and worst
// candidates against simulation.
#include <algorithm>
#include <iostream>
#include <vector>

#include "gen/graph_generator.h"
#include "platform/system.h"
#include "prob/estimator.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"

using namespace procon;

namespace {

double score(const platform::System& sys, const prob::ContentionEstimator& est) {
  // Score = worst normalised period over the applications (lower = better).
  double worst = 0.0;
  for (const auto& e : est.estimate(sys)) {
    worst = std::max(worst, e.normalised_period());
  }
  return worst;
}

}  // namespace

int main() {
  util::Rng rng(77);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 6;
  gopts.max_actors = 8;
  const auto apps = gen::generate_graphs(rng, gopts, 5);
  const std::size_t kNodes = 8;
  const platform::Platform plat = platform::Platform::homogeneous(kNodes);

  const prob::ContentionEstimator estimator;

  struct Candidate {
    std::string label;
    platform::Mapping mapping;
    double score = 0.0;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"index", platform::Mapping::by_index(apps, plat), 0.0});
  candidates.push_back(
      {"load-balanced", platform::Mapping::load_balanced(apps, plat), 0.0});
  for (int k = 0; k < 200; ++k) {
    candidates.push_back({"random#" + std::to_string(k),
                          platform::Mapping::random(apps, plat, rng), 0.0});
  }

  for (auto& c : candidates) {
    platform::System sys(std::vector<sdf::Graph>(apps), plat, c.mapping);
    c.score = score(sys, estimator);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.score < b.score; });

  util::Table top("Top 5 and bottom 2 mappings by estimated worst slowdown");
  top.set_header({"rank", "mapping", "estimated worst slowdown"});
  for (std::size_t i = 0; i < 5 && i < candidates.size(); ++i) {
    top.add_row({std::to_string(i + 1), candidates[i].label,
                 util::format_double(candidates[i].score, 2)});
  }
  for (std::size_t i = candidates.size() - 2; i < candidates.size(); ++i) {
    top.add_row({std::to_string(i + 1), candidates[i].label,
                 util::format_double(candidates[i].score, 2)});
  }
  std::cout << top.render() << '\n';

  // Validate the analytic ranking by simulating the extremes.
  auto simulate_worst = [&](const Candidate& c) {
    platform::System sys(std::vector<sdf::Graph>(apps), plat, c.mapping);
    const auto r = sim::simulate(sys, sim::SimOptions{.horizon = 500'000});
    const auto est = estimator.estimate(sys);
    double worst = 0.0;
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      worst = std::max(worst, r.apps[i].average_period / est[i].isolation_period);
    }
    return worst;
  };
  const double best_sim = simulate_worst(candidates.front());
  const double worst_sim = simulate_worst(candidates.back());
  std::cout << "simulated worst slowdown - best candidate ("
            << candidates.front().label << "): " << util::format_double(best_sim, 2)
            << ", worst candidate (" << candidates.back().label
            << "): " << util::format_double(worst_sim, 2) << "\n";
  std::cout << (best_sim <= worst_sim
                    ? "the estimator's ranking is confirmed by simulation.\n"
                    : "ranking inversion - investigate this seed.\n");
  return 0;
}
