// Quickstart: model two applications sharing processors, open a Workbench
// session on the system, estimate their throughput under contention
// probabilistically, and compare with a cycle-accurate simulation - the
// library's core loop in ~60 lines.
//
// This is the paper's Section 3 example: SDFGs A and B of Figure 2 mapped
// actor-by-actor onto three shared processors.
#include <iostream>

#include "api/workbench.h"

using namespace procon;

int main() {
  // 1. Describe the applications as SDF graphs.
  sdf::Graph a("A");
  const auto a0 = a.add_actor("a0", 100);  // name, execution time
  const auto a1 = a.add_actor("a1", 50);
  const auto a2 = a.add_actor("a2", 100);
  a.add_channel(a0, a1, 2, 1, 0);  // src, dst, prod rate, cons rate, tokens
  a.add_channel(a1, a2, 1, 2, 0);
  a.add_channel(a2, a0, 1, 1, 1);

  sdf::Graph b("B");
  const auto b0 = b.add_actor("b0", 50);
  const auto b1 = b.add_actor("b1", 100);
  const auto b2 = b.add_actor("b2", 100);
  b.add_channel(b0, b1, 1, 2, 0);
  b.add_channel(b1, b2, 1, 1, 0);
  b.add_channel(b2, b0, 2, 1, 2);

  // 2. Describe the platform and the mapping (actor i -> processor i), and
  // open an analysis session on the system. The Workbench builds every
  // per-application engine once; all queries below reuse them.
  std::vector<sdf::Graph> apps{a, b};
  platform::Platform proc = platform::Platform::homogeneous(3);
  platform::Mapping mapping = platform::Mapping::by_index(apps, proc);
  api::Workbench bench(
      platform::System(std::move(apps), std::move(proc), std::move(mapping)));

  // 3. Probabilistic contention estimate (choose any Method; SecondOrder is
  // the paper's O(n^2) default).
  const auto estimates = bench.contention(
      prob::EstimatorOptions{.method = prob::Method::SecondOrder});

  // 4. Reference: discrete-event simulation on non-preemptive FCFS nodes.
  const auto simulated = bench.simulate(sim::SimOptions{.horizon = 500'000});

  std::cout << "app  isolation  estimated  simulated  est.throughput\n";
  for (sdf::AppId i = 0; i < bench.app_count(); ++i) {
    std::cout << bench.system().app(i).name() << "    "
              << (*estimates)[i].isolation_period << "        "
              << (*estimates)[i].estimated_period << "     "
              << simulated->apps[i].average_period << "        "
              << (*estimates)[i].estimated_throughput() << '\n';
  }
  std::cout << "(" << estimates.provenance.method << " took "
            << estimates.provenance.wall_ms << " ms; simulation took "
            << simulated.provenance.wall_ms << " ms)\n";
  return 0;
}
