# Empty dependencies file for bench_example.
# This may be replaced when dependencies are built.
