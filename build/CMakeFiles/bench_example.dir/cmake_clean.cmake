file(REMOVE_RECURSE
  "CMakeFiles/bench_example.dir/bench/bench_example.cpp.o"
  "CMakeFiles/bench_example.dir/bench/bench_example.cpp.o.d"
  "bench_example"
  "bench_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
