# Empty dependencies file for test_symmetric_poly.
# This may be replaced when dependencies are built.
