file(REMOVE_RECURSE
  "CMakeFiles/test_symmetric_poly.dir/tests/test_symmetric_poly.cpp.o"
  "CMakeFiles/test_symmetric_poly.dir/tests/test_symmetric_poly.cpp.o.d"
  "test_symmetric_poly"
  "test_symmetric_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetric_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
