file(REMOVE_RECURSE
  "CMakeFiles/test_load.dir/tests/test_load.cpp.o"
  "CMakeFiles/test_load.dir/tests/test_load.cpp.o.d"
  "test_load"
  "test_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
