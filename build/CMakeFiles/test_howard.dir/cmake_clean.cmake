file(REMOVE_RECURSE
  "CMakeFiles/test_howard.dir/tests/test_howard.cpp.o"
  "CMakeFiles/test_howard.dir/tests/test_howard.cpp.o.d"
  "test_howard"
  "test_howard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_howard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
