# Empty dependencies file for test_howard.
# This may be replaced when dependencies are built.
