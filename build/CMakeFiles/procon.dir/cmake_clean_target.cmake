file(REMOVE_RECURSE
  "libprocon.a"
)
