
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admission/admission.cpp" "CMakeFiles/procon.dir/src/admission/admission.cpp.o" "gcc" "CMakeFiles/procon.dir/src/admission/admission.cpp.o.d"
  "/root/repo/src/analysis/engine.cpp" "CMakeFiles/procon.dir/src/analysis/engine.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/engine.cpp.o.d"
  "/root/repo/src/analysis/howard.cpp" "CMakeFiles/procon.dir/src/analysis/howard.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/howard.cpp.o.d"
  "/root/repo/src/analysis/hsdf.cpp" "CMakeFiles/procon.dir/src/analysis/hsdf.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/hsdf.cpp.o.d"
  "/root/repo/src/analysis/latency.cpp" "CMakeFiles/procon.dir/src/analysis/latency.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/latency.cpp.o.d"
  "/root/repo/src/analysis/mcr.cpp" "CMakeFiles/procon.dir/src/analysis/mcr.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/mcr.cpp.o.d"
  "/root/repo/src/analysis/state_space.cpp" "CMakeFiles/procon.dir/src/analysis/state_space.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/state_space.cpp.o.d"
  "/root/repo/src/analysis/throughput.cpp" "CMakeFiles/procon.dir/src/analysis/throughput.cpp.o" "gcc" "CMakeFiles/procon.dir/src/analysis/throughput.cpp.o.d"
  "/root/repo/src/dse/buffer_explorer.cpp" "CMakeFiles/procon.dir/src/dse/buffer_explorer.cpp.o" "gcc" "CMakeFiles/procon.dir/src/dse/buffer_explorer.cpp.o.d"
  "/root/repo/src/dse/mapper.cpp" "CMakeFiles/procon.dir/src/dse/mapper.cpp.o" "gcc" "CMakeFiles/procon.dir/src/dse/mapper.cpp.o.d"
  "/root/repo/src/gen/graph_generator.cpp" "CMakeFiles/procon.dir/src/gen/graph_generator.cpp.o" "gcc" "CMakeFiles/procon.dir/src/gen/graph_generator.cpp.o.d"
  "/root/repo/src/gen/use_cases.cpp" "CMakeFiles/procon.dir/src/gen/use_cases.cpp.o" "gcc" "CMakeFiles/procon.dir/src/gen/use_cases.cpp.o.d"
  "/root/repo/src/platform/heterogeneous.cpp" "CMakeFiles/procon.dir/src/platform/heterogeneous.cpp.o" "gcc" "CMakeFiles/procon.dir/src/platform/heterogeneous.cpp.o.d"
  "/root/repo/src/platform/mapping.cpp" "CMakeFiles/procon.dir/src/platform/mapping.cpp.o" "gcc" "CMakeFiles/procon.dir/src/platform/mapping.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "CMakeFiles/procon.dir/src/platform/platform.cpp.o" "gcc" "CMakeFiles/procon.dir/src/platform/platform.cpp.o.d"
  "/root/repo/src/platform/system.cpp" "CMakeFiles/procon.dir/src/platform/system.cpp.o" "gcc" "CMakeFiles/procon.dir/src/platform/system.cpp.o.d"
  "/root/repo/src/prob/compose.cpp" "CMakeFiles/procon.dir/src/prob/compose.cpp.o" "gcc" "CMakeFiles/procon.dir/src/prob/compose.cpp.o.d"
  "/root/repo/src/prob/estimator.cpp" "CMakeFiles/procon.dir/src/prob/estimator.cpp.o" "gcc" "CMakeFiles/procon.dir/src/prob/estimator.cpp.o.d"
  "/root/repo/src/prob/load.cpp" "CMakeFiles/procon.dir/src/prob/load.cpp.o" "gcc" "CMakeFiles/procon.dir/src/prob/load.cpp.o.d"
  "/root/repo/src/prob/monte_carlo.cpp" "CMakeFiles/procon.dir/src/prob/monte_carlo.cpp.o" "gcc" "CMakeFiles/procon.dir/src/prob/monte_carlo.cpp.o.d"
  "/root/repo/src/prob/waiting_time.cpp" "CMakeFiles/procon.dir/src/prob/waiting_time.cpp.o" "gcc" "CMakeFiles/procon.dir/src/prob/waiting_time.cpp.o.d"
  "/root/repo/src/sdf/algorithms.cpp" "CMakeFiles/procon.dir/src/sdf/algorithms.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/algorithms.cpp.o.d"
  "/root/repo/src/sdf/exec_time.cpp" "CMakeFiles/procon.dir/src/sdf/exec_time.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/exec_time.cpp.o.d"
  "/root/repo/src/sdf/graph.cpp" "CMakeFiles/procon.dir/src/sdf/graph.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/graph.cpp.o.d"
  "/root/repo/src/sdf/io.cpp" "CMakeFiles/procon.dir/src/sdf/io.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/io.cpp.o.d"
  "/root/repo/src/sdf/repetition.cpp" "CMakeFiles/procon.dir/src/sdf/repetition.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/repetition.cpp.o.d"
  "/root/repo/src/sdf/transform.cpp" "CMakeFiles/procon.dir/src/sdf/transform.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sdf/transform.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/procon.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/procon.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "CMakeFiles/procon.dir/src/sim/trace_export.cpp.o" "gcc" "CMakeFiles/procon.dir/src/sim/trace_export.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/procon.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/procon.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rational.cpp" "CMakeFiles/procon.dir/src/util/rational.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/rational.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/procon.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/procon.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/symmetric_poly.cpp" "CMakeFiles/procon.dir/src/util/symmetric_poly.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/symmetric_poly.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/procon.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/procon.dir/src/util/table.cpp.o.d"
  "/root/repo/src/wcrt/wcrt.cpp" "CMakeFiles/procon.dir/src/wcrt/wcrt.cpp.o" "gcc" "CMakeFiles/procon.dir/src/wcrt/wcrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
