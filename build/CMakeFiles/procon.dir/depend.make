# Empty dependencies file for procon.
# This may be replaced when dependencies are built.
