file(REMOVE_RECURSE
  "CMakeFiles/test_exec_time.dir/tests/test_exec_time.cpp.o"
  "CMakeFiles/test_exec_time.dir/tests/test_exec_time.cpp.o.d"
  "test_exec_time"
  "test_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
