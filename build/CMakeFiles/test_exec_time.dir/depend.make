# Empty dependencies file for test_exec_time.
# This may be replaced when dependencies are built.
