file(REMOVE_RECURSE
  "CMakeFiles/procon_cli.dir/tools/procon_cli.cpp.o"
  "CMakeFiles/procon_cli.dir/tools/procon_cli.cpp.o.d"
  "procon_cli"
  "procon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
