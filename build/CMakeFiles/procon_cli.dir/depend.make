# Empty dependencies file for procon_cli.
# This may be replaced when dependencies are built.
