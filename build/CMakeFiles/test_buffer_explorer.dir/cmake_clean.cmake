file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_explorer.dir/tests/test_buffer_explorer.cpp.o"
  "CMakeFiles/test_buffer_explorer.dir/tests/test_buffer_explorer.cpp.o.d"
  "test_buffer_explorer"
  "test_buffer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
