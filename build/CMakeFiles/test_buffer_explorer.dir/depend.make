# Empty dependencies file for test_buffer_explorer.
# This may be replaced when dependencies are built.
