# Empty dependencies file for test_hsdf.
# This may be replaced when dependencies are built.
