file(REMOVE_RECURSE
  "CMakeFiles/test_hsdf.dir/tests/test_hsdf.cpp.o"
  "CMakeFiles/test_hsdf.dir/tests/test_hsdf.cpp.o.d"
  "test_hsdf"
  "test_hsdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
