# Empty dependencies file for test_repetition.
# This may be replaced when dependencies are built.
