file(REMOVE_RECURSE
  "CMakeFiles/test_repetition.dir/tests/test_repetition.cpp.o"
  "CMakeFiles/test_repetition.dir/tests/test_repetition.cpp.o.d"
  "test_repetition"
  "test_repetition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
