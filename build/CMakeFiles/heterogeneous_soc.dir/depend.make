# Empty dependencies file for heterogeneous_soc.
# This may be replaced when dependencies are built.
