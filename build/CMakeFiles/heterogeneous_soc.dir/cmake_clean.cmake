file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_soc.dir/examples/heterogeneous_soc.cpp.o"
  "CMakeFiles/heterogeneous_soc.dir/examples/heterogeneous_soc.cpp.o.d"
  "heterogeneous_soc"
  "heterogeneous_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
