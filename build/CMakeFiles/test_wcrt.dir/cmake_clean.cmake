file(REMOVE_RECURSE
  "CMakeFiles/test_wcrt.dir/tests/test_wcrt.cpp.o"
  "CMakeFiles/test_wcrt.dir/tests/test_wcrt.cpp.o.d"
  "test_wcrt"
  "test_wcrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wcrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
