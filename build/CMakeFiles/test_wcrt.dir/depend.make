# Empty dependencies file for test_wcrt.
# This may be replaced when dependencies are built.
