# Empty dependencies file for test_waiting_time.
# This may be replaced when dependencies are built.
