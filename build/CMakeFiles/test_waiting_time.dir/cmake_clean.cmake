file(REMOVE_RECURSE
  "CMakeFiles/test_waiting_time.dir/tests/test_waiting_time.cpp.o"
  "CMakeFiles/test_waiting_time.dir/tests/test_waiting_time.cpp.o.d"
  "test_waiting_time"
  "test_waiting_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waiting_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
