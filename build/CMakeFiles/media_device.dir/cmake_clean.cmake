file(REMOVE_RECURSE
  "CMakeFiles/media_device.dir/examples/media_device.cpp.o"
  "CMakeFiles/media_device.dir/examples/media_device.cpp.o.d"
  "media_device"
  "media_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
