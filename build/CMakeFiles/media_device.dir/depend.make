# Empty dependencies file for media_device.
# This may be replaced when dependencies are built.
