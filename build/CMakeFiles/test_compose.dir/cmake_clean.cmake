file(REMOVE_RECURSE
  "CMakeFiles/test_compose.dir/tests/test_compose.cpp.o"
  "CMakeFiles/test_compose.dir/tests/test_compose.cpp.o.d"
  "test_compose"
  "test_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
