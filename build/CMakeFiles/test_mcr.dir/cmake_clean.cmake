file(REMOVE_RECURSE
  "CMakeFiles/test_mcr.dir/tests/test_mcr.cpp.o"
  "CMakeFiles/test_mcr.dir/tests/test_mcr.cpp.o.d"
  "test_mcr"
  "test_mcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
