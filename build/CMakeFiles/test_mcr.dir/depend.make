# Empty dependencies file for test_mcr.
# This may be replaced when dependencies are built.
