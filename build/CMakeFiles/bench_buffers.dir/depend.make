# Empty dependencies file for bench_buffers.
# This may be replaced when dependencies are built.
