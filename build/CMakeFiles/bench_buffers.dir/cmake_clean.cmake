file(REMOVE_RECURSE
  "CMakeFiles/bench_buffers.dir/bench/bench_buffers.cpp.o"
  "CMakeFiles/bench_buffers.dir/bench/bench_buffers.cpp.o.d"
  "bench_buffers"
  "bench_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
