# Empty dependencies file for bench_stochastic.
# This may be replaced when dependencies are built.
