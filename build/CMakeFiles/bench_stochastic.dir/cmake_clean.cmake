file(REMOVE_RECURSE
  "CMakeFiles/bench_stochastic.dir/bench/bench_stochastic.cpp.o"
  "CMakeFiles/bench_stochastic.dir/bench/bench_stochastic.cpp.o.d"
  "bench_stochastic"
  "bench_stochastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
