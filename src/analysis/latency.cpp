#include "analysis/latency.h"

#include <algorithm>

#include "sdf/repetition.h"

namespace procon::analysis {

LatencyResult iteration_latency(const Hsdf& h) {
  const std::size_t n = h.node_count();
  LatencyResult result;
  if (n == 0) return result;

  // Zero-token adjacency and indegrees.
  std::vector<std::vector<std::uint32_t>> out(n);
  std::vector<std::uint32_t> indegree(n, 0);
  for (const HsdfEdge& e : h.edges) {
    if (e.tokens != 0) continue;
    out[e.src].push_back(e.dst);
    ++indegree[e.dst];
  }

  // Kahn topological order with longest-path relaxation.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) order.push_back(v);
  }
  std::vector<double> finish(n, 0.0);
  std::vector<std::uint32_t> pred(n, UINT32_MAX);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Source nodes start at time 0 and finish after their own execution.
    if (indegree[v] == 0) finish[v] = h.nodes[v].exec_time;
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const std::uint32_t v = order[head];
    for (const std::uint32_t w : out[v]) {
      const double cand = finish[v] + h.nodes[w].exec_time;
      if (cand > finish[w]) {
        finish[w] = cand;
        pred[w] = v;
      }
      if (--indegree[w] == 0) order.push_back(w);
    }
  }
  if (order.size() != n) {
    throw sdf::GraphError("iteration_latency: zero-token subgraph is cyclic");
  }

  // Extract the critical path.
  std::uint32_t best = 0;
  for (std::uint32_t v = 1; v < n; ++v) {
    if (finish[v] > finish[best]) best = v;
  }
  result.latency = finish[best];
  std::vector<std::uint32_t> path;
  for (std::uint32_t v = best; v != UINT32_MAX; v = pred[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  result.path = std::move(path);
  return result;
}

GraphLatencyResult compute_latency(const sdf::Graph& g,
                                   std::span<const double> exec_times) {
  const sdf::Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  if (!q) throw sdf::GraphError("compute_latency: inconsistent graph");
  const Hsdf h = expand_to_hsdf(closed, *q, exec_times);
  const LatencyResult r = iteration_latency(h);
  GraphLatencyResult out;
  out.latency = r.latency;
  std::vector<bool> seen(g.actor_count(), false);
  for (const std::uint32_t node : r.path) {
    const sdf::ActorId a = h.nodes[node].source_actor;
    if (!seen[a]) {
      seen[a] = true;
      out.critical_actors.push_back(a);
    }
  }
  return out;
}

}  // namespace procon::analysis
