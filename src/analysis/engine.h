// Reusable per-graph throughput engine.
//
// Every repeated-analysis loop in this library — the contention estimator's
// fixed-point passes, the buffer/throughput and mapping DSE, WCRT bounds
// and run-time admission control — re-analyses the *same* graph structure
// with different actor execution times. compute_period() redoes every
// structure-dependent step on each call: the self-loop-closure copy, the
// repetition vector, the HSDF expansion, the adjacency build and the
// cycle/deadlock DFS, then cold-starts Howard's policy iteration.
//
// ThroughputEngine performs all of that exactly once at construction and
// caches the result: the closed graph's repetition vector, the HSDF
// topology in flat CSR form, and the structural verdicts (cycle existence,
// zero-token deadlock). recompute(exec_times) then only rewrites node
// weights in place and re-runs Howard warm-started from the previous policy
// and potentials, which converges in one or two improvement rounds under
// the small perturbations these loops produce — an order of magnitude
// faster than the fresh path (bench_engine tracks the exact factor).
//
// Caching contract: the *structure* (actors, channels, rates, initial
// tokens) is fixed for the engine's lifetime; only execution times may vary
// between recompute() calls. Results are identical to compute_period() on
// the same graph and times.
#pragma once

#include <span>
#include <vector>

#include "analysis/howard.h"
#include "analysis/throughput.h"
#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace procon::analysis {

/// \brief Construction shortcuts for callers that already know structural
/// facts about the graph.
struct EngineOptions {
  /// The graph already has a self-loop on every actor (auto-concurrency
  /// disabled); skip the closure copy. Callers that batch-create engines
  /// over pre-closed graphs (e.g. the buffer explorer) set this.
  bool assume_closed = false;
  /// Known repetition vector of the (closed) graph; skips recomputation.
  /// Must match the graph or construction throws.
  const sdf::RepetitionVector* repetition = nullptr;
};

/// \brief Reusable per-graph period analysis: structure cached once,
/// execution times rewritten per recompute(), Howard warm-started.
///
/// Caching contract: the *structure* (actors, channels, rates, initial
/// tokens) is fixed for the engine's lifetime; only execution times may
/// vary between recompute() calls. Results are identical to
/// compute_period() on the same graph and times.
///
/// Thread-safety: an engine is a mutable analysis object (recompute and
/// even const-free queries mutate solver state); one engine must not be
/// used from two threads at once. Sharded callers clone one engine per
/// worker and reset() it per independent work item for determinism.
class ThroughputEngine {
 public:
  /// Builds all structure-dependent state. Throws sdf::GraphError on
  /// inconsistent graphs (same contract as compute_period).
  explicit ThroughputEngine(const sdf::Graph& g, const EngineOptions& opts = {});

  /// Period of the cached structure under `exec_times` (one entry per actor
  /// of the original graph; empty = the graph's own integral times).
  /// Repeated calls warm-start Howard from the previous solution.
  [[nodiscard]] PeriodResult recompute(std::span<const double> exec_times = {});

  /// Discards the Howard warm-start state; the next recompute() cold-starts.
  /// Parallel sharding (use-case sweeps, mapper candidate scoring) resets a
  /// worker's engine clone before every independent work item so its result
  /// is a pure function of the inputs — bitwise identical no matter which
  /// worker evaluates the item after which other items.
  void reset() noexcept { solver_.reset(); }

  /// Number of actors of the original graph.
  [[nodiscard]] std::size_t actor_count() const noexcept { return actor_count_; }
  /// Repetition vector of the (closed) graph, computed once at construction.
  [[nodiscard]] const sdf::RepetitionVector& repetition_vector() const noexcept {
    return q_;
  }
  /// Number of HSDF firing nodes (sum of the repetition vector).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_actor_.size();
  }
  /// True if the structure deadlocks regardless of execution times.
  [[nodiscard]] bool structurally_deadlocked() const noexcept {
    return solver_.deadlocked();
  }
  /// True if the HSDF expansion has any cycle (false => period 0).
  [[nodiscard]] bool has_cycle() const noexcept { return solver_.has_cycle(); }

 private:
  std::size_t actor_count_ = 0;
  sdf::RepetitionVector q_;              // of the closed graph
  std::vector<sdf::ActorId> node_actor_; // HSDF node -> source actor
  std::vector<double> default_times_;    // the graph's own times, as doubles
  std::vector<double> node_weight_;      // scratch: per-node exec time
  HowardSolver solver_;
};

}  // namespace procon::analysis
