#include "analysis/state_space.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace procon::analysis {
namespace {

using sdf::ActorId;
using sdf::ChannelId;
using sdf::Graph;
using sdf::Time;

/// Canonical execution state: token distribution plus, per actor, the
/// remaining execution time of its ongoing firing (-1 if idle). Times are
/// stored relative to "now" so recurring configurations compare equal.
struct State {
  std::vector<std::uint64_t> tokens;
  std::vector<Time> remaining;

  bool operator==(const State&) const = default;
};

/// splitmix64 finaliser-based fold over the packed state words. Long runs
/// can visit hundreds of thousands of states; hashing beats the former
/// std::map's O(log n) lexicographic vector comparisons per lookup.
struct StateHash {
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  std::size_t operator()(const State& s) const noexcept {
    std::uint64_t acc = 0x2545F4914F6CDD1DULL;
    for (const std::uint64_t t : s.tokens) acc = mix(acc ^ t);
    for (const Time r : s.remaining) {
      acc = mix(acc ^ static_cast<std::uint64_t>(r));
    }
    return static_cast<std::size_t>(acc);
  }
};

}  // namespace

StateSpaceResult self_timed_period(const Graph& g, const StateSpaceOptions& opts) {
  StateSpaceResult result;
  const auto q_opt = sdf::compute_repetition_vector(g);
  if (!q_opt) {
    result.deadlocked = true;
    return result;
  }
  const sdf::RepetitionVector& q = *q_opt;
  const std::size_t n = g.actor_count();

  const std::uint64_t max_firings =
      opts.max_firings ? opts.max_firings : 1'000'000ULL + 10'000ULL * n;

  State st;
  st.tokens.resize(g.channel_count());
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    st.tokens[c] = g.channel(c).initial_tokens;
  }
  st.remaining.assign(n, -1);

  std::vector<std::uint64_t> completions(n, 0);
  auto iterations_done = [&]() -> std::uint64_t {
    std::uint64_t iters = ~0ULL;
    for (std::size_t a = 0; a < n; ++a) {
      iters = std::min(iters, completions[a] / q[a]);
    }
    return iters;
  };

  auto can_start = [&](ActorId a) {
    if (st.remaining[a] >= 0) return false;  // no auto-concurrency
    for (const ChannelId cid : g.in_channels(a)) {
      if (st.tokens[cid] < g.channel(cid).cons_rate) return false;
    }
    return true;
  };

  Time now = 0;
  std::uint64_t fired = 0;
  // Visited states -> (time, iterations completed).
  std::unordered_map<State, std::pair<Time, std::uint64_t>, StateHash> seen;
  seen.reserve(1024);

  while (fired < max_firings) {
    // Phase 1: start every enabled firing (consume tokens at start). A
    // started actor may enable others only by *finishing*, and consumption
    // only removes tokens, so one sweep per actor suffices; zero-time actors
    // are completed immediately in phase 2 below.
    for (ActorId a = 0; a < n; ++a) {
      if (can_start(a)) {
        for (const ChannelId cid : g.in_channels(a)) {
          st.tokens[cid] -= g.channel(cid).cons_rate;
        }
        st.remaining[a] = g.actor(a).exec_time;
      }
    }

    // Phase 2: complete zero-remaining firings at the current instant,
    // which may enable further same-instant starts. Loop until stable.
    bool instant_progress = true;
    while (instant_progress) {
      instant_progress = false;
      for (ActorId a = 0; a < n; ++a) {
        if (st.remaining[a] == 0) {
          for (const ChannelId cid : g.out_channels(a)) {
            st.tokens[cid] += g.channel(cid).prod_rate;
          }
          st.remaining[a] = -1;
          ++completions[a];
          ++fired;
          instant_progress = true;
        }
      }
      for (ActorId a = 0; a < n; ++a) {
        if (can_start(a)) {
          for (const ChannelId cid : g.in_channels(a)) {
            st.tokens[cid] -= g.channel(cid).cons_rate;
          }
          st.remaining[a] = g.actor(a).exec_time;
          instant_progress = true;
        }
      }
    }

    // Quiescent at `now`: record / check recurrence.
    const std::uint64_t iters = iterations_done();
    const auto [it, inserted] = seen.try_emplace(st, now, iters);
    if (!inserted) {
      const auto [prev_time, prev_iters] = it->second;
      const std::uint64_t diters = iters - prev_iters;
      const Time dtime = now - prev_time;
      if (diters == 0) {
        // State recurred without progress: livelock/deadlock.
        result.deadlocked = true;
        return result;
      }
      result.converged = true;
      result.period = util::Rational(dtime, static_cast<std::int64_t>(diters));
      result.transient_end = prev_time;
      result.iterations_in_cycle = diters;
      result.cycle_duration = dtime;
      return result;
    }

    // Phase 3: advance time to the next completion.
    Time step = sdf::kTimeInfinity;
    for (ActorId a = 0; a < n; ++a) {
      if (st.remaining[a] > 0) step = std::min(step, st.remaining[a]);
    }
    if (step == sdf::kTimeInfinity) {
      // Nothing executing and nothing could start: deadlock.
      result.deadlocked = true;
      return result;
    }
    now += step;
    for (ActorId a = 0; a < n; ++a) {
      if (st.remaining[a] > 0) st.remaining[a] -= step;
    }
  }

  // Cap reached without recurrence.
  return result;
}

}  // namespace procon::analysis
