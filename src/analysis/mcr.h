// Maximum cycle ratio (MCR) analysis of an HSDF graph.
//
// The self-timed steady-state period of a strongly connected HSDF equals
//   max over directed cycles C of ( sum of node execution times on C )
//                                / ( sum of edge tokens on C ),
// the maximum cycle ratio (Reiter '68; Dasdan '04 [4] surveys algorithms).
// Node weights are folded onto outgoing edges so the problem becomes a
// standard edge-weighted cycle-ratio maximisation.
//
// Two engines are provided:
//  * `mcr_binary_search` - Lawler's parametric search with Bellman-Ford
//    positive-cycle detection. Robust for real-valued weights; O(VE log(1/eps)).
//  * `mcr_enumerate` - exact simple-cycle enumeration (Johnson-style DFS),
//    exponential, only for small graphs; used to cross-validate in tests.
//
// A cycle whose token sum is zero means the graph deadlocks (infinite
// ratio); detected and reported.
#pragma once

#include <optional>
#include <vector>

#include "analysis/hsdf.h"

namespace procon::analysis {

/// Result of an MCR computation.
struct McrResult {
  /// True if a zero-token cycle exists (deadlock: period unbounded).
  bool deadlocked = false;
  /// The maximum cycle ratio = steady-state iteration period. Valid when
  /// !deadlocked and the graph has at least one cycle.
  double ratio = 0.0;
  /// False if the graph is acyclic (ratio meaningless; period 0 between
  /// iterations in the limit).
  bool has_cycle = false;
};

/// Options for the parametric search.
struct McrOptions {
  double relative_tolerance = 1e-10;  ///< binary search convergence
  int max_iterations = 128;           ///< hard cap on bisection steps
};

/// Lawler binary search; works on any HSDF. Never throws.
[[nodiscard]] McrResult mcr_binary_search(const Hsdf& h, const McrOptions& opts = {});

/// Exhaustive simple-cycle enumeration; throws std::invalid_argument if the
/// graph has more than `max_nodes` nodes (guard against blow-up).
[[nodiscard]] McrResult mcr_enumerate(const Hsdf& h, std::size_t max_nodes = 24);

/// Default engine: Howard's policy iteration (see howard.h) - ~5x faster
/// than the parametric search on this library's expansions and
/// cross-validated against it on thousands of random graphs in the tests.
/// mcr_binary_search remains the robust reference implementation.
[[nodiscard]] McrResult maximum_cycle_ratio(const Hsdf& h);

/// MCR plus the cycle achieving it. The critical cycle explains *why* a
/// graph has its period: the actors on it form the performance bottleneck
/// (useful for mapping exploration and design feedback). The cycle is
/// returned as HSDF node indices in traversal order; empty when the graph
/// is acyclic or deadlocked.
struct CriticalCycleResult {
  McrResult mcr;
  std::vector<std::uint32_t> cycle;
};

/// Default engine: Howard's policy iteration. The final policy's functional
/// graph contains a maximum-ratio cycle, so after the solve the critical
/// cycle is one policy walk — no parametric re-search (the options are
/// accepted for signature compatibility and ignored). The ratio is exact
/// (a cycle's weight/token quotient), not a bisection midpoint.
[[nodiscard]] CriticalCycleResult mcr_with_critical_cycle(const Hsdf& h,
                                                          const McrOptions& opts = {});

/// Reference path: Lawler parametric search, then Bellman-Ford predecessor
/// tracking slightly below lambda* to expose one critical cycle. Slower and
/// tolerance-bound; kept as the cross-validation oracle for the Howard
/// policy-graph extraction (see test_mcr.cpp).
[[nodiscard]] CriticalCycleResult mcr_with_critical_cycle_lawler(
    const Hsdf& h, const McrOptions& opts = {});

}  // namespace procon::analysis
