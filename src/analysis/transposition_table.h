// A sharded, capacity-bounded transposition table memoising analysis
// results under the whole stack.
//
// Admission probes, DSE candidates, use-case sweeps and multi-tenant
// service queries keep re-solving structurally identical subproblems —
// often across *different* tenants, since the Zobrist fingerprints they
// are keyed by are name-free (sdf/zobrist.h). One shared table turns each
// repeat into a bucket probe: entries are keyed by
// (fingerprint x query kind x query params) and store compact results
// (a period, WCRT bounds, a mapping score, up to six critical-actor ids).
//
// Correctness contract (mirrors the repo's other caches, see
// docs/ARCHITECTURE.md): a stored value is the *bitwise* result of the
// computation it memoises, so every consumer produces identical output
// with the table on, off, full, or shared by any number of threads — the
// table can only make things faster, never different. Keys carry a second
// independently-mixed 64-bit verify tag; a bucket match on the primary
// hash with a mismatched tag is counted (Stats::verify_failures) and
// treated as a miss, making a wrong-value hit require a simultaneous
// 128-bit collision.
//
// Concurrency and memory: the entry array is preallocated at construction
// and never grows; shards (power of two) are guarded by per-shard mutexes;
// lookup and store are allocation-free. Eviction is bucketed
// replace-oldest: each key maps to one kWays-entry bucket and the stalest
// entry (smallest per-shard LRU stamp) is replaced when the bucket is
// full — the same replace-oldest discipline as the admission candidate
// and service session LRUs, scoped to a bucket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

namespace procon::analysis {

/// \brief What a transposition entry memoises. Part of the key: the same
/// fingerprint under different kinds never collides.
enum class TTQuery : std::uint8_t {
  IsolationPeriod,  ///< per-app Howard period (Workbench::throughput, admission isolation)
  Latency,          ///< per-app critical-path latency (Workbench::latency)
  Bottleneck,       ///< per-app bottleneck report (Workbench::bottleneck)
  BufferPeriod,     ///< buffer-capped period per caps vector (explore_buffer_tradeoff)
  MappingScore,     ///< worst-app contention score per candidate mapping (dse)
  WcrtAppBound,     ///< per-app WCRT summary (isolation / worst-case period)
  WcrtActorBound,   ///< per-actor WCRT pair (waiting / response time)
  AdmissionPeriod,  ///< admission contention-predicted period per load vector
};

/// \brief A 128-bit probabilistic key: primary hash (selects shard and
/// bucket) plus an independently-mixed verify tag (guards against primary
/// collisions). Build with TTKeyBuilder.
struct TTKey {
  std::uint64_t hash = 0;    ///< bucket-selecting primary hash
  std::uint64_t verify = 0;  ///< independent tag checked on bucket match
};

/// \brief Accumulates (fingerprint, kind, params...) into a TTKey.
///
/// Both halves of the key absorb every input through independent mixing
/// chains, so two queries differing in any absorbed value (including
/// bitwise double payloads) get independent keys. Deterministic and
/// allocation-free.
class TTKeyBuilder {
 public:
  /// Starts a key for query `kind` over the structure identified by
  /// `fingerprint` (a System/SystemView/graph-component Zobrist value).
  TTKeyBuilder(std::uint64_t fingerprint, TTQuery kind) noexcept;

  /// Mixes one 64-bit parameter into both key halves.
  void absorb(std::uint64_t v) noexcept;

  /// Mixes a double parameter bitwise (no rounding: keys distinguish any
  /// two doubles that are not bit-identical, which is what the bitwise
  /// identity contract requires).
  void absorb_double(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    absorb(bits);
  }

  /// The finished key.
  [[nodiscard]] TTKey key() const noexcept { return TTKey{h_, v_}; }

 private:
  std::uint64_t h_ = 0;
  std::uint64_t v_ = 0;
};

/// \brief Compact memoised result: two doubles, up to six 32-bit ids and a
/// flag byte. Large enough for every cached query kind (period + critical
/// cycle, WCRT pairs, score, admission period); results that do not fit
/// (e.g. a bottleneck report with more than six actors) are simply not
/// cached, never truncated.
struct TTValue {
  /// How many critical-actor ids fit in TTValue::ids.
  static constexpr std::size_t kMaxIds = 6;
  /// Flag bit: the memoised analysis reported a deadlock.
  static constexpr std::uint8_t kDeadlocked = 1;

  double primary = 0.0;             ///< period / score / first bound
  double secondary = 0.0;           ///< latency slack / second bound
  std::uint32_t ids[kMaxIds] = {};  ///< critical-cycle / bottleneck actor ids
  std::uint8_t id_count = 0;        ///< how many of `ids` are meaningful
  std::uint8_t flags = 0;           ///< kDeadlocked etc.
};

/// \brief The sharded, capacity-bounded transposition table. Thread-safe;
/// see the header comment for the correctness and memory contract.
class TranspositionTable {
 public:
  /// Bucket associativity: each key probes one kWays-entry bucket.
  static constexpr std::size_t kWays = 4;

  /// Creates a table holding ~`capacity` entries (rounded so every shard
  /// has a power-of-two bucket count) split over `shards` shards (rounded
  /// up to a power of two, capped so each shard keeps at least one
  /// bucket). All memory is allocated here; lookup/store never allocate.
  explicit TranspositionTable(std::size_t capacity = 1 << 16,
                              std::size_t shards = 16);

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  /// Probes the table. On a hit copies the stored value into `out`,
  /// refreshes the entry's LRU stamp and returns true. A primary-hash
  /// match with a mismatched verify tag counts as a verify failure and a
  /// miss. Allocation-free.
  [[nodiscard]] bool lookup(const TTKey& key, TTValue& out) noexcept;

  /// Inserts or refreshes `value` under `key`. An existing entry with the
  /// same 128-bit key is overwritten in place; otherwise an empty slot in
  /// the bucket is used, and if none exists the bucket's oldest entry (by
  /// LRU stamp) is evicted. Allocation-free.
  void store(const TTKey& key, const TTValue& value) noexcept;

  /// Total entry slots across all shards.
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Number of shards (power of two).
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// \brief Per-shard counter snapshot (see Stats).
  struct ShardStats {
    std::uint64_t hits = 0;             ///< lookups returning a value
    std::uint64_t misses = 0;           ///< lookups returning nothing
    std::uint64_t stores = 0;           ///< store() calls (insert or refresh)
    std::uint64_t evictions = 0;        ///< entries replaced while still live
    std::uint64_t verify_failures = 0;  ///< primary-hash matches rejected by tag
  };

  /// \brief Aggregate counter snapshot with the per-shard breakdown,
  /// surfaced through Workbench/AnalysisService introspection and the CLI
  /// `tt-stats` serve line.
  struct Stats {
    std::uint64_t hits = 0;             ///< sum of ShardStats::hits
    std::uint64_t misses = 0;           ///< sum of ShardStats::misses
    std::uint64_t stores = 0;           ///< sum of ShardStats::stores
    std::uint64_t evictions = 0;        ///< sum of ShardStats::evictions
    std::uint64_t verify_failures = 0;  ///< sum of ShardStats::verify_failures
    std::vector<ShardStats> shards;     ///< per-shard breakdown, shard order

    /// hits / (hits + misses); 0 when no lookups happened yet.
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Snapshots all counters (locks each shard briefly; allocates the
  /// per-shard vector — introspection only, not for hot paths).
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t verify = 0;
    std::uint64_t stamp = 0;  // 0 = empty; else per-shard LRU clock value
    TTValue value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  // bucket_count * kWays, fixed size
    std::uint64_t clock = 0;     // LRU stamp source, monotonically increasing
    ShardStats stats;
  };

  [[nodiscard]] Shard& shard_of(const TTKey& key) noexcept {
    return shards_[key.hash & shard_mask_];
  }
  [[nodiscard]] std::size_t bucket_of(const TTKey& key) const noexcept {
    return ((key.hash >> shard_bits_) & bucket_mask_) * kWays;
  }

  std::vector<Shard> shards_;
  std::uint64_t shard_mask_ = 0;
  std::uint32_t shard_bits_ = 0;
  std::uint64_t bucket_mask_ = 0;  // per-shard bucket count - 1
};

}  // namespace procon::analysis
