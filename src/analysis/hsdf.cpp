#include "analysis/hsdf.h"

#include <algorithm>
#include <sstream>

namespace procon::analysis {
namespace {

// ceil(a/b) for b > 0, correct for negative a.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) == (b < 0))) ? q + 1 : q;
}

}  // namespace

void append_channel_candidates(const sdf::Channel& ch, const sdf::RepetitionVector& q,
                               std::span<const std::uint32_t> node_base,
                               std::vector<HsdfEdgeCandidate>& out) {
  const auto p = static_cast<std::int64_t>(ch.prod_rate);
  const auto c = static_cast<std::int64_t>(ch.cons_rate);
  const auto d = static_cast<std::int64_t>(ch.initial_tokens);
  const auto qu = static_cast<std::int64_t>(q[ch.src]);
  const auto qv = static_cast<std::int64_t>(q[ch.dst]);

  for (std::int64_t j = 1; j <= qv; ++j) {        // consumer firing (1-based)
    for (std::int64_t t = (j - 1) * c + 1; t <= j * c; ++t) {  // token index
      // Producer firing number (1-based from execution start); <= 0 means
      // the token is (an ancestor of) an initial token.
      std::int64_t f = ceil_div(t - d, p);
      std::int64_t delay = 0;
      if (f < 1) {
        // Shift whole iterations until the firing index is positive.
        const std::int64_t m = ceil_div(1 - f, qu);
        f += m * qu;
        delay = m;
      }
      // Within one iteration f cannot exceed qu (token conservation), but
      // guard for robustness on unusual token distributions.
      while (f > qu) {
        f -= qu;
        delay -= 1;
      }
      if (delay < 0) {
        // A dependency on a *future* iteration cannot occur in a
        // consistent graph; it indicates more initial tokens than one
        // iteration consumes, i.e. no constraint for this pair.
        continue;
      }
      const std::uint32_t src_node =
          node_base[ch.src] + static_cast<std::uint32_t>(f - 1);
      const std::uint32_t dst_node =
          node_base[ch.dst] + static_cast<std::uint32_t>(j - 1);
      out.push_back(HsdfEdgeCandidate{
          (static_cast<std::uint64_t>(src_node) << 32) | dst_node,
          static_cast<std::uint64_t>(delay)});
    }
  }
}

void dedup_candidates(std::vector<HsdfEdgeCandidate>& candidates) {
  // Sort by (src, dst) then tokens; the first entry of each (src, dst) run
  // carries the minimum iteration distance — the binding constraint.
  std::sort(candidates.begin(), candidates.end(),
            [](const HsdfEdgeCandidate& a, const HsdfEdgeCandidate& b) {
              return a.key != b.key ? a.key < b.key : a.tokens < b.tokens;
            });
  std::size_t w = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0 && candidates[i].key == candidates[i - 1].key) continue;
    candidates[w++] = candidates[i];
  }
  candidates.resize(w);
}

Hsdf expand_to_hsdf(const sdf::Graph& g, const sdf::RepetitionVector& q,
                    std::span<const double> exec_times) {
  if (q.size() != g.actor_count()) {
    throw sdf::GraphError("expand_to_hsdf: repetition vector size mismatch");
  }
  if (!exec_times.empty() && exec_times.size() != g.actor_count()) {
    throw sdf::GraphError("expand_to_hsdf: exec_times size mismatch");
  }

  Hsdf h;
  // node_base[a] = index of the first firing-node of actor a.
  std::vector<std::uint32_t> node_base(g.actor_count(), 0);
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
    node_base[a] = static_cast<std::uint32_t>(h.nodes.size());
    const double tau = exec_times.empty()
                           ? static_cast<double>(g.actor(a).exec_time)
                           : exec_times[a];
    for (std::uint32_t k = 0; k < q[a]; ++k) {
      h.nodes.push_back(HsdfNode{a, k, tau});
    }
  }

  // For each channel, map every consumed token of every consumer firing to
  // the producer firing that creates it; keep the min iteration distance
  // per (producer firing, consumer firing) pair. Candidates are collected
  // flat and deduplicated by one sort + scan — far cheaper than a node-based
  // map on the hot repeated-analysis path.
  std::vector<HsdfEdgeCandidate> raw;
  {
    std::size_t upper = 0;  // one candidate per consumed token
    for (const sdf::Channel& ch : g.channels()) {
      upper += static_cast<std::size_t>(q[ch.dst]) * ch.cons_rate;
    }
    raw.reserve(upper);
  }
  for (const sdf::Channel& ch : g.channels()) {
    append_channel_candidates(ch, q, node_base, raw);
  }

  dedup_candidates(raw);
  h.edges.reserve(raw.size());
  for (const HsdfEdgeCandidate& cand : raw) {
    h.edges.push_back(HsdfEdge{cand.src(), cand.dst(), cand.tokens});
  }
  return h;
}

std::string hsdf_to_dot(const Hsdf& h) {
  std::ostringstream os;
  os << "digraph hsdf {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < h.nodes.size(); ++i) {
    const HsdfNode& n = h.nodes[i];
    os << "  n" << i << " [label=\"a" << n.source_actor << "." << n.firing << "\\n("
       << n.exec_time << ")\"];\n";
  }
  for (const HsdfEdge& e : h.edges) {
    os << "  n" << e.src << " -> n" << e.dst;
    if (e.tokens > 0) os << " [label=\"" << e.tokens << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace procon::analysis
