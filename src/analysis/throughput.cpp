#include "analysis/throughput.h"

#include <algorithm>

#include "analysis/engine.h"

namespace procon::analysis {

PeriodResult compute_period(const sdf::Graph& g, std::span<const double> exec_times) {
  // One-shot use of the reusable engine: fresh and cached analyses share a
  // single code path, so ThroughputEngine::recompute is exactly equivalent.
  ThroughputEngine engine(g);
  return engine.recompute(exec_times);
}

BottleneckReport find_bottleneck(const sdf::Graph& g,
                                 std::span<const double> exec_times) {
  const sdf::Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  if (!q) throw sdf::GraphError("find_bottleneck: inconsistent graph");
  const Hsdf h = expand_to_hsdf(closed, *q, exec_times);
  const CriticalCycleResult cc = mcr_with_critical_cycle(h);
  BottleneckReport report;
  report.deadlocked = cc.mcr.deadlocked;
  report.period = cc.mcr.deadlocked ? 0.0 : cc.mcr.ratio;
  std::vector<bool> seen(g.actor_count(), false);
  for (const std::uint32_t node : cc.cycle) {
    const sdf::ActorId a = h.nodes[node].source_actor;
    if (!seen[a]) {
      seen[a] = true;
      report.actors.push_back(a);
    }
  }
  std::sort(report.actors.begin(), report.actors.end());
  return report;
}

util::Rational compute_period_exact(const sdf::Graph& g) {
  const sdf::Graph closed = g.with_self_loops();
  const StateSpaceResult r = self_timed_period(closed);
  if (r.deadlocked || !r.converged) {
    throw sdf::GraphError("compute_period_exact: graph deadlocks or did not converge");
  }
  return r.period;
}

}  // namespace procon::analysis
