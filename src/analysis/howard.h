// Howard's policy-iteration algorithm for the maximum cycle ratio.
//
// Dasdan's experimental study ([4], cited by the paper for MCM analysis)
// identifies Howard's algorithm as the fastest MCR solver in practice. It
// maintains a policy (one chosen out-edge per node), evaluates the ratio of
// the unique cycle each policy component contains, and greedily switches
// edges that improve the reachable ratio until a fixpoint.
//
// This engine is an order of magnitude faster than the Lawler parametric
// search on the expansions this library produces (see bench_micro) and is
// cross-validated against it on thousands of random graphs in the tests.
// mcr_binary_search remains the default reference implementation.
#pragma once

#include "analysis/mcr.h"

namespace procon::analysis {

/// Maximum cycle ratio via Howard's policy iteration. Semantics identical
/// to mcr_binary_search: detects deadlock (zero-token cycles) and acyclic
/// graphs the same way.
[[nodiscard]] McrResult mcr_howard(const Hsdf& h);

}  // namespace procon::analysis
