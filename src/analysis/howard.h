// Howard's policy-iteration algorithm for the maximum cycle ratio.
//
// Dasdan's experimental study ([4], cited by the paper for MCM analysis)
// identifies Howard's algorithm as the fastest MCR solver in practice. It
// maintains a policy (one chosen out-edge per node), evaluates the ratio of
// the unique cycle each policy component contains, and greedily switches
// edges that improve the reachable ratio until a fixpoint.
//
// The solver below keeps the graph in CSR form (offset/edge arrays instead
// of per-node vectors) and retains its policy and potentials between calls:
// when only the node weights change — the repeated-analysis pattern of the
// contention estimator, the DSE loops and admission control — re-solving
// warm-starts from the previous policy and typically converges in one or
// two improvement rounds instead of a full cold start. ThroughputEngine
// (analysis/engine.h) builds on exactly this property.
//
// This engine is an order of magnitude faster than the Lawler parametric
// search on the expansions this library produces (see bench_micro) and is
// cross-validated against it on thousands of random graphs in the tests.
// mcr_binary_search remains the default reference implementation.
#pragma once

#include "analysis/mcr.h"

namespace procon::analysis {

/// Reusable Howard solver over a fixed edge topology with mutable node
/// weights. Usage:
///   HowardSolver s;
///   s.build(h);                  // once per structure: CSR + DFS checks
///   if (s.has_cycle() && !s.deadlocked()) {
///     s.set_node_weights(w);     // per analysis: new execution times
///     double lambda = s.solve(); // warm-starts after the first call
///   }
class HowardSolver {
 public:
  /// Builds the CSR topology from `h` (edge weights are NOT taken from the
  /// HSDF here; call set_node_weights) and runs the one-time structural
  /// checks: cycle existence and zero-token (deadlock) cycles. Resets any
  /// previous policy.
  void build(const Hsdf& h);

  /// True if the graph contains at least one directed cycle.
  [[nodiscard]] bool has_cycle() const noexcept { return has_cycle_; }
  /// True if a zero-token cycle exists (period unbounded / deadlock).
  [[nodiscard]] bool deadlocked() const noexcept { return deadlocked_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Replaces the per-node weight (the execution time folded onto every
  /// outgoing edge). Size must equal node_count().
  void set_node_weights(std::span<const double> weights);

  /// Maximum cycle ratio under the current weights. Requires has_cycle() &&
  /// !deadlocked(). The first call cold-starts the policy; later calls
  /// warm-start from the previous policy and potentials.
  [[nodiscard]] double solve();

  /// Discards the warm-start state (the next solve() cold-starts).
  void reset() noexcept { warm_ = false; }

  /// Nodes of a critical cycle of the most recent solve(), in traversal
  /// order. The final policy's functional graph contains, reachable from
  /// any node of maximum ratio, exactly the cycle that enforces the MCR —
  /// so after a solve the critical cycle costs one policy walk, no extra
  /// parametric search. Throws std::logic_error if solve() has not run.
  [[nodiscard]] std::vector<std::uint32_t> critical_cycle() const;

 private:
  // --- fixed topology (CSR) ---
  std::size_t n_ = 0;
  std::vector<std::uint32_t> offset_;  // n_ + 1 entries; out-edges of v are
                                       // [offset_[v], offset_[v+1])
  std::vector<std::uint32_t> dst_;     // edge target node
  std::vector<double> tokens_;         // edge token count
  std::vector<std::uint8_t> alive_;    // node can reach a cycle
  bool has_cycle_ = false;
  bool deadlocked_ = false;

  // --- mutable weights ---
  std::vector<double> weight_;  // per node, folded onto its out-edges

  // --- persistent policy state (the warm start) ---
  bool warm_ = false;
  std::vector<std::int64_t> policy_;  // global edge index, -1 if no out-edge
  std::vector<double> ratio_;
  std::vector<double> dist_;

  // --- scratch reused across solves (avoids per-call allocation) ---
  std::vector<std::uint32_t> visit_mark_;
  std::vector<std::uint8_t> evaluated_;
  std::vector<std::uint32_t> path_;
  std::vector<std::uint32_t> cyc_;
};

/// Maximum cycle ratio via Howard's policy iteration. Semantics identical
/// to mcr_binary_search: detects deadlock (zero-token cycles) and acyclic
/// graphs the same way.
[[nodiscard]] McrResult mcr_howard(const Hsdf& h);

}  // namespace procon::analysis
