// SDF -> HSDF (homogeneous SDF) expansion.
//
// Each actor a is replaced by q[a] vertices (one per firing in an
// iteration); each channel induces precedence edges between producing and
// consuming firings, annotated with an iteration distance ("tokens" in the
// homogeneous graph). This is the classical unfolding of Sriram &
// Bhattacharyya used by the throughput analyses the paper builds on ([2],
// [4], [14]).
//
// The expansion here keeps, for every (producer firing, consumer firing)
// pair, only the edge with the minimum iteration distance - the binding
// constraint - so the result has at most q[src]*q[dst] edges per channel.
//
// Execution times are carried as doubles because the contention estimator
// annotates actors with fractional expected response times.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace procon::analysis {

/// One firing of a source actor within an iteration.
struct HsdfNode {
  sdf::ActorId source_actor = sdf::kInvalidActor;
  std::uint32_t firing = 0;  ///< 0-based firing index within the iteration
  double exec_time = 0.0;
};

/// Precedence edge: dst's firing in iteration n depends on src's firing in
/// iteration n - tokens.
struct HsdfEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t tokens = 0;
};

/// A homogeneous SDF graph (all rates 1).
struct Hsdf {
  std::vector<HsdfNode> nodes;
  std::vector<HsdfEdge> edges;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges.size(); }
};

/// Expands `g` (with repetition vector `q`) into an HSDF. If `exec_times`
/// is non-empty it overrides the graph's integral actor times (one entry
/// per actor); otherwise the graph's own times are used.
///
/// Throws sdf::GraphError if q does not match the graph.
[[nodiscard]] Hsdf expand_to_hsdf(const sdf::Graph& g, const sdf::RepetitionVector& q,
                                  std::span<const double> exec_times = {});

/// One candidate precedence edge of the expansion, before the global
/// minimum-distance deduplication. `key` packs (src node << 32 | dst node)
/// so sorting and deduplicating are single-word compares.
struct HsdfEdgeCandidate {
  std::uint64_t key;
  std::uint64_t tokens;

  [[nodiscard]] std::uint32_t src() const noexcept {
    return static_cast<std::uint32_t>(key >> 32);
  }
  [[nodiscard]] std::uint32_t dst() const noexcept {
    return static_cast<std::uint32_t>(key);
  }
};

/// Appends the candidate edges of one channel to `out`. `node_base[a]` is
/// the HSDF node index of actor a's first firing (as laid out by
/// expand_to_hsdf: actors in id order, q[a] consecutive firings each).
///
/// Channels are independent in the expansion, so callers that re-expand a
/// single mutated channel (the incremental buffer explorer: a capacity bump
/// only changes one reverse channel's initial tokens) regenerate just that
/// channel's candidates and re-merge, instead of re-expanding the graph.
void append_channel_candidates(const sdf::Channel& ch, const sdf::RepetitionVector& q,
                               std::span<const std::uint32_t> node_base,
                               std::vector<HsdfEdgeCandidate>& out);

/// Sorts candidates by (key, tokens) and drops all but the minimum-distance
/// edge per (src, dst) pair — the binding constraint. The result is exactly
/// the edge set expand_to_hsdf produces from the same candidate multiset.
void dedup_candidates(std::vector<HsdfEdgeCandidate>& candidates);

/// Graphviz DOT rendering of an HSDF (debug aid).
[[nodiscard]] std::string hsdf_to_dot(const Hsdf& h);

}  // namespace procon::analysis
