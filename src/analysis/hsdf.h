// SDF -> HSDF (homogeneous SDF) expansion.
//
// Each actor a is replaced by q[a] vertices (one per firing in an
// iteration); each channel induces precedence edges between producing and
// consuming firings, annotated with an iteration distance ("tokens" in the
// homogeneous graph). This is the classical unfolding of Sriram &
// Bhattacharyya used by the throughput analyses the paper builds on ([2],
// [4], [14]).
//
// The expansion here keeps, for every (producer firing, consumer firing)
// pair, only the edge with the minimum iteration distance - the binding
// constraint - so the result has at most q[src]*q[dst] edges per channel.
//
// Execution times are carried as doubles because the contention estimator
// annotates actors with fractional expected response times.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace procon::analysis {

/// One firing of a source actor within an iteration.
struct HsdfNode {
  sdf::ActorId source_actor = sdf::kInvalidActor;
  std::uint32_t firing = 0;  ///< 0-based firing index within the iteration
  double exec_time = 0.0;
};

/// Precedence edge: dst's firing in iteration n depends on src's firing in
/// iteration n - tokens.
struct HsdfEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t tokens = 0;
};

/// A homogeneous SDF graph (all rates 1).
struct Hsdf {
  std::vector<HsdfNode> nodes;
  std::vector<HsdfEdge> edges;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges.size(); }
};

/// Expands `g` (with repetition vector `q`) into an HSDF. If `exec_times`
/// is non-empty it overrides the graph's integral actor times (one entry
/// per actor); otherwise the graph's own times are used.
///
/// Throws sdf::GraphError if q does not match the graph.
[[nodiscard]] Hsdf expand_to_hsdf(const sdf::Graph& g, const sdf::RepetitionVector& q,
                                  std::span<const double> exec_times = {});

/// Graphviz DOT rendering of an HSDF (debug aid).
[[nodiscard]] std::string hsdf_to_dot(const Hsdf& h);

}  // namespace procon::analysis
