// Exact throughput via self-timed state-space execution.
//
// Executes the SDFG under self-timed semantics (every actor fires as soon
// as its input tokens are available; dedicated resource per actor; no
// auto-concurrency) and detects the recurrent state, following Ghamarian et
// al., "Throughput Analysis of Synchronous Data Flow Graphs" (ACSD 2006) -
// reference [5] of the paper. Because execution times are integers the
// period is an exact rational: (cycle duration) / (iterations per cycle).
//
// This engine requires integral execution times; the MCR engine handles the
// real-valued response-time graphs produced by the contention estimator.
// Both must agree on integer graphs - a property exercised by the tests.
#pragma once

#include <cstdint>
#include <optional>

#include "sdf/graph.h"
#include "sdf/repetition.h"
#include "util/rational.h"

namespace procon::analysis {

struct StateSpaceOptions {
  /// Safety cap on executed firings before giving up (0 = default).
  std::uint64_t max_firings = 0;
};

struct StateSpaceResult {
  bool deadlocked = false;
  bool converged = false;          ///< recurrent state found within the cap
  util::Rational period{0};        ///< time units per graph iteration
  sdf::Time transient_end = 0;     ///< time at which the periodic phase began
  std::uint64_t iterations_in_cycle = 0;
  sdf::Time cycle_duration = 0;
};

/// Runs self-timed execution of `g` until the state recurs. The graph must
/// be consistent; inconsistent graphs yield deadlocked=true, converged=false.
[[nodiscard]] StateSpaceResult self_timed_period(const sdf::Graph& g,
                                                 const StateSpaceOptions& opts = {});

}  // namespace procon::analysis
