// Single-iteration latency analysis.
//
// Besides throughput, the SDF literature the paper builds on analyses
// latency ([16]): the time one iteration takes end-to-end. Under
// self-timed execution with all inputs available, the iteration latency is
// the longest (execution-time-weighted) path through the intra-iteration
// precedence DAG - the HSDF expansion restricted to zero-token edges.
//
// Latency and period differ exactly when the graph pipelines: a graph with
// period 10 may still take 100 time units from an iteration's first firing
// to its last.
#pragma once

#include <span>
#include <vector>

#include "analysis/hsdf.h"
#include "sdf/graph.h"

namespace procon::analysis {

struct LatencyResult {
  /// Longest weighted path through one iteration (time units).
  double latency = 0.0;
  /// HSDF nodes on the critical path, in execution order.
  std::vector<std::uint32_t> path;
};

/// Longest path over the zero-token edges of an HSDF (a DAG for any
/// deadlock-free expansion). Throws sdf::GraphError if the zero-token
/// subgraph contains a cycle (the graph deadlocks).
[[nodiscard]] LatencyResult iteration_latency(const Hsdf& h);

/// Convenience: expands `g` (with optional execution-time overrides, no
/// auto-concurrency) and reports the latency plus the actors on the
/// critical path (deduplicated, in path order).
struct GraphLatencyResult {
  double latency = 0.0;
  std::vector<sdf::ActorId> critical_actors;
};
[[nodiscard]] GraphLatencyResult compute_latency(const sdf::Graph& g,
                                                 std::span<const double> exec_times = {});

}  // namespace procon::analysis
