#include "analysis/engine.h"

#include "analysis/hsdf.h"

namespace procon::analysis {

ThroughputEngine::ThroughputEngine(const sdf::Graph& g, const EngineOptions& opts) {
  actor_count_ = g.actor_count();

  const sdf::Graph* closed = &g;
  sdf::Graph closed_storage;
  if (!opts.assume_closed) {
    closed_storage = g.with_self_loops();
    closed = &closed_storage;
  }

  if (opts.repetition != nullptr) {
    if (opts.repetition->size() != closed->actor_count()) {
      throw sdf::GraphError("ThroughputEngine: repetition vector size mismatch");
    }
    // Enforce the documented contract: the supplied vector must actually
    // solve the balance equations, or the expansion would be silently wrong.
    for (const std::uint64_t qa : *opts.repetition) {
      if (qa == 0) {
        throw sdf::GraphError("ThroughputEngine: repetition vector has zero entry");
      }
    }
    for (const sdf::Channel& ch : closed->channels()) {
      if ((*opts.repetition)[ch.src] * ch.prod_rate !=
          (*opts.repetition)[ch.dst] * ch.cons_rate) {
        throw sdf::GraphError(
            "ThroughputEngine: repetition vector violates balance equations");
      }
    }
    q_ = *opts.repetition;
  } else {
    auto q = sdf::compute_repetition_vector(*closed);
    if (!q) throw sdf::GraphError("ThroughputEngine: inconsistent graph");
    q_ = std::move(*q);
  }

  const Hsdf h = expand_to_hsdf(*closed, q_);
  node_actor_.reserve(h.node_count());
  for (const HsdfNode& node : h.nodes) node_actor_.push_back(node.source_actor);

  default_times_.reserve(actor_count_);
  for (sdf::ActorId a = 0; a < actor_count_; ++a) {
    default_times_.push_back(static_cast<double>(g.actor(a).exec_time));
  }
  node_weight_.resize(h.node_count());

  solver_.build(h);
}

PeriodResult ThroughputEngine::recompute(std::span<const double> exec_times) {
  if (!exec_times.empty() && exec_times.size() != actor_count_) {
    throw sdf::GraphError("ThroughputEngine::recompute: exec_times size mismatch");
  }
  PeriodResult out;
  if (solver_.deadlocked()) {
    out.deadlocked = true;
    return out;
  }
  if (!solver_.has_cycle()) return out;  // acyclic expansion: period 0

  const std::span<const double> times =
      exec_times.empty() ? std::span<const double>(default_times_) : exec_times;
  for (std::size_t v = 0; v < node_weight_.size(); ++v) {
    node_weight_[v] = times[node_actor_[v]];
  }
  solver_.set_node_weights(node_weight_);
  out.period = solver_.solve();
  return out;
}

}  // namespace procon::analysis
