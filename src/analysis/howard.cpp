#include "analysis/howard.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace procon::analysis {
namespace {

constexpr double kEps = 1e-9;

struct Edge {
  std::uint32_t src, dst;
  double weight;
  double tokens;
};

}  // namespace

McrResult mcr_howard(const Hsdf& h) {
  McrResult result;
  const std::size_t n = h.node_count();
  if (n == 0) return result;

  // Build adjacency; node weight folded onto outgoing edges.
  std::vector<std::vector<Edge>> out(n);
  bool any_edge = false;
  for (const HsdfEdge& e : h.edges) {
    out[e.src].push_back(Edge{e.src, e.dst, h.nodes[e.src].exec_time,
                              static_cast<double>(e.tokens)});
    any_edge = true;
  }
  if (!any_edge) return result;

  // Reuse the reference engine's structural checks for cycles/deadlock by
  // delegating the cheap DFS parts: a zero-token cycle means deadlock; no
  // cycle at all means an acyclic expansion.
  {
    // Zero-token cycle detection (iterative colouring DFS).
    enum : std::uint8_t { White, Grey, Black };
    auto dfs_has_cycle = [&](bool zero_only) {
      std::vector<std::uint8_t> colour(n, White);
      std::vector<std::pair<std::uint32_t, std::size_t>> stack;
      for (std::uint32_t root = 0; root < n; ++root) {
        if (colour[root] != White) continue;
        stack.emplace_back(root, 0);
        colour[root] = Grey;
        while (!stack.empty()) {
          auto& [v, pos] = stack.back();
          if (pos < out[v].size()) {
            const Edge& e = out[v][pos++];
            if (zero_only && e.tokens != 0.0) continue;
            if (colour[e.dst] == Grey) return true;
            if (colour[e.dst] == White) {
              colour[e.dst] = Grey;
              stack.emplace_back(e.dst, 0);
            }
          } else {
            colour[v] = Black;
            stack.pop_back();
          }
        }
      }
      return false;
    };
    if (!dfs_has_cycle(false)) return result;
    result.has_cycle = true;
    if (dfs_has_cycle(true)) {
      result.deadlocked = true;
      return result;
    }
  }

  // Policy: chosen out-edge index per node. A node with no out-edge can
  // never lie on a cycle; it adopts ratio -inf and is skipped.
  constexpr double kNegInf = -1e300;
  std::vector<int> policy(n, -1);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!out[v].empty()) policy[v] = 0;
  }

  std::vector<double> ratio(n, kNegInf);  // cycle ratio reachable via policy
  std::vector<double> dist(n, 0.0);       // relative potential

  const std::size_t max_rounds = 2 * n + 64;  // generous safety cap
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // --- policy evaluation -------------------------------------------------
    // Follow the policy's functional graph; every walk ends in a cycle.
    std::vector<std::uint32_t> visit_mark(n, UINT32_MAX);
    std::vector<std::uint8_t> evaluated(n, 0);
    std::fill(ratio.begin(), ratio.end(), kNegInf);
    std::fill(dist.begin(), dist.end(), 0.0);

    for (std::uint32_t start = 0; start < n; ++start) {
      if (evaluated[start] || policy[start] < 0) continue;
      // Walk until we hit an evaluated node or revisit this walk.
      std::vector<std::uint32_t> path;
      std::uint32_t v = start;
      while (v != UINT32_MAX && !evaluated[v] && visit_mark[v] != start &&
             policy[v] >= 0) {
        visit_mark[v] = start;
        path.push_back(v);
        v = out[v][static_cast<std::size_t>(policy[v])].dst;
      }
      if (v != UINT32_MAX && policy[v] >= 0 && !evaluated[v] &&
          visit_mark[v] == start) {
        // Found a fresh cycle starting at v: compute its ratio.
        double w_sum = 0.0, t_sum = 0.0;
        std::uint32_t u = v;
        do {
          const Edge& e = out[u][static_cast<std::size_t>(policy[u])];
          w_sum += e.weight;
          t_sum += e.tokens;
          u = e.dst;
        } while (u != v);
        const double lambda = t_sum > 0.0 ? w_sum / t_sum : kNegInf;
        // Assign ratio and potentials around the cycle: fix dist(v) = 0 and
        // propagate backwards along the cycle direction.
        ratio[v] = lambda;
        dist[v] = 0.0;
        evaluated[v] = 1;
        // Walk the cycle once more, computing dist for each node from its
        // successor: dist(u) = w - lambda * t + dist(next).
        // Collect cycle nodes in order first.
        std::vector<std::uint32_t> cyc;
        u = v;
        do {
          cyc.push_back(u);
          u = out[u][static_cast<std::size_t>(policy[u])].dst;
        } while (u != v);
        for (std::size_t i = cyc.size(); i-- > 1;) {
          const std::uint32_t node = cyc[i];
          const Edge& e = out[node][static_cast<std::size_t>(policy[node])];
          ratio[node] = lambda;
          dist[node] = e.weight - lambda * e.tokens + dist[e.dst];
          evaluated[node] = 1;
        }
      }
      // Unwind the path (tail nodes draining into the evaluated region).
      for (std::size_t i = path.size(); i-- > 0;) {
        const std::uint32_t node = path[i];
        if (evaluated[node]) continue;
        const Edge& e = out[node][static_cast<std::size_t>(policy[node])];
        ratio[node] = ratio[e.dst];
        dist[node] = e.weight - ratio[node] * e.tokens + dist[e.dst];
        evaluated[node] = 1;
      }
    }

    // --- policy improvement ------------------------------------------------
    bool changed = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::size_t k = 0; k < out[v].size(); ++k) {
        const Edge& e = out[v][k];
        if (policy[v] == static_cast<int>(k)) continue;
        if (ratio[e.dst] == kNegInf) continue;
        // First criterion: a strictly better cycle becomes reachable.
        if (ratio[e.dst] > ratio[v] + kEps) {
          policy[v] = static_cast<int>(k);
          changed = true;
          continue;
        }
        // Second criterion: same ratio, strictly better potential.
        if (std::abs(ratio[e.dst] - ratio[v]) <= kEps) {
          const double cand = e.weight - ratio[v] * e.tokens + dist[e.dst];
          if (cand > dist[v] + kEps * std::max(1.0, std::abs(dist[v]))) {
            policy[v] = static_cast<int>(k);
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  double best = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (ratio[v] != kNegInf) best = std::max(best, ratio[v]);
  }
  result.ratio = best;
  return result;
}

}  // namespace procon::analysis

namespace procon::analysis {

McrResult maximum_cycle_ratio(const Hsdf& h) { return mcr_howard(h); }

}  // namespace procon::analysis
