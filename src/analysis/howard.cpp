#include "analysis/howard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace procon::analysis {
namespace {

constexpr double kEps = 1e-9;
constexpr double kNegInf = -1e300;

}  // namespace

void HowardSolver::build(const Hsdf& h) {
  n_ = h.node_count();
  has_cycle_ = false;
  deadlocked_ = false;
  warm_ = false;

  // Counting sort of edges by source into CSR arrays.
  offset_.assign(n_ + 1, 0);
  for (const HsdfEdge& e : h.edges) ++offset_[e.src + 1];
  for (std::size_t v = 0; v < n_; ++v) offset_[v + 1] += offset_[v];
  dst_.resize(h.edges.size());
  tokens_.resize(h.edges.size());
  {
    std::vector<std::uint32_t> cursor(offset_.begin(), offset_.end() - 1);
    for (const HsdfEdge& e : h.edges) {
      const std::uint32_t slot = cursor[e.src]++;
      dst_[slot] = e.dst;
      tokens_[slot] = static_cast<double>(e.tokens);
    }
  }

  weight_.assign(n_, 0.0);
  for (std::size_t v = 0; v < n_; ++v) weight_[v] = h.nodes[v].exec_time;

  alive_.assign(n_, 1);
  if (dst_.empty()) {
    std::fill(alive_.begin(), alive_.end(), std::uint8_t{0});
    return;
  }

  // Trim nodes that cannot reach a cycle (iteratively peel nodes whose
  // every out-edge leads to an already-dead node). Policy walks are then
  // guaranteed to end in a cycle: without this, a walk draining into a sink
  // leaves its tail at ratio -inf, the improvement step skips edges into
  // that tail, and a real cycle behind it is never discovered.
  {
    std::vector<std::uint32_t> live_out(n_);
    for (std::uint32_t v = 0; v < n_; ++v) {
      live_out[v] = offset_[v + 1] - offset_[v];
    }
    std::vector<std::uint32_t> roffset(n_ + 1, 0);
    std::vector<std::uint32_t> rsrc(dst_.size());
    for (const std::uint32_t d : dst_) ++roffset[d + 1];
    for (std::size_t v = 0; v < n_; ++v) roffset[v + 1] += roffset[v];
    {
      std::vector<std::uint32_t> cursor(roffset.begin(), roffset.end() - 1);
      for (std::uint32_t v = 0; v < n_; ++v) {
        for (std::uint32_t e = offset_[v]; e < offset_[v + 1]; ++e) {
          rsrc[cursor[dst_[e]]++] = v;
        }
      }
    }
    std::vector<std::uint32_t> stack;
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (live_out[v] == 0) stack.push_back(v);
    }
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      alive_[u] = 0;
      for (std::uint32_t r = roffset[u]; r < roffset[u + 1]; ++r) {
        const std::uint32_t w = rsrc[r];
        if (alive_[w] && --live_out[w] == 0) stack.push_back(w);
      }
    }
  }

  // One-time structural checks: any cycle at all, then zero-token cycles
  // (deadlock). Iterative colouring DFS over the CSR arrays.
  enum : std::uint8_t { White, Grey, Black };
  auto dfs_has_cycle = [&](bool zero_only) {
    std::vector<std::uint8_t> colour(n_, White);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
    for (std::uint32_t root = 0; root < n_; ++root) {
      if (colour[root] != White) continue;
      stack.emplace_back(root, offset_[root]);
      colour[root] = Grey;
      while (!stack.empty()) {
        auto& [v, pos] = stack.back();
        if (pos < offset_[v + 1]) {
          const std::uint32_t e = pos++;
          if (zero_only && tokens_[e] != 0.0) continue;
          const std::uint32_t w = dst_[e];
          if (colour[w] == Grey) return true;
          if (colour[w] == White) {
            colour[w] = Grey;
            stack.emplace_back(w, offset_[w]);
          }
        } else {
          colour[v] = Black;
          stack.pop_back();
        }
      }
    }
    return false;
  };
  has_cycle_ = dfs_has_cycle(false);
  if (has_cycle_) deadlocked_ = dfs_has_cycle(true);
}

void HowardSolver::set_node_weights(std::span<const double> weights) {
  if (weights.size() != n_) {
    throw std::invalid_argument("HowardSolver: node weight size mismatch");
  }
  std::copy(weights.begin(), weights.end(), weight_.begin());
}

double HowardSolver::solve() {
  if (!has_cycle_ || deadlocked_) {
    throw std::logic_error("HowardSolver::solve: no finite cycle ratio exists");
  }

  if (!warm_) {
    // Cold start: first cycle-reaching out-edge per node. Trimmed nodes
    // (no path to any cycle) keep policy -1 and adopt ratio -inf.
    policy_.assign(n_, -1);
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (!alive_[v]) continue;
      for (std::uint32_t e = offset_[v]; e < offset_[v + 1]; ++e) {
        if (alive_[dst_[e]]) {
          policy_[v] = e;
          break;
        }
      }
    }
    ratio_.assign(n_, kNegInf);
    dist_.assign(n_, 0.0);
    warm_ = true;
  }

  visit_mark_.assign(n_, UINT32_MAX);
  evaluated_.assign(n_, 0);

  const std::size_t max_rounds = 2 * n_ + 64;  // generous safety cap
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // --- policy evaluation -------------------------------------------------
    // Follow the policy's functional graph; every walk ends in a cycle.
    std::fill(visit_mark_.begin(), visit_mark_.end(), UINT32_MAX);
    std::fill(evaluated_.begin(), evaluated_.end(), 0);
    std::fill(ratio_.begin(), ratio_.end(), kNegInf);
    std::fill(dist_.begin(), dist_.end(), 0.0);

    for (std::uint32_t start = 0; start < n_; ++start) {
      if (evaluated_[start] || policy_[start] < 0) continue;
      // Walk until we hit an evaluated node or revisit this walk.
      path_.clear();
      std::uint32_t v = start;
      while (!evaluated_[v] && visit_mark_[v] != start && policy_[v] >= 0) {
        visit_mark_[v] = start;
        path_.push_back(v);
        v = dst_[static_cast<std::size_t>(policy_[v])];
      }
      if (policy_[v] >= 0 && !evaluated_[v] && visit_mark_[v] == start) {
        // Found a fresh cycle starting at v: compute its ratio and collect
        // the cycle nodes in traversal order.
        double w_sum = 0.0, t_sum = 0.0;
        cyc_.clear();
        std::uint32_t u = v;
        do {
          const auto e = static_cast<std::size_t>(policy_[u]);
          cyc_.push_back(u);
          w_sum += weight_[u];
          t_sum += tokens_[e];
          u = dst_[e];
        } while (u != v);
        const double lambda = t_sum > 0.0 ? w_sum / t_sum : kNegInf;
        // Fix dist(v) = 0 and propagate backwards along the cycle:
        // dist(u) = w - lambda * t + dist(next).
        ratio_[v] = lambda;
        dist_[v] = 0.0;
        evaluated_[v] = 1;
        for (std::size_t i = cyc_.size(); i-- > 1;) {
          const std::uint32_t node = cyc_[i];
          const auto e = static_cast<std::size_t>(policy_[node]);
          ratio_[node] = lambda;
          dist_[node] = weight_[node] - lambda * tokens_[e] + dist_[dst_[e]];
          evaluated_[node] = 1;
        }
      }
      // Unwind the path (tail nodes draining into the evaluated region).
      for (std::size_t i = path_.size(); i-- > 0;) {
        const std::uint32_t node = path_[i];
        if (evaluated_[node]) continue;
        const auto e = static_cast<std::size_t>(policy_[node]);
        ratio_[node] = ratio_[dst_[e]];
        dist_[node] = weight_[node] - ratio_[node] * tokens_[e] + dist_[dst_[e]];
        evaluated_[node] = 1;
      }
    }

    // --- policy improvement ------------------------------------------------
    bool changed = false;
    for (std::uint32_t v = 0; v < n_; ++v) {
      for (std::uint32_t e = offset_[v]; e < offset_[v + 1]; ++e) {
        if (policy_[v] == static_cast<std::int64_t>(e)) continue;
        const std::uint32_t d = dst_[e];
        if (!alive_[d] || ratio_[d] == kNegInf) continue;
        // First criterion: a strictly better cycle becomes reachable.
        if (ratio_[d] > ratio_[v] + kEps) {
          policy_[v] = e;
          changed = true;
          continue;
        }
        // Second criterion: same ratio, strictly better potential.
        if (std::abs(ratio_[d] - ratio_[v]) <= kEps) {
          const double cand = weight_[v] - ratio_[v] * tokens_[e] + dist_[d];
          if (cand > dist_[v] + kEps * std::max(1.0, std::abs(dist_[v]))) {
            policy_[v] = e;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  double best = 0.0;
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (ratio_[v] != kNegInf) best = std::max(best, ratio_[v]);
  }
  return best;
}

std::vector<std::uint32_t> HowardSolver::critical_cycle() const {
  if (!warm_) {
    throw std::logic_error("HowardSolver::critical_cycle: no solve() yet");
  }
  // Start from the smallest-index node of maximum ratio (deterministic for
  // a given final policy) and follow the policy; the walk must close into
  // the component's cycle, whose ratio equals the maximum.
  std::uint32_t start = UINT32_MAX;
  double best = kNegInf;
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (policy_[v] >= 0 && ratio_[v] > best) {
      best = ratio_[v];
      start = v;
    }
  }
  if (start == UINT32_MAX) return {};

  std::vector<std::uint32_t> order(n_, UINT32_MAX);  // position in the walk
  std::vector<std::uint32_t> walk;
  std::uint32_t v = start;
  while (order[v] == UINT32_MAX && policy_[v] >= 0) {
    order[v] = static_cast<std::uint32_t>(walk.size());
    walk.push_back(v);
    v = dst_[static_cast<std::size_t>(policy_[v])];
  }
  if (order[v] == UINT32_MAX) return {};  // walk drained (trimmed region)
  return std::vector<std::uint32_t>(walk.begin() + order[v], walk.end());
}

CriticalCycleResult mcr_with_critical_cycle(const Hsdf& h, const McrOptions&) {
  CriticalCycleResult result;
  if (h.node_count() == 0 || h.edges.empty()) return result;

  HowardSolver solver;
  solver.build(h);
  if (!solver.has_cycle()) return result;
  result.mcr.has_cycle = true;
  if (solver.deadlocked()) {
    result.mcr.deadlocked = true;
    return result;
  }
  result.mcr.ratio = solver.solve();
  result.cycle = solver.critical_cycle();
  return result;
}

McrResult mcr_howard(const Hsdf& h) {
  McrResult result;
  if (h.node_count() == 0 || h.edges.empty()) return result;

  HowardSolver solver;
  solver.build(h);
  if (!solver.has_cycle()) return result;
  result.has_cycle = true;
  if (solver.deadlocked()) {
    result.deadlocked = true;
    return result;
  }
  result.ratio = solver.solve();
  return result;
}

McrResult maximum_cycle_ratio(const Hsdf& h) { return mcr_howard(h); }

}  // namespace procon::analysis
