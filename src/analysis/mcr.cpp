#include "analysis/mcr.h"

#include <algorithm>
#include <stdexcept>

namespace procon::analysis {
namespace {

struct EdgeView {
  std::uint32_t src, dst;
  double weight;     // execution time of src node
  double tokens;     // iteration distance
};

std::vector<EdgeView> make_edges(const Hsdf& h) {
  std::vector<EdgeView> edges;
  edges.reserve(h.edges.size());
  for (const HsdfEdge& e : h.edges) {
    edges.push_back(EdgeView{e.src, e.dst, h.nodes[e.src].exec_time,
                             static_cast<double>(e.tokens)});
  }
  return edges;
}

/// True if the directed graph restricted to `edges` contains a cycle.
bool has_cycle(std::size_t n, const std::vector<EdgeView>& edges,
               bool zero_token_only) {
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const EdgeView& e : edges) {
    if (zero_token_only && e.tokens != 0.0) continue;
    adj[e.src].push_back(e.dst);
  }
  // Iterative colouring DFS.
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> colour(n, White);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (colour[root] != White) continue;
    stack.emplace_back(root, 0);
    colour[root] = Grey;
    while (!stack.empty()) {
      auto& [v, pos] = stack.back();
      if (pos < adj[v].size()) {
        const std::uint32_t w = adj[v][pos++];
        if (colour[w] == Grey) return true;
        if (colour[w] == White) {
          colour[w] = Grey;
          stack.emplace_back(w, 0);
        }
      } else {
        colour[v] = Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

/// Bellman-Ford style check: does a cycle with positive total
/// (weight - lambda * tokens) exist?
bool positive_cycle_exists(std::size_t n, const std::vector<EdgeView>& edges,
                           double lambda) {
  // Longest-path relaxation from an implicit super-source (dist 0 at all
  // nodes); any further relaxation after n rounds implies a positive cycle.
  std::vector<double> dist(n, 0.0);
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const EdgeView& e : edges) {
      const double cand = dist[e.src] + e.weight - lambda * e.tokens;
      if (cand > dist[e.dst] + 1e-15) {
        dist[e.dst] = cand;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace

McrResult mcr_binary_search(const Hsdf& h, const McrOptions& opts) {
  McrResult result;
  const std::size_t n = h.node_count();
  if (n == 0) return result;
  const std::vector<EdgeView> edges = make_edges(h);

  if (!has_cycle(n, edges, /*zero_token_only=*/false)) {
    return result;  // acyclic: has_cycle stays false
  }
  result.has_cycle = true;

  if (has_cycle(n, edges, /*zero_token_only=*/true)) {
    result.deadlocked = true;
    return result;
  }

  double lo = 0.0;
  double hi = 1.0;
  for (const HsdfNode& node : h.nodes) hi += std::max(node.exec_time, 0.0);
  // All cycles have token sum >= 1, so ratio <= total node weight < hi.

  if (!positive_cycle_exists(n, edges, 0.0)) {
    // All cycle weights are <= 0 (e.g. all-zero execution times).
    result.ratio = 0.0;
    return result;
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (positive_cycle_exists(n, edges, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= opts.relative_tolerance * std::max(1.0, hi)) break;
  }
  result.ratio = 0.5 * (lo + hi);
  return result;
}

CriticalCycleResult mcr_with_critical_cycle_lawler(const Hsdf& h,
                                                   const McrOptions& opts) {
  CriticalCycleResult result;
  result.mcr = mcr_binary_search(h, opts);
  if (!result.mcr.has_cycle || result.mcr.deadlocked) return result;

  const std::size_t n = h.node_count();
  const std::vector<EdgeView> edges = make_edges(h);
  // Slightly below lambda* every critical cycle has (numerically) positive
  // reduced weight; Bellman-Ford with predecessor tracking exposes one.
  const double lambda =
      result.mcr.ratio - 1e-7 * std::max(1.0, result.mcr.ratio) - 1e-12;
  std::vector<double> dist(n, 0.0);
  std::vector<std::uint32_t> pred(n, UINT32_MAX);
  std::uint32_t touched = UINT32_MAX;
  for (std::size_t round = 0; round <= n; ++round) {
    touched = UINT32_MAX;
    for (const EdgeView& e : edges) {
      const double cand = dist[e.src] + e.weight - lambda * e.tokens;
      if (cand > dist[e.dst] + 1e-12) {
        dist[e.dst] = cand;
        pred[e.dst] = e.src;
        touched = e.dst;
      }
    }
    if (touched == UINT32_MAX) break;
  }
  if (touched == UINT32_MAX) return result;  // numerically flat: no cycle found

  // Walk predecessors n steps to guarantee landing on the cycle, then
  // extract it.
  std::uint32_t v = touched;
  for (std::size_t i = 0; i < n; ++i) v = pred[v];
  std::vector<bool> on(n, false);
  std::vector<std::uint32_t> walk;
  std::uint32_t w = v;
  while (!on[w]) {
    on[w] = true;
    walk.push_back(w);
    w = pred[w];
  }
  // `walk` lists the cycle in predecessor (backward) order starting at the
  // repeated node w; edges run walk[i+1] -> walk[i], so the forward cycle
  // is the w-suffix of the walk, reversed.
  const auto pos = std::find(walk.begin(), walk.end(), w);
  std::vector<std::uint32_t> cycle(pos, walk.end());
  std::reverse(cycle.begin(), cycle.end());
  result.cycle = std::move(cycle);
  return result;
}

McrResult mcr_enumerate(const Hsdf& h, std::size_t max_nodes) {
  if (h.node_count() > max_nodes) {
    throw std::invalid_argument("mcr_enumerate: graph too large for enumeration");
  }
  McrResult result;
  const std::size_t n = h.node_count();
  if (n == 0) return result;

  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> adj(n);
  for (const HsdfEdge& e : h.edges) adj[e.src].emplace_back(e.dst, e.tokens);

  std::vector<bool> on_path(n, false);
  double best = -1.0;
  bool any_cycle = false;
  bool deadlock = false;

  // DFS rooted at `start`, visiting only nodes >= start so each simple cycle
  // is found exactly once (at its minimum node).
  struct StackFrame {
    std::uint32_t node;
    std::size_t next_edge;
    double weight_sum;     // node weights along the path including `node`
    std::uint64_t tokens;  // edge tokens along the path into `node`
  };
  for (std::uint32_t start = 0; start < n; ++start) {
    std::vector<StackFrame> stack;
    stack.push_back({start, 0, h.nodes[start].exec_time, 0});
    on_path[start] = true;
    while (!stack.empty()) {
      StackFrame& f = stack.back();
      if (f.next_edge < adj[f.node].size()) {
        const auto [to, tok] = adj[f.node][f.next_edge++];
        if (to == start) {
          any_cycle = true;
          const std::uint64_t cycle_tokens = f.tokens + tok;
          if (cycle_tokens == 0) {
            deadlock = true;
          } else {
            best = std::max(best, f.weight_sum / static_cast<double>(cycle_tokens));
          }
        } else if (to > start && !on_path[to]) {
          on_path[to] = true;
          stack.push_back({to, 0, f.weight_sum + h.nodes[to].exec_time,
                           f.tokens + tok});
        }
      } else {
        on_path[f.node] = false;
        stack.pop_back();
      }
    }
  }

  result.has_cycle = any_cycle;
  result.deadlocked = deadlock;
  if (any_cycle && !deadlock) result.ratio = std::max(best, 0.0);
  return result;
}

}  // namespace procon::analysis
