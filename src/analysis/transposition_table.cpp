#include "analysis/transposition_table.h"

#include <algorithm>

#include "util/contracts.h"

namespace procon::analysis {

namespace {

// Two independent 64-bit mixers (splitmix64 and a murmur3-style finaliser
// with different multipliers) drive the primary-hash and verify-tag
// chains, so a collision in one half says nothing about the other.
constexpr std::uint64_t mix_a(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix_b(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  return x ^ (x >> 33);
}

constexpr std::size_t floor_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

constexpr std::size_t ceil_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace

TTKeyBuilder::TTKeyBuilder(std::uint64_t fingerprint, TTQuery kind) noexcept
    : h_(mix_a(fingerprint ^ (static_cast<std::uint64_t>(kind) << 56))),
      v_(mix_b(fingerprint + static_cast<std::uint64_t>(kind))) {}

void TTKeyBuilder::absorb(std::uint64_t x) noexcept {
  h_ = mix_a(h_ ^ x);
  v_ = mix_b(v_ + x);
}

TranspositionTable::TranspositionTable(std::size_t capacity, std::size_t shards) {
  const std::size_t shard_count =
      std::max<std::size_t>(1, floor_pow2(std::max<std::size_t>(1, shards)));
  // Every shard gets the same power-of-two bucket count covering at least
  // the requested capacity in total.
  const std::size_t want_buckets = std::max<std::size_t>(
      1, (std::max<std::size_t>(capacity, 1) + shard_count * kWays - 1) /
             (shard_count * kWays));
  const std::size_t buckets = ceil_pow2(want_buckets);

  shards_ = std::vector<Shard>(shard_count);
  for (Shard& s : shards_) s.entries.resize(buckets * kWays);
  shard_mask_ = shard_count - 1;
  shard_bits_ = 0;
  for (std::size_t c = shard_count; c > 1; c /= 2) ++shard_bits_;
  bucket_mask_ = buckets - 1;
}

std::size_t TranspositionTable::capacity() const noexcept {
  return shards_.empty() ? 0 : shards_.size() * shards_.front().entries.size();
}

PROCON_WARM_PATH bool TranspositionTable::lookup(const TTKey& key,
                                                 TTValue& out) noexcept {
  PROCON_ASSERT_NO_ALLOC("TranspositionTable::lookup");
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  Entry* bucket = s.entries.data() + bucket_of(key);
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = bucket[w];
    if (e.stamp == 0) continue;
    if (e.hash == key.hash) {
      if (e.verify == key.verify) {
        e.stamp = ++s.clock;
        ++s.stats.hits;
        out = e.value;
        return true;
      }
      ++s.stats.verify_failures;
    }
  }
  ++s.stats.misses;
  return false;
}

PROCON_WARM_PATH void TranspositionTable::store(const TTKey& key,
                                                const TTValue& value) noexcept {
  PROCON_ASSERT_NO_ALLOC("TranspositionTable::store");
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  Entry* bucket = s.entries.data() + bucket_of(key);
  Entry* victim = nullptr;
  bool victim_live = true;
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = bucket[w];
    if (e.stamp == 0) {
      if (victim_live) {
        victim = &e;
        victim_live = false;
      }
      continue;
    }
    if (e.hash == key.hash && e.verify == key.verify) {
      // Same 128-bit key: refresh in place. The bitwise-identity contract
      // makes the new value equal to the old one, so this is a stamp bump.
      e.value = value;
      e.stamp = ++s.clock;
      ++s.stats.stores;
      return;
    }
    if (victim_live && (victim == nullptr || e.stamp < victim->stamp)) {
      victim = &e;  // replace-oldest: stalest live entry so far
    }
  }
  if (victim_live) ++s.stats.evictions;
  victim->hash = key.hash;
  victim->verify = key.verify;
  victim->value = value;
  victim->stamp = ++s.clock;
  ++s.stats.stores;
}

TranspositionTable::Stats TranspositionTable::stats() const {
  Stats out;
  out.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    ShardStats snap;
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      snap = s.stats;
    }
    out.hits += snap.hits;
    out.misses += snap.misses;
    out.stores += snap.stores;
    out.evictions += snap.evictions;
    out.verify_failures += snap.verify_failures;
    out.shards.push_back(snap);
  }
  return out;
}

}  // namespace procon::analysis
