// High-level single-application period / throughput API (Definition 3).
//
// Per(A) is the average time one iteration of application A takes under
// self-timed execution with dedicated resources. The contention estimator
// perturbs actor execution times with fractional waiting times, so the
// default engine is HSDF expansion + maximum cycle ratio, which is exact
// for real-valued times; the state-space engine provides exact rational
// results for integer graphs (and cross-validates the MCR path in tests).
#pragma once

#include <span>

#include "analysis/mcr.h"
#include "analysis/state_space.h"
#include "sdf/graph.h"

namespace procon::analysis {

struct PeriodResult {
  bool deadlocked = false;
  /// Time units per graph iteration; 0 for acyclic graphs (infinite
  /// pipelining under self-timed execution).
  double period = 0.0;

  [[nodiscard]] double throughput() const noexcept {
    return period > 0.0 ? 1.0 / period : 0.0;
  }
};

/// Computes Per(g) via HSDF + MCR. `exec_times`, if non-empty, overrides
/// actor execution times (one entry per actor; fractional values allowed).
/// Auto-concurrency is disabled by inserting self-loops, matching the
/// paper's operational model. Throws sdf::GraphError on inconsistent graphs.
///
/// Deprecated one-shot shim: re-derives all structure per call. Repeated
/// callers should hold a ThroughputEngine or an api::Workbench session,
/// whose throughput(app) query returns the same bits from cached structure.
[[nodiscard]] PeriodResult compute_period(const sdf::Graph& g,
                                          std::span<const double> exec_times = {});

/// Exact rational period of an integer-time graph via state-space
/// execution. Throws sdf::GraphError on inconsistent graphs.
[[nodiscard]] util::Rational compute_period_exact(const sdf::Graph& g);

/// Which actors limit the throughput: the (deduplicated, id-ordered) actors
/// on the critical cycle of the HSDF expansion, plus the period they
/// enforce. Speeding up any other actor cannot improve the period.
struct BottleneckReport {
  bool deadlocked = false;
  double period = 0.0;
  std::vector<sdf::ActorId> actors;
};
[[nodiscard]] BottleneckReport find_bottleneck(const sdf::Graph& g,
                                               std::span<const double> exec_times = {});

}  // namespace procon::analysis
