// Exact rational arithmetic on 64-bit integers.
//
// Used wherever exactness matters for correctness of the analysis:
// repetition-vector computation (balance equations), token-index algebra in
// the HSDF expansion, and exact period bookkeeping for integer-time graphs.
// Values are kept normalised (gcd-reduced, denominator > 0) at all times.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <numeric>
#include <stdexcept>
#include <string>

namespace procon::util {

/// Thrown on rational overflow or division by zero.
class RationalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An exact rational number num/den with int64 components.
///
/// Invariants: den > 0 and gcd(|num|, den) == 1. All arithmetic checks for
/// signed overflow and throws RationalError instead of wrapping.
class Rational {
 public:
  /// Value 0/1.
  constexpr Rational() noexcept : num_(0), den_(1) {}
  /// Integer value n/1.
  constexpr Rational(std::int64_t n) noexcept : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// Value num/den; throws RationalError if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }
  [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }

  /// Truncating conversion (towards zero).
  [[nodiscard]] std::int64_t trunc() const noexcept { return num_ / den_; }
  /// Floor division result.
  [[nodiscard]] std::int64_t floor() const noexcept;
  /// Ceiling division result.
  [[nodiscard]] std::int64_t ceil() const noexcept;
  /// Lossy conversion to double.
  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] Rational reciprocal() const;
  [[nodiscard]] Rational abs() const;

  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) { return Rational(-a.num_, a.den_); }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  /// "n" for integers, "n/d" otherwise.
  [[nodiscard]] std::string to_string() const;

 private:
  void normalise();
  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// gcd of two non-negative values, gcd(0, x) == x.
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept;
/// lcm; throws RationalError on overflow.
[[nodiscard]] std::int64_t lcm64(std::int64_t a, std::int64_t b);

}  // namespace procon::util
