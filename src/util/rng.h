// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic components (graph generation, simulator tie-breaking,
// use-case sampling) draw from this engine so experiments are exactly
// reproducible from a single seed, independent of the standard library's
// distribution implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace procon::util {

/// xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality 64-bit generator.
///
/// Satisfies std::uniform_random_bit_generator so it can also be used with
/// <random> distributions if desired.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 expansion of `seed` (any value, including 0, is fine).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of a random-access range.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for parallel workloads).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Root of a counter-derived random stream: mixes (seed, stream, index)
/// through two splitmix64 avalanche rounds into one well-distributed 64-bit
/// value. Draw k of stream s is a pure function of (seed, s, k) — the
/// primitive behind every speculative / raced computation in the repo
/// (mapper proposal batches, racer arm pulls): work items can be evaluated
/// in any order, on any worker, without consuming a shared generator.
[[nodiscard]] std::uint64_t counter_seed(std::uint64_t seed, std::uint64_t stream,
                                         std::uint64_t index) noexcept;

/// An Rng seeded with counter_seed(seed, stream, index) — an independent
/// short generator for one counter-indexed work item.
[[nodiscard]] Rng counter_rng(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t index) noexcept;

}  // namespace procon::util
