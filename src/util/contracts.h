// Source-level contract annotations and their runtime complement.
//
// PROCON_WARM_PATH marks a function definition as one of the documented
// zero-heap-allocation warm paths (docs/ARCHITECTURE.md "Contract
// enforcement"): after a shape has been seen once, re-serving it must not
// touch the allocator. The macro expands to nothing — it exists so
// tools/lint/procon_lint can find the annotated bodies and reject local
// container construction, `new`, std::function and unreserved push_back at
// CI time, before a runtime test has to catch the regression.
//
// PROCON_ASSERT_NO_ALLOC(scope) is the runtime complement for Debug builds:
// an RAII guard that snapshots an allocation counter on entry and aborts
// with the scope name and call site if the count moved by scope exit. It is
// inert unless BOTH hold:
//
//  * a counter was installed with set_alloc_counter() — test binaries that
//    include util/alloc_probe.h (which replaces ::operator new) install
//    &alloc_probe::allocations at startup; the library itself never
//    dictates the allocator of binaries linking it, so this stays a
//    function-pointer seam;
//  * the calling thread is inside an ArmGuard — warm paths are only
//    allocation-free for *previously-seen* shapes, so the steady-state
//    tests arm exactly around their warm brackets and the cold first pass
//    stays exempt.
//
// In Release (NDEBUG) builds the macro compiles away entirely.
#pragma once

#include <cstdint>

/// Marks a function definition as a documented allocation-free warm path.
/// procon_lint checks the annotated body (rules warm-*).
#define PROCON_WARM_PATH

namespace procon::util::contracts {

/// Snapshot function for the process-wide allocation count. The only
/// expected implementation is &alloc_probe::allocations from a binary that
/// included util/alloc_probe.h.
using AllocCounterFn = std::uint64_t (*)();

/// Installs (or clears, with nullptr) the allocation counter. Thread-safe;
/// typically called once at test-binary startup.
void set_alloc_counter(AllocCounterFn fn) noexcept;

/// The installed counter, or nullptr.
[[nodiscard]] AllocCounterFn alloc_counter() noexcept;

/// True while the calling thread is inside an ArmGuard.
[[nodiscard]] bool armed() noexcept;

/// Arms PROCON_ASSERT_NO_ALLOC scopes on the calling thread for the guard's
/// lifetime. Nestable; restores the previous state on destruction.
class ArmGuard {
 public:
  ArmGuard() noexcept;
  ~ArmGuard();
  ArmGuard(const ArmGuard&) = delete;
  ArmGuard& operator=(const ArmGuard&) = delete;

 private:
  bool prev_;
};

/// RAII body of PROCON_ASSERT_NO_ALLOC. Public only for the macro; the
/// constructor and destructor never allocate.
class NoAllocScope {
 public:
  NoAllocScope(const char* scope, const char* file, int line) noexcept;
  ~NoAllocScope();
  NoAllocScope(const NoAllocScope&) = delete;
  NoAllocScope& operator=(const NoAllocScope&) = delete;

 private:
  const char* scope_;
  const char* file_;
  int line_;
  std::uint64_t start_ = 0;
  int uncaught_ = 0;
  bool active_ = false;
};

}  // namespace procon::util::contracts

#if !defined(NDEBUG)
#define PROCON_DETAIL_NO_ALLOC_CAT2(a, b) a##b
#define PROCON_DETAIL_NO_ALLOC_CAT(a, b) PROCON_DETAIL_NO_ALLOC_CAT2(a, b)
/// Debug-build self-check: aborts at this call site if the enclosing scope
/// allocates while a counter is installed and the thread is armed.
#define PROCON_ASSERT_NO_ALLOC(scope)                                     \
  ::procon::util::contracts::NoAllocScope PROCON_DETAIL_NO_ALLOC_CAT(    \
      procon_no_alloc_scope_, __COUNTER__)(scope, __FILE__, __LINE__)
#else
#define PROCON_ASSERT_NO_ALLOC(scope) ((void)0)
#endif
