#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace procon::util {
namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::render() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto hline = [&] {
    std::string s = "+";
    for (const std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  os << hline();
  if (!header_.empty()) {
    os << render_row(header_);
    os << hline();
  }
  for (const auto& r : rows_) os << render_row(r);
  os << hline();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace procon::util
