#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace procon::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / n;
  mean_ += delta * static_cast<double>(o.n_) / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percent_abs_diff(double estimate, double reference) noexcept {
  if (reference == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 100.0 * std::abs(estimate - reference) / std::abs(reference);
}

double mean_percent_abs_diff(std::span<const double> estimates,
                             std::span<const double> references) {
  if (estimates.size() != references.size()) {
    throw std::invalid_argument("mean_percent_abs_diff: size mismatch");
  }
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    sum += percent_abs_diff(estimates[i], references[i]);
  }
  return sum / static_cast<double>(estimates.size());
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace procon::util
