#include "util/rng.h"

namespace procon::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the all-zero state (cannot occur with splitmix64 in
  // practice, but the generator's period argument requires it).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() noexcept {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::split() noexcept { return Rng((*this)()); }

std::uint64_t counter_seed(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t index) noexcept {
  // Two dependent splitmix64 rounds: the first absorbs the stream id, the
  // second the index, so (s, k) and (s', k') collide only if the mix does.
  std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  x = splitmix64(x);
  x ^= 0xD1B54A32D192ED03ULL * (index + 1);
  return splitmix64(x);
}

Rng counter_rng(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t index) noexcept {
  return Rng(counter_seed(seed, stream, index));
}

}  // namespace procon::util
