// ASCII table rendering for the benchmark harnesses.
//
// The paper's tables/figures are reproduced as aligned text tables on
// stdout (plus CSV files for plotting); this keeps the harness output
// directly comparable with the rows the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace procon::util {

/// A simple column-aligned text table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header; resets nothing else.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row. Rows may be ragged; rendering pads them.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders the table with box-drawing separators.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (header + rows, comma-separated, quotes where needed).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace procon::util
