// Lightweight leveled logging to stderr.
//
// Default level is Warn so library users see nothing unless they opt in;
// benches raise it to Info for progress reporting on long sweeps.
#pragma once

#include <sstream>
#include <string>

namespace procon::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line "[LEVEL] message" to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

/// Stream-style helpers: PROCON_LOG(Info) << "x=" << x;
#define PROCON_LOG(level) ::procon::util::detail::LogLine(::procon::util::LogLevel::level)

}  // namespace procon::util
