// Elementary symmetric polynomials.
//
// Equation 4 of the paper sums, for each actor, terms of the form
//   (-1)^{j+1}/(j+1) * e_j(P_1 .. P_{i-1}, P_{i+1} .. P_n)
// where e_j is the j-th elementary symmetric polynomial of the *other*
// actors' blocking probabilities. Evaluated naively this is O(n^n); the
// standard Newton-style DP below evaluates all e_0..e_n in O(n^2) once,
// and each leave-one-out family in O(n) by polynomial division, giving the
// mathematically exact value of Eq. 4 at polynomial cost.
#pragma once

#include <span>
#include <vector>

namespace procon::util {

/// Returns e_0..e_n for the n given values: result[j] = e_j(x_1..x_n).
/// e_0 is always 1. O(n^2) time, O(n) space.
[[nodiscard]] std::vector<double> elementary_symmetric(std::span<const double> xs);

/// Reuse variant: fills `out` in place (same values as elementary_symmetric).
/// Warm calls within the vector's capacity perform no heap allocation — the
/// hot estimation loop hands the same scratch back per actor.
void elementary_symmetric_into(std::span<const double> xs, std::vector<double>& out);

/// Given e = e_0..e_n of (x_1..x_n), returns e'_0..e'_{n-1} of the multiset
/// with one occurrence of `removed` deleted. This is synthetic division of
/// the generating polynomial prod(1 + x_i t) by (1 + removed * t): O(n).
///
/// Numerically stable forward recurrence: e'_j = e_j - removed * e'_{j-1}.
[[nodiscard]] std::vector<double> elementary_symmetric_remove_one(
    std::span<const double> e, double removed);

/// Reuse variant of elementary_symmetric_remove_one (see
/// elementary_symmetric_into).
void elementary_symmetric_remove_one_into(std::span<const double> e, double removed,
                                          std::vector<double>& out);

/// Directly computes e_j(xs) for a single j via the full DP (helper mainly
/// for tests; prefer elementary_symmetric for all orders at once).
[[nodiscard]] double elementary_symmetric_single(std::span<const double> xs,
                                                 std::size_t j);

}  // namespace procon::util
