#include "util/csv.h"

#include <stdexcept>

#include "util/stats.h"

namespace procon::util {
namespace {

std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
}

void CsvWriter::write_row(std::span<const std::string> cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::span<const std::string>(cells.begin(), cells.size()));
}

void CsvWriter::write_numeric_row(const std::string& label,
                                  std::span<const double> values, int precision) {
  out_ << escape(label);
  for (const double v : values) out_ << ',' << format_double(v, precision);
  out_ << '\n';
}

}  // namespace procon::util
