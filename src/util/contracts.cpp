#include "util/contracts.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace procon::util::contracts {
namespace {

std::atomic<AllocCounterFn>& counter_slot() noexcept {
  static std::atomic<AllocCounterFn> fn{nullptr};
  return fn;
}

thread_local bool t_armed = false;

}  // namespace

void set_alloc_counter(AllocCounterFn fn) noexcept {
  counter_slot().store(fn, std::memory_order_release);
}

AllocCounterFn alloc_counter() noexcept {
  return counter_slot().load(std::memory_order_acquire);
}

bool armed() noexcept { return t_armed; }

ArmGuard::ArmGuard() noexcept : prev_(t_armed) { t_armed = true; }
ArmGuard::~ArmGuard() { t_armed = prev_; }

NoAllocScope::NoAllocScope(const char* scope, const char* file,
                           int line) noexcept
    : scope_(scope), file_(file), line_(line) {
  const AllocCounterFn fn = alloc_counter();
  if (fn != nullptr && t_armed) {
    active_ = true;
    uncaught_ = std::uncaught_exceptions();
    start_ = fn();
  }
}

NoAllocScope::~NoAllocScope() {
  if (!active_) return;
  // An in-flight exception may legitimately allocate (what()); the contract
  // covers the successful warm path only.
  if (std::uncaught_exceptions() != uncaught_) return;
  const AllocCounterFn fn = alloc_counter();
  if (fn == nullptr) return;
  const std::uint64_t now = fn();
  if (now != start_) {
    std::fprintf(stderr,
                 "PROCON_ASSERT_NO_ALLOC violated: scope '%s' performed "
                 "%llu allocation(s) while armed (%s:%d)\n",
                 scope_, static_cast<unsigned long long>(now - start_),
                 file_, line_);
    std::abort();
  }
}

}  // namespace procon::util::contracts
