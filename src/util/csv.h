// Minimal CSV writer used by the benchmark harnesses to dump plot data
// (one file per paper figure) alongside the human-readable tables.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace procon::util {

/// Writes rows of string cells to a CSV file. Throws std::runtime_error if
/// the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(std::span<const std::string> cells);
  void write_row(std::initializer_list<std::string> cells);

  /// Convenience for numeric series: label followed by values.
  void write_numeric_row(const std::string& label, std::span<const double> values,
                         int precision = 6);

 private:
  std::ofstream out_;
};

}  // namespace procon::util
