// Small statistics helpers used by the benchmark harnesses and the
// simulator's metric collection: running summaries, mean absolute
// percentage differences (the paper's inaccuracy metric), and quantiles.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace procon::util {

/// Incremental summary of a sample: count / mean / min / max / variance.
/// Uses Welford's algorithm so it is numerically stable for long runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& o) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The paper's inaccuracy metric: |estimate - reference| / reference, in
/// percent. Returns 0 when the reference is 0 and the estimate is too;
/// otherwise a reference of 0 yields +inf (flagged upstream).
[[nodiscard]] double percent_abs_diff(double estimate, double reference) noexcept;

/// Mean of percent_abs_diff over paired samples. Requires equal sizes.
[[nodiscard]] double mean_percent_abs_diff(std::span<const double> estimates,
                                           std::span<const double> references);

/// q-th quantile (0 <= q <= 1) by linear interpolation; copies and sorts.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Fixed-width human formatting: "12.34" style with the given precision.
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace procon::util
