#include "util/rational.h"

#include <cmath>
#include <ostream>

namespace procon::util {
namespace {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw RationalError("rational multiplication overflow");
  }
  return r;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw RationalError("rational addition overflow");
  }
  return r;
}

}  // namespace

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  return checked_mul(a / g, b);
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw RationalError("rational with zero denominator");
  normalise();
}

void Rational::normalise() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = gcd64(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ < 0) ? q - 1 : q;
}

std::int64_t Rational::ceil() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ > 0) ? q + 1 : q;
}

Rational Rational::reciprocal() const {
  if (num_ == 0) throw RationalError("reciprocal of zero");
  return Rational(den_, num_);
}

Rational Rational::abs() const { return num_ < 0 ? Rational(-num_, den_) : *this; }

Rational& Rational::operator+=(const Rational& o) {
  // Reduce cross-terms first to delay overflow: a/b + c/d with g = gcd(b, d).
  const std::int64_t g = gcd64(den_, o.den_);
  const std::int64_t lhs = checked_mul(num_, o.den_ / g);
  const std::int64_t rhs = checked_mul(o.num_, den_ / g);
  num_ = checked_add(lhs, rhs);
  den_ = checked_mul(den_, o.den_ / g);
  normalise();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce before multiplying to keep magnitudes small.
  const std::int64_t g1 = gcd64(num_, o.den_);
  const std::int64_t g2 = gcd64(o.num_, den_);
  num_ = checked_mul(num_ / g1, o.num_ / g2);
  den_ = checked_mul(den_ / g2, o.den_ / g1);
  normalise();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) { return *this *= o.reciprocal(); }

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Compare a.num * b.den <=> b.num * a.den without overflow via long double
  // fast path and exact fallback.
  try {
    const std::int64_t lhs = checked_mul(a.num_, b.den_);
    const std::int64_t rhs = checked_mul(b.num_, a.den_);
    return lhs <=> rhs;
  } catch (const RationalError&) {
    const long double lhs = static_cast<long double>(a.num_) * b.den_;
    const long double rhs = static_cast<long double>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace procon::util
