// Small persistent thread pool for sharded analysis.
//
// The repeated-analysis loops this library parallelises (use-case sweeps,
// mapper candidate scoring) are embarrassingly parallel *per item* but need
// worker-local mutable state (an engine clone per worker) and bitwise
// deterministic results regardless of worker count or scheduling. The pool
// therefore exposes exactly one primitive: an indexed parallel loop whose
// body receives (item index, worker index). Items are handed out through an
// atomic counter (dynamic load balancing); callers write results into
// per-index slots, so the output never depends on which worker ran what.
//
// The calling thread participates as worker 0 — a pool of size 1 owns no
// background thread at all and runs the loop inline, which keeps the serial
// path free of synchronisation overhead and makes "1 thread" genuinely
// sequential in benchmarks.
//
// Nested sharding: for_each_index may be called from inside a body running
// on this pool (e.g. a use-case sweep item that internally shards its
// per-application engine work). Such a nested call degrades to an inline
// serial loop on the calling worker, reusing the enclosing body's worker
// index — items run in index order, no deadlock, no worker-scratch
// collisions. Only *top-level* calls fan out across the pool, so callers
// can unconditionally hand the pool down to composable helpers (the
// contention estimator's per-app passes) and get parallelism exactly when
// the outer level is not already sharded.
//
// Work queue: beyond the synchronous parallel loop, the pool carries a
// FIFO task queue (post()) for detached jobs — the execution substrate of
// api::AnalysisService tickets. Posted tasks run on background workers
// (inline at post time when the pool has none), interleaved with parallel
// loops on the same workers; the destructor drains every posted task
// before joining. A posted task that calls for_each_index on its own pool
// degrades to the inline serial loop, like any nested call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace procon::util {

class ThreadPool {
 public:
  /// `threads` = total worker count including the caller; 0 picks
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (background threads + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept { return workers_ + 1; }

  /// Runs body(item, worker) for every item in [0, count), blocking until
  /// all items completed. `worker` is in [0, size()); the caller runs as
  /// worker 0. Bodies for distinct items run concurrently; the same worker
  /// index is never active on two items at once, so worker-indexed scratch
  /// state needs no locking. The first exception thrown by any body is
  /// rethrown to the caller after the loop drains.
  ///
  /// Nest-safe: when called from inside a body already running on *this*
  /// pool, the loop runs inline and serially (items in index order) on the
  /// calling worker, with the enclosing body's worker index — see the
  /// nested-sharding note above. Exceptions then propagate directly.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t item, std::size_t worker)>& body);

  /// Enqueues a detached task for a background worker (FIFO order across
  /// posts, concurrent execution across workers). Returns immediately; with
  /// no background workers (size() == 1) the task runs inline before
  /// returning, so posted work always completes eventually without anyone
  /// draining a queue. Tasks must not throw (an escaping exception
  /// terminates the process) and must not block on work that only this
  /// pool's workers can perform; a task may call for_each_index on this
  /// pool — it degrades to the inline serial loop. The destructor drains
  /// all posted tasks before joining the workers.
  void post(std::function<void()> task);

  /// Number of posted tasks not yet finished (queued or running). Mainly
  /// for tests and shutdown diagnostics; racy by nature.
  [[nodiscard]] std::size_t pending_tasks() const noexcept {
    return tasks_inflight_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t worker);
  void run_items(const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t count, std::size_t worker);
  void run_task(std::function<void()>& task, std::size_t worker);

  std::size_t workers_ = 0;  // background threads
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t generation_ = 0;   // bumps per for_each_index call
  std::size_t finished_ = 0;       // workers done draining this generation
  bool stop_ = false;

  std::deque<std::function<void()>> tasks_;  // posted work, FIFO
  std::atomic<std::size_t> tasks_inflight_{0};

  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
  std::mutex error_mutex_;
};

}  // namespace procon::util
