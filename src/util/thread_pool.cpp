#include "util/thread_pool.h"

namespace procon::util {

namespace {

/// Which pool (if any) the current thread is running a loop body for, and
/// as which worker — the nested-call detector for for_each_index.
struct PoolContext {
  const ThreadPool* pool = nullptr;
  std::size_t worker = 0;
};
thread_local PoolContext tls_pool_context;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t total = threads;
  if (total == 0) {
    total = std::thread::hardware_concurrency();
    if (total == 0) total = 1;
  }
  workers_ = total - 1;
  threads_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_items(const std::function<void(std::size_t, std::size_t)>& body,
                           std::size_t count, std::size_t worker) {
  const PoolContext enclosing = tls_pool_context;
  tls_pool_context = PoolContext{this, worker};
  for (;;) {
    const std::size_t item = next_.fetch_add(1, std::memory_order_relaxed);
    if (item >= count) break;
    try {
      body(item, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  tls_pool_context = enclosing;
}

void ThreadPool::run_task(std::function<void()>& task, std::size_t worker) {
  // Tasks run under a pool context like loop bodies do, so a task that
  // calls for_each_index on this pool degrades to the inline serial loop
  // instead of deadlocking the generation handshake (this worker could
  // never join the generation it would be waiting on).
  const PoolContext enclosing = tls_pool_context;
  tls_pool_context = PoolContext{this, worker};
  task();  // tasks must not throw; an escaping exception terminates
  tls_pool_context = enclosing;
  tasks_inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t count = 0;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [&] { return stop_ || generation_ != seen || !tasks_.empty(); });
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (generation_ != seen) {
        seen = generation_;
        job = job_;
        count = job_count_;
      } else {
        return;  // stop requested and every posted task drained
      }
    }
    if (task) {
      run_task(task, worker);
      continue;
    }
    run_items(*job, count, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++finished_;
    }
    done_.notify_one();
  }
}

void ThreadPool::post(std::function<void()> task) {
  tasks_inflight_.fetch_add(1, std::memory_order_relaxed);
  if (workers_ == 0) {
    // No background execution available: run inline so posted work always
    // completes. Callers (the service) treat this as a synchronous submit.
    run_task(task, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::for_each_index(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (tls_pool_context.pool == this) {
    // Nested call from one of our own bodies: inline serial loop on the
    // enclosing worker (fanning out would deadlock the generation
    // handshake; reusing the worker index keeps worker-indexed scratch
    // race-free). Exceptions propagate to the outer run_items catch.
    for (std::size_t item = 0; item < count; ++item) {
      body(item, tls_pool_context.worker);
    }
    return;
  }
  error_ = nullptr;
  next_.store(0, std::memory_order_relaxed);
  if (workers_ > 0 && count > 1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &body;
      job_count_ = count;
      finished_ = 0;
      ++generation_;
    }
    wake_.notify_all();
    run_items(body, count, 0);
    {
      // Every background worker must both observe this generation and drain
      // before the job pointer may be retired (a late waker dereferences
      // job_, so clearing it early would race).
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [&] { return finished_ == workers_; });
      job_ = nullptr;
    }
  } else {
    run_items(body, count, 0);
  }
  if (error_) std::rethrow_exception(error_);
}

}  // namespace procon::util
