#include "util/symmetric_poly.h"

namespace procon::util {

void elementary_symmetric_into(std::span<const double> xs, std::vector<double>& out) {
  out.clear();
  out.resize(xs.size() + 1, 0.0);
  out[0] = 1.0;
  std::size_t used = 0;
  for (const double x : xs) {
    ++used;
    // Iterate downwards so each x contributes at most once per degree.
    for (std::size_t j = used; j >= 1; --j) {
      out[j] += x * out[j - 1];
    }
  }
}

std::vector<double> elementary_symmetric(std::span<const double> xs) {
  std::vector<double> e;
  elementary_symmetric_into(xs, e);
  return e;
}

void elementary_symmetric_remove_one_into(std::span<const double> e, double removed,
                                          std::vector<double>& out) {
  // e has n+1 entries; the reduced family has n entries e'_0..e'_{n-1}.
  out.clear();
  out.resize(e.size() - 1, 0.0);
  if (out.empty()) return;
  out[0] = 1.0;
  for (std::size_t j = 1; j < out.size(); ++j) {
    out[j] = e[j] - removed * out[j - 1];
  }
}

std::vector<double> elementary_symmetric_remove_one(std::span<const double> e,
                                                    double removed) {
  std::vector<double> out;
  elementary_symmetric_remove_one_into(e, removed, out);
  return out;
}

double elementary_symmetric_single(std::span<const double> xs, std::size_t j) {
  if (j > xs.size()) return 0.0;
  return elementary_symmetric(xs)[j];
}

}  // namespace procon::util
