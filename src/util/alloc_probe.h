// Instrumented global allocator for allocation-freeness tests and benches.
//
// Including this header REPLACES ::operator new / ::operator delete for the
// whole binary with counting variants over std::malloc/std::free. That is
// exactly what the steady-state serving tests need: bracket a warm query
// with alloc_probe::allocations() readings and assert the delta is zero.
//
// Usage rules:
//  * include it in EXACTLY ONE translation unit of a test or bench
//    executable (the replacement operators are non-inline definitions);
//  * NEVER include it from library code — the library must not dictate the
//    allocator of every binary linking it;
//  * the counter is global and thread-shared: measure single-threaded
//    regions, or accept that other threads' allocations count too.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace procon::util::alloc_probe {

/// Total number of ::operator new calls (all forms) since process start.
inline std::atomic<std::uint64_t>& counter() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Snapshot of the allocation count; subtract two snapshots to count the
/// allocations of the region between them.
inline std::uint64_t allocations() noexcept {
  return counter().load(std::memory_order_relaxed);
}

inline void* counted_malloc(std::size_t size) {
  counter().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_aligned(std::size_t size, std::size_t alignment) {
  counter().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = alignment;
  size = (size + alignment - 1) / alignment * alignment;  // aligned_alloc rule
  void* p = std::aligned_alloc(alignment, size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace procon::util::alloc_probe

void* operator new(std::size_t size) { return procon::util::alloc_probe::counted_malloc(size); }
void* operator new[](std::size_t size) { return procon::util::alloc_probe::counted_malloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return procon::util::alloc_probe::counted_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return procon::util::alloc_probe::counted_aligned(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
