#include "wcrt/wcrt.h"

#include <cmath>
#include <stdexcept>

#include "analysis/engine.h"

namespace procon::wcrt {

double wcrt_round_robin(double own_exec, const std::vector<double>& other_execs) {
  double wait = 0.0;
  for (const double t : other_execs) wait += t;
  return own_exec + wait;
}

double wcrt_tdma(double own_exec, double own_slot,
                 const std::vector<double>& other_slots) {
  if (own_slot <= 0.0) throw std::invalid_argument("wcrt_tdma: slot must be > 0");
  double wheel_rest = 0.0;  // W - s(a)
  for (const double s : other_slots) wheel_rest += s;
  const double slots_needed = std::ceil(own_exec / own_slot);
  return own_exec + slots_needed * wheel_rest;
}

std::vector<AppBound> worst_case_bounds(const platform::System& sys,
                                        const WcrtOptions& opts) {
  // One-shot call: build the per-application engines locally and delegate.
  std::vector<analysis::ThroughputEngine> engines;
  engines.reserve(sys.app_count());
  for (const sdf::Graph& g : sys.apps()) engines.emplace_back(g);
  std::vector<analysis::ThroughputEngine*> ptrs;
  ptrs.reserve(engines.size());
  for (analysis::ThroughputEngine& e : engines) ptrs.push_back(&e);
  return worst_case_bounds(platform::SystemView(sys), opts,
                           std::span<analysis::ThroughputEngine* const>(ptrs));
}

std::vector<AppBound> worst_case_bounds(
    const platform::System& sys, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines) {
  return worst_case_bounds(platform::SystemView(sys), opts, engines);
}

std::vector<AppBound> worst_case_bounds(
    const platform::SystemView& view, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines) {
  const std::size_t napps = view.app_count();
  if (engines.size() != napps) {
    throw sdf::GraphError("worst_case_bounds: engine count mismatch");
  }
  std::vector<AppBound> out(napps);

  // The isolation and worst-case periods below are two weight assignments
  // over each engine's cached structure.
  for (sdf::AppId i = 0; i < napps; ++i) {
    const auto iso = engines[i]->recompute();
    if (iso.deadlocked || iso.period <= 0.0) {
      throw sdf::GraphError("worst_case_bounds: application '" +
                            view.app(i).name() +
                            "' has no positive isolation period");
    }
    out[i].isolation_period = iso.period;
    out[i].actors.resize(view.app(i).actor_count());
  }

  // Group actor execution times (and TDMA slots) per node.
  struct Entry {
    platform::GlobalActor who;
    double exec;
    double slot;
  };
  std::vector<std::vector<Entry>> per_node(view.platform().node_count());
  for (sdf::AppId i = 0; i < napps; ++i) {
    for (sdf::ActorId a = 0; a < view.app(i).actor_count(); ++a) {
      const auto exec = static_cast<double>(view.app(i).actor(a).exec_time);
      const double slot =
          opts.tdma_slot > 0 ? static_cast<double>(opts.tdma_slot) : exec;
      per_node[view.node_of(i, a)].push_back(Entry{{i, a}, exec, slot});
    }
  }

  std::vector<std::vector<double>> response(napps);
  for (sdf::AppId i = 0; i < napps; ++i) {
    response[i].resize(view.app(i).actor_count(), 0.0);
  }
  for (const auto& entries : per_node) {
    for (std::size_t s = 0; s < entries.size(); ++s) {
      const Entry& e = entries[s];
      std::vector<double> others;
      others.reserve(entries.size() - 1);
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (k == s) continue;
        others.push_back(opts.policy == Policy::TdmaPreemptive ? entries[k].slot
                                                               : entries[k].exec);
      }
      double r = 0.0;
      switch (opts.policy) {
        case Policy::RoundRobinNonPreemptive:
          r = wcrt_round_robin(e.exec, others);
          break;
        case Policy::TdmaPreemptive:
          r = wcrt_tdma(e.exec, e.slot, others);
          break;
      }
      out[e.who.app].actors[e.who.actor].response_time = r;
      out[e.who.app].actors[e.who.actor].waiting_time = r - e.exec;
      response[e.who.app][e.who.actor] = r;
    }
  }

  for (sdf::AppId i = 0; i < napps; ++i) {
    const auto res = engines[i]->recompute(response[i]);
    if (res.deadlocked) {
      throw sdf::GraphError("worst_case_bounds: response-time graph deadlocks");
    }
    out[i].worst_case_period = res.period;
  }
  return out;
}

}  // namespace procon::wcrt
