#include "wcrt/wcrt.h"

#include <cmath>
#include <stdexcept>

#include "analysis/engine.h"
#include "util/contracts.h"

namespace procon::wcrt {

double wcrt_round_robin(double own_exec, const std::vector<double>& other_execs) {
  double wait = 0.0;
  for (const double t : other_execs) wait += t;
  return own_exec + wait;
}

double wcrt_tdma(double own_exec, double own_slot,
                 const std::vector<double>& other_slots) {
  if (own_slot <= 0.0) throw std::invalid_argument("wcrt_tdma: slot must be > 0");
  double wheel_rest = 0.0;  // W - s(a)
  for (const double s : other_slots) wheel_rest += s;
  const double slots_needed = std::ceil(own_exec / own_slot);
  return own_exec + slots_needed * wheel_rest;
}

std::vector<AppBound> worst_case_bounds(const platform::System& sys,
                                        const WcrtOptions& opts) {
  // One-shot call: build the per-application engines locally and delegate.
  std::vector<analysis::ThroughputEngine> engines;
  engines.reserve(sys.app_count());
  for (const sdf::Graph& g : sys.apps()) engines.emplace_back(g);
  std::vector<analysis::ThroughputEngine*> ptrs;
  ptrs.reserve(engines.size());
  for (analysis::ThroughputEngine& e : engines) ptrs.push_back(&e);
  return worst_case_bounds(platform::SystemView(sys), opts,
                           std::span<analysis::ThroughputEngine* const>(ptrs));
}

std::vector<AppBound> worst_case_bounds(
    const platform::System& sys, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines) {
  return worst_case_bounds(platform::SystemView(sys), opts, engines);
}

std::vector<AppBound> worst_case_bounds(
    const platform::SystemView& view, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines) {
  WcrtWorkspace ws;
  std::vector<AppBound> out(view.app_count());
  worst_case_bounds_into(view, opts, engines, ws, out);
  return out;
}

PROCON_WARM_PATH void worst_case_bounds_into(
    const platform::SystemView& view, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines, WcrtWorkspace& ws,
    std::span<AppBound> out) {
  PROCON_ASSERT_NO_ALLOC("wcrt::worst_case_bounds_into");
  const std::size_t napps = view.app_count();
  if (engines.size() != napps) {
    throw sdf::GraphError("worst_case_bounds: engine count mismatch");
  }
  if (out.size() != napps) {
    throw sdf::GraphError("worst_case_bounds: output slot count mismatch");
  }

  // The isolation and worst-case periods below are two weight assignments
  // over each engine's cached structure.
  for (sdf::AppId i = 0; i < napps; ++i) {
    const auto iso = engines[i]->recompute();
    if (iso.deadlocked || iso.period <= 0.0) {
      throw sdf::GraphError("worst_case_bounds: application '" +
                            view.app(i).name() +
                            "' has no positive isolation period");
    }
    out[i].isolation_period = iso.period;
    out[i].actors.resize(view.app(i).actor_count());
  }

  // Group actor execution times (and TDMA slots) per node. The workspace
  // arenas only ever grow, so warm calls stay within their capacity.
  const std::size_t nnodes = view.platform().node_count();
  if (ws.per_node.size() < nnodes) ws.per_node.resize(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) ws.per_node[n].clear();
  for (sdf::AppId i = 0; i < napps; ++i) {
    for (sdf::ActorId a = 0; a < view.app(i).actor_count(); ++a) {
      const auto exec = static_cast<double>(view.app(i).actor(a).exec_time);
      const double slot =
          opts.tdma_slot > 0 ? static_cast<double>(opts.tdma_slot) : exec;
      ws.per_node[view.node_of(i, a)].push_back(NodeDemand{{i, a}, exec, slot});
    }
  }

  if (ws.response.size() < napps) ws.response.resize(napps);
  for (sdf::AppId i = 0; i < napps; ++i) {
    ws.response[i].resize(view.app(i).actor_count(), 0.0);
  }
  for (std::size_t n = 0; n < nnodes; ++n) {
    const auto& entries = ws.per_node[n];
    for (std::size_t s = 0; s < entries.size(); ++s) {
      const NodeDemand& e = entries[s];
      ws.others.clear();
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (k == s) continue;
        ws.others.push_back(opts.policy == Policy::TdmaPreemptive
                                ? entries[k].slot
                                : entries[k].exec);
      }
      double r = 0.0;
      switch (opts.policy) {
        case Policy::RoundRobinNonPreemptive:
          r = wcrt_round_robin(e.exec, ws.others);
          break;
        case Policy::TdmaPreemptive:
          r = wcrt_tdma(e.exec, e.slot, ws.others);
          break;
      }
      out[e.who.app].actors[e.who.actor].response_time = r;
      out[e.who.app].actors[e.who.actor].waiting_time = r - e.exec;
      ws.response[e.who.app][e.who.actor] = r;
    }
  }

  for (sdf::AppId i = 0; i < napps; ++i) {
    const auto res = engines[i]->recompute(ws.response[i]);
    if (res.deadlocked) {
      throw sdf::GraphError("worst_case_bounds: response-time graph deadlocks");
    }
    out[i].worst_case_period = res.period;
  }
}

}  // namespace procon::wcrt
