// Worst-case response time (WCRT) baselines - the state of the art the
// paper compares against ("Analyzed Worst Case").
//
// Round-robin, non-preemptive (Hoes [6]): when an actor arrives at a node
// it may, in the worst case, find every other actor mapped there queued
// ahead of it, so
//     WCRT(a) = tau(a) + sum_{b != a on node(a)} tau(b).
//
// TDMA, preemptive (Bekooij et al. [3]): each actor owns a slot of length
// s(a) on a wheel of length W = sum of slots on the node. Worst case the
// actor arrives just after its slot ends and needs ceil(tau/s) slots:
//     WCRT(a) = tau(a) + ceil(tau(a)/s(a)) * (W - s(a)).
// With the default "fair" configuration s(a) = tau(a) this reduces to
// W = sum tau, equal to the round-robin bound.
//
// Both analyses plug the per-actor WCRT into the same period-recomputation
// pipeline as the probabilistic estimator, yielding a conservative period
// bound per application.
#pragma once

#include <span>
#include <vector>

#include "analysis/engine.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "sdf/types.h"

namespace procon::wcrt {

enum class Policy {
  RoundRobinNonPreemptive,  ///< Hoes [6]
  TdmaPreemptive,           ///< Bekooij et al. [3]
};

struct WcrtOptions {
  Policy policy = Policy::RoundRobinNonPreemptive;
  /// TDMA slot length; 0 means "slot = actor execution time" (fair wheel).
  sdf::Time tdma_slot = 0;
};

struct ActorBound {
  double waiting_time = 0.0;
  double response_time = 0.0;
};

struct AppBound {
  double isolation_period = 0.0;
  double worst_case_period = 0.0;
  std::vector<ActorBound> actors;

  [[nodiscard]] double normalised_period() const noexcept {
    return isolation_period > 0.0 ? worst_case_period / isolation_period : 0.0;
  }
};

/// Computes per-application worst-case period bounds for all applications
/// of `sys` running concurrently.
///
/// Deprecated one-shot shim: builds fresh engines per call; prefer
/// api::Workbench::wcrt (same bits, session-cached engines).
[[deprecated("one-shot shim; use api::Workbench::wcrt or the SystemView/engine "
             "overloads")]] [[nodiscard]]
std::vector<AppBound> worst_case_bounds(const platform::System& sys,
                                        const WcrtOptions& opts = {});

/// Same analysis through caller-owned engines (engines[i] built from
/// apps()[i] of `sys`): the isolation and worst-case periods are two weight
/// assignments over each engine's cached structure. Lets a session
/// (api::Workbench) reuse its per-application engines across repeated
/// bound queries instead of re-paying structure per call.
[[nodiscard]] std::vector<AppBound> worst_case_bounds(
    const platform::System& sys, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines);

/// Zero-copy restriction variant: bounds for the applications selected by
/// `view` (view order), engines[i] built from view.app(i). The core
/// implementation every other overload funnels into — a Workbench sweep
/// passes a per-use-case view instead of a restrict_to copy.
[[nodiscard]] std::vector<AppBound> worst_case_bounds(
    const platform::SystemView& view, const WcrtOptions& opts,
    std::span<analysis::ThroughputEngine* const> engines);

/// One actor's execution time (and TDMA slot) grouped on its node —
/// exposed only as the element type of WcrtWorkspace's grouping arena.
struct NodeDemand {
  platform::GlobalActor who;
  double exec = 0.0;
  double slot = 0.0;
};

/// Reusable scratch for worst_case_bounds_into: the per-node grouping, the
/// response-time tables and the other-actor fold buffer, all with grow-only
/// capacity so warm calls of previously-seen shapes allocate nothing.
struct WcrtWorkspace {
  std::vector<std::vector<NodeDemand>> per_node;  ///< node grouping arena
  std::vector<std::vector<double>> response;      ///< per app: response times
  std::vector<double> others;                     ///< per-actor fold scratch
};

/// Sink-friendly core: same bounds as the view overload, written into
/// caller-owned slots. `out` must have exactly view.app_count() elements;
/// every field of every slot (including each slot's `actors` vector,
/// resized in place) is overwritten. With a warmed workspace and out-slots
/// this performs zero heap allocations — the with_wcrt pass of
/// api::Workbench's streaming sweeps.
void worst_case_bounds_into(const platform::SystemView& view,
                            const WcrtOptions& opts,
                            std::span<analysis::ThroughputEngine* const> engines,
                            WcrtWorkspace& ws, std::span<AppBound> out);

/// The raw per-actor WCRT for one actor given the execution times of the
/// other actors on its node (exposed for tests / direct use).
[[nodiscard]] double wcrt_round_robin(double own_exec,
                                      const std::vector<double>& other_execs);
[[nodiscard]] double wcrt_tdma(double own_exec, double own_slot,
                               const std::vector<double>& other_slots);

}  // namespace procon::wcrt
