// Actor-to-node mapping.
//
// A Mapping assigns every actor of every application to a processing node.
// The paper's experimental setup maps actor j of each application onto node
// j ("index" strategy), so contention arises between applications, not
// within one application. Random and load-balanced strategies are provided
// for design-space exploration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/platform.h"
#include "sdf/graph.h"
#include "sdf/zobrist.h"
#include "util/rng.h"

namespace procon::platform {

/// Globally identifies an actor: (application index, actor id).
struct GlobalActor {
  sdf::AppId app = 0;
  sdf::ActorId actor = sdf::kInvalidActor;

  friend bool operator==(const GlobalActor&, const GlobalActor&) = default;
};

class Mapping {
 public:
  Mapping() = default;

  /// Pre-sizes the mapping for the given applications (all unmapped).
  explicit Mapping(std::span<const sdf::Graph> apps);

  /// Assigns one actor.
  void assign(sdf::AppId app, sdf::ActorId actor, NodeId node);

  /// Appends one application's row (actor a -> nodes[a]). Pairs with
  /// System::append_app for run-time admission, where the admitted set grows
  /// one application at a time.
  void push_app(std::span<const NodeId> nodes);

  /// Removes the last application's row. Throws std::out_of_range if empty.
  void pop_app();

  [[nodiscard]] NodeId node_of(sdf::AppId app, sdf::ActorId actor) const;
  [[nodiscard]] std::size_t app_count() const noexcept { return node_of_.size(); }

  /// All actors mapped on `node`, over all applications.
  [[nodiscard]] std::vector<GlobalActor> actors_on(NodeId node) const;

  /// True if every actor has a node.
  [[nodiscard]] bool is_complete() const noexcept;

  /// Paper strategy: actor j of every application -> node j. Requires the
  /// platform to have at least max_j(actor_count) nodes.
  static Mapping by_index(std::span<const sdf::Graph> apps, const Platform& platform);

  /// Uniformly random node per actor.
  static Mapping random(std::span<const sdf::Graph> apps, const Platform& platform,
                        util::Rng& rng);

  /// Greedy load balancing: actors (largest q*tau first) onto the node with
  /// the least accumulated utilisation estimate.
  static Mapping load_balanced(std::span<const sdf::Graph> apps,
                               const Platform& platform);

  /// Live Zobrist fingerprint of the whole mapping:
  /// XOR_i place(kMappingTag, i, row_component(i)). Maintained incrementally
  /// by assign/push_app/pop_app in O(delta), never recomputed from scratch
  /// after construction. Name-free (mappings carry no names anyway); two
  /// mappings with identical rows fingerprint equal.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }

  /// Slot-free Zobrist component of application `app`'s row (XOR of
  /// mapping features; see sdf::ZobristHash::mapping_row_component).
  /// SystemView re-places these at view slots to derive use-case
  /// fingerprints without rehashing. Throws std::out_of_range on a bad app.
  [[nodiscard]] std::uint64_t row_component(sdf::AppId app) const {
    return row_comp_.at(app);
  }

 private:
  std::vector<std::vector<NodeId>> node_of_;  // [app][actor]
  std::vector<std::uint64_t> row_comp_;       // slot-free per-row components
  std::uint64_t fp_ = 0;                      // XOR of placed row components
};

}  // namespace procon::platform
