// A System bundles applications, platform and mapping - the unit every
// analysis and the simulator operate on. A UseCase selects the subset of
// applications that run concurrently (the paper's central notion).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "platform/mapping.h"
#include "platform/platform.h"
#include "platform/topology.h"
#include "sdf/graph.h"

namespace procon::platform {

/// A use-case: indices of concurrently active applications (sorted, unique).
using UseCase = std::vector<sdf::AppId>;

class System {
 public:
  /// Empty system (fingerprint-consistent with System({}, {}, {})).
  System();
  System(std::vector<sdf::Graph> apps, Platform platform, Mapping mapping);

  [[nodiscard]] std::span<const sdf::Graph> apps() const noexcept { return apps_; }
  [[nodiscard]] const sdf::Graph& app(sdf::AppId id) const;
  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }
  [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] const Mapping& mapping() const noexcept { return mapping_; }

  /// Replaces the actor-to-node mapping, keeping applications and platform.
  /// Lets mapping explorers rebind the same system per candidate instead of
  /// re-copying every application graph. Throws sdf::GraphError if the
  /// mapping's application count does not match.
  void set_mapping(Mapping&& mapping);
  /// Copying overload: assigns into the resident mapping's storage, so
  /// rebinding a same-shape candidate performs no heap allocation (the
  /// racer's warm-pull contract rides on this).
  void set_mapping(const Mapping& mapping);

  /// Attaches an interconnect to the platform (or detaches it when
  /// `topology` is kind None), rebuilding the platform fingerprint term in
  /// O(nodes + links). Throws std::invalid_argument on a node-count
  /// mismatch. Invalidates SimEngines built over this system (their routes
  /// are baked at build time); SystemViews stay valid — they read the
  /// platform through the parent.
  void set_topology(Topology topology);

  /// Changes the width of interconnect link `id` with an O(1) XOR
  /// fingerprint delta. Throws std::out_of_range on a bad id.
  void set_link_width(LinkId id, std::uint32_t width);

  /// Changes the latency of interconnect link `id` with an O(1) XOR
  /// fingerprint delta. Throws std::out_of_range on a bad id.
  void set_link_latency(LinkId id, sdf::Time latency);

  /// Restriction of this system to a use-case: keeps only the selected
  /// applications (re-indexed 0..k-1) and their mapping entries.
  ///
  /// This is the *copying* restriction, kept for callers that need a
  /// standalone System (implemented as SystemView::materialise). Analysis
  /// and simulation paths should restrict through a zero-copy
  /// platform::SystemView instead (see platform/system_view.h).
  [[nodiscard]] System restrict_to(const UseCase& use_case) const;

  /// Appends one application with actor a mapped on nodes[a] (run-time
  /// admission: the admitted set grows in place, no re-copy of the resident
  /// applications). Throws sdf::GraphError on a mapping size mismatch.
  /// Invalidates SystemViews over this system.
  void append_app(sdf::Graph app, std::span<const NodeId> nodes);
  /// Braced-list convenience for the span overload.
  void append_app(sdf::Graph app, std::initializer_list<NodeId> nodes) {
    append_app(std::move(app), std::span<const NodeId>(nodes.begin(), nodes.size()));
  }

  /// Removes the most recently appended application (what-if rollback).
  /// Throws std::out_of_range when there is none.
  void pop_app();

  /// The use-case containing every application.
  [[nodiscard]] UseCase full_use_case() const;

  /// Validation: mapping complete, every app consistent & deadlock-free.
  /// Throws sdf::GraphError with a descriptive message on violation.
  void validate() const;

  /// Live Zobrist fingerprint of the whole system:
  ///   place(kPlatformTag, 0, platform component)
  ///   ^ XOR_i place(kAppTag, i, app_component(i))
  ///   ^ mapping().fingerprint().
  /// Computed once in the constructor (the from-scratch oracle) and
  /// XOR-updated in O(delta) by set_mapping/append_app/pop_app. Name-free:
  /// structurally identical systems under different names fingerprint
  /// equal, which is what lets transposition entries be shared across
  /// tenants. Exact-identity caches must still tie-break with a structural
  /// comparison that includes names.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return platform_placed_ ^ apps_fp_ ^ mapping_.fingerprint();
  }

  /// Slot-free Zobrist component of application `id`'s graph (cached at
  /// append time; see sdf::ZobristHash::graph_component). SystemView
  /// re-places these at view slots to derive per-use-case fingerprints in
  /// O(use-case size). Throws std::out_of_range on a bad id.
  [[nodiscard]] std::uint64_t app_component(sdf::AppId id) const {
    return app_comp_.at(id);
  }

  /// The platform's placed Zobrist term (slot 0 under kPlatformTag) —
  /// restriction never changes the platform, so views reuse it verbatim.
  [[nodiscard]] std::uint64_t platform_fingerprint() const noexcept {
    return platform_placed_;
  }

 private:
  std::vector<sdf::Graph> apps_;
  Platform platform_;
  Mapping mapping_;
  std::vector<std::uint64_t> app_comp_;  // slot-free per-app graph components
  std::uint64_t apps_fp_ = 0;            // XOR of placed app components
  // place() is non-linear in its component argument, so per-link O(1)
  // fingerprint deltas XOR into the cached slot-free components below and
  // re-place, instead of XOR-patching platform_placed_ directly.
  std::uint64_t node_comp_ = 0;          // slot-free node features
  std::uint64_t topo_comp_ = 0;          // slot-free topology + link features
  std::uint64_t platform_placed_ = 0;    // place(kPlatformTag, 0, node^topo)
};

}  // namespace procon::platform
