#include "platform/platform.h"

#include <stdexcept>

namespace procon::platform {

Platform Platform::homogeneous(std::size_t count, const std::string& prefix) {
  Platform p;
  for (std::size_t i = 0; i < count; ++i) {
    p.add_node(prefix + std::to_string(i));
  }
  return p;
}

NodeId Platform::add_node(std::string name, NodeType type) {
  nodes_.push_back(Node{std::move(name), type});
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::size_t Platform::type_count() const noexcept {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    count = std::max<std::size_t>(count, static_cast<std::size_t>(n.type) + 1);
  }
  return count;
}

const Node& Platform::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("invalid node id");
  return nodes_[id];
}

NodeId Platform::find_node(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

}  // namespace procon::platform
