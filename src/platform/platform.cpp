#include "platform/platform.h"

#include <stdexcept>

#include "platform/topology.h"

namespace procon::platform {

Platform::Platform() : topology_(std::make_unique<Topology>()) {}

Platform::Platform(const Platform& other)
    : nodes_(other.nodes_), topology_(std::make_unique<Topology>(*other.topology_)) {}

Platform::Platform(Platform&& other) noexcept = default;

Platform& Platform::operator=(const Platform& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    // Assign into the resident Topology when possible (keeps warm rebinds
    // allocation-light); a moved-from target has no resident one.
    if (topology_) {
      *topology_ = *other.topology_;
    } else {
      topology_ = std::make_unique<Topology>(*other.topology_);
    }
  }
  return *this;
}

Platform& Platform::operator=(Platform&& other) noexcept = default;

Platform::~Platform() = default;

Platform Platform::homogeneous(std::size_t count, const std::string& prefix) {
  Platform p;
  for (std::size_t i = 0; i < count; ++i) {
    p.add_node(prefix + std::to_string(i));
  }
  return p;
}

NodeId Platform::add_node(std::string name, NodeType type) {
  nodes_.push_back(Node{std::move(name), type});
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::size_t Platform::type_count() const noexcept {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    count = std::max<std::size_t>(count, static_cast<std::size_t>(n.type) + 1);
  }
  return count;
}

const Node& Platform::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("invalid node id");
  return nodes_[id];
}

NodeId Platform::find_node(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

void Platform::set_topology(Topology topology) {
  if (!topology.none() && topology.node_count() != nodes_.size()) {
    throw std::invalid_argument("Platform::set_topology: node count mismatch");
  }
  *topology_ = std::move(topology);
}

bool Platform::has_topology() const noexcept { return !topology_->none(); }

}  // namespace procon::platform
