#include "platform/system.h"

#include <stdexcept>

#include "platform/system_view.h"

#include "sdf/algorithms.h"
#include "sdf/repetition.h"

namespace procon::platform {

System::System(std::vector<sdf::Graph> apps, Platform platform, Mapping mapping)
    : apps_(std::move(apps)), platform_(std::move(platform)), mapping_(std::move(mapping)) {}

void System::set_mapping(Mapping mapping) {
  if (mapping.app_count() != apps_.size()) {
    throw sdf::GraphError("System::set_mapping: mapping/application count mismatch");
  }
  mapping_ = std::move(mapping);
}

const sdf::Graph& System::app(sdf::AppId id) const {
  if (id >= apps_.size()) throw std::out_of_range("System::app: invalid id");
  return apps_[id];
}

System System::restrict_to(const UseCase& use_case) const {
  return SystemView(*this, use_case).materialise();
}

void System::append_app(sdf::Graph app, std::span<const NodeId> nodes) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("System::append_app: mapping size mismatch");
  }
  apps_.push_back(std::move(app));
  mapping_.push_app(nodes);
}

void System::pop_app() {
  if (apps_.empty()) throw std::out_of_range("System::pop_app: no applications");
  apps_.pop_back();
  mapping_.pop_app();
}

UseCase System::full_use_case() const {
  UseCase uc(apps_.size());
  for (sdf::AppId i = 0; i < apps_.size(); ++i) uc[i] = i;
  return uc;
}

void System::validate() const {
  if (!mapping_.is_complete()) {
    throw sdf::GraphError("System: mapping is incomplete");
  }
  if (mapping_.app_count() != apps_.size()) {
    throw sdf::GraphError("System: mapping/application count mismatch");
  }
  for (sdf::AppId id = 0; id < apps_.size(); ++id) {
    const sdf::Graph& g = apps_[id];
    if (g.actor_count() == 0) {
      throw sdf::GraphError("System: application '" + g.name() + "' is empty");
    }
    if (!sdf::is_consistent(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' is inconsistent");
    }
    if (!sdf::is_deadlock_free(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' deadlocks");
    }
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      if (mapping_.node_of(id, a) >= platform_.node_count()) {
        throw sdf::GraphError("System: actor mapped to nonexistent node");
      }
    }
  }
}

}  // namespace procon::platform
