#include "platform/system.h"

#include <stdexcept>

#include "sdf/algorithms.h"
#include "sdf/repetition.h"

namespace procon::platform {

System::System(std::vector<sdf::Graph> apps, Platform platform, Mapping mapping)
    : apps_(std::move(apps)), platform_(std::move(platform)), mapping_(std::move(mapping)) {}

void System::set_mapping(Mapping mapping) {
  if (mapping.app_count() != apps_.size()) {
    throw sdf::GraphError("System::set_mapping: mapping/application count mismatch");
  }
  mapping_ = std::move(mapping);
}

const sdf::Graph& System::app(sdf::AppId id) const {
  if (id >= apps_.size()) throw std::out_of_range("System::app: invalid id");
  return apps_[id];
}

System System::restrict_to(const UseCase& use_case) const {
  std::vector<sdf::Graph> apps;
  apps.reserve(use_case.size());
  for (const sdf::AppId id : use_case) {
    apps.push_back(app(id));  // bounds-checked
  }
  Mapping m(apps);
  for (sdf::AppId newid = 0; newid < use_case.size(); ++newid) {
    const sdf::AppId oldid = use_case[newid];
    for (sdf::ActorId a = 0; a < apps[newid].actor_count(); ++a) {
      m.assign(newid, a, mapping_.node_of(oldid, a));
    }
  }
  return System(std::move(apps), platform_, std::move(m));
}

UseCase System::full_use_case() const {
  UseCase uc(apps_.size());
  for (sdf::AppId i = 0; i < apps_.size(); ++i) uc[i] = i;
  return uc;
}

void System::validate() const {
  if (!mapping_.is_complete()) {
    throw sdf::GraphError("System: mapping is incomplete");
  }
  if (mapping_.app_count() != apps_.size()) {
    throw sdf::GraphError("System: mapping/application count mismatch");
  }
  for (sdf::AppId id = 0; id < apps_.size(); ++id) {
    const sdf::Graph& g = apps_[id];
    if (g.actor_count() == 0) {
      throw sdf::GraphError("System: application '" + g.name() + "' is empty");
    }
    if (!sdf::is_consistent(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' is inconsistent");
    }
    if (!sdf::is_deadlock_free(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' deadlocks");
    }
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      if (mapping_.node_of(id, a) >= platform_.node_count()) {
        throw sdf::GraphError("System: actor mapped to nonexistent node");
      }
    }
  }
}

}  // namespace procon::platform
