#include "platform/system.h"

#include <stdexcept>

#include "platform/system_view.h"

#include "sdf/algorithms.h"
#include "sdf/repetition.h"
#include "sdf/zobrist.h"

namespace procon::platform {

namespace {
using sdf::ZobristHash;

std::uint64_t node_component(const Platform& p) noexcept {
  std::uint64_t comp = 0;
  for (NodeId n = 0; n < p.node_count(); ++n) {
    comp ^= ZobristHash::node_feature(n, p.node(n).type);
  }
  return comp;
}

// Slot-free component of the interconnect: the shape feature XORed with one
// feature per link. Kind None contributes exactly 0, which is what keeps
// no-topology fingerprints bitwise identical to pre-interconnect ones.
std::uint64_t topology_component(const Topology& t) noexcept {
  if (t.none()) return 0;
  std::uint64_t comp = ZobristHash::topology_feature(
      static_cast<std::uint8_t>(t.kind()), static_cast<std::uint32_t>(t.rows()),
      static_cast<std::uint32_t>(t.cols()));
  for (LinkId l = 0; l < t.link_count(); ++l) {
    const Link& lk = t.link(l);
    comp ^= ZobristHash::link_feature(l, lk.src, lk.dst, lk.width, lk.latency);
  }
  return comp;
}

std::uint64_t link_feature_of(const Topology& t, LinkId id) {
  const Link& lk = t.link(id);
  return ZobristHash::link_feature(id, lk.src, lk.dst, lk.width, lk.latency);
}
}  // namespace

System::System() : System({}, Platform{}, Mapping{}) {}

// The constructor is the from-scratch fingerprint computation — the oracle
// every incremental update (set_mapping/append_app/pop_app) is tested
// against. Mapping maintains its own fingerprint, so only the platform and
// per-app graph components are hashed here.
System::System(std::vector<sdf::Graph> apps, Platform platform, Mapping mapping)
    : apps_(std::move(apps)), platform_(std::move(platform)), mapping_(std::move(mapping)) {
  node_comp_ = node_component(platform_);
  topo_comp_ = topology_component(platform_.topology());
  platform_placed_ =
      ZobristHash::place(ZobristHash::kPlatformTag, 0, node_comp_ ^ topo_comp_);
  app_comp_.reserve(apps_.size());
  for (sdf::AppId i = 0; i < apps_.size(); ++i) {
    app_comp_.push_back(ZobristHash::graph_component(apps_[i]));
    apps_fp_ ^= ZobristHash::place(ZobristHash::kAppTag, i, app_comp_.back());
  }
}

void System::set_mapping(Mapping&& mapping) {
  if (mapping.app_count() != apps_.size()) {
    throw sdf::GraphError("System::set_mapping: mapping/application count mismatch");
  }
  // The incoming Mapping carries its own live fingerprint, so the system
  // fingerprint (which XORs it in on read) needs no extra work here.
  mapping_ = std::move(mapping);
}

void System::set_mapping(const Mapping& mapping) {
  if (mapping.app_count() != apps_.size()) {
    throw sdf::GraphError("System::set_mapping: mapping/application count mismatch");
  }
  // Copy-assign in place: same-shape rows reuse the resident rows' heap
  // storage, keeping warm explorer/racer rebinds allocation-free.
  mapping_ = mapping;
}

void System::set_topology(Topology topology) {
  platform_.set_topology(std::move(topology));
  topo_comp_ = topology_component(platform_.topology());
  platform_placed_ =
      ZobristHash::place(ZobristHash::kPlatformTag, 0, node_comp_ ^ topo_comp_);
}

void System::set_link_width(LinkId id, std::uint32_t width) {
  Topology& t = platform_.mutable_topology();
  topo_comp_ ^= link_feature_of(t, id);
  t.set_link_width(id, width);
  topo_comp_ ^= link_feature_of(t, id);
  platform_placed_ =
      ZobristHash::place(ZobristHash::kPlatformTag, 0, node_comp_ ^ topo_comp_);
}

void System::set_link_latency(LinkId id, sdf::Time latency) {
  Topology& t = platform_.mutable_topology();
  topo_comp_ ^= link_feature_of(t, id);
  t.set_link_latency(id, latency);
  topo_comp_ ^= link_feature_of(t, id);
  platform_placed_ =
      ZobristHash::place(ZobristHash::kPlatformTag, 0, node_comp_ ^ topo_comp_);
}

const sdf::Graph& System::app(sdf::AppId id) const {
  if (id >= apps_.size()) throw std::out_of_range("System::app: invalid id");
  return apps_[id];
}

System System::restrict_to(const UseCase& use_case) const {
  return SystemView(*this, use_case).materialise();
}

void System::append_app(sdf::Graph app, std::span<const NodeId> nodes) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("System::append_app: mapping size mismatch");
  }
  apps_.push_back(std::move(app));
  mapping_.push_app(nodes);
  // O(new app) fingerprint delta: hash only the appended graph.
  app_comp_.push_back(ZobristHash::graph_component(apps_.back()));
  apps_fp_ ^= ZobristHash::place(ZobristHash::kAppTag, apps_.size() - 1,
                                 app_comp_.back());
}

void System::pop_app() {
  if (apps_.empty()) throw std::out_of_range("System::pop_app: no applications");
  apps_fp_ ^= ZobristHash::place(ZobristHash::kAppTag, apps_.size() - 1,
                                 app_comp_.back());
  apps_.pop_back();
  app_comp_.pop_back();
  mapping_.pop_app();
}

UseCase System::full_use_case() const {
  UseCase uc(apps_.size());
  for (sdf::AppId i = 0; i < apps_.size(); ++i) uc[i] = i;
  return uc;
}

void System::validate() const {
  if (!mapping_.is_complete()) {
    throw sdf::GraphError("System: mapping is incomplete");
  }
  if (platform_.has_topology() &&
      platform_.topology().node_count() != platform_.node_count()) {
    throw sdf::GraphError("System: topology/platform node count mismatch");
  }
  if (mapping_.app_count() != apps_.size()) {
    throw sdf::GraphError("System: mapping/application count mismatch");
  }
  for (sdf::AppId id = 0; id < apps_.size(); ++id) {
    const sdf::Graph& g = apps_[id];
    if (g.actor_count() == 0) {
      throw sdf::GraphError("System: application '" + g.name() + "' is empty");
    }
    if (!sdf::is_consistent(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' is inconsistent");
    }
    if (!sdf::is_deadlock_free(g)) {
      throw sdf::GraphError("System: application '" + g.name() + "' deadlocks");
    }
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      if (mapping_.node_of(id, a) >= platform_.node_count()) {
        throw sdf::GraphError("System: actor mapped to nonexistent node");
      }
    }
  }
}

}  // namespace procon::platform
