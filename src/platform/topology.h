// Interconnect model: the network the platform's nodes talk over.
//
// The paper models contention only at shared processors; a real MPSoC
// also contends on the interconnect. A Topology attaches a network shape
// (shared bus, bidirectional ring, or 2D mesh) to a Platform, with a
// per-link transfer width and latency and *deterministic minimal
// routing* (netsim-style dimension-order XY on the mesh, shortest
// direction on the ring, the one shared medium on the bus). Channels
// whose producer and consumer are mapped to different nodes are routed
// over a fixed link sequence; both analysis tiers consume those routes —
// sim::SimEngine arbitrates each link FCFS with real events, and
// prob::ContentionEstimator folds per-link loads into its waiting-time
// fixed point.
//
// A default-constructed Topology has kind None: no links, no routing, and
// every consumer of the model reproduces the pre-interconnect results
// bitwise (the backward-compatibility contract tested in
// tests/test_interconnect.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/platform.h"
#include "sdf/types.h"

namespace procon::platform {

/// Index of a directed link within a Topology.
using LinkId = std::uint32_t;
/// Sentinel for "no link" (unreachable direction in routing tables).
inline constexpr LinkId kInvalidLink = 0xFFFFFFFFu;

/// The interconnect shape attached to a Platform.
enum class TopologyKind : std::uint8_t {
  None = 0,  ///< No interconnect: inter-node transfers are free (legacy model).
  Bus = 1,   ///< One shared medium every inter-node transfer arbitrates for.
  Ring = 2,  ///< Bidirectional ring; minimal-direction routing, ties clockwise.
  Mesh2D = 3 ///< rows x cols grid; deterministic XY dimension-order routing.
};

/// One directed link of the interconnect.
///
/// `width` tokens cross the link per time unit once a transfer is granted;
/// `latency` is the fixed grant-to-first-token delay. The transfer of `t`
/// tokens therefore occupies the link for `latency + ceil(t / width)` time
/// units (see Topology::service_time).
struct Link {
  /// Source node, or kInvalidNode for the bus's shared medium.
  NodeId src = kInvalidNode;
  /// Destination node, or kInvalidNode for the bus's shared medium.
  NodeId dst = kInvalidNode;
  /// Tokens transferred per time unit (>= 1; factory-clamped).
  std::uint32_t width = 1;
  /// Fixed per-transfer setup delay (>= 0; factory-clamped).
  sdf::Time latency = 1;

  /// Field-wise equality (endpoints and attributes).
  [[nodiscard]] friend bool operator==(const Link&, const Link&) = default;
};

/// \brief Interconnect topology: links plus deterministic minimal routing.
///
/// Construct via the bus / ring / mesh factories (a default-constructed
/// instance is kind None and routes nothing). Link structure is canonical
/// per (kind, dimensions) — only widths and latencies are mutable — so two
/// topologies compare equal iff their Zobrist features match, which is what
/// keeps fingerprint-keyed caches (transposition table, cluster routing,
/// per-topology engine caches) sound.
class Topology {
 public:
  /// The no-interconnect topology (kind None, zero links).
  Topology() = default;

  /// A single shared bus over `nodes` processing nodes: every inter-node
  /// transfer crosses the one shared link. Throws std::invalid_argument if
  /// `nodes` == 0. `width` is clamped to >= 1, `latency` to >= 0.
  [[nodiscard]] static Topology bus(std::size_t nodes, std::uint32_t width = 1,
                                    sdf::Time latency = 1);

  /// A bidirectional ring over `nodes` processing nodes (2 directed links
  /// per node: clockwise link 2i goes i -> (i+1) mod n, counter-clockwise
  /// link 2i+1 goes i -> (i-1) mod n). Routing takes the minimal direction;
  /// equidistant ties go clockwise. Throws std::invalid_argument if
  /// `nodes` < 2.
  [[nodiscard]] static Topology ring(std::size_t nodes, std::uint32_t width = 1,
                                     sdf::Time latency = 1);

  /// A `rows` x `cols` 2D mesh (node r*cols+c sits at row r, column c) with
  /// directed links to each grid neighbour. Routing is deterministic XY
  /// dimension order: correct the column first, then the row. Throws
  /// std::invalid_argument if either dimension is 0 or rows*cols < 2.
  [[nodiscard]] static Topology mesh(std::size_t rows, std::size_t cols,
                                     std::uint32_t width = 1,
                                     sdf::Time latency = 1);

  /// The shape of this interconnect (None for the default instance).
  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  /// True when kind() == TopologyKind::None (no routing happens).
  [[nodiscard]] bool none() const noexcept { return kind_ == TopologyKind::None; }
  /// Number of processing nodes this topology spans (0 when none()).
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  /// Mesh row count (0 unless kind() == Mesh2D).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  /// Mesh column count (0 unless kind() == Mesh2D).
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Number of directed links.
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  /// The link with index `id`. Throws std::out_of_range on a bad id.
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Sets the width of link `id` (clamped to >= 1). Throws
  /// std::out_of_range on a bad id. Mutate through System::set_link_width
  /// when the topology is installed in a System, so its fingerprint tracks.
  void set_link_width(LinkId id, std::uint32_t width);
  /// Sets the latency of link `id` (clamped to >= 0). Throws
  /// std::out_of_range on a bad id. Mutate through System::set_link_latency
  /// when the topology is installed in a System.
  void set_link_latency(LinkId id, sdf::Time latency);

  /// Appends the deterministic minimal route from `src` to `dst` to `out`
  /// and returns the number of links appended (0 when src == dst or
  /// none()). Throws std::out_of_range if either node is outside the
  /// topology. The route depends only on structure, never on traffic, so
  /// repeated calls are bitwise-identical — the determinism every cached
  /// route table relies on.
  std::size_t route(NodeId src, NodeId dst, std::vector<LinkId>& out) const;

  /// Time link `id` is occupied transferring `tokens` tokens:
  /// latency + ceil(tokens / width), or 0 when `tokens` == 0. Throws
  /// std::out_of_range on a bad id.
  [[nodiscard]] sdf::Time service_time(LinkId id, std::uint64_t tokens) const;

  /// Structural equality (kind, dimensions, every link field).
  [[nodiscard]] friend bool operator==(const Topology&, const Topology&) = default;

 private:
  TopologyKind kind_ = TopologyKind::None;
  std::uint32_t nodes_ = 0;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<Link> links_;
  // Mesh routing table: dir_link_[node*4 + direction] with directions
  // 0=east(+col) 1=west(-col) 2=south(+row) 3=north(-row); kInvalidLink on
  // grid borders. Built once by the mesh factory.
  std::vector<LinkId> dir_link_;
};

}  // namespace procon::platform
