#include "platform/mapping.h"

#include <algorithm>
#include <stdexcept>

#include "sdf/repetition.h"

namespace procon::platform {

namespace {
using sdf::ZobristHash;
}  // namespace

Mapping::Mapping(std::span<const sdf::Graph> apps) {
  node_of_.reserve(apps.size());
  row_comp_.reserve(apps.size());
  for (const sdf::Graph& g : apps) {
    node_of_.emplace_back(g.actor_count(), kInvalidNode);
    row_comp_.push_back(ZobristHash::mapping_row_component(node_of_.back()));
    fp_ ^= ZobristHash::place(ZobristHash::kMappingTag, node_of_.size() - 1,
                              row_comp_.back());
  }
}

void Mapping::assign(sdf::AppId app, sdf::ActorId actor, NodeId node) {
  if (app >= node_of_.size() || actor >= node_of_[app].size()) {
    throw std::out_of_range("Mapping::assign: invalid actor");
  }
  NodeId& slot = node_of_[app][actor];
  if (slot != node) {
    // O(1) fingerprint maintenance: swap the row's old placed component for
    // the new one, and the actor's old feature for the new inside the row.
    fp_ ^= ZobristHash::place(ZobristHash::kMappingTag, app, row_comp_[app]);
    row_comp_[app] ^= ZobristHash::mapping_feature(actor, slot) ^
                      ZobristHash::mapping_feature(actor, node);
    fp_ ^= ZobristHash::place(ZobristHash::kMappingTag, app, row_comp_[app]);
    slot = node;
  }
}

void Mapping::push_app(std::span<const NodeId> nodes) {
  node_of_.emplace_back(nodes.begin(), nodes.end());
  row_comp_.push_back(ZobristHash::mapping_row_component(nodes));
  fp_ ^= ZobristHash::place(ZobristHash::kMappingTag, node_of_.size() - 1,
                            row_comp_.back());
}

void Mapping::pop_app() {
  if (node_of_.empty()) throw std::out_of_range("Mapping::pop_app: no applications");
  fp_ ^= ZobristHash::place(ZobristHash::kMappingTag, node_of_.size() - 1,
                            row_comp_.back());
  node_of_.pop_back();
  row_comp_.pop_back();
}

NodeId Mapping::node_of(sdf::AppId app, sdf::ActorId actor) const {
  if (app >= node_of_.size() || actor >= node_of_[app].size()) {
    throw std::out_of_range("Mapping::node_of: invalid actor");
  }
  return node_of_[app][actor];
}

std::vector<GlobalActor> Mapping::actors_on(NodeId node) const {
  std::vector<GlobalActor> out;
  for (sdf::AppId app = 0; app < node_of_.size(); ++app) {
    for (sdf::ActorId a = 0; a < node_of_[app].size(); ++a) {
      if (node_of_[app][a] == node) out.push_back(GlobalActor{app, a});
    }
  }
  return out;
}

bool Mapping::is_complete() const noexcept {
  for (const auto& app : node_of_) {
    for (const NodeId n : app) {
      if (n == kInvalidNode) return false;
    }
  }
  return true;
}

Mapping Mapping::by_index(std::span<const sdf::Graph> apps, const Platform& platform) {
  Mapping m(apps);
  for (sdf::AppId app = 0; app < apps.size(); ++app) {
    for (sdf::ActorId a = 0; a < apps[app].actor_count(); ++a) {
      if (a >= platform.node_count()) {
        throw std::out_of_range("Mapping::by_index: not enough nodes");
      }
      m.assign(app, a, static_cast<NodeId>(a));
    }
  }
  return m;
}

Mapping Mapping::random(std::span<const sdf::Graph> apps, const Platform& platform,
                        util::Rng& rng) {
  if (platform.node_count() == 0) {
    throw std::invalid_argument("Mapping::random: empty platform");
  }
  Mapping m(apps);
  for (sdf::AppId app = 0; app < apps.size(); ++app) {
    for (sdf::ActorId a = 0; a < apps[app].actor_count(); ++a) {
      m.assign(app, a, static_cast<NodeId>(rng.uniform_int(
                           0, static_cast<std::int64_t>(platform.node_count()) - 1)));
    }
  }
  return m;
}

Mapping Mapping::load_balanced(std::span<const sdf::Graph> apps,
                               const Platform& platform) {
  if (platform.node_count() == 0) {
    throw std::invalid_argument("Mapping::load_balanced: empty platform");
  }
  struct Item {
    sdf::AppId app;
    sdf::ActorId actor;
    double work;
  };
  std::vector<Item> items;
  for (sdf::AppId app = 0; app < apps.size(); ++app) {
    const auto q = sdf::compute_repetition_vector(apps[app]);
    for (sdf::ActorId a = 0; a < apps[app].actor_count(); ++a) {
      const double reps = q ? static_cast<double>((*q)[a]) : 1.0;
      items.push_back(
          {app, a, reps * static_cast<double>(apps[app].actor(a).exec_time)});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& x, const Item& y) { return x.work > y.work; });

  Mapping m(apps);
  std::vector<double> load(platform.node_count(), 0.0);
  for (const Item& it : items) {
    const auto best = static_cast<NodeId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    m.assign(it.app, it.actor, best);
    load[best] += it.work;
  }
  return m;
}

}  // namespace procon::platform
