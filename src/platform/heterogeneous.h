// Heterogeneous execution times.
//
// The paper targets "non-preemptive heterogeneous multi-processor
// platforms": the same task takes different time on a RISC host, a DSP or
// a dedicated accelerator. A HeterogeneousTiming table records, per actor
// and node *type*, the execution time on that type; apply() materialises a
// System whose graphs carry the execution times implied by the current
// mapping, after which every analysis (estimator, WCRT, simulator) works
// unchanged - the mapping decides the times.
#pragma once

#include <span>
#include <vector>

#include "platform/system.h"
#include "sdf/graph.h"

namespace procon::platform {

class HeterogeneousTiming {
 public:
  /// Table for `apps` over `type_count` node types; every entry defaults to
  /// "use the graph's own execution time".
  HeterogeneousTiming(std::span<const sdf::Graph> apps, std::size_t type_count);

  /// Sets the execution time of (app, actor) on nodes of `type`.
  /// Throws std::out_of_range / sdf::GraphError on invalid arguments.
  void set(sdf::AppId app, sdf::ActorId actor, NodeType type, sdf::Time time);

  /// Time of (app, actor) on `type`; falls back to `base` when unset.
  [[nodiscard]] sdf::Time get(sdf::AppId app, sdf::ActorId actor, NodeType type,
                              sdf::Time base) const;

  [[nodiscard]] std::size_t type_count() const noexcept { return type_count_; }

  /// Returns a copy of `sys` whose application graphs carry the execution
  /// times this table implies under sys.mapping(). Unset entries keep the
  /// graph's base time. Throws sdf::GraphError if the system's shape does
  /// not match the table.
  [[nodiscard]] System apply(const System& sys) const;

 private:
  static constexpr sdf::Time kUnset = -1;
  std::size_t type_count_;
  // times_[app][actor][type]; kUnset = fall back to the graph's time.
  std::vector<std::vector<std::vector<sdf::Time>>> times_;
};

}  // namespace procon::platform
