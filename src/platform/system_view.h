// SystemView: a non-owning, index-remapped restriction of a System to a
// UseCase — the zero-copy counterpart of System::restrict_to.
//
// A view holds only the parent pointer plus remap tables (view app id ->
// parent app id, and flattened actor/channel offsets in view order); no
// graph, platform or mapping data is copied. Consumers that used to pay a
// full restrict_to deep copy per swept use-case (the estimator, the WCRT
// bounds, the simulator, Workbench sweeps) read the selected applications
// through the view instead. A full-system view (every application, in
// order) is the identity remap, so the same code path serves restricted
// and unrestricted queries.
//
// View-local ids: application i of the view is parent application
// use_case()[i]; actor and channel ids stay app-local (restriction never
// renumbers within an application), and the flattened actor/channel id
// spaces (actor_base/channel_base) are in view order — exactly the
// numbering a materialised restrict_to copy would produce.
//
// Lifetime: the view borrows the parent System, which must outlive it.
// The parent must not be structurally modified (apps appended/removed)
// while views over it are in use; rebinding the mapping in place
// (System::set_mapping) is visible through the view, by design.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/system.h"

namespace procon::platform {

/// \brief Non-owning, index-remapped restriction of a System to a UseCase —
/// the zero-copy counterpart of System::restrict_to.
///
/// Holds only the parent pointer plus remap tables; see the header comment
/// above for id conventions and the lifetime contract (the parent System
/// must outlive the view and must not be structurally modified while views
/// over it are in use).
///
/// Thread-safety: a view is immutable after construction; concurrent reads
/// through distinct or shared views are safe as long as the parent System
/// is not mutated.
class SystemView {
 public:
  /// Unbound view — only valid as a rebind() target (reusable scratch
  /// storage in session objects); every other member is undefined until the
  /// first rebind().
  SystemView() = default;

  /// Full view: every application of `sys`, identity remap.
  explicit SystemView(const System& sys);

  /// Restriction to `use_case` (parent app ids; need not be sorted, must be
  /// in range — throws std::out_of_range like restrict_to did). Entries are
  /// remapped to view ids 0..k-1 in use-case order.
  SystemView(const System& sys, UseCase use_case);

  /// Re-points this view at (`sys`, `use_case`), reusing the remap tables'
  /// capacity — the steady-state alternative to constructing a fresh view
  /// per swept use-case (three vector allocations each). After rebinding,
  /// the view is indistinguishable from SystemView(sys, use_case); warm
  /// rebinds within previously-seen use-case sizes allocate nothing. The
  /// same lifetime rules apply to the new parent.
  void rebind(const System& sys, std::span<const sdf::AppId> use_case);

  /// The borrowed parent System.
  [[nodiscard]] const System& parent() const noexcept { return *sys_; }
  /// View app id -> parent app id table (the use-case, verbatim).
  [[nodiscard]] std::span<const sdf::AppId> use_case() const noexcept { return uc_; }

  /// Number of selected applications.
  [[nodiscard]] std::size_t app_count() const noexcept { return uc_.size(); }
  /// Parent application id of view application `view_app`.
  [[nodiscard]] sdf::AppId parent_app(sdf::AppId view_app) const { return uc_.at(view_app); }
  /// Graph of view application `view_app` (read through the parent).
  [[nodiscard]] const sdf::Graph& app(sdf::AppId view_app) const {
    return sys_->app(uc_.at(view_app));
  }
  /// The parent's platform (restriction never changes the platform).
  [[nodiscard]] const Platform& platform() const noexcept { return sys_->platform(); }
  /// Node of actor `actor` of view application `view_app`.
  [[nodiscard]] NodeId node_of(sdf::AppId view_app, sdf::ActorId actor) const {
    return sys_->mapping().node_of(uc_.at(view_app), actor);
  }

  // ---- flattened actor/channel id remap tables (view order) ---------------

  /// Total actors over the selected applications.
  [[nodiscard]] std::size_t actor_count() const noexcept { return actor_base_.back(); }
  /// Total channels over the selected applications.
  [[nodiscard]] std::size_t channel_count() const noexcept { return channel_base_.back(); }
  /// First flat actor id of view application `view_app` (actor_base(k) ==
  /// actor_count() for view_app == app_count()).
  [[nodiscard]] std::uint32_t actor_base(sdf::AppId view_app) const {
    return actor_base_.at(view_app);
  }
  /// First flat channel id of view application `view_app` (channel_base(k)
  /// == channel_count() for view_app == app_count()).
  [[nodiscard]] std::uint32_t channel_base(sdf::AppId view_app) const {
    return channel_base_.at(view_app);
  }
  /// View application owning flat actor id `flat` (binary search).
  [[nodiscard]] sdf::AppId app_of_actor(std::uint32_t flat) const;

  /// Zobrist fingerprint of the restriction, bitwise equal to
  /// materialise().fingerprint() — derived on demand from the parent's
  /// cached per-app components re-placed at view slots, in O(use-case
  /// size) instead of O(selected structure) and without allocating.
  /// Computed per call (not cached) so mapping rebinds on the parent
  /// (System::set_mapping), which are visible through the view by design,
  /// are reflected. Like the System fingerprint it is name-free, so
  /// structurally identical use-cases of different tenants fingerprint
  /// equal (the transposition-sharing hook).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Deep copy: a standalone System equal to what restrict_to returns
  /// (graphs in view order, mapping rows remapped).
  [[nodiscard]] System materialise() const;

  /// Validation of the selected applications only: their mapping rows are
  /// complete and in range, each selected app consistent & deadlock-free.
  /// Throws sdf::GraphError on violation (matches System::validate on the
  /// materialised restriction).
  void validate() const;

 private:
  const System* sys_ = nullptr;
  UseCase uc_;
  std::vector<std::uint32_t> actor_base_;    // size app_count()+1
  std::vector<std::uint32_t> channel_base_;  // size app_count()+1
};

}  // namespace procon::platform
