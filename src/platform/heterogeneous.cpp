#include "platform/heterogeneous.h"

#include <stdexcept>

namespace procon::platform {

HeterogeneousTiming::HeterogeneousTiming(std::span<const sdf::Graph> apps,
                                         std::size_t type_count)
    : type_count_(type_count) {
  if (type_count_ == 0) {
    throw std::invalid_argument("HeterogeneousTiming: need at least one type");
  }
  times_.reserve(apps.size());
  for (const sdf::Graph& g : apps) {
    times_.emplace_back(g.actor_count(), std::vector<sdf::Time>(type_count_, kUnset));
  }
}

void HeterogeneousTiming::set(sdf::AppId app, sdf::ActorId actor, NodeType type,
                              sdf::Time time) {
  if (app >= times_.size() || actor >= times_[app].size() || type >= type_count_) {
    throw std::out_of_range("HeterogeneousTiming::set: invalid index");
  }
  if (time < 0) throw sdf::GraphError("HeterogeneousTiming: negative time");
  times_[app][actor][type] = time;
}

sdf::Time HeterogeneousTiming::get(sdf::AppId app, sdf::ActorId actor, NodeType type,
                                   sdf::Time base) const {
  if (app >= times_.size() || actor >= times_[app].size() || type >= type_count_) {
    throw std::out_of_range("HeterogeneousTiming::get: invalid index");
  }
  const sdf::Time t = times_[app][actor][type];
  return t == kUnset ? base : t;
}

System HeterogeneousTiming::apply(const System& sys) const {
  if (sys.app_count() != times_.size()) {
    throw sdf::GraphError("HeterogeneousTiming::apply: application count mismatch");
  }
  if (sys.platform().type_count() > type_count_) {
    throw sdf::GraphError("HeterogeneousTiming::apply: platform uses unknown types");
  }
  std::vector<sdf::Graph> apps;
  apps.reserve(sys.app_count());
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    const sdf::Graph& g = sys.app(i);
    if (g.actor_count() != times_[i].size()) {
      throw sdf::GraphError("HeterogeneousTiming::apply: actor count mismatch");
    }
    std::vector<sdf::Time> effective(g.actor_count());
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      const NodeId node = sys.mapping().node_of(i, a);
      const NodeType type = sys.platform().node(node).type;
      effective[a] = get(i, a, type, g.actor(a).exec_time);
    }
    apps.push_back(g.with_exec_times(effective));
  }
  return System(std::move(apps), sys.platform(), sys.mapping());
}

}  // namespace procon::platform
