#include "platform/topology.h"

#include <stdexcept>

namespace procon::platform {

namespace {

std::uint32_t clamp_width(std::uint32_t width) noexcept {
  return width == 0 ? 1u : width;
}

sdf::Time clamp_latency(sdf::Time latency) noexcept {
  return latency < 0 ? sdf::Time{0} : latency;
}

std::uint32_t checked_node_count(std::size_t nodes) {
  if (nodes > 0xFFFFFFFFu) throw std::invalid_argument("Topology: too many nodes");
  return static_cast<std::uint32_t>(nodes);
}

}  // namespace

Topology Topology::bus(std::size_t nodes, std::uint32_t width, sdf::Time latency) {
  if (nodes == 0) throw std::invalid_argument("Topology::bus: no nodes");
  Topology t;
  t.kind_ = TopologyKind::Bus;
  t.nodes_ = checked_node_count(nodes);
  t.links_.push_back(
      Link{kInvalidNode, kInvalidNode, clamp_width(width), clamp_latency(latency)});
  return t;
}

Topology Topology::ring(std::size_t nodes, std::uint32_t width, sdf::Time latency) {
  if (nodes < 2) throw std::invalid_argument("Topology::ring: need >= 2 nodes");
  Topology t;
  t.kind_ = TopologyKind::Ring;
  t.nodes_ = checked_node_count(nodes);
  t.links_.reserve(2 * nodes);
  const std::uint32_t w = clamp_width(width);
  const sdf::Time l = clamp_latency(latency);
  for (std::uint32_t i = 0; i < t.nodes_; ++i) {
    t.links_.push_back(Link{i, (i + 1) % t.nodes_, w, l});            // 2i: clockwise
    t.links_.push_back(Link{i, (i + t.nodes_ - 1) % t.nodes_, w, l}); // 2i+1: ccw
  }
  return t;
}

Topology Topology::mesh(std::size_t rows, std::size_t cols, std::uint32_t width,
                        sdf::Time latency) {
  if (rows == 0 || cols == 0 || rows * cols < 2) {
    throw std::invalid_argument("Topology::mesh: need >= 2 nodes");
  }
  Topology t;
  t.kind_ = TopologyKind::Mesh2D;
  t.nodes_ = checked_node_count(rows * cols);
  t.rows_ = static_cast<std::uint32_t>(rows);
  t.cols_ = static_cast<std::uint32_t>(cols);
  t.dir_link_.assign(static_cast<std::size_t>(t.nodes_) * 4, kInvalidLink);
  const std::uint32_t w = clamp_width(width);
  const sdf::Time l = clamp_latency(latency);
  // Canonical enumeration: per node in id order, east / west / south / north.
  for (std::uint32_t n = 0; n < t.nodes_; ++n) {
    const std::uint32_t r = n / t.cols_;
    const std::uint32_t c = n % t.cols_;
    const auto add = [&](std::size_t dir, std::uint32_t dst) {
      t.dir_link_[static_cast<std::size_t>(n) * 4 + dir] =
          static_cast<LinkId>(t.links_.size());
      t.links_.push_back(Link{n, dst, w, l});
    };
    if (c + 1 < t.cols_) add(0, n + 1);
    if (c > 0) add(1, n - 1);
    if (r + 1 < t.rows_) add(2, n + t.cols_);
    if (r > 0) add(3, n - t.cols_);
  }
  return t;
}

const Link& Topology::link(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("Topology::link: bad id");
  return links_[id];
}

void Topology::set_link_width(LinkId id, std::uint32_t width) {
  if (id >= links_.size()) throw std::out_of_range("Topology::set_link_width: bad id");
  links_[id].width = clamp_width(width);
}

void Topology::set_link_latency(LinkId id, sdf::Time latency) {
  if (id >= links_.size()) {
    throw std::out_of_range("Topology::set_link_latency: bad id");
  }
  links_[id].latency = clamp_latency(latency);
}

std::size_t Topology::route(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  if (kind_ == TopologyKind::None) return 0;
  if (src >= nodes_ || dst >= nodes_) {
    throw std::out_of_range("Topology::route: node outside topology");
  }
  if (src == dst) return 0;
  switch (kind_) {
    case TopologyKind::Bus:
      out.push_back(0);
      return 1;
    case TopologyKind::Ring: {
      // Minimal direction; an equidistant tie goes clockwise so the route is
      // a pure function of (src, dst).
      const std::uint32_t cw = (dst + nodes_ - src) % nodes_;
      const std::uint32_t ccw = (src + nodes_ - dst) % nodes_;
      std::size_t hops = 0;
      std::uint32_t at = src;
      if (cw <= ccw) {
        for (std::uint32_t h = 0; h < cw; ++h, ++hops) {
          out.push_back(2 * at);
          at = (at + 1) % nodes_;
        }
      } else {
        for (std::uint32_t h = 0; h < ccw; ++h, ++hops) {
          out.push_back(2 * at + 1);
          at = (at + nodes_ - 1) % nodes_;
        }
      }
      return hops;
    }
    case TopologyKind::Mesh2D: {
      // XY dimension order: correct the column first, then the row.
      std::size_t hops = 0;
      std::uint32_t at = src;
      const std::uint32_t dc = dst % cols_;
      const std::uint32_t dr = dst / cols_;
      while (at % cols_ != dc) {
        const std::size_t dir = (at % cols_ < dc) ? 0 : 1;
        out.push_back(dir_link_[static_cast<std::size_t>(at) * 4 + dir]);
        at = links_[out.back()].dst;
        ++hops;
      }
      while (at / cols_ != dr) {
        const std::size_t dir = (at / cols_ < dr) ? 2 : 3;
        out.push_back(dir_link_[static_cast<std::size_t>(at) * 4 + dir]);
        at = links_[out.back()].dst;
        ++hops;
      }
      return hops;
    }
    case TopologyKind::None:
      break;
  }
  return 0;
}

sdf::Time Topology::service_time(LinkId id, std::uint64_t tokens) const {
  if (id >= links_.size()) throw std::out_of_range("Topology::service_time: bad id");
  if (tokens == 0) return 0;
  const Link& l = links_[id];
  const std::uint64_t slots = (tokens + l.width - 1) / l.width;
  return l.latency + static_cast<sdf::Time>(slots);
}

}  // namespace procon::platform
