// Hardware platform model: a set of named processing nodes.
//
// The paper's platform is a heterogeneous MPSoC whose nodes are
// non-preemptive processing elements (DSPs, accelerators, IP blocks).
// For contention analysis only the identity of nodes matters; the
// arbitration policy is a property of the simulator / analysis chosen.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sdf/types.h"

namespace procon::platform {

/// Index of a processing node within a Platform.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Identifies a class of processing elements (RISC, DSP, accelerator...).
/// Actors may have type-dependent execution times (see heterogeneous.h).
using NodeType = std::uint32_t;

/// One processing element.
struct Node {
  std::string name;
  NodeType type = 0;
};

class Topology;  // platform/topology.h

/// A set of processing nodes, optionally joined by an interconnect.
class Platform {
 public:
  Platform();
  Platform(const Platform&);
  Platform(Platform&&) noexcept;
  Platform& operator=(const Platform&);
  Platform& operator=(Platform&&) noexcept;
  ~Platform();

  /// Convenience: creates `count` nodes named "<prefix>0".."<prefix>N-1",
  /// all of type 0.
  static Platform homogeneous(std::size_t count, const std::string& prefix = "Proc");

  NodeId add_node(std::string name, NodeType type = 0);

  /// Number of distinct node types in use (max type + 1; 0 for an empty
  /// platform).
  [[nodiscard]] std::size_t type_count() const noexcept;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] NodeId find_node(const std::string& name) const noexcept;

  /// Attaches an interconnect. A non-None topology must span exactly
  /// node_count() nodes (throws std::invalid_argument otherwise); passing a
  /// default-constructed Topology detaches the interconnect. When the
  /// platform lives inside a platform::System, mutate through
  /// System::set_topology instead so the system fingerprint tracks.
  void set_topology(Topology topology);

  /// The attached interconnect (kind None when there is none).
  [[nodiscard]] const Topology& topology() const noexcept { return *topology_; }
  /// Mutable access to the attached interconnect, for fingerprint-tracked
  /// link mutation (System::set_link_width / set_link_latency). Replacing
  /// the whole topology must go through set_topology, which validates the
  /// node count.
  [[nodiscard]] Topology& mutable_topology() noexcept { return *topology_; }
  /// True when a non-None interconnect is attached.
  [[nodiscard]] bool has_topology() const noexcept;

 private:
  std::vector<Node> nodes_;
  // Owned indirectly to keep platform.h free of the topology definition
  // (topology.h includes this header for NodeId). Never null.
  std::unique_ptr<Topology> topology_;
};

}  // namespace procon::platform
