// Hardware platform model: a set of named processing nodes.
//
// The paper's platform is a heterogeneous MPSoC whose nodes are
// non-preemptive processing elements (DSPs, accelerators, IP blocks).
// For contention analysis only the identity of nodes matters; the
// arbitration policy is a property of the simulator / analysis chosen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/types.h"

namespace procon::platform {

/// Index of a processing node within a Platform.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Identifies a class of processing elements (RISC, DSP, accelerator...).
/// Actors may have type-dependent execution times (see heterogeneous.h).
using NodeType = std::uint32_t;

/// One processing element.
struct Node {
  std::string name;
  NodeType type = 0;
};

/// A set of processing nodes.
class Platform {
 public:
  Platform() = default;
  /// Convenience: creates `count` nodes named "<prefix>0".."<prefix>N-1",
  /// all of type 0.
  static Platform homogeneous(std::size_t count, const std::string& prefix = "Proc");

  NodeId add_node(std::string name, NodeType type = 0);

  /// Number of distinct node types in use (max type + 1; 0 for an empty
  /// platform).
  [[nodiscard]] std::size_t type_count() const noexcept;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] NodeId find_node(const std::string& name) const noexcept;

 private:
  std::vector<Node> nodes_;
};

}  // namespace procon::platform
