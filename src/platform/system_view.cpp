#include "platform/system_view.h"

#include <algorithm>
#include <stdexcept>

#include "sdf/algorithms.h"
#include "sdf/zobrist.h"
#include "util/contracts.h"

namespace procon::platform {

namespace {

UseCase identity_use_case(const System& sys) {
  UseCase uc(sys.app_count());
  for (sdf::AppId i = 0; i < uc.size(); ++i) uc[i] = i;
  return uc;
}

}  // namespace

SystemView::SystemView(const System& sys) : SystemView(sys, identity_use_case(sys)) {}

SystemView::SystemView(const System& sys, UseCase use_case)
    : sys_(&sys), uc_(std::move(use_case)) {
  rebind(sys, uc_);
}

PROCON_WARM_PATH void SystemView::rebind(const System& sys,
                                         std::span<const sdf::AppId> use_case) {
  PROCON_ASSERT_NO_ALLOC("SystemView::rebind");
  sys_ = &sys;
  // Self-assignment-safe: the constructor rebinds from its own uc_.
  if (use_case.data() != uc_.data() || use_case.size() != uc_.size()) {
    uc_.assign(use_case.begin(), use_case.end());
  }
  actor_base_.clear();
  channel_base_.clear();
  actor_base_.reserve(uc_.size() + 1);
  channel_base_.reserve(uc_.size() + 1);
  std::uint32_t actors = 0;
  std::uint32_t channels = 0;
  for (const sdf::AppId id : uc_) {
    const sdf::Graph& g = sys_->app(id);  // bounds-checked, throws out_of_range
    actor_base_.push_back(actors);
    channel_base_.push_back(channels);
    actors += static_cast<std::uint32_t>(g.actor_count());
    channels += static_cast<std::uint32_t>(g.channel_count());
  }
  actor_base_.push_back(actors);
  channel_base_.push_back(channels);
}

std::uint64_t SystemView::fingerprint() const {
  // Re-place the parent's cached slot-free components at view slots —
  // bitwise what materialise()'s System constructor would compute, at O(1)
  // per selected application and with no allocation. Reads the mapping row
  // components live, so parent set_mapping rebinds are reflected.
  std::uint64_t fp = sys_->platform_fingerprint();
  for (sdf::AppId view_app = 0; view_app < uc_.size(); ++view_app) {
    const sdf::AppId id = uc_[view_app];
    fp ^= sdf::ZobristHash::place(sdf::ZobristHash::kAppTag, view_app,
                                  sys_->app_component(id)) ^
          sdf::ZobristHash::place(sdf::ZobristHash::kMappingTag, view_app,
                                  sys_->mapping().row_component(id));
  }
  return fp;
}

sdf::AppId SystemView::app_of_actor(std::uint32_t flat) const {
  if (flat >= actor_count()) {
    throw std::out_of_range("SystemView::app_of_actor: flat id out of range");
  }
  const auto it =
      std::upper_bound(actor_base_.begin(), actor_base_.end(), flat);
  return static_cast<sdf::AppId>(it - actor_base_.begin() - 1);
}

System SystemView::materialise() const {
  std::vector<sdf::Graph> apps;
  apps.reserve(uc_.size());
  for (const sdf::AppId id : uc_) apps.push_back(sys_->app(id));
  Mapping m(apps);
  for (sdf::AppId newid = 0; newid < uc_.size(); ++newid) {
    for (sdf::ActorId a = 0; a < apps[newid].actor_count(); ++a) {
      m.assign(newid, a, sys_->mapping().node_of(uc_[newid], a));
    }
  }
  return System(std::move(apps), sys_->platform(), std::move(m));
}

void SystemView::validate() const {
  if (sys_->mapping().app_count() != sys_->app_count()) {
    throw sdf::GraphError("SystemView: mapping/application count mismatch");
  }
  for (sdf::AppId i = 0; i < uc_.size(); ++i) {
    const sdf::Graph& g = app(i);
    if (g.actor_count() == 0) {
      throw sdf::GraphError("SystemView: application '" + g.name() + "' is empty");
    }
    if (!sdf::is_consistent(g)) {
      throw sdf::GraphError("SystemView: application '" + g.name() +
                            "' is inconsistent");
    }
    if (!sdf::is_deadlock_free(g)) {
      throw sdf::GraphError("SystemView: application '" + g.name() + "' deadlocks");
    }
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      NodeId node;
      try {
        node = node_of(i, a);
      } catch (const std::out_of_range&) {
        // Mapping row shorter than the application: report it the way
        // System::validate does, not as a raw index error.
        throw sdf::GraphError("SystemView: mapping is incomplete for application '" +
                              g.name() + "'");
      }
      if (node >= platform().node_count()) {
        throw sdf::GraphError("SystemView: actor mapped to nonexistent node");
      }
    }
  }
}

}  // namespace procon::platform
