// Run-time admission control (Section 6: "it is feasible to employ this
// technique for run-time admission control").
//
// The controller keeps one Composite (combined blocking probability and
// weighted blocking time, Eq. 6/7) per processing node, covering every
// actor of every admitted application. Admitting or removing an
// application updates each touched node in O(1) per actor via the
// composability operators and their inverses (Eq. 8/9) - no re-analysis of
// the other applications' internals is needed.
//
// An admission request is granted iff
//   * the new application's predicted period meets its own requirement, and
//   * every already-admitted application's predicted period still meets its
//     registered requirement.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "platform/platform.h"
#include "platform/system.h"
#include "prob/compose.h"
#include "prob/load.h"
#include "sdf/graph.h"

namespace procon::admission {

/// Opaque handle identifying an admitted application.
using AppHandle = std::uint32_t;

/// Quality-of-service requirement: the maximum tolerable period (inverse of
/// the minimum required throughput). Use no_requirement() for best-effort.
struct QoS {
  double max_period = 0.0;
  static QoS no_requirement() noexcept {
    return QoS{std::numeric_limits<double>::infinity()};
  }
};

struct Decision {
  bool admitted = false;
  std::string reason;            ///< human-readable explanation when rejected
  double predicted_period = 0.0; ///< the requesting application's estimate
  /// Predicted period per already-admitted application (post-admission).
  std::vector<double> peer_periods;
  std::optional<AppHandle> handle;  ///< set when admitted
};

class AdmissionController {
 public:
  explicit AdmissionController(platform::Platform platform);

  /// Requests admission of `app` with actor a mapped on `nodes[a]`.
  /// Consistent, deadlock-free graphs only; throws sdf::GraphError otherwise.
  Decision request(const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
                   const QoS& qos);

  /// Removes an admitted application, releasing its load. Throws
  /// std::out_of_range for unknown/stale handles.
  void remove(AppHandle handle);

  [[nodiscard]] std::size_t admitted_count() const noexcept;

  /// Current predicted period of an admitted application (under the
  /// composability-inverse estimate). NOTE: although const, this (like
  /// request()) updates the queried application's cached analysis engine —
  /// the controller is not safe for concurrent use, even for const queries.
  [[nodiscard]] double predicted_period(AppHandle handle) const;

  /// Combined blocking probability currently registered on a node.
  [[nodiscard]] prob::Composite node_load(platform::NodeId node) const;

  /// Materialises the currently admitted applications as a System (graphs
  /// in admission order with their registered node assignments). Lets a
  /// caller open an api::Workbench session on the live set — e.g. to
  /// cross-check the controller's O(1) composability state against the
  /// full estimator, or to run sweeps/simulation over the admitted apps.
  [[nodiscard]] platform::System snapshot_system() const;

 private:
  struct AdmittedApp {
    bool active = false;
    sdf::Graph graph;
    std::vector<platform::NodeId> nodes;
    std::vector<prob::ActorLoad> loads;
    double isolation_period = 0.0;
    QoS qos;
    /// Cached per-graph analysis state: an admitted application's structure
    /// never changes, so every what-if period prediction (its own and each
    /// peer's, on every later request) is a warm-started weight rewrite.
    /// Mutated through const predictions and shared by controller copies —
    /// see the thread-safety note on predicted_period().
    std::shared_ptr<analysis::ThroughputEngine> engine;
  };

  /// Predicted period of `app` (graph+nodes+loads) when node composites are
  /// `node_totals` (which must already include the app's own actors).
  [[nodiscard]] double predict_period(const AdmittedApp& app,
                                      const std::vector<prob::Composite>& node_totals) const;

  /// Composites including every active app plus (optionally) a candidate.
  [[nodiscard]] std::vector<prob::Composite> totals_with(
      const AdmittedApp* candidate) const;

  platform::Platform platform_;
  std::vector<AdmittedApp> apps_;       // indexed by handle; inactive = removed
  std::vector<prob::Composite> nodes_;  // committed composite per node
};

}  // namespace procon::admission
