// Run-time admission control (Section 6: "it is feasible to employ this
// technique for run-time admission control").
//
// The controller keeps one Composite (combined blocking probability and
// weighted blocking time, Eq. 6/7) per processing node, covering every
// actor of every admitted application. Admitting or removing an
// application updates each touched node in O(1) per actor via the
// composability operators and their inverses (Eq. 8/9) - no re-analysis of
// the other applications' internals is needed.
//
// An admission request is granted iff
//   * the new application's predicted period meets its own requirement, and
//   * every already-admitted application's predicted period still meets its
//     registered requirement.
//
// Steady-state serving contract: candidate analysis state (throughput
// engine, isolation period, per-actor loads) is held in a small LRU keyed
// by graph structure, so repeated probes — and the request() that usually
// follows a successful probe — of the same application are O(weights):
// no validation re-run, no engine rebuild, no load re-derivation. A
// verdict-only probe (WhatIfOptions::with_estimates = false) of a cached
// candidate into a reused WhatIfReport performs zero heap allocations when
// the verdict is an admission (asserted by
// tests/test_steady_state_alloc.cpp, tracked by bench_steady_state);
// rejections additionally build the human-readable reason string.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "analysis/transposition_table.h"
#include "platform/platform.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "prob/compose.h"
#include "prob/estimator.h"
#include "prob/load.h"
#include "sdf/graph.h"

namespace procon::admission {

/// \brief Opaque handle identifying an admitted application.
using AppHandle = std::uint32_t;

/// \brief Quality-of-service requirement: the maximum tolerable period
/// (inverse of the minimum required throughput).
struct QoS {
  double max_period = 0.0;  ///< largest acceptable period, in time units

  /// \brief Best-effort marker: no period bound at all.
  /// \return a QoS whose bound is +infinity
  static QoS no_requirement() noexcept {
    return QoS{std::numeric_limits<double>::infinity()};
  }
};

/// \brief Outcome of an admission request().
struct Decision {
  bool admitted = false;         ///< true when the request was granted
  std::string reason;            ///< human-readable explanation when rejected
  double predicted_period = 0.0; ///< the requesting application's estimate
  /// Predicted period per already-admitted application (post-admission).
  std::vector<double> peer_periods;
  std::optional<AppHandle> handle;  ///< set when admitted
};

/// \brief Result of a hypothetical admit/remove.
///
/// The same O(1)-composability verdict a real request() computes, plus
/// (optionally) the full contention report the analysis stack
/// (api::Workbench::contention) would produce over the would-be admitted
/// set — evaluated through a zero-copy SystemView over the controller's
/// resident application store, never a snapshot copy.
struct WhatIfReport {
  /// Admit: would the request be granted. Remove: always true.
  bool admissible = false;
  std::string reason;             ///< why not, when !admissible
  double predicted_period = 0.0;  ///< candidate's own period (admit only)
  /// Composability-predicted period per handle slot after the hypothetical
  /// change (0 for inactive handles; for what_if_remove, 0 for the removed
  /// application itself).
  std::vector<double> peer_periods;
  /// Full Figure-4 estimator report over the would-be active set, in
  /// active-handle order (what_if_admit: candidate last). Empty when the
  /// would-be set is empty or WhatIfOptions::with_estimates is false.
  std::vector<prob::AppEstimate> estimates;
};

/// \brief Options of a what-if probe.
struct WhatIfOptions {
  /// Also produce the full Figure-4 estimator report
  /// (WhatIfReport::estimates). Verdict-only probes (false) of a cached
  /// candidate into a reused report are allocation-free; report-producing
  /// probes pay the estimator's result storage.
  bool with_estimates = true;
  /// Estimator configuration for the full report (ignored when
  /// with_estimates is false).
  prob::EstimatorOptions estimator;
};

/// \brief Run-time admission controller over a resident application store.
///
/// Thread-safety: a controller is a mutable session object — every query,
/// including const predictions, updates cached analysis engines and reuses
/// internal scratch buffers, so concurrent use is not allowed.
///
/// Determinism: decisions and predictions are pure functions of the
/// admitted set and the probe inputs; the candidate LRU only caches
/// structure-derived state (engines, isolation periods, loads), never
/// verdicts, so cache hits and misses produce identical numbers. The
/// optional transposition table memoises predicted periods bitwise
/// (keyed by graph Zobrist component x node assignment x node composites),
/// so table-backed and table-free controllers also produce identical
/// numbers — including the reason strings built from them.
class AdmissionController {
 public:
  /// \brief Constructs a controller over `platform` with an empty admitted
  /// set.
  /// \param platform the processing nodes applications contend for
  /// \param candidate_cache_capacity number of distinct candidate
  ///        applications whose analysis state is retained (LRU evicted
  ///        beyond that); values below 1 are clamped to 1
  /// \param table optional shared transposition table memoising contention
  ///        period predictions across probes — and across controllers /
  ///        Workbench sessions sharing the same table. nullptr disables
  ///        memoisation (results are bitwise identical either way).
  explicit AdmissionController(
      platform::Platform platform, std::size_t candidate_cache_capacity = 8,
      std::shared_ptr<analysis::TranspositionTable> table = nullptr);

  /// \brief Requests admission of `app` with actor a mapped on `nodes[a]`.
  ///
  /// Consistent, deadlock-free graphs only; throws sdf::GraphError
  /// otherwise. A granted request commits the application to the resident
  /// store and updates every touched node composite in O(1) per actor.
  /// \param app the application graph asking to run
  /// \param nodes actor-to-node assignment (one entry per actor)
  /// \param qos the application's own period requirement
  /// \return the verdict, predictions, and (when admitted) the new handle
  Decision request(const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
                   const QoS& qos);

  /// \brief Removes an admitted application, releasing its load.
  /// \param handle the handle request() returned. Throws std::out_of_range
  ///        for unknown/stale handles.
  void remove(AppHandle handle);

  /// \brief What would happen if `app` were admitted — without mutating the
  /// admitted set.
  ///
  /// The same checks and predictions as request(), plus the full estimator
  /// report. The candidate is appended to the resident store only for the
  /// duration of the report query (no graph copies of the admitted
  /// applications, no snapshot System).
  /// \param app the hypothetical application
  /// \param nodes actor-to-node assignment (one entry per actor)
  /// \param qos the hypothetical period requirement
  /// \param estimator selects the method for the full report
  /// \return verdict + predictions + full estimator report
  [[nodiscard]] WhatIfReport what_if_admit(
      const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
      const QoS& qos, const prob::EstimatorOptions& estimator = {});

  /// \brief Steady-state variant of what_if_admit: writes into a reused
  /// report.
  ///
  /// `out`'s storage (peer_periods, estimates, reason) is cleared and
  /// refilled, so its capacity amortises across probes. With
  /// WhatIfOptions::with_estimates = false and the candidate already in the
  /// LRU, an admitting probe performs zero heap allocations (a rejection
  /// additionally builds the reason string).
  /// \param app the hypothetical application
  /// \param nodes actor-to-node assignment (one entry per actor)
  /// \param qos the hypothetical period requirement
  /// \param out report to clear and fill (capacity reused)
  /// \param opts verdict-only vs full-report probe, estimator selection
  void what_if_admit(const sdf::Graph& app, std::span<const platform::NodeId> nodes,
                     const QoS& qos, WhatIfReport& out,
                     const WhatIfOptions& opts = {});

  /// \brief What the remaining applications' periods would become if
  /// `handle` were removed, without removing it.
  /// \param handle admitted application to hypothetically remove. Throws
  ///        std::out_of_range for unknown/stale handles.
  /// \param estimator selects the method for the full report
  /// \return predictions for the survivors + full estimator report
  [[nodiscard]] WhatIfReport what_if_remove(
      AppHandle handle, const prob::EstimatorOptions& estimator = {});

  /// \brief Number of currently admitted applications.
  /// \return active handle count
  [[nodiscard]] std::size_t admitted_count() const noexcept;

  /// \brief Number of candidate applications whose analysis state is cached.
  /// \return LRU occupancy (bounded by the construction-time capacity)
  [[nodiscard]] std::size_t candidate_cache_size() const noexcept {
    return candidates_.size();
  }

  /// \brief Current predicted period of an admitted application (under the
  /// composability-inverse estimate).
  ///
  /// NOTE: although const, this (like request()) updates the queried
  /// application's cached analysis engine — the controller is not safe for
  /// concurrent use, even for const queries.
  /// \param handle admitted application. Throws std::out_of_range for
  ///        unknown/stale handles.
  /// \return the predicted period under the current node composites
  [[nodiscard]] double predicted_period(AppHandle handle) const;

  /// \brief Combined blocking probability currently registered on a node.
  /// \param node node id. Throws std::out_of_range when invalid.
  /// \return the node's committed Composite
  [[nodiscard]] prob::Composite node_load(platform::NodeId node) const;

  /// \brief The currently active applications as a use-case over the
  /// resident store (ascending handle order) — the restriction what-if
  /// queries view.
  /// \return active handles, ascending
  [[nodiscard]] platform::UseCase active_use_case() const;

  /// \brief Materialises the currently admitted applications as a
  /// standalone System (graphs in admission order with their registered
  /// node assignments) — a deep copy.
  ///
  /// Lets a caller open an api::Workbench session on the live set. What-if
  /// queries do NOT need this: they run over a zero-copy SystemView of the
  /// resident store. Throws std::logic_error when nothing is admitted.
  /// \return a deep-copied System of the active set
  [[nodiscard]] platform::System snapshot_system() const;

 private:
  struct AdmittedApp {
    bool active = false;
    std::vector<platform::NodeId> nodes;
    std::vector<prob::ActorLoad> loads;
    double isolation_period = 0.0;
    QoS qos;
    /// Cached per-graph analysis state: an admitted application's structure
    /// never changes, so every what-if period prediction (its own and each
    /// peer's, on every later request) is a warm-started weight rewrite.
    /// Mutated through const predictions and shared by controller copies —
    /// see the thread-safety note on predicted_period().
    std::shared_ptr<analysis::ThroughputEngine> engine;
  };

  /// One LRU slot: everything derivable from a candidate graph alone
  /// (independent of its mapping), so a repeated probe skips validation,
  /// engine construction and load derivation. Keyed by the name-free
  /// Zobrist graph component (sdf::ZobristHash::graph_component — the same
  /// value System maintains per resident app), so candidate entries and
  /// transposition keys agree; the graph copy disambiguates collisions
  /// exactly (graphs_equal, which does compare names).
  struct CandidateEntry {
    std::uint64_t fingerprint = 0;
    std::uint64_t last_used = 0;
    sdf::Graph graph;
    std::shared_ptr<analysis::ThroughputEngine> engine;
    double isolation_period = 0.0;
    std::vector<prob::ActorLoad> loads;
  };

  /// Cached (or freshly built and cached) analysis state of `app`.
  /// Validates the graph on first sight; throws the same sdf::GraphErrors
  /// request()/what_if_admit() documented. The reference is valid until the
  /// next candidate_for call (LRU eviction may reuse the slot).
  CandidateEntry& candidate_for(const sdf::Graph& app);

  /// Predicted period of the app `graph` describes with loads `loads` and
  /// actor a on nodes[a], when node composites are `node_totals` (which
  /// must already include the app's own actors). Reuses response_scratch_.
  /// `graph_comp` is the graph's Zobrist component (the transposition key
  /// root); with a table attached, a repeat of the same (graph, nodes,
  /// relevant composites) is a lookup instead of an engine recompute — the
  /// stored period is the bitwise result of that recompute.
  [[nodiscard]] double predict_period(
      std::uint64_t graph_comp, const sdf::Graph& graph,
      std::span<const platform::NodeId> nodes,
      std::span<const prob::ActorLoad> loads, analysis::ThroughputEngine& engine,
      std::span<const prob::Composite> node_totals) const;

  /// Fills `totals` with the committed composites plus (optionally) a
  /// candidate's loads on `nodes`. Reuses the target's capacity.
  void totals_with(std::span<const platform::NodeId> nodes,
                   std::span<const prob::ActorLoad> loads,
                   std::vector<prob::Composite>& totals) const;

  /// Shared evaluation path of request()/what_if_admit(): composability
  /// checks for candidate `cand` mapped on `nodes`. Fills out's verdict
  /// fields (admissible, reason, predicted_period, peer_periods).
  void evaluate_candidate(const sdf::Graph& graph,
                          std::span<const platform::NodeId> nodes,
                          const CandidateEntry& cand, const QoS& qos,
                          WhatIfReport& out) const;

  /// Full estimator report over `uc` (store indices) with the cached
  /// engines of those entries plus optional trailing `extra` engine.
  [[nodiscard]] std::vector<prob::AppEstimate> full_report(
      const platform::UseCase& uc,
      const std::vector<analysis::ThroughputEngine*>& engines,
      const prob::EstimatorOptions& estimator) const;

  platform::Platform platform_;
  /// Graphs of every application ever admitted, in handle order, with their
  /// node assignments as the mapping — the single resident copy every view,
  /// what-if and prediction reads. Grows via append_app (no re-copy of the
  /// already-admitted graphs); a what_if_admit report appends the candidate
  /// and pops it before returning.
  platform::System store_;
  std::vector<AdmittedApp> apps_;       // indexed by handle; inactive = removed
  std::vector<prob::Composite> nodes_;  // committed composite per node

  // Candidate LRU (see class comment). candidate_clock_ stamps uses.
  std::vector<CandidateEntry> candidates_;
  std::size_t candidate_capacity_ = 8;
  std::uint64_t candidate_clock_ = 0;

  // Optional shared transposition table (see constructor). nullptr = off.
  std::shared_ptr<analysis::TranspositionTable> table_;

  // Scratch reused across queries (the allocation-free probe path); mutable
  // because const predictions share it — see the thread-safety note.
  mutable std::vector<prob::Composite> totals_scratch_;
  mutable std::vector<double> response_scratch_;
};

}  // namespace procon::admission
