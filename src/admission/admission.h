// Run-time admission control (Section 6: "it is feasible to employ this
// technique for run-time admission control").
//
// The controller keeps one Composite (combined blocking probability and
// weighted blocking time, Eq. 6/7) per processing node, covering every
// actor of every admitted application. Admitting or removing an
// application updates each touched node in O(1) per actor via the
// composability operators and their inverses (Eq. 8/9) - no re-analysis of
// the other applications' internals is needed.
//
// An admission request is granted iff
//   * the new application's predicted period meets its own requirement, and
//   * every already-admitted application's predicted period still meets its
//     registered requirement.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "platform/platform.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "prob/compose.h"
#include "prob/estimator.h"
#include "prob/load.h"
#include "sdf/graph.h"

namespace procon::admission {

/// Opaque handle identifying an admitted application.
using AppHandle = std::uint32_t;

/// Quality-of-service requirement: the maximum tolerable period (inverse of
/// the minimum required throughput). Use no_requirement() for best-effort.
struct QoS {
  double max_period = 0.0;
  static QoS no_requirement() noexcept {
    return QoS{std::numeric_limits<double>::infinity()};
  }
};

struct Decision {
  bool admitted = false;
  std::string reason;            ///< human-readable explanation when rejected
  double predicted_period = 0.0; ///< the requesting application's estimate
  /// Predicted period per already-admitted application (post-admission).
  std::vector<double> peer_periods;
  std::optional<AppHandle> handle;  ///< set when admitted
};

/// Result of a hypothetical admit/remove: the same O(1)-composability
/// verdict a real request() computes, plus the full contention report the
/// analysis stack (api::Workbench::contention) would produce over the
/// would-be admitted set — evaluated through a zero-copy SystemView over
/// the controller's resident application store, never a snapshot copy.
struct WhatIfReport {
  /// Admit: would the request be granted. Remove: always true.
  bool admissible = false;
  std::string reason;             ///< why not, when !admissible
  double predicted_period = 0.0;  ///< candidate's own period (admit only)
  /// Composability-predicted period per handle slot after the hypothetical
  /// change (0 for inactive handles; for what_if_remove, 0 for the removed
  /// application itself).
  std::vector<double> peer_periods;
  /// Full Figure-4 estimator report over the would-be active set, in
  /// active-handle order (what_if_admit: candidate last). Empty when the
  /// would-be set is empty.
  std::vector<prob::AppEstimate> estimates;
};

class AdmissionController {
 public:
  explicit AdmissionController(platform::Platform platform);

  /// Requests admission of `app` with actor a mapped on `nodes[a]`.
  /// Consistent, deadlock-free graphs only; throws sdf::GraphError otherwise.
  Decision request(const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
                   const QoS& qos);

  /// Removes an admitted application, releasing its load. Throws
  /// std::out_of_range for unknown/stale handles.
  void remove(AppHandle handle);

  /// What would happen if `app` were admitted — the same checks and
  /// predictions as request(), plus the full estimator report, without
  /// mutating the admitted set. The candidate is appended to the resident
  /// store only for the duration of the query (no graph copies of the
  /// admitted applications, no snapshot System). `estimator` selects the
  /// method for the full report.
  [[nodiscard]] WhatIfReport what_if_admit(
      const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
      const QoS& qos, const prob::EstimatorOptions& estimator = {});

  /// What the remaining applications' periods would become if `handle` were
  /// removed, without removing it. Throws std::out_of_range for
  /// unknown/stale handles.
  [[nodiscard]] WhatIfReport what_if_remove(
      AppHandle handle, const prob::EstimatorOptions& estimator = {});

  [[nodiscard]] std::size_t admitted_count() const noexcept;

  /// Current predicted period of an admitted application (under the
  /// composability-inverse estimate). NOTE: although const, this (like
  /// request()) updates the queried application's cached analysis engine —
  /// the controller is not safe for concurrent use, even for const queries.
  [[nodiscard]] double predicted_period(AppHandle handle) const;

  /// Combined blocking probability currently registered on a node.
  [[nodiscard]] prob::Composite node_load(platform::NodeId node) const;

  /// The currently active applications as a use-case over the resident
  /// store (ascending handle order) — the restriction what-if queries view.
  [[nodiscard]] platform::UseCase active_use_case() const;

  /// Materialises the currently admitted applications as a standalone
  /// System (graphs in admission order with their registered node
  /// assignments) — a deep copy. Lets a caller open an api::Workbench
  /// session on the live set. What-if queries do NOT need this: they run
  /// over a zero-copy SystemView of the resident store.
  [[nodiscard]] platform::System snapshot_system() const;

 private:
  struct AdmittedApp {
    bool active = false;
    std::vector<platform::NodeId> nodes;
    std::vector<prob::ActorLoad> loads;
    double isolation_period = 0.0;
    QoS qos;
    /// Cached per-graph analysis state: an admitted application's structure
    /// never changes, so every what-if period prediction (its own and each
    /// peer's, on every later request) is a warm-started weight rewrite.
    /// Mutated through const predictions and shared by controller copies —
    /// see the thread-safety note on predicted_period().
    std::shared_ptr<analysis::ThroughputEngine> engine;
  };

  /// Predicted period of the app `rec` describes (graph at store index
  /// `handle`) when node composites are `node_totals` (which must already
  /// include the app's own actors).
  [[nodiscard]] double predict_period(const sdf::Graph& graph, const AdmittedApp& rec,
                                      const std::vector<prob::Composite>& node_totals) const;

  /// Composites including every active app plus (optionally) a candidate.
  [[nodiscard]] std::vector<prob::Composite> totals_with(
      const sdf::Graph* candidate_graph, const AdmittedApp* candidate) const;

  /// Shared evaluation path of request()/what_if_admit(): composability
  /// checks for a candidate record whose graph sits at store index
  /// `candidate_index` (already appended to store_).
  void evaluate_candidate(const AdmittedApp& rec, AppHandle candidate_index,
                          const QoS& qos, WhatIfReport& out) const;

  /// Full estimator report over `uc` (store indices) with the cached
  /// engines of those entries plus optional trailing `extra` engine.
  [[nodiscard]] std::vector<prob::AppEstimate> full_report(
      const platform::UseCase& uc,
      const std::vector<analysis::ThroughputEngine*>& engines,
      const prob::EstimatorOptions& estimator) const;

  platform::Platform platform_;
  /// Graphs of every application ever admitted, in handle order, with their
  /// node assignments as the mapping — the single resident copy every view,
  /// what-if and prediction reads. Grows via append_app (no re-copy of the
  /// already-admitted graphs); what_if_admit appends the candidate and pops
  /// it before returning.
  platform::System store_;
  std::vector<AdmittedApp> apps_;       // indexed by handle; inactive = removed
  std::vector<prob::Composite> nodes_;  // committed composite per node
};

}  // namespace procon::admission
