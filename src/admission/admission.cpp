#include "admission/admission.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "sdf/algorithms.h"

namespace procon::admission {

using prob::Composite;

AdmissionController::AdmissionController(platform::Platform platform)
    : platform_(std::move(platform)),
      store_({}, platform_, platform::Mapping(std::span<const sdf::Graph>{})) {
  nodes_.assign(platform_.node_count(), Composite::identity());
}

std::size_t AdmissionController::admitted_count() const noexcept {
  std::size_t n = 0;
  for (const auto& a : apps_) n += a.active ? 1 : 0;
  return n;
}

Composite AdmissionController::node_load(platform::NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node_load: invalid node");
  return nodes_[node];
}

platform::UseCase AdmissionController::active_use_case() const {
  platform::UseCase uc;
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    if (apps_[h].active) uc.push_back(h);
  }
  return uc;
}

platform::System AdmissionController::snapshot_system() const {
  const platform::UseCase active = active_use_case();
  if (active.empty()) {
    throw std::logic_error("snapshot_system: no admitted applications");
  }
  return platform::SystemView(store_, active).materialise();
}

std::vector<Composite> AdmissionController::totals_with(
    const sdf::Graph* candidate_graph, const AdmittedApp* candidate) const {
  std::vector<Composite> totals = nodes_;
  if (candidate != nullptr) {
    for (sdf::ActorId a = 0; a < candidate_graph->actor_count(); ++a) {
      Composite& t = totals[candidate->nodes[a]];
      t = prob::compose(t, prob::to_composite(candidate->loads[a]));
    }
  }
  return totals;
}

double AdmissionController::predict_period(
    const sdf::Graph& graph, const AdmittedApp& rec,
    const std::vector<Composite>& node_totals) const {
  std::vector<double> response(graph.actor_count());
  for (sdf::ActorId a = 0; a < graph.actor_count(); ++a) {
    const Composite self = prob::to_composite(rec.loads[a]);
    const Composite& total = node_totals[rec.nodes[a]];
    double twait = 0.0;
    if (prob::can_invert(self)) {
      twait = prob::decompose(total, self).weighted_blocking;
    } else {
      // Saturated actor: the inverse is undefined (paper's caveat); the
      // whole-node waiting time is a conservative stand-in.
      twait = total.weighted_blocking;
    }
    response[a] = static_cast<double>(graph.actor(a).exec_time) + twait;
  }
  const auto res = rec.engine->recompute(response);
  if (res.deadlocked) {
    throw sdf::GraphError("predict_period: response-time graph deadlocks");
  }
  return res.period;
}

void AdmissionController::evaluate_candidate(const AdmittedApp& rec,
                                             AppHandle candidate_index,
                                             const QoS& qos,
                                             WhatIfReport& out) const {
  const sdf::Graph& graph = store_.app(candidate_index);
  const std::vector<Composite> totals = totals_with(&graph, &rec);

  // The candidate's own predicted period.
  out.predicted_period = predict_period(graph, rec, totals);
  if (out.predicted_period > qos.max_period) {
    out.reason = "requesting application's predicted period " +
                 std::to_string(out.predicted_period) +
                 " exceeds its QoS bound " + std::to_string(qos.max_period);
    return;
  }

  // Impact on every admitted peer.
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    const AdmittedApp& peer = apps_[h];
    if (!peer.active) {
      out.peer_periods.push_back(0.0);
      continue;
    }
    const double p = predict_period(store_.app(h), peer, totals);
    out.peer_periods.push_back(p);
    if (p > peer.qos.max_period) {
      out.reason = "admission would push application '" + store_.app(h).name() +
                   "' to period " + std::to_string(p) +
                   " beyond its QoS bound " + std::to_string(peer.qos.max_period);
      return;
    }
  }
  out.admissible = true;
}

std::vector<prob::AppEstimate> AdmissionController::full_report(
    const platform::UseCase& uc,
    const std::vector<analysis::ThroughputEngine*>& engines,
    const prob::EstimatorOptions& estimator) const {
  if (uc.empty()) return {};
  // The same machinery an api::Workbench contention query runs: the Figure 4
  // estimator over a zero-copy view of the resident store, through the
  // cached per-application engines.
  const platform::SystemView view(store_, uc);
  const prob::ContentionEstimator est(estimator);
  return est.estimate(view, {},
                      std::span<analysis::ThroughputEngine* const>(engines));
}

Decision AdmissionController::request(const sdf::Graph& app,
                                      const std::vector<platform::NodeId>& nodes,
                                      const QoS& qos) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("request: mapping size mismatch");
  }
  for (const platform::NodeId n : nodes) {
    if (n >= platform_.node_count()) {
      throw sdf::GraphError("request: actor mapped to nonexistent node");
    }
  }
  if (!sdf::is_consistent(app)) throw sdf::GraphError("request: inconsistent graph");
  if (!sdf::is_deadlock_free(app)) throw sdf::GraphError("request: graph deadlocks");

  AdmittedApp rec;
  rec.nodes = nodes;
  rec.qos = qos;
  rec.engine = std::make_shared<analysis::ThroughputEngine>(app);
  const auto iso = rec.engine->recompute();
  if (iso.deadlocked || iso.period <= 0.0) {
    throw sdf::GraphError("request: no positive isolation period");
  }
  rec.isolation_period = iso.period;
  rec.loads = prob::derive_loads(app, rec.engine->repetition_vector(), iso.period);

  // Move the candidate graph into the resident store; it stays there on
  // admission and is popped on rejection.
  store_.append_app(app, nodes);
  const auto candidate_index = static_cast<AppHandle>(store_.app_count() - 1);

  WhatIfReport verdict;
  try {
    evaluate_candidate(rec, candidate_index, qos, verdict);
  } catch (...) {
    store_.pop_app();
    throw;
  }

  Decision decision;
  decision.predicted_period = verdict.predicted_period;
  decision.peer_periods = std::move(verdict.peer_periods);
  decision.reason = std::move(verdict.reason);
  if (!verdict.admissible) {
    store_.pop_app();
    return decision;
  }

  // Commit: incremental O(1)-per-actor composite update.
  for (sdf::ActorId a = 0; a < store_.app(candidate_index).actor_count(); ++a) {
    Composite& t = nodes_[rec.nodes[a]];
    t = prob::compose(t, prob::to_composite(rec.loads[a]));
  }
  rec.active = true;
  apps_.push_back(std::move(rec));
  decision.admitted = true;
  decision.handle = candidate_index;
  return decision;
}

WhatIfReport AdmissionController::what_if_admit(
    const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
    const QoS& qos, const prob::EstimatorOptions& estimator) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("what_if_admit: mapping size mismatch");
  }
  for (const platform::NodeId n : nodes) {
    if (n >= platform_.node_count()) {
      throw sdf::GraphError("what_if_admit: actor mapped to nonexistent node");
    }
  }
  if (!sdf::is_consistent(app)) {
    throw sdf::GraphError("what_if_admit: inconsistent graph");
  }
  if (!sdf::is_deadlock_free(app)) {
    throw sdf::GraphError("what_if_admit: graph deadlocks");
  }

  AdmittedApp rec;
  rec.nodes = nodes;
  rec.qos = qos;
  rec.engine = std::make_shared<analysis::ThroughputEngine>(app);
  const auto iso = rec.engine->recompute();
  if (iso.deadlocked || iso.period <= 0.0) {
    throw sdf::GraphError("what_if_admit: no positive isolation period");
  }
  rec.isolation_period = iso.period;
  rec.loads = prob::derive_loads(app, rec.engine->repetition_vector(), iso.period);

  // Append the candidate to the resident store for the duration of the
  // query; every view below sees admitted graphs in place, zero copies.
  store_.append_app(app, nodes);
  WhatIfReport out;
  try {
    const auto candidate_index = static_cast<AppHandle>(store_.app_count() - 1);
    evaluate_candidate(rec, candidate_index, qos, out);

    platform::UseCase uc = active_use_case();
    std::vector<analysis::ThroughputEngine*> engines;
    engines.reserve(uc.size() + 1);
    for (const sdf::AppId h : uc) engines.push_back(apps_[h].engine.get());
    uc.push_back(candidate_index);
    engines.push_back(rec.engine.get());
    out.estimates = full_report(uc, engines, estimator);
  } catch (...) {
    store_.pop_app();
    throw;
  }
  store_.pop_app();
  return out;
}

WhatIfReport AdmissionController::what_if_remove(
    AppHandle handle, const prob::EstimatorOptions& estimator) {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("what_if_remove: unknown or already-removed application");
  }
  const AdmittedApp& rec = apps_[handle];

  // Node composites without the removed application: peel its loads out via
  // the inverse operators, or rebuild from the survivors when some load is
  // saturated (the paper's non-invertible caveat).
  bool invertible = true;
  for (const prob::ActorLoad& l : rec.loads) {
    invertible = invertible && prob::can_invert(prob::to_composite(l));
  }
  std::vector<Composite> totals;
  if (invertible) {
    totals = nodes_;
    for (sdf::ActorId a = 0; a < rec.nodes.size(); ++a) {
      Composite& t = totals[rec.nodes[a]];
      t = prob::decompose(t, prob::to_composite(rec.loads[a]));
    }
  } else {
    totals.assign(platform_.node_count(), Composite::identity());
    for (AppHandle h = 0; h < apps_.size(); ++h) {
      if (!apps_[h].active || h == handle) continue;
      for (sdf::ActorId b = 0; b < apps_[h].nodes.size(); ++b) {
        Composite& t = totals[apps_[h].nodes[b]];
        t = prob::compose(t, prob::to_composite(apps_[h].loads[b]));
      }
    }
  }

  WhatIfReport out;
  out.admissible = true;
  platform::UseCase survivors;
  std::vector<analysis::ThroughputEngine*> engines;
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    if (!apps_[h].active || h == handle) {
      out.peer_periods.push_back(0.0);
      continue;
    }
    out.peer_periods.push_back(predict_period(store_.app(h), apps_[h], totals));
    survivors.push_back(h);
    engines.push_back(apps_[h].engine.get());
  }
  out.estimates = full_report(survivors, engines, estimator);
  return out;
}

void AdmissionController::remove(AppHandle handle) {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("remove: unknown or already-removed application");
  }
  AdmittedApp& rec = apps_[handle];
  bool invertible = true;
  for (const prob::ActorLoad& l : rec.loads) {
    invertible = invertible && prob::can_invert(prob::to_composite(l));
  }
  if (invertible) {
    // O(1) per actor: peel each load out of its node composite (Eq. 8/9).
    for (sdf::ActorId a = 0; a < rec.nodes.size(); ++a) {
      Composite& t = nodes_[rec.nodes[a]];
      t = prob::decompose(t, prob::to_composite(rec.loads[a]));
    }
    rec.active = false;
  } else {
    // Saturated actor (P == 1): the inverse is undefined; rebuild all node
    // composites from the remaining applications (paper's caveat).
    rec.active = false;
    nodes_.assign(platform_.node_count(), Composite::identity());
    for (const AdmittedApp& other : apps_) {
      if (!other.active) continue;
      for (sdf::ActorId b = 0; b < other.nodes.size(); ++b) {
        Composite& t = nodes_[other.nodes[b]];
        t = prob::compose(t, prob::to_composite(other.loads[b]));
      }
    }
  }
}

double AdmissionController::predicted_period(AppHandle handle) const {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("predicted_period: unknown application");
  }
  return predict_period(store_.app(handle), apps_[handle], nodes_);
}

}  // namespace procon::admission
