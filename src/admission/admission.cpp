#include "admission/admission.h"

#include <limits>
#include <stdexcept>

#include "sdf/algorithms.h"

namespace procon::admission {

using prob::Composite;

AdmissionController::AdmissionController(platform::Platform platform)
    : platform_(std::move(platform)) {
  nodes_.assign(platform_.node_count(), Composite::identity());
}

std::size_t AdmissionController::admitted_count() const noexcept {
  std::size_t n = 0;
  for (const auto& a : apps_) n += a.active ? 1 : 0;
  return n;
}

Composite AdmissionController::node_load(platform::NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node_load: invalid node");
  return nodes_[node];
}

platform::System AdmissionController::snapshot_system() const {
  std::vector<sdf::Graph> graphs;
  std::vector<const AdmittedApp*> active;
  for (const auto& a : apps_) {
    if (!a.active) continue;
    active.push_back(&a);
    graphs.push_back(a.graph);
  }
  if (graphs.empty()) {
    throw std::logic_error("snapshot_system: no admitted applications");
  }
  platform::Mapping mapping(graphs);
  for (sdf::AppId i = 0; i < active.size(); ++i) {
    for (sdf::ActorId a = 0; a < active[i]->nodes.size(); ++a) {
      mapping.assign(i, a, active[i]->nodes[a]);
    }
  }
  return platform::System(std::move(graphs), platform_, std::move(mapping));
}

std::vector<Composite> AdmissionController::totals_with(
    const AdmittedApp* candidate) const {
  std::vector<Composite> totals = nodes_;
  if (candidate != nullptr) {
    for (sdf::ActorId a = 0; a < candidate->graph.actor_count(); ++a) {
      Composite& t = totals[candidate->nodes[a]];
      t = prob::compose(t, prob::to_composite(candidate->loads[a]));
    }
  }
  return totals;
}

double AdmissionController::predict_period(
    const AdmittedApp& app, const std::vector<Composite>& node_totals) const {
  std::vector<double> response(app.graph.actor_count());
  for (sdf::ActorId a = 0; a < app.graph.actor_count(); ++a) {
    const Composite self = prob::to_composite(app.loads[a]);
    const Composite& total = node_totals[app.nodes[a]];
    double twait = 0.0;
    if (prob::can_invert(self)) {
      twait = prob::decompose(total, self).weighted_blocking;
    } else {
      // Saturated actor: the inverse is undefined (paper's caveat); the
      // whole-node waiting time is a conservative stand-in.
      twait = total.weighted_blocking;
    }
    response[a] = static_cast<double>(app.graph.actor(a).exec_time) + twait;
  }
  const auto res = app.engine->recompute(response);
  if (res.deadlocked) {
    throw sdf::GraphError("predict_period: response-time graph deadlocks");
  }
  return res.period;
}

Decision AdmissionController::request(const sdf::Graph& app,
                                      const std::vector<platform::NodeId>& nodes,
                                      const QoS& qos) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("request: mapping size mismatch");
  }
  for (const platform::NodeId n : nodes) {
    if (n >= platform_.node_count()) {
      throw sdf::GraphError("request: actor mapped to nonexistent node");
    }
  }
  if (!sdf::is_consistent(app)) throw sdf::GraphError("request: inconsistent graph");
  if (!sdf::is_deadlock_free(app)) throw sdf::GraphError("request: graph deadlocks");

  AdmittedApp rec;
  rec.graph = app;
  rec.nodes = nodes;
  rec.qos = qos;
  rec.engine = std::make_shared<analysis::ThroughputEngine>(app);
  const auto iso = rec.engine->recompute();
  if (iso.deadlocked || iso.period <= 0.0) {
    throw sdf::GraphError("request: no positive isolation period");
  }
  rec.isolation_period = iso.period;
  rec.loads = prob::derive_loads(app, rec.engine->repetition_vector(), iso.period);

  Decision decision;
  const std::vector<Composite> totals = totals_with(&rec);

  // The candidate's own predicted period.
  decision.predicted_period = predict_period(rec, totals);
  if (decision.predicted_period > qos.max_period) {
    decision.reason = "requesting application's predicted period " +
                      std::to_string(decision.predicted_period) +
                      " exceeds its QoS bound " + std::to_string(qos.max_period);
    return decision;
  }

  // Impact on every admitted peer.
  for (const auto& peer : apps_) {
    if (!peer.active) {
      decision.peer_periods.push_back(0.0);
      continue;
    }
    const double p = predict_period(peer, totals);
    decision.peer_periods.push_back(p);
    if (p > peer.qos.max_period) {
      decision.reason = "admission would push application '" + peer.graph.name() +
                        "' to period " + std::to_string(p) +
                        " beyond its QoS bound " + std::to_string(peer.qos.max_period);
      return decision;
    }
  }

  // Commit: incremental O(1)-per-actor composite update.
  for (sdf::ActorId a = 0; a < rec.graph.actor_count(); ++a) {
    Composite& t = nodes_[rec.nodes[a]];
    t = prob::compose(t, prob::to_composite(rec.loads[a]));
  }
  rec.active = true;
  apps_.push_back(std::move(rec));
  decision.admitted = true;
  decision.handle = static_cast<AppHandle>(apps_.size() - 1);
  return decision;
}

void AdmissionController::remove(AppHandle handle) {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("remove: unknown or already-removed application");
  }
  AdmittedApp& rec = apps_[handle];
  bool invertible = true;
  for (const prob::ActorLoad& l : rec.loads) {
    invertible = invertible && prob::can_invert(prob::to_composite(l));
  }
  if (invertible) {
    // O(1) per actor: peel each load out of its node composite (Eq. 8/9).
    for (sdf::ActorId a = 0; a < rec.graph.actor_count(); ++a) {
      Composite& t = nodes_[rec.nodes[a]];
      t = prob::decompose(t, prob::to_composite(rec.loads[a]));
    }
    rec.active = false;
  } else {
    // Saturated actor (P == 1): the inverse is undefined; rebuild all node
    // composites from the remaining applications (paper's caveat).
    rec.active = false;
    nodes_.assign(platform_.node_count(), Composite::identity());
    for (const AdmittedApp& other : apps_) {
      if (!other.active) continue;
      for (sdf::ActorId b = 0; b < other.graph.actor_count(); ++b) {
        Composite& t = nodes_[other.nodes[b]];
        t = prob::compose(t, prob::to_composite(other.loads[b]));
      }
    }
  }
}

double AdmissionController::predicted_period(AppHandle handle) const {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("predicted_period: unknown application");
  }
  return predict_period(apps_[handle], nodes_);
}

}  // namespace procon::admission
