#include "admission/admission.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "sdf/algorithms.h"
#include "sdf/zobrist.h"
#include "util/contracts.h"

namespace procon::admission {

using prob::Composite;

// Structural identity: the candidate LRU is keyed by the name-free Zobrist
// graph component (sdf::ZobristHash::graph_component — the same per-app
// component platform::System maintains incrementally), tie-broken exactly
// by sdf::graphs_equal. The transposition table keys derive from the same
// component, so candidate state and memoised periods agree on what "same
// graph" means.

AdmissionController::AdmissionController(
    platform::Platform platform, std::size_t candidate_cache_capacity,
    std::shared_ptr<analysis::TranspositionTable> table)
    : platform_(std::move(platform)),
      store_({}, platform_, platform::Mapping(std::span<const sdf::Graph>{})),
      candidate_capacity_(std::max<std::size_t>(candidate_cache_capacity, 1)),
      table_(std::move(table)) {
  nodes_.assign(platform_.node_count(), Composite::identity());
  candidates_.reserve(candidate_capacity_);
}

std::size_t AdmissionController::admitted_count() const noexcept {
  std::size_t n = 0;
  for (const auto& a : apps_) n += a.active ? 1 : 0;
  return n;
}

Composite AdmissionController::node_load(platform::NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("node_load: invalid node");
  return nodes_[node];
}

platform::UseCase AdmissionController::active_use_case() const {
  platform::UseCase uc;
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    if (apps_[h].active) uc.push_back(h);
  }
  return uc;
}

platform::System AdmissionController::snapshot_system() const {
  const platform::UseCase active = active_use_case();
  if (active.empty()) {
    throw std::logic_error("snapshot_system: no admitted applications");
  }
  return platform::SystemView(store_, active).materialise();
}

AdmissionController::CandidateEntry& AdmissionController::candidate_for(
    const sdf::Graph& app) {
  const std::uint64_t fp = sdf::ZobristHash::graph_component(app);
  for (CandidateEntry& e : candidates_) {
    if (e.fingerprint == fp && sdf::graphs_equal(e.graph, app)) {
      e.last_used = ++candidate_clock_;  // hit: O(weights), no rebuild
      return e;
    }
  }

  // First sight: validate, build the engine, derive the mapping-independent
  // analysis state, then cache it (evicting the least recently used slot).
  if (!sdf::is_consistent(app)) {
    throw sdf::GraphError("admission: inconsistent graph");
  }
  if (!sdf::is_deadlock_free(app)) {
    throw sdf::GraphError("admission: graph deadlocks");
  }
  CandidateEntry entry;
  entry.fingerprint = fp;
  entry.graph = app;
  entry.engine = std::make_shared<analysis::ThroughputEngine>(app);
  const auto iso = entry.engine->recompute();
  if (iso.deadlocked || iso.period <= 0.0) {
    throw sdf::GraphError("admission: no positive isolation period");
  }
  entry.isolation_period = iso.period;
  entry.loads = prob::derive_loads(app, entry.engine->repetition_vector(), iso.period);
  entry.last_used = ++candidate_clock_;

  if (candidates_.size() < candidate_capacity_) {
    candidates_.push_back(std::move(entry));
    return candidates_.back();
  }
  std::size_t victim = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    if (candidates_[i].last_used < candidates_[victim].last_used) victim = i;
  }
  candidates_[victim] = std::move(entry);
  return candidates_[victim];
}

void AdmissionController::totals_with(std::span<const platform::NodeId> nodes,
                                      std::span<const prob::ActorLoad> loads,
                                      std::vector<Composite>& totals) const {
  totals.assign(nodes_.begin(), nodes_.end());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    Composite& t = totals[nodes[a]];
    t = prob::compose(t, prob::to_composite(loads[a]));
  }
}

PROCON_WARM_PATH double AdmissionController::predict_period(
    std::uint64_t graph_comp, const sdf::Graph& graph,
    std::span<const platform::NodeId> nodes,
    std::span<const prob::ActorLoad> loads, analysis::ThroughputEngine& engine,
    std::span<const Composite> node_totals) const {
  PROCON_ASSERT_NO_ALLOC("AdmissionController::predict_period");
  // Transposition probe: the period is a pure function of the graph
  // structure (loads derive from it deterministically), the node
  // assignment, and the composites on the assigned nodes — absorb exactly
  // those, bitwise. A hit returns the stored recompute result verbatim.
  analysis::TTKey key;
  if (table_) {
    analysis::TTKeyBuilder b(graph_comp, analysis::TTQuery::AdmissionPeriod);
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      const Composite& total = node_totals[nodes[a]];
      b.absorb(nodes[a]);
      b.absorb_double(total.probability);
      b.absorb_double(total.weighted_blocking);
    }
    key = b.key();
    analysis::TTValue v;
    if (table_->lookup(key, v)) return v.primary;
  }
  response_scratch_.assign(graph.actor_count(), 0.0);
  for (sdf::ActorId a = 0; a < graph.actor_count(); ++a) {
    const Composite self = prob::to_composite(loads[a]);
    const Composite& total = node_totals[nodes[a]];
    double twait = 0.0;
    if (prob::can_invert(self)) {
      twait = prob::decompose(total, self).weighted_blocking;
    } else {
      // Saturated actor: the inverse is undefined (paper's caveat); the
      // whole-node waiting time is a conservative stand-in.
      twait = total.weighted_blocking;
    }
    response_scratch_[a] = static_cast<double>(graph.actor(a).exec_time) + twait;
  }
  const auto res = engine.recompute(response_scratch_);
  if (res.deadlocked) {
    throw sdf::GraphError("predict_period: response-time graph deadlocks");
  }
  if (table_) {
    analysis::TTValue v;
    v.primary = res.period;
    table_->store(key, v);
  }
  return res.period;
}

void AdmissionController::evaluate_candidate(
    const sdf::Graph& graph, std::span<const platform::NodeId> nodes,
    const CandidateEntry& cand, const QoS& qos, WhatIfReport& out) const {
  totals_with(nodes, cand.loads, totals_scratch_);

  // The candidate's own predicted period.
  out.predicted_period = predict_period(cand.fingerprint, graph, nodes,
                                        cand.loads, *cand.engine, totals_scratch_);
  if (out.predicted_period > qos.max_period) {
    out.reason = "requesting application's predicted period " +
                 std::to_string(out.predicted_period) +
                 " exceeds its QoS bound " + std::to_string(qos.max_period);
    return;
  }

  // Impact on every admitted peer.
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    const AdmittedApp& peer = apps_[h];
    if (!peer.active) {
      out.peer_periods.push_back(0.0);
      continue;
    }
    const double p =
        predict_period(store_.app_component(h), store_.app(h), peer.nodes,
                       peer.loads, *peer.engine, totals_scratch_);
    out.peer_periods.push_back(p);
    if (p > peer.qos.max_period) {
      out.reason = "admission would push application '" + store_.app(h).name() +
                   "' to period " + std::to_string(p) +
                   " beyond its QoS bound " + std::to_string(peer.qos.max_period);
      return;
    }
  }
  out.admissible = true;
}

std::vector<prob::AppEstimate> AdmissionController::full_report(
    const platform::UseCase& uc,
    const std::vector<analysis::ThroughputEngine*>& engines,
    const prob::EstimatorOptions& estimator) const {
  if (uc.empty()) return {};
  // The same machinery an api::Workbench contention query runs: the Figure 4
  // estimator over a zero-copy view of the resident store, through the
  // cached per-application engines.
  const platform::SystemView view(store_, uc);
  const prob::ContentionEstimator est(estimator);
  return est.estimate(view, {},
                      std::span<analysis::ThroughputEngine* const>(engines));
}

Decision AdmissionController::request(const sdf::Graph& app,
                                      const std::vector<platform::NodeId>& nodes,
                                      const QoS& qos) {
  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("request: mapping size mismatch");
  }
  for (const platform::NodeId n : nodes) {
    if (n >= platform_.node_count()) {
      throw sdf::GraphError("request: actor mapped to nonexistent node");
    }
  }
  // LRU-cached analysis state: the request() that follows a successful
  // probe of the same graph skips validation, engine construction and load
  // derivation entirely.
  CandidateEntry& cand = candidate_for(app);

  WhatIfReport verdict;
  evaluate_candidate(app, nodes, cand, qos, verdict);

  Decision decision;
  decision.predicted_period = verdict.predicted_period;
  decision.peer_periods = std::move(verdict.peer_periods);
  decision.reason = std::move(verdict.reason);
  if (!verdict.admissible) return decision;

  // Commit: move the graph into the resident store and update every touched
  // node composite in O(1) per actor.
  AdmittedApp rec;
  rec.nodes = nodes;
  rec.qos = qos;
  rec.engine = cand.engine;  // shared with the LRU slot
  rec.isolation_period = cand.isolation_period;
  rec.loads = cand.loads;
  store_.append_app(app, nodes);
  for (sdf::ActorId a = 0; a < rec.nodes.size(); ++a) {
    Composite& t = nodes_[rec.nodes[a]];
    t = prob::compose(t, prob::to_composite(rec.loads[a]));
  }
  rec.active = true;
  apps_.push_back(std::move(rec));
  decision.admitted = true;
  decision.handle = static_cast<AppHandle>(apps_.size() - 1);
  return decision;
}

WhatIfReport AdmissionController::what_if_admit(
    const sdf::Graph& app, const std::vector<platform::NodeId>& nodes,
    const QoS& qos, const prob::EstimatorOptions& estimator) {
  WhatIfReport out;
  WhatIfOptions opts;
  opts.estimator = estimator;
  what_if_admit(app, nodes, qos, out, opts);
  return out;
}

PROCON_WARM_PATH void AdmissionController::what_if_admit(
    const sdf::Graph& app, std::span<const platform::NodeId> nodes,
    const QoS& qos, WhatIfReport& out, const WhatIfOptions& opts) {
  PROCON_ASSERT_NO_ALLOC("AdmissionController::what_if_admit");
  out.admissible = false;
  out.reason.clear();
  out.predicted_period = 0.0;
  out.peer_periods.clear();
  out.estimates.clear();

  if (nodes.size() != app.actor_count()) {
    throw sdf::GraphError("what_if_admit: mapping size mismatch");
  }
  for (const platform::NodeId n : nodes) {
    if (n >= platform_.node_count()) {
      throw sdf::GraphError("what_if_admit: actor mapped to nonexistent node");
    }
  }
  CandidateEntry& cand = candidate_for(app);
  evaluate_candidate(app, nodes, cand, qos, out);
  if (!opts.with_estimates) return;  // verdict-only: allocation-free on a hit

  // Append the candidate to the resident store for the duration of the
  // report; every view below sees admitted graphs in place, zero copies.
  store_.append_app(app, nodes);
  try {
    platform::UseCase uc = active_use_case();
    // lint:allow(warm-container-construct): with_estimates report path; the
    // zero-alloc contract covers verdict-only probes, which return above.
    std::vector<analysis::ThroughputEngine*> engines;
    engines.reserve(uc.size() + 1);
    for (const sdf::AppId h : uc) engines.push_back(apps_[h].engine.get());
    uc.push_back(static_cast<sdf::AppId>(store_.app_count() - 1));
    engines.push_back(cand.engine.get());
    out.estimates = full_report(uc, engines, opts.estimator);
  } catch (...) {
    store_.pop_app();
    throw;
  }
  store_.pop_app();
}

WhatIfReport AdmissionController::what_if_remove(
    AppHandle handle, const prob::EstimatorOptions& estimator) {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("what_if_remove: unknown or already-removed application");
  }
  const AdmittedApp& rec = apps_[handle];

  // Node composites without the removed application: peel its loads out via
  // the inverse operators, or rebuild from the survivors when some load is
  // saturated (the paper's non-invertible caveat).
  bool invertible = true;
  for (const prob::ActorLoad& l : rec.loads) {
    invertible = invertible && prob::can_invert(prob::to_composite(l));
  }
  if (invertible) {
    totals_scratch_.assign(nodes_.begin(), nodes_.end());
    for (sdf::ActorId a = 0; a < rec.nodes.size(); ++a) {
      Composite& t = totals_scratch_[rec.nodes[a]];
      t = prob::decompose(t, prob::to_composite(rec.loads[a]));
    }
  } else {
    totals_scratch_.assign(platform_.node_count(), Composite::identity());
    for (AppHandle h = 0; h < apps_.size(); ++h) {
      if (!apps_[h].active || h == handle) continue;
      for (sdf::ActorId b = 0; b < apps_[h].nodes.size(); ++b) {
        Composite& t = totals_scratch_[apps_[h].nodes[b]];
        t = prob::compose(t, prob::to_composite(apps_[h].loads[b]));
      }
    }
  }

  WhatIfReport out;
  out.admissible = true;
  platform::UseCase survivors;
  std::vector<analysis::ThroughputEngine*> engines;
  for (AppHandle h = 0; h < apps_.size(); ++h) {
    if (!apps_[h].active || h == handle) {
      out.peer_periods.push_back(0.0);
      continue;
    }
    out.peer_periods.push_back(
        predict_period(store_.app_component(h), store_.app(h), apps_[h].nodes,
                       apps_[h].loads, *apps_[h].engine, totals_scratch_));
    survivors.push_back(h);
    engines.push_back(apps_[h].engine.get());
  }
  out.estimates = full_report(survivors, engines, estimator);
  return out;
}

void AdmissionController::remove(AppHandle handle) {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("remove: unknown or already-removed application");
  }
  AdmittedApp& rec = apps_[handle];
  bool invertible = true;
  for (const prob::ActorLoad& l : rec.loads) {
    invertible = invertible && prob::can_invert(prob::to_composite(l));
  }
  if (invertible) {
    // O(1) per actor: peel each load out of its node composite (Eq. 8/9).
    for (sdf::ActorId a = 0; a < rec.nodes.size(); ++a) {
      Composite& t = nodes_[rec.nodes[a]];
      t = prob::decompose(t, prob::to_composite(rec.loads[a]));
    }
    rec.active = false;
  } else {
    // Saturated actor (P == 1): the inverse is undefined; rebuild all node
    // composites from the remaining applications (paper's caveat).
    rec.active = false;
    nodes_.assign(platform_.node_count(), Composite::identity());
    for (const AdmittedApp& other : apps_) {
      if (!other.active) continue;
      for (sdf::ActorId b = 0; b < other.nodes.size(); ++b) {
        Composite& t = nodes_[other.nodes[b]];
        t = prob::compose(t, prob::to_composite(other.loads[b]));
      }
    }
  }
}

double AdmissionController::predicted_period(AppHandle handle) const {
  if (handle >= apps_.size() || !apps_[handle].active) {
    throw std::out_of_range("predicted_period: unknown application");
  }
  const AdmittedApp& rec = apps_[handle];
  return predict_period(store_.app_component(handle), store_.app(handle),
                        rec.nodes, rec.loads, *rec.engine, nodes_);
}

}  // namespace procon::admission
