// net::AnalysisServer — the cluster tier's shard process: a TCP front door
// speaking the net::codec wire protocol into a resident api::AnalysisService.
//
// Architecture (one server = one shard):
//
//   * a poll(2) loop on a dedicated thread owns the listening socket, a
//     self-pipe for shutdown wakeups and every client connection; frames
//     are reassembled per connection (try_extract_frame) and dispatched;
//   * cheap frames (Hello, RegisterSystem, StatsRequest, SnapshotRequest)
//     are answered inline on the poll thread;
//   * Query frames submit to the AnalysisService and return immediately —
//     a completion task on a separate util::ThreadPool blocks on
//     Ticket::share() and writes the QueryResult frame when the service
//     finishes, so one slow query never stalls the poll loop and responses
//     pipeline out of order (request_id correlates them);
//   * writes are serialised per connection by a mutex (poll thread and
//     completion workers both send), with MSG_NOSIGNAL + a POLLOUT wait
//     loop for short writes.
//
// Determinism: the server adds no numeric processing — results travel as
// the bitwise encoding of the service's QueryValue, so a routed query's
// payload equals the single-process AnalysisService oracle byte for byte
// (asserted by tests/test_cluster.cpp and the CI cluster-smoke job).
//
// Scope: binds loopback by default (a trusted-network prototype of the
// paper's analysis-as-a-service deployment, not a hardened endpoint).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "net/codec.h"
#include "util/thread_pool.h"

namespace procon::net {

/// \brief Thrown when socket setup fails (bind, listen, pipe).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief Construction options of an AnalysisServer.
struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port(); procon_server announces it on stdout for the CI smoke job).
  std::uint16_t port = 0;
  /// Bind 0.0.0.0 instead of loopback. Off by default: the prototype
  /// serves trusted local clients.
  bool bind_any = false;
  /// Listen backlog passed to listen(2).
  int backlog = 64;
  /// Workers of the completion pool (including the caller slot, like
  /// ServiceOptions::threads); clamped to >= 2 so completion tasks always
  /// run on a background worker — they block on Ticket::share(), which
  /// must never run inline on the poll thread.
  std::size_t completion_threads = 4;
  /// The resident analysis service's configuration.
  api::ServiceOptions service;
};

/// \brief One shard: a socket server over a resident AnalysisService.
///
/// Starts listening in the constructor and serves until stop() or
/// destruction. Thread-safe: port()/service()/stop() may be called from
/// any thread.
class AnalysisServer {
 public:
  /// \brief Binds, listens and starts the poll thread.
  /// \param opts port, backlog, pool and service configuration
  /// Throws NetError when the socket cannot be set up.
  explicit AnalysisServer(const ServerOptions& opts = {});

  /// \brief Stops the poll loop, drains in-flight completions and closes
  /// every connection.
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;             ///< unique
  AnalysisServer& operator=(const AnalysisServer&) = delete;  ///< unique

  /// \brief The port actually bound (resolves port 0 to the ephemeral
  /// choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// \brief The resident service (e.g. to pre-register tenants or read
  /// stats in-process).
  [[nodiscard]] api::AnalysisService& service() noexcept { return service_; }

  /// \brief Requests shutdown and joins the poll thread. Idempotent;
  /// called by the destructor.
  void stop();

 private:
  /// One client connection. Completion tasks hold shared ownership, so a
  /// disconnecting poll loop shuts the socket down (wakes writers) but the
  /// fd closes only when the last writer drops its reference.
  struct Connection {
    explicit Connection(int socket_fd) : fd(socket_fd) {}
    ~Connection();
    int fd = -1;
    std::vector<std::uint8_t> rx;   ///< receive reassembly buffer
    std::mutex write_m;             ///< serialises send_frame callers
    std::atomic<bool> open{true};   ///< cleared on disconnect
  };

  void loop();
  /// Dispatches one reassembled frame; returns false to drop the
  /// connection (handshake violation, framing corruption).
  bool handle_frame(const std::shared_ptr<Connection>& conn, Frame frame);
  void send_frame(Connection& conn, FrameType type, std::uint64_t request_id,
                  std::span<const std::uint8_t> payload);
  void send_error(Connection& conn, std::uint64_t request_id,
                  const std::string& message);
  void disconnect(const std::shared_ptr<Connection>& conn);

  api::AnalysisService service_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;   ///< self-pipe read end (in the poll set)
  int wake_wr_ = -1;   ///< self-pipe write end (stop() pokes it)
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex conns_m_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::thread poll_thread_;
  // Declared last: destroyed first, so completion tasks drain (finishing
  // their response writes) while connections and the service still live.
  util::ThreadPool completion_;
};

}  // namespace procon::net
