// procon::net — the cluster tier's binary wire protocol.
//
// A compact, versioned, length-prefixed binary codec for everything the
// analysis service speaks over a socket: application graphs (with optional
// stochastic execution-time models), whole tenant systems, query
// descriptors, query results (Report<T> envelopes) and error frames.
// sdf::io's line format is the human-readable seed; this codec is its
// machine twin with three hard guarantees:
//
//   * doubles travel BITWISE (IEEE-754 bit pattern, little-endian): a
//     decoded result re-encodes to the same bytes, which is what lets the
//     cluster assert bitwise identity between a routed query and the
//     single-process AnalysisService oracle;
//   * the encoding is GOLDEN-FILE STABLE: fixed-width little-endian fields
//     in declaration order, no varints, no padding, no map iteration — the
//     same value encodes to the same bytes on every platform and build
//     (tests/test_codec.cpp pins a golden hex dump);
//   * every frame is VERSIONED and length-prefixed: peers handshake with
//     Hello/HelloAck carrying kProtocolMagic + kProtocolVersion, and a
//     frame is parsed only once fully buffered, so a slow or malicious
//     peer can never wedge a reader mid-message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "platform/system.h"
#include "sdf/exec_time.h"
#include "sdf/graph.h"

namespace procon::net {

/// \brief Thrown on malformed, truncated or version-incompatible wire data.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief Protocol magic carried by Hello frames ("PCON").
inline constexpr std::uint32_t kProtocolMagic = 0x50434F4Eu;
/// \brief Wire protocol version; bumped on any encoding change.
/// v2: BufferFrontier results carry dse::FrontierResult (points + racing
/// statistics) and query descriptors carry dse::RacerOptions.
/// v3: systems carry an optional interconnect topology, SimResult carries
/// per-link utilisation, and query descriptors/results add the
/// TopologySweep kind (candidate topology list + per-topology results).
inline constexpr std::uint16_t kProtocolVersion = 3;
/// \brief Upper bound on one frame's payload (guards against corrupted or
/// hostile length prefixes wedging a reader into a giant allocation).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// \brief Every message kind the cluster tier exchanges.
enum class FrameType : std::uint8_t {
  Hello = 1,        ///< client → server: magic + version (handshake)
  HelloAck,         ///< server → client: negotiated version
  RegisterSystem,   ///< client → server: encoded platform::System (tenant)
  RegisterAck,      ///< server → client: the shard-local api::SystemId
  Query,            ///< client → server: SystemId + encoded api::QueryDesc
  QueryResult,      ///< server → client: encoded api::QueryValue
  Error,            ///< server → client: human-readable failure message
  StatsRequest,     ///< client → server: ask for the shard's counters
  StatsReply,       ///< server → client: ServiceStats + transposition stats
  SnapshotRequest,  ///< client → server: SystemId to snapshot (migration)
  SnapshotReply,    ///< server → client: the tenant's resident System
};

/// \brief Append-only little-endian byte sink every encoder writes into.
///
/// Fixed-width fields only — the golden-stability contract. Reuse one
/// writer across messages via clear() to keep buffer capacity.
class WireWriter {
 public:
  /// \brief Appends one byte.
  void u8(std::uint8_t v) { buf_.push_back(v); }
  /// \brief Appends a 16-bit value, little-endian.
  void u16(std::uint16_t v) { word(v, 2); }
  /// \brief Appends a 32-bit value, little-endian.
  void u32(std::uint32_t v) { word(v, 4); }
  /// \brief Appends a 64-bit value, little-endian.
  void u64(std::uint64_t v) { word(v, 8); }
  /// \brief Appends a signed 64-bit value (two's-complement bit pattern).
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// \brief Appends a double BITWISE (IEEE-754 bits, little-endian).
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// \brief Appends a length-prefixed (u32) UTF-8/byte string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// \brief Appends raw bytes (no length prefix).
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// \brief The bytes written so far.
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept { return buf_; }
  /// \brief Moves the accumulated bytes out (writer becomes empty).
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  /// \brief Discards the content, keeping capacity.
  void clear() noexcept { buf_.clear(); }
  /// \brief Bytes written so far.
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void word(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// \brief Bounds-checked little-endian reader over an encoded buffer.
///
/// Every accessor throws CodecError on truncation — decoders never read
/// past the frame they were handed.
class WireReader {
 public:
  /// \brief Reads from `data` (not owned; must outlive the reader).
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  /// \brief Reads one byte.
  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  /// \brief Reads a 16-bit little-endian value.
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(word(2)); }
  /// \brief Reads a 32-bit little-endian value.
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(word(4)); }
  /// \brief Reads a 64-bit little-endian value.
  [[nodiscard]] std::uint64_t u64() { return word(8); }
  /// \brief Reads a signed 64-bit value.
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  /// \brief Reads a double from its IEEE-754 bit pattern.
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  /// \brief Reads a length-prefixed string.
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  /// \brief Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// \brief Throws CodecError unless the frame was consumed exactly.
  void expect_end() const {
    if (remaining() != 0) throw CodecError("codec: trailing bytes in frame");
  }

 private:
  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw CodecError("codec: truncated input");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::uint64_t word(int bytes) {
    const auto b = take(static_cast<std::size_t>(bytes));
    std::uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- value codecs ---------------------------------------------------------

/// \brief Encodes one SDF application graph (name, actors, channels).
void encode_graph(WireWriter& w, const sdf::Graph& g);
/// \brief Decodes a graph encoded by encode_graph.
[[nodiscard]] sdf::Graph decode_graph(WireReader& r);

/// \brief Encodes a stochastic execution-time model (normalised outcomes,
/// weights bitwise).
void encode_exec_model(WireWriter& w, const sdf::ExecTimeModel& model);
/// \brief Decodes an execution-time model; distributions are rebuilt via
/// ExecTimeDistribution::from_normalised, so the round trip is bitwise.
[[nodiscard]] sdf::ExecTimeModel decode_exec_model(WireReader& r);

/// \brief Encodes an interconnect topology: kind, then (unless None) node
/// count, mesh dims and the per-link width/latency attributes. Link
/// endpoints are written too, purely as a cross-check — the decoder
/// rebuilds the canonical structure from (kind, dims) and rejects frames
/// whose endpoints disagree.
void encode_topology(WireWriter& w, const platform::Topology& t);
/// \brief Decodes a topology encoded by encode_topology. Throws CodecError
/// on unknown kinds, shape/endpoint mismatches or counts that cannot fit
/// the remaining frame bytes.
[[nodiscard]] platform::Topology decode_topology(WireReader& r);

/// \brief Encodes a whole tenant system: applications, platform nodes
/// (name + type), the actor-to-node mapping and (v3) the platform's
/// interconnect topology.
void encode_system(WireWriter& w, const platform::System& sys);
/// \brief Decodes a system; the reconstruction fingerprints identically to
/// the original (the codec preserves every hashed feature and every name).
[[nodiscard]] platform::System decode_system(WireReader& r);

/// \brief Encodes a query descriptor (kind + every option the kind reads,
/// including stochastic exec-time models for Simulate).
void encode_query_desc(WireWriter& w, const api::QueryDesc& d);
/// \brief Decodes a query descriptor.
[[nodiscard]] api::QueryDesc decode_query_desc(WireReader& r);

/// \brief Encodes a full query result: variant index, Report provenance
/// (method, evaluations, threads, wall time) and the value payload.
void encode_query_value(WireWriter& w, const api::QueryValue& v);
/// \brief Decodes a query result encoded by encode_query_value.
[[nodiscard]] api::QueryValue decode_query_value(WireReader& r);

/// \brief Encodes ONLY the value payload (variant index + value, no
/// provenance). Provenance carries wall-clock time, which legitimately
/// differs between two runs of the same query — identity checks (cluster
/// vs single-process oracle) therefore compare these bytes, which must be
/// equal for bitwise-identical results.
void encode_query_payload(WireWriter& w, const api::QueryValue& v);

/// \brief A shard's counters as they travel in StatsReply frames.
struct WireStats {
  api::ServiceStats service;                  ///< front-door counters
  analysis::TranspositionTable::Stats table;  ///< shared-table counters
};
/// \brief Encodes a stats snapshot (per-shard table breakdown included).
void encode_stats(WireWriter& w, const WireStats& s);
/// \brief Decodes a stats snapshot.
[[nodiscard]] WireStats decode_stats(WireReader& r);

// ---- framing --------------------------------------------------------------

/// \brief One parsed frame: kind, correlation id, payload bytes.
///
/// request_id correlates a response with its request (clients pipeline:
/// several requests may be in flight on one connection, and responses
/// complete out of order across sessions).
struct Frame {
  FrameType type = FrameType::Error;  ///< message kind
  std::uint64_t request_id = 0;       ///< request/response correlation id
  std::vector<std::uint8_t> payload;  ///< encoded body (codec above)
};

/// \brief Appends one wire frame to `out`:
/// `u32 length | u8 type | u64 request_id | payload`, where length counts
/// everything after itself. Throws CodecError if payload exceeds
/// kMaxFramePayload.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload);

/// \brief Extracts the first complete frame from a receive buffer (erasing
/// its bytes), or nullopt when the buffer holds only a partial frame.
/// Throws CodecError on a corrupt length prefix (> kMaxFramePayload).
[[nodiscard]] std::optional<Frame> try_extract_frame(std::vector<std::uint8_t>& buf);

/// \brief Builds a Hello payload (magic + version).
[[nodiscard]] std::vector<std::uint8_t> hello_payload();
/// \brief Validates a Hello payload; throws CodecError on a bad magic or a
/// version mismatch.
void check_hello(std::span<const std::uint8_t> payload);

}  // namespace procon::net
