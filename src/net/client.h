// net::ClusterClient — fingerprint-routed, pipelining client of a shard
// fleet of net::AnalysisServers.
//
// The client is the cluster's only coordinator: there is no master. Every
// client derives a tenant's home shard locally from the tenant system's
// O(1) Zobrist fingerprint through the shared net::Router ring, so any
// number of clients with the same endpoint list agree on placement without
// talking to each other — and structurally identical tenants land on one
// shard, where the resident service's fingerprint-keyed session LRU and
// name-free transposition table turn their queries into shared work.
//
// Per shard the client keeps one connection with a reader thread that
// demultiplexes responses by request_id, so queries PIPELINE: submit()
// returns a PendingQuery immediately, any number may be in flight across
// (and within) shards, and await() collects results in any order.
//
// Membership change = migration: set_endpoints() rebuilds the ring, and
// every tenant whose home shard changed is moved by the snapshot protocol
// — SnapshotRequest to the old shard returns the tenant's resident system
// in wire encoding, which re-registers verbatim on the new shard. The
// encoding round-trips bitwise, so the rebuilt tenant fingerprints (and
// answers) identically; results are unchanged by any migration history.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "net/codec.h"
#include "net/router.h"
#include "net/server.h"  // NetError
#include "platform/system.h"

namespace procon::net {

/// \brief One TCP connection to a shard, with a demultiplexing reader
/// thread. Thread-safe: any number of threads may begin()/await()
/// concurrently. Performs the Hello/HelloAck version handshake at
/// construction (throws NetError/CodecError on failure).
class ShardConnection {
 public:
  /// \brief Connects to "host:port" (empty host = 127.0.0.1) and
  /// handshakes.
  explicit ShardConnection(const std::string& endpoint);
  ~ShardConnection();

  ShardConnection(const ShardConnection&) = delete;             ///< unique
  ShardConnection& operator=(const ShardConnection&) = delete;  ///< unique

  /// \brief Sends one request frame; returns the request_id to await.
  /// Throws NetError when the connection is down.
  std::uint64_t begin(FrameType type, std::span<const std::uint8_t> payload);

  /// \brief Blocks until the response to `request_id` arrives and returns
  /// it (QueryResult, ...Ack, ...Reply or Error — the caller interprets).
  /// Throws NetError when the connection dies first.
  [[nodiscard]] Frame await(std::uint64_t request_id);

  /// \brief begin() + await() in one call.
  [[nodiscard]] Frame roundtrip(FrameType type,
                                std::span<const std::uint8_t> payload);

 private:
  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    std::optional<Frame> reply;
    bool dead = false;  ///< connection failed before the reply arrived
  };

  void reader_loop();
  void fail_all_pending();

  int fd_ = -1;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> alive_{true};
  std::mutex write_m_;    ///< serialises frame writes
  std::mutex pending_m_;  ///< guards pending_
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::thread reader_;
};

/// \brief Client-local handle of a tenant registered through a
/// ClusterClient (dense, never reused; independent of shard placement).
using TenantId = std::uint32_t;

/// \brief An in-flight routed query; pass to ClusterClient::await.
struct PendingQuery {
  ShardConnection* conn = nullptr;  ///< the home shard's connection
  std::uint64_t request_id = 0;     ///< correlation id on that connection
};

/// \brief Construction options of a ClusterClient.
struct ClusterOptions {
  /// Shard endpoints as "host:port" (empty host = loopback). The same
  /// list, in any order, on every client yields the same routing.
  std::vector<std::string> endpoints;
  /// Ring points per endpoint (see Router).
  std::size_t virtual_nodes = 64;
};

/// \brief The routed front door: registers tenants on their fingerprint-
/// derived home shard, pipelines queries, migrates tenants on membership
/// change.
///
/// Thread-safety: register_system/submit/await/query/stats may be called
/// from any thread concurrently; set_endpoints must be exclusive (no
/// concurrent calls of any kind), as rebuilding the ring tears connections
/// down.
class ClusterClient {
 public:
  /// \brief Connects to every endpoint and handshakes. Throws
  /// NetError/CodecError when any shard is unreachable or incompatible.
  explicit ClusterClient(const ClusterOptions& opts);

  /// \brief Registers a tenant on its home shard.
  /// \param sys the tenant system (encoded onto the wire; the shard's
  ///        decoded copy fingerprints identically)
  /// \return client-local handle for submit()/query()
  /// Throws NetError when the shard rejects the registration (the server's
  /// Error frame message is rethrown).
  TenantId register_system(const platform::System& sys);

  /// \brief Sends one query to the tenant's home shard (pipelined,
  /// non-blocking).
  [[nodiscard]] PendingQuery submit(TenantId tenant, const api::QueryDesc& desc);

  /// \brief Collects a pipelined query's result (decoded QueryValue).
  /// Throws NetError on an Error frame or a dead connection.
  [[nodiscard]] api::QueryValue await(const PendingQuery& pending);

  /// \brief submit() + await(): one synchronous routed query.
  [[nodiscard]] api::QueryValue query(TenantId tenant, const api::QueryDesc& desc);

  /// \brief One shard's service + transposition counters (StatsRequest).
  /// \param shard index into endpoints()
  [[nodiscard]] WireStats stats(std::size_t shard);

  /// \brief The current ring.
  [[nodiscard]] const Router& router() const noexcept { return *router_; }

  /// \brief Number of registered tenants.
  [[nodiscard]] std::size_t tenant_count() const;

  /// \brief The endpoint currently serving a tenant (after migrations).
  [[nodiscard]] const std::string& tenant_endpoint(TenantId tenant) const;

  /// \brief Replaces the shard fleet and migrates displaced tenants.
  ///
  /// Rebuilds the ring over `endpoints`, connects to new shards, then for
  /// every tenant whose home changed: fetches its resident system from the
  /// old shard (SnapshotRequest) and re-registers the returned bytes
  /// verbatim on the new shard. Old shards keep their (now idle) copies —
  /// registration is append-only. Connections to endpoints no longer in
  /// the fleet close after migration. NOT thread-safe against concurrent
  /// queries.
  /// \return number of tenants migrated
  std::size_t set_endpoints(std::vector<std::string> endpoints);

 private:
  struct Tenant {
    std::uint64_t fingerprint = 0;
    std::string endpoint;        ///< current home shard
    api::SystemId remote_id = 0; ///< the shard-local handle
  };

  ShardConnection& connection(const std::string& endpoint);
  /// Registers pre-encoded system bytes on `endpoint`; returns the remote
  /// id (shared by register_system and the migration path).
  api::SystemId register_encoded(const std::string& endpoint,
                                 std::span<const std::uint8_t> encoded);

  std::unique_ptr<Router> router_;
  std::unordered_map<std::string, std::unique_ptr<ShardConnection>> conns_;
  mutable std::mutex tenants_m_;
  std::vector<Tenant> tenants_;
};

}  // namespace procon::net
