#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace procon::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Writes all of `data` to a (possibly non-blocking) socket, waiting for
/// POLLOUT on short writes. Returns false on any terminal error.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;  // peer wedged: give up
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

AnalysisServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

AnalysisServer::AnalysisServer(const ServerOptions& opts)
    : service_(opts.service),
      completion_(std::max<std::size_t>(opts.completion_threads, 2)) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw NetError("AnalysisServer: pipe failed");
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  set_nonblocking(wake_rd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    ::close(wake_rd_);
    ::close(wake_wr_);
    throw NetError("AnalysisServer: socket failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(opts.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(opts.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, opts.backlog) != 0) {
    ::close(listen_fd_);
    ::close(wake_rd_);
    ::close(wake_wr_);
    throw NetError("AnalysisServer: bind/listen failed (port " +
                   std::to_string(opts.port) + ")");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  poll_thread_ = std::thread([this] { loop(); });
}

AnalysisServer::~AnalysisServer() { stop(); }

void AnalysisServer::stop() {
  if (!stopping_.exchange(true)) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }
  if (poll_thread_.joinable()) poll_thread_.join();
}

void AnalysisServer::loop() {
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back(pollfd{wake_rd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    std::vector<std::shared_ptr<Connection>> polled;
    {
      std::lock_guard<std::mutex> lock(conns_m_);
      polled.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) {
        polled.push_back(conn);
        fds.push_back(pollfd{fd, POLLIN, 0});
      }
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // stop() poked the pipe

    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        set_nonblocking(cfd);
        // Request/response frames are small; Nagle would serialise them
        // against delayed ACKs and wreck pipelining latency.
        const int nd = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &nd, sizeof nd);
        std::lock_guard<std::mutex> lock(conns_m_);
        conns_.emplace(cfd, std::make_shared<Connection>(cfd));
      }
    }

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const auto& conn = polled[i - 2];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool drop = (fds[i].revents & (POLLHUP | POLLERR)) != 0 &&
                  (fds[i].revents & POLLIN) == 0;
      if (!drop) {
        std::uint8_t buf[16384];
        for (;;) {
          const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
          if (n > 0) {
            conn->rx.insert(conn->rx.end(), buf, buf + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          drop = true;  // orderly close (0) or hard error
          break;
        }
        try {
          while (auto frame = try_extract_frame(conn->rx)) {
            if (!handle_frame(conn, *std::move(frame))) {
              drop = true;
              break;
            }
          }
        } catch (const CodecError&) {
          drop = true;  // corrupt framing: the stream is unrecoverable
        }
      }
      if (drop) disconnect(conn);
    }
  }

  // Shut every connection down: wakes blocked completion writers (their
  // sends fail fast); fds close when the last shared owner drops.
  std::lock_guard<std::mutex> lock(conns_m_);
  for (auto& [fd, conn] : conns_) {
    conn->open.store(false);
    ::shutdown(fd, SHUT_RDWR);
  }
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

void AnalysisServer::disconnect(const std::shared_ptr<Connection>& conn) {
  conn->open.store(false);
  // shutdown (not close) here: completion tasks may still hold the fd for
  // an in-flight response write; closing now could race a reused fd.
  ::shutdown(conn->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conns_m_);
  conns_.erase(conn->fd);
}

void AnalysisServer::send_frame(Connection& conn, FrameType type,
                                std::uint64_t request_id,
                                std::span<const std::uint8_t> payload) {
  if (!conn.open.load(std::memory_order_relaxed)) return;
  std::vector<std::uint8_t> out;
  out.reserve(13 + payload.size());
  append_frame(out, type, request_id, payload);
  std::lock_guard<std::mutex> lock(conn.write_m);
  if (!send_all(conn.fd, out.data(), out.size())) conn.open.store(false);
}

void AnalysisServer::send_error(Connection& conn, std::uint64_t request_id,
                                const std::string& message) {
  WireWriter w;
  w.str(message);
  send_frame(conn, FrameType::Error, request_id, w.view());
}

bool AnalysisServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                  Frame frame) {
  switch (frame.type) {
    case FrameType::Hello: {
      try {
        check_hello(frame.payload);
      } catch (const CodecError& e) {
        send_error(*conn, frame.request_id, e.what());
        return false;  // incompatible peer: drop after the explanation
      }
      send_frame(*conn, FrameType::HelloAck, frame.request_id, hello_payload());
      return true;
    }

    case FrameType::RegisterSystem: {
      try {
        WireReader r(frame.payload);
        platform::System sys = decode_system(r);
        r.expect_end();
        const api::SystemId id = service_.register_system(std::move(sys));
        WireWriter w;
        w.u32(id);
        send_frame(*conn, FrameType::RegisterAck, frame.request_id, w.view());
      } catch (const std::exception& e) {
        send_error(*conn, frame.request_id, e.what());
      }
      return true;
    }

    case FrameType::Query: {
      api::QueryTicket ticket;
      try {
        WireReader r(frame.payload);
        const api::SystemId id = r.u32();
        api::QueryDesc desc = decode_query_desc(r);
        r.expect_end();
        ticket = service_.submit(id, std::move(desc));
      } catch (const std::exception& e) {
        send_error(*conn, frame.request_id, e.what());
        return true;
      }
      // Completion runs on the dedicated pool: Ticket::share() blocks until
      // the service finishes, and the poll thread must keep serving.
      auto shared_ticket =
          std::make_shared<api::QueryTicket>(std::move(ticket));
      const std::uint64_t rid = frame.request_id;
      completion_.post([this, conn, rid, shared_ticket] {
        try {
          const std::shared_ptr<const api::QueryValue> value =
              shared_ticket->share();  // zero-copy: aliases the arena slot
          WireWriter w;
          encode_query_value(w, *value);
          send_frame(*conn, FrameType::QueryResult, rid, w.view());
        } catch (const std::exception& e) {
          send_error(*conn, rid, e.what());
        }
      });
      return true;
    }

    case FrameType::StatsRequest: {
      WireStats stats{service_.stats(), service_.transposition_stats()};
      WireWriter w;
      encode_stats(w, stats);
      send_frame(*conn, FrameType::StatsReply, frame.request_id, w.view());
      return true;
    }

    case FrameType::SnapshotRequest: {
      try {
        WireReader r(frame.payload);
        const api::SystemId id = r.u32();
        r.expect_end();
        WireWriter w;
        encode_system(w, service_.system(id));
        send_frame(*conn, FrameType::SnapshotReply, frame.request_id, w.view());
      } catch (const std::exception& e) {
        send_error(*conn, frame.request_id, e.what());
      }
      return true;
    }

    default:
      send_error(*conn, frame.request_id, "unexpected frame type");
      return true;
  }
}

}  // namespace procon::net
