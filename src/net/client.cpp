#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace procon::net {

namespace {

/// Splits "host:port" (empty host = loopback) and connects a blocking TCP
/// socket. Throws NetError on any failure.
int connect_endpoint(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    throw NetError("ShardConnection: endpoint '" + endpoint +
                   "' is not host:port");
  }
  std::string host = endpoint.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    throw NetError("ShardConnection: bad port in '" + endpoint + "'");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("ShardConnection: bad host in '" + endpoint + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError("ShardConnection: socket failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw NetError("ShardConnection: connect to " + endpoint + " failed");
  }
  // Small request frames must leave immediately; Nagle vs delayed ACK
  // would otherwise stall pipelined submits by full RTT multiples.
  const int nd = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nd, sizeof nd);
  return fd;
}

bool send_all_blocking(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

// ---- ShardConnection ------------------------------------------------------

ShardConnection::ShardConnection(const std::string& endpoint)
    : fd_(connect_endpoint(endpoint)) {
  // Handshake synchronously before the reader thread exists: the socket is
  // ours alone here, so a plain blocking read loop suffices.
  std::vector<std::uint8_t> out;
  const auto hello = hello_payload();
  append_frame(out, FrameType::Hello, 0, hello);
  if (!send_all_blocking(fd_, out.data(), out.size())) {
    ::close(fd_);
    throw NetError("ShardConnection: handshake send failed");
  }
  std::vector<std::uint8_t> rx;
  std::optional<Frame> ack;
  std::uint8_t buf[4096];
  while (!(ack = try_extract_frame(rx))) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) {
      ::close(fd_);
      throw NetError("ShardConnection: handshake read failed");
    }
    rx.insert(rx.end(), buf, buf + n);
  }
  if (ack->type != FrameType::HelloAck) {
    ::close(fd_);
    throw NetError("ShardConnection: server rejected handshake");
  }
  check_hello(ack->payload);

  reader_ = std::thread([this] { reader_loop(); });
}

ShardConnection::~ShardConnection() {
  alive_.store(false);
  ::shutdown(fd_, SHUT_RDWR);  // unblocks the reader's recv
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

std::uint64_t ShardConnection::begin(FrameType type,
                                     std::span<const std::uint8_t> payload) {
  if (!alive_.load(std::memory_order_relaxed)) {
    throw NetError("ShardConnection: connection is down");
  }
  const std::uint64_t rid = next_id_.fetch_add(1, std::memory_order_relaxed);
  {
    // Register BEFORE sending: the reply may arrive before we would get
    // around to registering afterwards.
    std::lock_guard<std::mutex> lock(pending_m_);
    pending_.emplace(rid, std::make_shared<Pending>());
  }
  std::vector<std::uint8_t> out;
  out.reserve(13 + payload.size());
  append_frame(out, type, rid, payload);
  bool ok;
  {
    std::lock_guard<std::mutex> lock(write_m_);
    ok = send_all_blocking(fd_, out.data(), out.size());
  }
  if (!ok) {
    std::lock_guard<std::mutex> lock(pending_m_);
    pending_.erase(rid);
    throw NetError("ShardConnection: send failed");
  }
  return rid;
}

Frame ShardConnection::await(std::uint64_t request_id) {
  std::shared_ptr<Pending> slot;
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      throw NetError("ShardConnection: unknown or already-awaited request");
    }
    slot = it->second;
  }
  std::unique_lock<std::mutex> lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->reply.has_value() || slot->dead; });
  if (!slot->reply) {
    throw NetError("ShardConnection: connection died awaiting a reply");
  }
  Frame reply = *std::move(slot->reply);
  lock.unlock();
  {
    std::lock_guard<std::mutex> plock(pending_m_);
    pending_.erase(request_id);
  }
  return reply;
}

Frame ShardConnection::roundtrip(FrameType type,
                                 std::span<const std::uint8_t> payload) {
  return await(begin(type, payload));
}

void ShardConnection::reader_loop() {
  std::vector<std::uint8_t> rx;
  std::uint8_t buf[16384];
  while (alive_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    rx.insert(rx.end(), buf, buf + n);
    try {
      while (auto frame = try_extract_frame(rx)) {
        std::shared_ptr<Pending> slot;
        {
          std::lock_guard<std::mutex> lock(pending_m_);
          const auto it = pending_.find(frame->request_id);
          if (it != pending_.end()) slot = it->second;
        }
        if (slot) {
          std::lock_guard<std::mutex> lock(slot->m);
          slot->reply = *std::move(frame);
          slot->cv.notify_all();
        }
        // Unmatched request_ids are dropped: the awaiter already gave up.
      }
    } catch (const CodecError&) {
      break;  // corrupt framing: the stream is unrecoverable
    }
  }
  alive_.store(false);
  fail_all_pending();
}

void ShardConnection::fail_all_pending() {
  std::lock_guard<std::mutex> lock(pending_m_);
  for (auto& [rid, slot] : pending_) {
    std::lock_guard<std::mutex> slock(slot->m);
    slot->dead = true;
    slot->cv.notify_all();
  }
}

// ---- ClusterClient --------------------------------------------------------

ClusterClient::ClusterClient(const ClusterOptions& opts)
    : router_(std::make_unique<Router>(opts.endpoints, opts.virtual_nodes)) {
  for (const std::string& e : router_->endpoints()) {
    conns_.emplace(e, std::make_unique<ShardConnection>(e));
  }
}

ShardConnection& ClusterClient::connection(const std::string& endpoint) {
  const auto it = conns_.find(endpoint);
  if (it == conns_.end()) {
    throw NetError("ClusterClient: no connection to " + endpoint);
  }
  return *it->second;
}

api::SystemId ClusterClient::register_encoded(
    const std::string& endpoint, std::span<const std::uint8_t> encoded) {
  Frame reply = connection(endpoint).roundtrip(FrameType::RegisterSystem, encoded);
  if (reply.type == FrameType::Error) {
    WireReader r(reply.payload);
    throw NetError("shard " + endpoint + ": " + r.str());
  }
  if (reply.type != FrameType::RegisterAck) {
    throw NetError("ClusterClient: unexpected registration reply");
  }
  WireReader r(reply.payload);
  const api::SystemId id = r.u32();
  r.expect_end();
  return id;
}

TenantId ClusterClient::register_system(const platform::System& sys) {
  const std::uint64_t fp = sys.fingerprint();
  const std::string& endpoint = router_->endpoint_for(fp);
  WireWriter w;
  encode_system(w, sys);
  const api::SystemId remote = register_encoded(endpoint, w.view());
  std::lock_guard<std::mutex> lock(tenants_m_);
  tenants_.push_back(Tenant{fp, endpoint, remote});
  return static_cast<TenantId>(tenants_.size() - 1);
}

PendingQuery ClusterClient::submit(TenantId tenant, const api::QueryDesc& desc) {
  std::string endpoint;
  api::SystemId remote = 0;
  {
    std::lock_guard<std::mutex> lock(tenants_m_);
    const Tenant& t = tenants_.at(tenant);
    endpoint = t.endpoint;
    remote = t.remote_id;
  }
  WireWriter w;
  w.u32(remote);
  encode_query_desc(w, desc);
  ShardConnection& conn = connection(endpoint);
  return PendingQuery{&conn, conn.begin(FrameType::Query, w.view())};
}

api::QueryValue ClusterClient::await(const PendingQuery& pending) {
  if (pending.conn == nullptr) {
    throw NetError("ClusterClient: empty PendingQuery");
  }
  Frame reply = pending.conn->await(pending.request_id);
  if (reply.type == FrameType::Error) {
    WireReader r(reply.payload);
    throw NetError("query failed: " + r.str());
  }
  if (reply.type != FrameType::QueryResult) {
    throw NetError("ClusterClient: unexpected query reply");
  }
  WireReader r(reply.payload);
  api::QueryValue value = decode_query_value(r);
  r.expect_end();
  return value;
}

api::QueryValue ClusterClient::query(TenantId tenant, const api::QueryDesc& desc) {
  return await(submit(tenant, desc));
}

WireStats ClusterClient::stats(std::size_t shard) {
  const std::string& endpoint = router_->endpoints().at(shard);
  Frame reply = connection(endpoint).roundtrip(FrameType::StatsRequest, {});
  if (reply.type != FrameType::StatsReply) {
    throw NetError("ClusterClient: unexpected stats reply");
  }
  WireReader r(reply.payload);
  WireStats stats = decode_stats(r);
  r.expect_end();
  return stats;
}

std::size_t ClusterClient::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_m_);
  return tenants_.size();
}

const std::string& ClusterClient::tenant_endpoint(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(tenants_m_);
  return tenants_.at(tenant).endpoint;
}

std::size_t ClusterClient::set_endpoints(std::vector<std::string> endpoints) {
  auto next = std::make_unique<Router>(std::move(endpoints),
                                       64);  // same smoothness as construction
  // Connect new shards first: migration needs both ends live.
  for (const std::string& e : next->endpoints()) {
    if (conns_.find(e) == conns_.end()) {
      conns_.emplace(e, std::make_unique<ShardConnection>(e));
    }
  }

  std::size_t migrated = 0;
  {
    std::lock_guard<std::mutex> lock(tenants_m_);
    for (Tenant& t : tenants_) {
      const std::string& home = next->endpoint_for(t.fingerprint);
      if (home == t.endpoint) continue;
      // Snapshot the resident system off the old shard and replay the
      // returned bytes verbatim on the new one: the codec round-trips
      // bitwise, so the migrated tenant fingerprints and answers
      // identically to the original registration.
      WireWriter w;
      w.u32(t.remote_id);
      Frame snap =
          connection(t.endpoint).roundtrip(FrameType::SnapshotRequest, w.view());
      if (snap.type == FrameType::Error) {
        WireReader r(snap.payload);
        throw NetError("snapshot of tenant on " + t.endpoint + " failed: " +
                       r.str());
      }
      if (snap.type != FrameType::SnapshotReply) {
        throw NetError("ClusterClient: unexpected snapshot reply");
      }
      t.remote_id = register_encoded(home, snap.payload);
      t.endpoint = home;
      ++migrated;
    }
  }

  // Drop connections to shards that left the fleet.
  for (auto it = conns_.begin(); it != conns_.end();) {
    const auto& eps = next->endpoints();
    const bool keep =
        std::find(eps.begin(), eps.end(), it->first) != eps.end();
    it = keep ? std::next(it) : conns_.erase(it);
  }
  router_ = std::move(next);
  return migrated;
}

}  // namespace procon::net
