#include "net/router.h"

#include <algorithm>
#include <stdexcept>

namespace procon::net {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

Router::Router(std::vector<std::string> endpoints, std::size_t virtual_nodes)
    : endpoints_(std::move(endpoints)) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("Router: empty endpoint list");
  }
  virtual_nodes = std::max<std::size_t>(virtual_nodes, 1);
  {
    std::vector<std::string> sorted = endpoints_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("Router: duplicate endpoint");
    }
  }
  ring_.reserve(endpoints_.size() * virtual_nodes);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::uint64_t base = fnv1a(endpoints_[i]);
    for (std::size_t r = 0; r < virtual_nodes; ++r) {
      // Mixing the endpoint hash with the replica index scatters each
      // endpoint's points uniformly; identical across any client holding
      // the same endpoint strings.
      ring_.push_back(Point{splitmix64(base ^ splitmix64(r)),
                            static_cast<std::uint32_t>(i)});
    }
  }
  // Tie-break by shard index so the ring (hence routing) is independent of
  // construction order even in the astronomically unlikely position tie.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position : a.shard < b.shard;
  });
}

std::size_t Router::shard_for(std::uint64_t fingerprint) const noexcept {
  // Re-mix the fingerprint: Zobrist values are uniform, but independence
  // from the ring-point mixing keeps placement unbiased.
  const std::uint64_t pos = splitmix64(fingerprint);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const Point& p, std::uint64_t v) { return p.position < v; });
  return it != ring_.end() ? it->shard : ring_.front().shard;
}

}  // namespace procon::net
