// net::Router — deterministic consistent-hash routing of tenants to shards.
//
// The cluster tier spreads tenant systems across N AnalysisServer shards,
// keyed by the O(1)-readable platform::System::fingerprint(). Routing must
// be (a) deterministic across independent clients — two clients holding
// the same endpoint list send a tenant to the same shard without any
// coordination — and (b) stable under membership change: growing from N to
// N+1 shards moves only ~1/(N+1) of the tenants (the classic consistent
// hashing argument), each relocation driven by the snapshot/migration
// frames (see net::ClusterClient).
//
// Implementation: a hash ring with `virtual_nodes` points per endpoint
// (FNV-1a over the endpoint string, splitmix64-mixed per replica; more
// points = smoother balance). A fingerprint routes to the owner of the
// first ring point at or after its mixed position, wrapping at the top.
// Structurally identical tenants fingerprint equal (Zobrist, name-free)
// and therefore land on the same shard, which is what lets that shard's
// session LRU and transposition table share work between them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace procon::net {

/// \brief Consistent-hash ring over shard endpoints.
class Router {
 public:
  /// \brief Builds the ring. Endpoint strings are opaque ring keys (the
  /// client treats them as "host:port"); order does not matter — any
  /// permutation of the same set yields the identical ring.
  /// \param endpoints one entry per shard; must be non-empty and unique
  /// \param virtual_nodes ring points per endpoint (balance smoothness)
  /// Throws std::invalid_argument on an empty or duplicated endpoint list.
  explicit Router(std::vector<std::string> endpoints,
                  std::size_t virtual_nodes = 64);

  /// \brief Shard index owning `fingerprint` (index into endpoints()).
  [[nodiscard]] std::size_t shard_for(std::uint64_t fingerprint) const noexcept;

  /// \brief The endpoint string of shard_for(fingerprint).
  [[nodiscard]] const std::string& endpoint_for(std::uint64_t fingerprint) const noexcept {
    return endpoints_[shard_for(fingerprint)];
  }

  /// \brief The endpoint list, in construction order.
  [[nodiscard]] const std::vector<std::string>& endpoints() const noexcept {
    return endpoints_;
  }

  /// \brief Number of shards.
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return endpoints_.size();
  }

 private:
  struct Point {
    std::uint64_t position = 0;
    std::uint32_t shard = 0;
  };

  std::vector<std::string> endpoints_;
  std::vector<Point> ring_;  // sorted by (position, shard)
};

}  // namespace procon::net
