#include "net/codec.h"

namespace procon::net {
namespace {

// ---- small vector helpers -------------------------------------------------

void put_u32_count(WireWriter& w, std::size_t n) {
  if (n > 0xFFFFFFFFu) throw CodecError("codec: count exceeds u32");
  w.u32(static_cast<std::uint32_t>(n));
}

// Robustness guard for every count a decoder resizes or reserves from: a
// wire count may not promise more elements than the remaining frame bytes
// can possibly hold (each element occupies >= min_bytes on the wire), so a
// corrupted or hostile count fails cleanly here instead of driving a giant
// allocation before the reader runs off the end.
std::uint32_t get_count(WireReader& r, std::size_t min_bytes) {
  const std::uint32_t n = r.u32();
  if (min_bytes > 0 && n > r.remaining() / min_bytes) {
    throw CodecError("codec: count exceeds frame");
  }
  return n;
}

// ---- exec-time distributions ----------------------------------------------

void encode_distribution(WireWriter& w, const sdf::ExecTimeDistribution& d) {
  put_u32_count(w, d.outcomes().size());
  for (const auto& o : d.outcomes()) {
    w.i64(o.value);
    w.f64(o.weight);
  }
}

sdf::ExecTimeDistribution decode_distribution(WireReader& r) {
  const std::uint32_t n = get_count(r, 16);
  if (n == 0) throw CodecError("codec: empty distribution");
  std::vector<sdf::ExecTimeDistribution::Outcome> outcomes;
  outcomes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const sdf::Time v = r.i64();
    const double wt = r.f64();
    outcomes.push_back({v, wt});
  }
  try {
    // Outcomes were stored normalised; rebuilding without re-normalising is
    // what keeps the decoded moments bitwise equal to the encoded ones.
    return sdf::ExecTimeDistribution::from_normalised(std::move(outcomes));
  } catch (const std::invalid_argument& e) {
    throw CodecError(std::string("codec: bad distribution: ") + e.what());
  }
}

// ---- report provenance / payload bodies -----------------------------------

void encode_provenance(WireWriter& w, const api::Provenance& p) {
  w.str(p.method);
  w.u64(p.evaluations);
  w.u64(p.threads);
  w.f64(p.wall_ms);
}

api::Provenance decode_provenance(WireReader& r) {
  api::Provenance p;
  p.method = r.str();
  p.evaluations = static_cast<std::size_t>(r.u64());
  p.threads = static_cast<std::size_t>(r.u64());
  p.wall_ms = r.f64();
  return p;
}

void encode_body(WireWriter& w, const analysis::PeriodResult& v) {
  w.u8(v.deadlocked ? 1 : 0);
  w.f64(v.period);
}

void decode_body(WireReader& r, analysis::PeriodResult& v) {
  v.deadlocked = r.u8() != 0;
  v.period = r.f64();
}

void encode_body(WireWriter& w, const analysis::GraphLatencyResult& v) {
  w.f64(v.latency);
  put_u32_count(w, v.critical_actors.size());
  for (const sdf::ActorId a : v.critical_actors) w.u32(a);
}

void decode_body(WireReader& r, analysis::GraphLatencyResult& v) {
  v.latency = r.f64();
  const std::uint32_t n = get_count(r, 4);
  v.critical_actors.resize(n);
  for (auto& a : v.critical_actors) a = r.u32();
}

void encode_body(WireWriter& w, const analysis::BottleneckReport& v) {
  w.u8(v.deadlocked ? 1 : 0);
  w.f64(v.period);
  put_u32_count(w, v.actors.size());
  for (const sdf::ActorId a : v.actors) w.u32(a);
}

void decode_body(WireReader& r, analysis::BottleneckReport& v) {
  v.deadlocked = r.u8() != 0;
  v.period = r.f64();
  const std::uint32_t n = get_count(r, 4);
  v.actors.resize(n);
  for (auto& a : v.actors) a = r.u32();
}

void encode_racer_stats(WireWriter& w, const dse::RacerStats& s) {
  w.u64(s.races);
  w.u64(s.arms);
  w.u64(s.pruned_similar);
  w.u64(s.estimator_pulls);
  w.u64(s.sim_pulls);
  w.u64(s.full_evals);
  w.u64(s.eliminated);
  w.u64(s.exhaustive_evals);
  w.u64(s.rounds);
  for (const std::uint64_t e : s.eliminated_per_round) w.u64(e);
}

void decode_racer_stats(WireReader& r, dse::RacerStats& s) {
  s.races = r.u64();
  s.arms = r.u64();
  s.pruned_similar = r.u64();
  s.estimator_pulls = r.u64();
  s.sim_pulls = r.u64();
  s.full_evals = r.u64();
  s.eliminated = r.u64();
  s.exhaustive_evals = r.u64();
  s.rounds = r.u64();
  for (std::uint64_t& e : s.eliminated_per_round) e = r.u64();
}

void encode_body(WireWriter& w, const dse::FrontierResult& v) {
  put_u32_count(w, v.points.size());
  for (const dse::BufferPoint& p : v.points) {
    put_u32_count(w, p.capacities.size());
    for (const std::uint64_t c : p.capacities) w.u64(c);
    w.u64(p.total_tokens);
    w.f64(p.period);
  }
  encode_racer_stats(w, v.racer);
  w.u64(v.evaluations);
}

void decode_body(WireReader& r, dse::FrontierResult& v) {
  v.points.resize(get_count(r, 20));
  for (dse::BufferPoint& p : v.points) {
    p.capacities.resize(get_count(r, 8));
    for (auto& c : p.capacities) c = r.u64();
    p.total_tokens = r.u64();
    p.period = r.f64();
  }
  decode_racer_stats(r, v.racer);
  v.evaluations = r.u64();
}

void encode_body(WireWriter& w, const std::vector<prob::AppEstimate>& v) {
  put_u32_count(w, v.size());
  for (const prob::AppEstimate& a : v) {
    w.f64(a.isolation_period);
    w.f64(a.estimated_period);
    put_u32_count(w, a.actors.size());
    for (const prob::ActorEstimate& e : a.actors) {
      w.f64(e.waiting_time);
      w.f64(e.response_time);
    }
  }
}

void decode_body(WireReader& r, std::vector<prob::AppEstimate>& v) {
  v.resize(get_count(r, 20));
  for (prob::AppEstimate& a : v) {
    a.isolation_period = r.f64();
    a.estimated_period = r.f64();
    a.actors.resize(get_count(r, 16));
    for (prob::ActorEstimate& e : a.actors) {
      e.waiting_time = r.f64();
      e.response_time = r.f64();
    }
  }
}

void encode_body(WireWriter& w, const std::vector<wcrt::AppBound>& v) {
  put_u32_count(w, v.size());
  for (const wcrt::AppBound& a : v) {
    w.f64(a.isolation_period);
    w.f64(a.worst_case_period);
    put_u32_count(w, a.actors.size());
    for (const wcrt::ActorBound& b : a.actors) {
      w.f64(b.waiting_time);
      w.f64(b.response_time);
    }
  }
}

void decode_body(WireReader& r, std::vector<wcrt::AppBound>& v) {
  v.resize(get_count(r, 20));
  for (wcrt::AppBound& a : v) {
    a.isolation_period = r.f64();
    a.worst_case_period = r.f64();
    a.actors.resize(get_count(r, 16));
    for (wcrt::ActorBound& b : a.actors) {
      b.waiting_time = r.f64();
      b.response_time = r.f64();
    }
  }
}

void encode_body(WireWriter& w, const sim::SimResult& v) {
  put_u32_count(w, v.apps.size());
  for (const sim::AppSimResult& a : v.apps) {
    w.u64(a.iterations);
    w.u8(a.converged ? 1 : 0);
    w.f64(a.average_period);
    w.f64(a.worst_period);
    put_u32_count(w, a.actors.size());
    for (const sim::ActorStats& s : a.actors) {
      w.u64(s.firings);
      w.i64(s.total_waiting);
      w.i64(s.total_service);
    }
    put_u32_count(w, a.iteration_times.size());
    for (const sdf::Time t : a.iteration_times) w.i64(t);
  }
  put_u32_count(w, v.node_utilisation.size());
  for (const double u : v.node_utilisation) w.f64(u);
  put_u32_count(w, v.link_utilisation.size());
  for (const double u : v.link_utilisation) w.f64(u);
  w.u64(v.events_processed);
  w.i64(v.horizon);
  put_u32_count(w, v.trace.size());
  for (const sim::TraceEvent& e : v.trace) {
    w.i64(e.start);
    w.i64(e.end);
    w.u32(e.app);
    w.u32(e.actor);
    w.u32(e.node);
  }
}

void decode_body(WireReader& r, sim::SimResult& v) {
  v.apps.resize(get_count(r, 33));
  for (sim::AppSimResult& a : v.apps) {
    a.iterations = r.u64();
    a.converged = r.u8() != 0;
    a.average_period = r.f64();
    a.worst_period = r.f64();
    a.actors.resize(get_count(r, 24));
    for (sim::ActorStats& s : a.actors) {
      s.firings = r.u64();
      s.total_waiting = r.i64();
      s.total_service = r.i64();
    }
    a.iteration_times.resize(get_count(r, 8));
    for (auto& t : a.iteration_times) t = r.i64();
  }
  v.node_utilisation.resize(get_count(r, 8));
  for (auto& u : v.node_utilisation) u = r.f64();
  v.link_utilisation.resize(get_count(r, 8));
  for (auto& u : v.link_utilisation) u = r.f64();
  v.events_processed = r.u64();
  v.horizon = r.i64();
  v.trace.resize(get_count(r, 28));
  for (sim::TraceEvent& e : v.trace) {
    e.start = r.i64();
    e.end = r.i64();
    e.app = r.u32();
    e.actor = r.u32();
    e.node = r.u32();
  }
}

void encode_body(WireWriter& w, const std::vector<api::TopologyResult>& v) {
  put_u32_count(w, v.size());
  for (const api::TopologyResult& t : v) {
    encode_body(w, t.estimates);
    encode_body(w, t.sim);
  }
}

void decode_body(WireReader& r, std::vector<api::TopologyResult>& v) {
  v.resize(get_count(r, 36));
  for (api::TopologyResult& t : v) {
    decode_body(r, t.estimates);
    decode_body(r, t.sim);
  }
}

// The variant alternative decoded at index I (QueryKind order).
template <std::size_t I>
api::QueryValue decode_alternative(WireReader& r, api::Provenance provenance) {
  std::variant_alternative_t<I, api::QueryValue> report;
  report.provenance = std::move(provenance);
  decode_body(r, report.value);
  return api::QueryValue(std::in_place_index<I>, std::move(report));
}

}  // namespace

// ---- graphs and systems ---------------------------------------------------

void encode_graph(WireWriter& w, const sdf::Graph& g) {
  w.str(g.name());
  put_u32_count(w, g.actor_count());
  for (const sdf::Actor& a : g.actors()) {
    w.str(a.name);
    w.i64(a.exec_time);
  }
  put_u32_count(w, g.channel_count());
  for (const sdf::Channel& c : g.channels()) {
    w.u32(c.src);
    w.u32(c.dst);
    w.u32(c.prod_rate);
    w.u32(c.cons_rate);
    w.u64(c.initial_tokens);
  }
}

sdf::Graph decode_graph(WireReader& r) {
  sdf::Graph g(r.str());
  const std::uint32_t actors = r.u32();
  try {
    for (std::uint32_t i = 0; i < actors; ++i) {
      std::string name = r.str();
      const sdf::Time tau = r.i64();
      g.add_actor(std::move(name), tau);
    }
    const std::uint32_t channels = r.u32();
    for (std::uint32_t i = 0; i < channels; ++i) {
      const sdf::ActorId src = r.u32();
      const sdf::ActorId dst = r.u32();
      const std::uint32_t prod = r.u32();
      const std::uint32_t cons = r.u32();
      const std::uint64_t tokens = r.u64();
      g.add_channel(src, dst, prod, cons, tokens);
    }
  } catch (const sdf::GraphError& e) {
    throw CodecError(std::string("codec: bad graph: ") + e.what());
  }
  return g;
}

void encode_exec_model(WireWriter& w, const sdf::ExecTimeModel& model) {
  put_u32_count(w, model.size());
  for (const sdf::ExecTimeDistribution& d : model) encode_distribution(w, d);
}

sdf::ExecTimeModel decode_exec_model(WireReader& r) {
  const std::uint32_t n = get_count(r, 4);
  sdf::ExecTimeModel model;
  model.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) model.push_back(decode_distribution(r));
  return model;
}

void encode_topology(WireWriter& w, const platform::Topology& t) {
  w.u8(static_cast<std::uint8_t>(t.kind()));
  if (t.none()) return;
  put_u32_count(w, t.node_count());
  w.u32(t.rows());
  w.u32(t.cols());
  put_u32_count(w, t.link_count());
  for (std::size_t l = 0; l < t.link_count(); ++l) {
    const platform::Link& lk = t.link(static_cast<platform::LinkId>(l));
    w.u32(lk.src);
    w.u32(lk.dst);
    w.u32(lk.width);
    w.i64(lk.latency);
  }
}

platform::Topology decode_topology(WireReader& r) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(platform::TopologyKind::Mesh2D)) {
    throw CodecError("codec: unknown topology kind");
  }
  if (kind == static_cast<std::uint8_t>(platform::TopologyKind::None)) {
    return platform::Topology{};
  }
  const std::uint32_t nodes = r.u32();
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  const std::uint32_t links = get_count(r, 20);
  // Validate the declared shape BEFORE invoking a factory: the link count
  // is frame-bounded (get_count above), and every factory allocation is
  // proportional to it, so a corrupted node/row/col field cannot drive a
  // giant allocation.
  std::uint64_t expected = 0;
  switch (static_cast<platform::TopologyKind>(kind)) {
    case platform::TopologyKind::Bus:
      if (nodes == 0) throw CodecError("codec: bad topology: empty bus");
      expected = 1;
      break;
    case platform::TopologyKind::Ring:
      if (nodes < 2) throw CodecError("codec: bad topology: degenerate ring");
      expected = 2ull * nodes;
      break;
    case platform::TopologyKind::Mesh2D: {
      if (rows == 0 || cols == 0 ||
          static_cast<std::uint64_t>(rows) * cols != nodes || nodes < 2) {
        throw CodecError("codec: bad topology: mesh dims");
      }
      const std::uint64_t r64 = rows;
      const std::uint64_t c64 = cols;
      expected = 2 * (r64 * (c64 - 1) + c64 * (r64 - 1));
      break;
    }
    default:
      break;
  }
  if (expected != links) throw CodecError("codec: topology link count mismatch");
  platform::Topology t;
  try {
    switch (static_cast<platform::TopologyKind>(kind)) {
      case platform::TopologyKind::Bus:
        t = platform::Topology::bus(nodes);
        break;
      case platform::TopologyKind::Ring:
        t = platform::Topology::ring(nodes);
        break;
      case platform::TopologyKind::Mesh2D:
        t = platform::Topology::mesh(rows, cols);
        break;
      default:
        break;
    }
  } catch (const std::invalid_argument& e) {
    throw CodecError(std::string("codec: bad topology: ") + e.what());
  }
  for (std::uint32_t l = 0; l < links; ++l) {
    const platform::NodeId src = r.u32();
    const platform::NodeId dst = r.u32();
    const std::uint32_t width = r.u32();
    const sdf::Time latency = r.i64();
    const platform::Link& lk = t.link(l);
    if (lk.src != src || lk.dst != dst) {
      throw CodecError("codec: topology link endpoints mismatch");
    }
    t.set_link_width(l, width);
    t.set_link_latency(l, latency);
  }
  return t;
}

void encode_system(WireWriter& w, const platform::System& sys) {
  put_u32_count(w, sys.app_count());
  for (const sdf::Graph& g : sys.apps()) encode_graph(w, g);
  const platform::Platform& plat = sys.platform();
  put_u32_count(w, plat.node_count());
  for (std::size_t i = 0; i < plat.node_count(); ++i) {
    const platform::Node& n = plat.node(static_cast<platform::NodeId>(i));
    w.str(n.name);
    w.u32(n.type);
  }
  const platform::Mapping& map = sys.mapping();
  put_u32_count(w, map.app_count());
  for (std::size_t a = 0; a < map.app_count(); ++a) {
    const std::size_t actors = sys.app(static_cast<sdf::AppId>(a)).actor_count();
    put_u32_count(w, actors);
    for (std::size_t i = 0; i < actors; ++i) {
      w.u32(map.node_of(static_cast<sdf::AppId>(a), static_cast<sdf::ActorId>(i)));
    }
  }
  encode_topology(w, plat.topology());
}

platform::System decode_system(WireReader& r) {
  const std::uint32_t app_count = get_count(r, 12);
  std::vector<sdf::Graph> apps;
  apps.reserve(app_count);
  for (std::uint32_t i = 0; i < app_count; ++i) apps.push_back(decode_graph(r));

  platform::Platform plat;
  const std::uint32_t nodes = r.u32();
  for (std::uint32_t i = 0; i < nodes; ++i) {
    std::string name = r.str();
    const platform::NodeType type = r.u32();
    plat.add_node(std::move(name), type);
  }

  platform::Mapping map(apps);
  const std::uint32_t rows = r.u32();
  if (rows != app_count) throw CodecError("codec: mapping row count mismatch");
  try {
    for (std::uint32_t a = 0; a < rows; ++a) {
      const std::uint32_t actors = r.u32();
      if (actors != apps[a].actor_count()) {
        throw CodecError("codec: mapping row size mismatch");
      }
      for (std::uint32_t i = 0; i < actors; ++i) {
        const platform::NodeId node = r.u32();
        if (node != platform::kInvalidNode) {
          map.assign(static_cast<sdf::AppId>(a), static_cast<sdf::ActorId>(i), node);
        }
      }
    }
    // Attach the topology before constructing the System so the constructor
    // computes the full (node ^ topology) platform fingerprint — the decoded
    // system fingerprints identically to the encoded one.
    platform::Topology topo = decode_topology(r);
    if (!topo.none()) plat.set_topology(std::move(topo));
    return platform::System(std::move(apps), std::move(plat), std::move(map));
  } catch (const sdf::GraphError& e) {
    throw CodecError(std::string("codec: bad system: ") + e.what());
  } catch (const std::out_of_range& e) {
    throw CodecError(std::string("codec: bad system: ") + e.what());
  } catch (const std::invalid_argument& e) {
    throw CodecError(std::string("codec: bad system: ") + e.what());
  }
}

// ---- query descriptors ----------------------------------------------------

void encode_query_desc(WireWriter& w, const api::QueryDesc& d) {
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.u32(d.app);
  put_u32_count(w, d.use_case.size());
  for (const sdf::AppId a : d.use_case) w.u32(a);

  w.u8(static_cast<std::uint8_t>(d.estimator.method));
  w.i64(d.estimator.order);
  w.i64(d.estimator.iterations);
  w.u64(d.estimator.mc_trials);
  w.u64(d.estimator.mc_seed);

  w.u8(static_cast<std::uint8_t>(d.wcrt.policy));
  w.i64(d.wcrt.tdma_slot);

  w.i64(d.sim.horizon);
  w.u8(static_cast<std::uint8_t>(d.sim.arbitration));
  w.i64(d.sim.tdma_slot);
  w.f64(d.sim.warmup_fraction);
  w.u64(d.sim.min_iterations);
  w.u64(d.sim.max_events);
  put_u32_count(w, d.sim.exec_models.size());
  for (const sdf::ExecTimeModel& m : d.sim.exec_models) encode_exec_model(w, m);
  w.u64(d.sim.sample_seed);
  w.u8(d.sim.collect_trace ? 1 : 0);

  w.u64(d.buffers.max_steps);
  w.f64(d.buffers.convergence);
  w.u8(d.buffers.incremental ? 1 : 0);
  w.u8(d.buffers.racer.enabled ? 1 : 0);
  w.u64(d.buffers.racer.estimator_pulls);
  w.u64(d.buffers.racer.sim_pulls);
  w.i64(d.buffers.racer.sim_horizon);
  w.f64(d.buffers.racer.confidence);
  w.f64(d.buffers.racer.rel_slack);
  w.u64(d.buffers.racer.max_survivors);
  w.u64(d.buffers.racer.budget);
  w.u64(d.buffers.racer.batch);
  w.u64(d.buffers.racer.resync_every);
  w.f64(d.buffers.racer.staleness_slack);
  w.u64(d.buffers.racer.seed);

  put_u32_count(w, d.topologies.size());
  for (const platform::Topology& t : d.topologies) encode_topology(w, t);
  w.u8(d.topo_with_sim ? 1 : 0);
}

api::QueryDesc decode_query_desc(WireReader& r) {
  api::QueryDesc d;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(api::QueryKind::TopologySweep)) {
    throw CodecError("codec: unknown query kind");
  }
  d.kind = static_cast<api::QueryKind>(kind);
  d.app = r.u32();
  d.use_case.resize(get_count(r, 4));
  for (auto& a : d.use_case) a = r.u32();

  const std::uint8_t method = r.u8();
  if (method > static_cast<std::uint8_t>(prob::Method::MonteCarlo)) {
    throw CodecError("codec: unknown estimator method");
  }
  d.estimator.method = static_cast<prob::Method>(method);
  d.estimator.order = static_cast<int>(r.i64());
  d.estimator.iterations = static_cast<int>(r.i64());
  d.estimator.mc_trials = static_cast<std::size_t>(r.u64());
  d.estimator.mc_seed = r.u64();

  const std::uint8_t policy = r.u8();
  if (policy > static_cast<std::uint8_t>(wcrt::Policy::TdmaPreemptive)) {
    throw CodecError("codec: unknown wcrt policy");
  }
  d.wcrt.policy = static_cast<wcrt::Policy>(policy);
  d.wcrt.tdma_slot = r.i64();

  d.sim.horizon = r.i64();
  const std::uint8_t arb = r.u8();
  if (arb > static_cast<std::uint8_t>(sim::Arbitration::Tdma)) {
    throw CodecError("codec: unknown arbitration");
  }
  d.sim.arbitration = static_cast<sim::Arbitration>(arb);
  d.sim.tdma_slot = r.i64();
  d.sim.warmup_fraction = r.f64();
  d.sim.min_iterations = r.u64();
  d.sim.max_events = r.u64();
  const std::uint32_t models = get_count(r, 4);
  d.sim.exec_models.reserve(models);
  for (std::uint32_t i = 0; i < models; ++i) {
    d.sim.exec_models.push_back(decode_exec_model(r));
  }
  d.sim.sample_seed = r.u64();
  d.sim.collect_trace = r.u8() != 0;

  d.buffers.max_steps = static_cast<std::size_t>(r.u64());
  d.buffers.convergence = r.f64();
  d.buffers.incremental = r.u8() != 0;
  d.buffers.racer.enabled = r.u8() != 0;
  d.buffers.racer.estimator_pulls = static_cast<std::size_t>(r.u64());
  d.buffers.racer.sim_pulls = static_cast<std::size_t>(r.u64());
  d.buffers.racer.sim_horizon = r.i64();
  d.buffers.racer.confidence = r.f64();
  d.buffers.racer.rel_slack = r.f64();
  d.buffers.racer.max_survivors = static_cast<std::size_t>(r.u64());
  d.buffers.racer.budget = static_cast<std::size_t>(r.u64());
  d.buffers.racer.batch = static_cast<std::size_t>(r.u64());
  d.buffers.racer.resync_every = static_cast<std::size_t>(r.u64());
  d.buffers.racer.staleness_slack = r.f64();
  d.buffers.racer.seed = r.u64();

  const std::uint32_t topologies = get_count(r, 1);
  d.topologies.reserve(topologies);
  for (std::uint32_t i = 0; i < topologies; ++i) {
    d.topologies.push_back(decode_topology(r));
  }
  d.topo_with_sim = r.u8() != 0;
  return d;
}

// ---- query results --------------------------------------------------------

void encode_query_payload(WireWriter& w, const api::QueryValue& v) {
  w.u8(static_cast<std::uint8_t>(v.index()));
  std::visit([&w](const auto& report) { encode_body(w, report.value); }, v);
}

void encode_query_value(WireWriter& w, const api::QueryValue& v) {
  w.u8(static_cast<std::uint8_t>(v.index()));
  std::visit(
      [&w](const auto& report) {
        encode_provenance(w, report.provenance);
        encode_body(w, report.value);
      },
      v);
}

api::QueryValue decode_query_value(WireReader& r) {
  const std::uint8_t index = r.u8();
  api::Provenance p = decode_provenance(r);
  switch (index) {
    case 0: return decode_alternative<0>(r, std::move(p));
    case 1: return decode_alternative<1>(r, std::move(p));
    case 2: return decode_alternative<2>(r, std::move(p));
    case 3: return decode_alternative<3>(r, std::move(p));
    case 4: return decode_alternative<4>(r, std::move(p));
    case 5: return decode_alternative<5>(r, std::move(p));
    case 6: return decode_alternative<6>(r, std::move(p));
    case 7: return decode_alternative<7>(r, std::move(p));
    default: throw CodecError("codec: unknown result variant");
  }
}

// ---- stats ----------------------------------------------------------------

void encode_stats(WireWriter& w, const WireStats& s) {
  w.u64(s.service.submitted);
  w.u64(s.service.coalesced);
  w.u64(s.service.executed);
  w.u64(s.service.cancelled);
  w.u64(s.service.sessions_built);
  w.u64(s.service.sessions_evicted);
  w.u64(s.service.result_hits);
  w.u64(s.table.hits);
  w.u64(s.table.misses);
  w.u64(s.table.stores);
  w.u64(s.table.evictions);
  w.u64(s.table.verify_failures);
  put_u32_count(w, s.table.shards.size());
  for (const auto& sh : s.table.shards) {
    w.u64(sh.hits);
    w.u64(sh.misses);
    w.u64(sh.stores);
    w.u64(sh.evictions);
    w.u64(sh.verify_failures);
  }
}

WireStats decode_stats(WireReader& r) {
  WireStats s;
  s.service.submitted = r.u64();
  s.service.coalesced = r.u64();
  s.service.executed = r.u64();
  s.service.cancelled = r.u64();
  s.service.sessions_built = r.u64();
  s.service.sessions_evicted = r.u64();
  s.service.result_hits = r.u64();
  s.table.hits = r.u64();
  s.table.misses = r.u64();
  s.table.stores = r.u64();
  s.table.evictions = r.u64();
  s.table.verify_failures = r.u64();
  s.table.shards.resize(get_count(r, 40));
  for (auto& sh : s.table.shards) {
    sh.hits = r.u64();
    sh.misses = r.u64();
    sh.stores = r.u64();
    sh.evictions = r.u64();
    sh.verify_failures = r.u64();
  }
  return s;
}

// ---- framing --------------------------------------------------------------

namespace {
constexpr std::size_t kFrameHeader = 4;         // the length prefix itself
constexpr std::size_t kFrameOverhead = 1 + 8;   // type + request_id
}  // namespace

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw CodecError("codec: frame payload too large");
  }
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(kFrameOverhead + payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(request_id);
  w.bytes(payload);
  const auto bytes = w.view();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> try_extract_frame(std::vector<std::uint8_t>& buf) {
  if (buf.size() < kFrameHeader) return std::nullopt;
  WireReader header(std::span<const std::uint8_t>(buf.data(), kFrameHeader));
  const std::uint32_t len = header.u32();
  if (len < kFrameOverhead || len > kFrameOverhead + kMaxFramePayload) {
    throw CodecError("codec: corrupt frame length");
  }
  if (buf.size() < kFrameHeader + len) return std::nullopt;
  WireReader body(std::span<const std::uint8_t>(buf.data() + kFrameHeader, len));
  Frame f;
  f.type = static_cast<FrameType>(body.u8());
  f.request_id = body.u64();
  f.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(kFrameHeader + kFrameOverhead),
                   buf.begin() + static_cast<std::ptrdiff_t>(kFrameHeader + len));
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(kFrameHeader + len));
  return f;
}

std::vector<std::uint8_t> hello_payload() {
  WireWriter w;
  w.u32(kProtocolMagic);
  w.u16(kProtocolVersion);
  return w.take();
}

void check_hello(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  if (r.u32() != kProtocolMagic) throw CodecError("codec: bad protocol magic");
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) {
    throw CodecError("codec: protocol version mismatch (peer " +
                     std::to_string(version) + ", local " +
                     std::to_string(kProtocolVersion) + ")");
  }
}

}  // namespace procon::net
