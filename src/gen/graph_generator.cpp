#include "gen/graph_generator.h"

#include <algorithm>
#include <stdexcept>

#include "sdf/algorithms.h"
#include "sdf/repetition.h"
#include "util/rational.h"

namespace procon::gen {
namespace {

using sdf::ActorId;
using sdf::Graph;

/// Derives balanced rates for an edge u->v from the chosen repetition
/// entries: prod = q[v]/g, cons = q[u]/g with g = gcd (smallest balanced
/// pair).
std::pair<std::uint32_t, std::uint32_t> balanced_rates(std::uint64_t qu,
                                                       std::uint64_t qv) {
  const auto g = static_cast<std::uint64_t>(
      util::gcd64(static_cast<std::int64_t>(qu), static_cast<std::int64_t>(qv)));
  return {static_cast<std::uint32_t>(qv / g), static_cast<std::uint32_t>(qu / g)};
}

}  // namespace

Graph generate_graph(util::Rng& rng, const GeneratorOptions& opts,
                     const std::string& name) {
  if (opts.min_actors < 2 || opts.max_actors < opts.min_actors) {
    throw std::invalid_argument("generate_graph: invalid actor-count range");
  }
  if (opts.max_repetition < 1 || opts.min_exec_time < 1 ||
      opts.max_exec_time < opts.min_exec_time) {
    throw std::invalid_argument("generate_graph: invalid parameter range");
  }

  const auto n = static_cast<std::uint32_t>(rng.uniform_int(
      opts.min_actors, opts.max_actors));

  Graph g(name);
  std::vector<std::uint64_t> q(n);
  for (std::uint32_t a = 0; a < n; ++a) {
    q[a] = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(opts.max_repetition)));
    g.add_actor(name + "_a" + std::to_string(a),
                rng.uniform_int(opts.min_exec_time, opts.max_exec_time));
  }

  // Ring backbone over a random permutation: guarantees strong connectivity.
  std::vector<ActorId> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<sdf::ChannelId> ring_edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    const ActorId u = perm[i];
    const ActorId v = perm[(i + 1) % n];
    const auto [p, c] = balanced_rates(q[u], q[v]);
    ring_edges.push_back(g.add_channel(u, v, p, c, 0));
  }

  // Random chords (no self-edges; duplicates allowed - SDF is a multigraph).
  const auto chords = static_cast<std::uint32_t>(opts.chord_fraction * n);
  for (std::uint32_t k = 0; k < chords; ++k) {
    const auto u = static_cast<ActorId>(rng.uniform_int(0, n - 1));
    auto v = static_cast<ActorId>(rng.uniform_int(0, n - 2));
    if (v >= u) ++v;
    const auto [p, c] = balanced_rates(q[u], q[v]);
    g.add_channel(u, v, p, c, 0);
  }

  // Deadlock repair: abstract execution reports starved channels; add one
  // firing's worth of tokens to one of them and retry. Each addition
  // strictly enables progress, so the loop terminates within
  // sum(q[dst] * cons) additions.
  for (std::uint32_t guard = 0; ; ++guard) {
    const sdf::DeadlockDiagnosis diag = sdf::diagnose_deadlock(g);
    if (diag.deadlock_free) break;
    if (diag.starved_channels.empty() || guard > 100000) {
      throw std::logic_error("generate_graph: deadlock repair failed");
    }
    // Prefer ring edges (keeps chords delay-free where possible).
    sdf::ChannelId pick = diag.starved_channels.front();
    for (const sdf::ChannelId c : diag.starved_channels) {
      if (std::find(ring_edges.begin(), ring_edges.end(), c) != ring_edges.end()) {
        pick = c;
        break;
      }
    }
    // Rebuild with increased tokens (channels are immutable by design).
    Graph g2(g.name());
    for (const sdf::Actor& a : g.actors()) g2.add_actor(a.name, a.exec_time);
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      const sdf::Channel& ch = g.channel(c);
      const std::uint64_t extra = (c == pick) ? ch.cons_rate : 0;
      g2.add_channel(ch.src, ch.dst, ch.prod_rate, ch.cons_rate,
                     ch.initial_tokens + extra);
    }
    g = std::move(g2);
  }

  // Optional pipelining head start on the ring-closing edge.
  if (opts.extra_token_iterations > 0) {
    Graph g2(g.name());
    for (const sdf::Actor& a : g.actors()) g2.add_actor(a.name, a.exec_time);
    const sdf::ChannelId last_ring = ring_edges.back();
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      const sdf::Channel& ch = g.channel(c);
      std::uint64_t extra = 0;
      if (c == last_ring) {
        extra = static_cast<std::uint64_t>(opts.extra_token_iterations) *
                ch.cons_rate * q[ch.dst];
      }
      g2.add_channel(ch.src, ch.dst, ch.prod_rate, ch.cons_rate,
                     ch.initial_tokens + extra);
    }
    g = std::move(g2);
  }
  return g;
}

std::vector<Graph> generate_graphs(util::Rng& rng, const GeneratorOptions& opts,
                                   std::size_t count, const std::string& prefix) {
  std::vector<Graph> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = prefix;
    if (i < 26) {
      name += static_cast<char>('A' + i);
    } else {
      name += "G" + std::to_string(i);
    }
    out.push_back(generate_graph(rng, opts, name));
  }
  return out;
}

std::vector<Graph> paper_workload(std::uint64_t seed) {
  util::Rng rng(seed);
  GeneratorOptions opts;  // defaults already match the paper's setup
  return generate_graphs(rng, opts, 10);
}

}  // namespace procon::gen
