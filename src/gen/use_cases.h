// Use-case enumeration and sampling.
//
// A use-case is a set of concurrently active applications (paper, Section
// 1). With N applications there are 2^N - 1 non-empty use-cases; the
// benchmark harnesses either enumerate them all (paper setup, N = 10) or
// sample a fixed number per cardinality for quicker runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/system.h"
#include "platform/system_view.h"
#include "util/rng.h"

namespace procon::gen {

/// All non-empty subsets of {0..app_count-1}, ordered by increasing
/// cardinality then lexicographically. Throws for app_count > 20.
[[nodiscard]] std::vector<platform::UseCase> all_use_cases(std::size_t app_count);

/// All use-cases of exactly `cardinality` applications.
[[nodiscard]] std::vector<platform::UseCase> use_cases_of_size(std::size_t app_count,
                                                               std::size_t cardinality);

/// Up to `per_size` random use-cases for every cardinality 1..app_count
/// (without replacement within a cardinality).
[[nodiscard]] std::vector<platform::UseCase> sample_use_cases(std::size_t app_count,
                                                              std::size_t per_size,
                                                              util::Rng& rng);

/// Zero-copy restriction views for a batch of use-cases over one system —
/// what a sweep iterates instead of per-use-case restrict_to copies. The
/// views borrow `sys`, which must outlive them.
[[nodiscard]] std::vector<platform::SystemView> restrict_views(
    const platform::System& sys, std::span<const platform::UseCase> use_cases);

}  // namespace procon::gen
