#include "gen/use_cases.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace procon::gen {

using platform::UseCase;

std::vector<UseCase> use_cases_of_size(std::size_t app_count, std::size_t cardinality) {
  std::vector<UseCase> out;
  if (cardinality == 0 || cardinality > app_count) return out;
  // Standard combination enumeration in lexicographic order.
  std::vector<sdf::AppId> idx(cardinality);
  for (std::size_t i = 0; i < cardinality; ++i) idx[i] = static_cast<sdf::AppId>(i);
  while (true) {
    out.push_back(idx);
    // Advance.
    std::size_t i = cardinality;
    while (i > 0) {
      --i;
      if (idx[i] != i + app_count - cardinality) break;
      if (i == 0) return out;
    }
    ++idx[i];
    for (std::size_t j = i + 1; j < cardinality; ++j) idx[j] = idx[j - 1] + 1;
  }
}

std::vector<UseCase> all_use_cases(std::size_t app_count) {
  if (app_count > 20) {
    throw std::invalid_argument("all_use_cases: too many applications (max 20)");
  }
  std::vector<UseCase> out;
  out.reserve((1ULL << app_count) - 1);
  for (std::size_t k = 1; k <= app_count; ++k) {
    auto of_size = use_cases_of_size(app_count, k);
    out.insert(out.end(), of_size.begin(), of_size.end());
  }
  return out;
}

std::vector<UseCase> sample_use_cases(std::size_t app_count, std::size_t per_size,
                                      util::Rng& rng) {
  std::vector<UseCase> out;
  for (std::size_t k = 1; k <= app_count; ++k) {
    // If few enough combinations exist, take them all.
    auto all = use_cases_of_size(app_count, k);
    if (all.size() <= per_size) {
      out.insert(out.end(), all.begin(), all.end());
      continue;
    }
    std::set<UseCase> chosen;
    while (chosen.size() < per_size) {
      // Floyd-style sample of k distinct app ids.
      UseCase uc;
      std::vector<sdf::AppId> pool(app_count);
      for (std::size_t i = 0; i < app_count; ++i) pool[i] = static_cast<sdf::AppId>(i);
      rng.shuffle(pool);
      uc.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
      std::sort(uc.begin(), uc.end());
      chosen.insert(std::move(uc));
    }
    out.insert(out.end(), chosen.begin(), chosen.end());
  }
  return out;
}

std::vector<platform::SystemView> restrict_views(
    const platform::System& sys, std::span<const UseCase> use_cases) {
  std::vector<platform::SystemView> views;
  views.reserve(use_cases.size());
  for (const UseCase& uc : use_cases) views.emplace_back(sys, uc);
  return views;
}

}  // namespace procon::gen
