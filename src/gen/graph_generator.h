// Random SDFG generation (substitute for the SDF3 tool [15]).
//
// Produces graphs with the properties the paper's evaluation relies on:
//  * consistent by construction: a repetition vector q is drawn first and
//    each edge's rates are derived from it (q[src]*prod == q[dst]*cons);
//  * strongly connected: a directed ring over a random actor permutation
//    forms the backbone, plus random chord edges;
//  * deadlock-free: initial tokens are placed by a repair loop that adds
//    tokens to starved channels (reported by abstract execution) until one
//    full iteration completes;
//  * random execution times and 8-10 actors by default, mimicking the
//    DSP/multimedia applications of the paper's experiments.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.h"
#include "util/rng.h"

namespace procon::gen {

struct GeneratorOptions {
  std::uint32_t min_actors = 8;
  std::uint32_t max_actors = 10;
  std::uint64_t max_repetition = 4;   ///< q entries drawn from [1, max]
  sdf::Time min_exec_time = 10;
  sdf::Time max_exec_time = 100;
  /// Number of chord edges added beyond the ring, as a fraction of the
  /// actor count (rounded down).
  double chord_fraction = 0.5;
  /// Extra initial-token head start: after repair, this many additional
  /// "iterations worth" of tokens are added on the ring-closing edge to
  /// increase pipelining (0 = minimal tokens).
  std::uint32_t extra_token_iterations = 0;
};

/// Generates one random graph. Deterministic given the RNG state.
[[nodiscard]] sdf::Graph generate_graph(util::Rng& rng, const GeneratorOptions& opts,
                                        const std::string& name);

/// Generates `count` graphs named <prefix>A, <prefix>B, ... (wraps to
/// numeric suffixes beyond 26).
[[nodiscard]] std::vector<sdf::Graph> generate_graphs(util::Rng& rng,
                                                      const GeneratorOptions& opts,
                                                      std::size_t count,
                                                      const std::string& prefix = "");

/// The paper's benchmark workload: ten random strongly-connected SDFGs with
/// eight to ten actors each (named A..J), from the given seed.
[[nodiscard]] std::vector<sdf::Graph> paper_workload(std::uint64_t seed);

}  // namespace procon::gen
