#include "prob/compose.h"

#include <cmath>
#include <stdexcept>

namespace procon::prob {

Composite to_composite(const ActorLoad& load) noexcept {
  return Composite{load.probability, load.weighted_blocking()};
}

double compose_probability(double pa, double pb) noexcept {
  return pa + pb - pa * pb;
}

Composite compose(const Composite& a, const Composite& b) noexcept {
  Composite out;
  out.probability = compose_probability(a.probability, b.probability);
  // Eq. 7: muP_ab = muP_a (1 + P_b/2) + muP_b (1 + P_a/2).
  out.weighted_blocking = a.weighted_blocking * (1.0 + b.probability / 2.0) +
                          b.weighted_blocking * (1.0 + a.probability / 2.0);
  return out;
}

Composite compose_all(std::span<const ActorLoad> loads) noexcept {
  Composite acc = Composite::identity();
  for (const ActorLoad& l : loads) acc = compose(acc, to_composite(l));
  return acc;
}

bool can_invert(const Composite& b, double eps) noexcept {
  return std::abs(1.0 - b.probability) > eps;
}

double decompose_probability(double p_total, double pb) {
  if (std::abs(1.0 - pb) <= 1e-9) {
    throw std::domain_error("decompose_probability: P_b == 1 is not invertible");
  }
  return (p_total - pb) / (1.0 - pb);  // Eq. 8
}

Composite decompose(const Composite& total, const Composite& b) {
  if (!can_invert(b)) {
    throw std::domain_error("decompose: P_b == 1 is not invertible");
  }
  Composite rest;
  rest.probability = decompose_probability(total.probability, b.probability);
  // Eq. 9: muP_rest = (muP_total - muP_b (1 + P_rest/2)) / (1 + P_b/2).
  rest.weighted_blocking =
      (total.weighted_blocking -
       b.weighted_blocking * (1.0 + rest.probability / 2.0)) /
      (1.0 + b.probability / 2.0);
  return rest;
}

}  // namespace procon::prob
