#include "prob/load.h"

#include <algorithm>

namespace procon::prob {

double blocking_probability(double exec_time, std::uint64_t repetitions,
                            double period) noexcept {
  if (period <= 0.0) return exec_time > 0.0 ? 1.0 : 0.0;
  const double p = exec_time * static_cast<double>(repetitions) / period;
  return std::clamp(p, 0.0, 1.0);
}

double mean_blocking_time(double exec_time) noexcept { return exec_time / 2.0; }

void derive_loads_stochastic_into(const sdf::Graph& g, const sdf::RepetitionVector& q,
                                  double period, const sdf::ExecTimeModel& model,
                                  std::vector<ActorLoad>& out) {
  if (q.size() != g.actor_count() || model.size() != g.actor_count()) {
    throw sdf::GraphError("derive_loads_stochastic: size mismatch");
  }
  if (period <= 0.0) {
    throw sdf::GraphError("derive_loads_stochastic: period must be positive");
  }
  out.clear();
  out.resize(g.actor_count());
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
    out[a].exec_time = model[a].mean();
    out[a].probability = blocking_probability(model[a].mean(), q[a], period);
    out[a].mean_blocking = model[a].mean_residual();
  }
}

std::vector<ActorLoad> derive_loads_stochastic(const sdf::Graph& g,
                                               const sdf::RepetitionVector& q,
                                               double period,
                                               const sdf::ExecTimeModel& model) {
  std::vector<ActorLoad> loads;
  derive_loads_stochastic_into(g, q, period, model, loads);
  return loads;
}

void derive_loads_into(const sdf::Graph& g, const sdf::RepetitionVector& q,
                       double period, std::vector<ActorLoad>& out) {
  if (q.size() != g.actor_count()) {
    throw sdf::GraphError("derive_loads: repetition vector size mismatch");
  }
  if (period <= 0.0) {
    throw sdf::GraphError("derive_loads: application period must be positive");
  }
  out.clear();
  out.resize(g.actor_count());
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
    const auto tau = static_cast<double>(g.actor(a).exec_time);
    out[a].exec_time = tau;
    out[a].probability = blocking_probability(tau, q[a], period);
    out[a].mean_blocking = mean_blocking_time(tau);
  }
}

std::vector<ActorLoad> derive_loads(const sdf::Graph& g, const sdf::RepetitionVector& q,
                                    double period) {
  std::vector<ActorLoad> loads;
  derive_loads_into(g, q, period, loads);
  return loads;
}

ActorLoad link_flow_load(double service_time, std::uint64_t repetitions,
                         double period) noexcept {
  ActorLoad load;
  load.exec_time = service_time;
  load.probability = blocking_probability(service_time, repetitions, period);
  load.mean_blocking = mean_blocking_time(service_time);
  return load;
}

}  // namespace procon::prob
