#include "prob/monte_carlo.h"

#include <vector>

namespace procon::prob {

double waiting_time_monte_carlo(std::span<const ActorLoad> others, util::Rng& rng,
                                std::size_t trials) {
  if (others.empty() || trials == 0) return 0.0;
  double total = 0.0;
  std::vector<std::size_t> blockers;
  blockers.reserve(others.size());
  for (std::size_t t = 0; t < trials; ++t) {
    blockers.clear();
    for (std::size_t i = 0; i < others.size(); ++i) {
      if (rng.bernoulli(others[i].probability)) blockers.push_back(i);
    }
    if (blockers.empty()) continue;
    // One blocker is in service (uniform choice, uniform residual); the
    // others wait in the queue with their full execution time.
    const std::size_t serving = blockers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(blockers.size()) - 1))];
    double wait = rng.uniform_real(0.0, others[serving].exec_time);
    for (const std::size_t i : blockers) {
      if (i != serving) wait += others[i].exec_time;
    }
    total += wait;
  }
  return total / static_cast<double>(trials);
}

}  // namespace procon::prob
