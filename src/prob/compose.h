// Composability algebra (Section 4.2: Equations 6-9).
//
// Two actors a, b are composed into a pseudo-actor "ab" with
//   P_ab         = P_a (+) P_b = P_a + P_b - P_a*P_b                 (Eq. 6)
//   mu_ab P_ab   = muP_a (x) muP_b
//                = mu_a P_a (1 + P_b/2) + mu_b P_b (1 + P_a/2)       (Eq. 7)
// (+) is exactly associative and commutative; (x) is commutative and
// associative to second order. The inverses (Eq. 8, 9) remove a component
// from a composite in O(1), enabling incremental analysis when applications
// enter/leave at run time (admission control). The inverse requires
// P_b != 1 - the paper's own caveat; callers must check via can_invert().
#pragma once

#include <span>

#include "prob/load.h"

namespace procon::prob {

/// A composite pseudo-actor: combined blocking probability and combined
/// weighted waiting time mu*P. The expected waiting a newly arriving actor
/// suffers from the composite is exactly `weighted_blocking`.
struct Composite {
  double probability = 0.0;        ///< P of the composite, in [0, 1]
  double weighted_blocking = 0.0;  ///< mu * P of the composite

  /// The identity element (empty node).
  static constexpr Composite identity() noexcept { return {}; }
};

/// Lifts a single actor load into a composite.
[[nodiscard]] Composite to_composite(const ActorLoad& load) noexcept;

/// P_a (+) P_b (Eq. 6).
[[nodiscard]] double compose_probability(double pa, double pb) noexcept;

/// Full composition of two composites (Eq. 6 + Eq. 7).
[[nodiscard]] Composite compose(const Composite& a, const Composite& b) noexcept;

/// Left fold of `loads` with compose(), starting from identity. The fold
/// order is the span order (deterministic; (x) is associative only to
/// second order, so order matters in the last digits).
[[nodiscard]] Composite compose_all(std::span<const ActorLoad> loads) noexcept;

/// True if `b` can be removed from a composite (P_b sufficiently far
/// from 1 for Eq. 8 to be well conditioned).
[[nodiscard]] bool can_invert(const Composite& b, double eps = 1e-9) noexcept;

/// Inverse operations: given total = rest (+)/(x) b, recover rest.
/// Throws std::domain_error if !can_invert(b).
[[nodiscard]] double decompose_probability(double p_total, double pb);
[[nodiscard]] Composite decompose(const Composite& total, const Composite& b);

}  // namespace procon::prob
