#include "prob/estimator.h"

#include <functional>
#include <stdexcept>

#include "prob/monte_carlo.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace procon::prob {

const char* method_name_c(Method m) noexcept {
  switch (m) {
    case Method::Exact: return "Probabilistic Exact";
    case Method::SecondOrder: return "Probabilistic Second Order";
    case Method::FourthOrder: return "Probabilistic Fourth Order";
    case Method::MthOrder: return "Probabilistic M-th Order";
    case Method::Composability: return "Composability-based";
    case Method::CompositionInverse: return "Composability-based (inverse)";
    case Method::MonteCarlo: return "Monte-Carlo sampling";
  }
  return "?";
}

std::string method_name(Method m) { return method_name_c(m); }

ContentionEstimator::ContentionEstimator(EstimatorOptions opts) : opts_(opts) {
  if (opts_.order < 1) throw std::invalid_argument("estimator order must be >= 1");
  if (opts_.iterations < 1) {
    throw std::invalid_argument("estimator iterations must be >= 1");
  }
}

namespace {

/// Waiting time of `who` given the loads of the other actors on its node.
/// `others` is a caller-owned scratch buffer filled per actor — the hot
/// estimation loop reuses one allocation instead of re-allocating per actor
/// per node per pass.
double waiting_for(const std::vector<ActorLoad>& others,
                   const platform::GlobalActor& who, const EstimatorOptions& opts) {
  switch (opts.method) {
    case Method::Exact: return waiting_time_exact(others);
    case Method::SecondOrder: return waiting_time_second_order(others);
    case Method::FourthOrder: return waiting_time_fourth_order(others);
    case Method::MthOrder: return waiting_time_approx(others, opts.order);
    case Method::Composability: return compose_all(others).weighted_blocking;
    case Method::MonteCarlo: {
      // Per-slot deterministic stream: the estimate is reproducible and
      // independent of evaluation order.
      util::Rng rng(opts.mc_seed ^ (0x9E3779B97F4A7C15ULL * (who.app + 1)) ^
                    (0xBF58476D1CE4E5B9ULL * (who.actor + 1)));
      return waiting_time_monte_carlo(others, rng, opts.mc_trials);
    }
    case Method::CompositionInverse: break;  // handled by caller (node-level)
  }
  throw std::logic_error("waiting_for: unhandled method");
}

/// Fills `others` with every load except entries[self].
void collect_others(const std::vector<NodeOccupant>& entries, std::size_t self,
                    std::vector<ActorLoad>& others) {
  others.clear();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != self) others.push_back(entries[i].load);
  }
}

/// Grows a workspace arena to at least `count` slots without ever shrinking
/// it — shrinking a vector-of-vectors destroys the inner buffers, which is
/// exactly the allocation churn the workspace exists to avoid.
template <typename T>
void ensure_slots(std::vector<T>& arena, std::size_t count) {
  if (arena.size() < count) arena.resize(count);
}

}  // namespace

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::System& sys) const {
  return estimate(platform::SystemView(sys), {});
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::System& sys, std::span<const sdf::ExecTimeModel> models) const {
  return estimate(platform::SystemView(sys), models);
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::SystemView& view,
    std::span<const sdf::ExecTimeModel> models) const {
  // One-shot call: build the per-application engines locally. Each engine
  // caches every structure-dependent analysis step; the Step-5 loop below
  // then only rewrites execution times per pass.
  std::vector<analysis::ThroughputEngine> engines;
  engines.reserve(view.app_count());
  for (sdf::AppId i = 0; i < view.app_count(); ++i) {
    const sdf::Graph& app = view.app(i);
    try {
      engines.emplace_back(app);
    } catch (const sdf::GraphError&) {
      throw sdf::GraphError("estimate: application '" + app.name() +
                            "' is inconsistent");
    }
  }
  std::vector<analysis::ThroughputEngine*> ptrs;
  ptrs.reserve(engines.size());
  for (analysis::ThroughputEngine& e : engines) ptrs.push_back(&e);
  return estimate(view, models, std::span<analysis::ThroughputEngine* const>(ptrs));
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::System& sys, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine> engines) const {
  std::vector<analysis::ThroughputEngine*> ptrs;
  ptrs.reserve(engines.size());
  for (analysis::ThroughputEngine& e : engines) ptrs.push_back(&e);
  return estimate(platform::SystemView(sys), models,
                  std::span<analysis::ThroughputEngine* const>(ptrs));
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::System& sys, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine* const> engines) const {
  return estimate(platform::SystemView(sys), models, engines);
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine* const> engines) const {
  return estimate_impl(view, models, engines, nullptr);
}

std::vector<AppEstimate> ContentionEstimator::estimate(
    const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine* const> engines,
    util::ThreadPool& pool) const {
  return estimate_impl(view, models, engines, &pool);
}

std::vector<AppEstimate> ContentionEstimator::estimate_impl(
    const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine* const> engines,
    util::ThreadPool* pool) const {
  // One-shot storage: the value-returning overloads pay a fresh workspace
  // and result vector per call; steady-state callers hold both and use
  // estimate_into directly.
  EstimatorWorkspace ws;
  std::vector<AppEstimate> out(view.app_count());
  estimate_into(view, models, engines, ws, out, pool);
  return out;
}

PROCON_WARM_PATH void ContentionEstimator::estimate_into(
    const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
    std::span<analysis::ThroughputEngine* const> engines, EstimatorWorkspace& ws,
    std::span<AppEstimate> out, util::ThreadPool* pool) const {
  PROCON_ASSERT_NO_ALLOC("ContentionEstimator::estimate_into");
  const std::size_t napps = view.app_count();
  if (!models.empty() && models.size() != napps) {
    throw sdf::GraphError("estimate: execution-time model count mismatch");
  }
  if (engines.size() != napps) {
    throw sdf::GraphError("estimate: engine count mismatch");
  }
  if (out.size() != napps) {
    throw sdf::GraphError("estimate: output slot count mismatch");
  }
  // Per-application sharding hook: every per-app step below writes only to
  // its own slot and touches only its own engine, so running items on the
  // pool (or inline when nested/serial) yields identical bits in any case.
  // Generic lambda: the serial branch calls the body directly — no
  // std::function type erasure, so warm serial queries stay heap-free.
  const auto for_each_app = [&](const auto& fn) {
    if (pool != nullptr && napps > 1) {
      pool->for_each_index(napps, [&](std::size_t item, std::size_t) {
        fn(static_cast<sdf::AppId>(item));
      });
    } else {
      for (sdf::AppId i = 0; i < napps; ++i) fn(static_cast<sdf::AppId>(i));
    }
  };

  // All temporaries live in the workspace with grow-only capacity: a warm
  // call of previously-seen shapes touches the heap zero times.
  ensure_slots(ws.means, napps);
  ensure_slots(ws.loads, napps);
  ensure_slots(ws.response, napps);

  // Step 1: isolation periods (repetition vectors are cached in the engines).
  for_each_app([&](sdf::AppId i) {
    const sdf::Graph& app = view.app(i);
    if (engines[i]->actor_count() != app.actor_count()) {
      throw sdf::GraphError("estimate: engine does not match application '" +
                            app.name() + "'");
    }
    // Mean execution time per actor (equals the graph's fixed times for the
    // deterministic model, where the slot stays empty).
    ws.means[i].clear();
    if (!models.empty()) {
      if (models[i].size() != app.actor_count()) {
        throw sdf::GraphError("estimate: execution-time model size mismatch");
      }
      ws.means[i].reserve(app.actor_count());
      for (const auto& dist : models[i]) ws.means[i].push_back(dist.mean());
    }
    const auto iso = engines[i]->recompute(ws.means[i]);
    if (iso.deadlocked || iso.period <= 0.0) {
      throw sdf::GraphError("estimate: application '" + app.name() +
                            "' has no positive isolation period");
    }
    out[i].isolation_period = iso.period;
    out[i].estimated_period = iso.period;  // starting point for iteration
    out[i].actors.resize(app.actor_count());
  });

  // Interconnect: enumerate the routed channels once per call — routes are
  // pure structure, reused every pass; only their loads change per pass.
  // All three arenas are grow-only, so warm calls stay allocation-free.
  const platform::Topology& topo = view.platform().topology();
  ws.flows.clear();
  ws.flow_links.clear();
  ws.flow_service.clear();
  if (!topo.none()) {
    for (sdf::AppId i = 0; i < napps; ++i) {
      const sdf::Graph& app = view.app(i);
      const sdf::RepetitionVector& q = engines[i]->repetition_vector();
      for (sdf::ChannelId c = 0; c < app.channel_count(); ++c) {
        const sdf::Channel& ch = app.channel(c);
        const platform::NodeId src_node = view.node_of(i, ch.src);
        const platform::NodeId dst_node = view.node_of(i, ch.dst);
        if (src_node == dst_node) continue;
        LinkFlow flow;
        flow.app = i;
        flow.src = ch.src;
        flow.reps = q[ch.src];
        flow.route_begin = static_cast<std::uint32_t>(ws.flow_links.size());
        topo.route(src_node, dst_node, ws.flow_links);
        flow.route_end = static_cast<std::uint32_t>(ws.flow_links.size());
        for (std::uint32_t k = flow.route_begin; k < flow.route_end; ++k) {
          ws.flow_service.push_back(static_cast<double>(
              topo.service_time(ws.flow_links[k], ch.prod_rate)));
        }
        ws.flows.push_back(flow);
      }
    }
  }

  for (int pass = 0; pass < opts_.iterations; ++pass) {
    // Step 2: per-actor loads from the current period estimates.
    for_each_app([&](sdf::AppId i) {
      const sdf::RepetitionVector& q = engines[i]->repetition_vector();
      if (models.empty()) {
        derive_loads_into(view.app(i), q, out[i].estimated_period, ws.loads[i]);
      } else {
        derive_loads_stochastic_into(view.app(i), q, out[i].estimated_period,
                                     models[i], ws.loads[i]);
      }
    });

    // Step 3: group by node (the grouping arena keeps each node's slot
    // capacity across passes and calls).
    const std::size_t nnodes = view.platform().node_count();
    ensure_slots(ws.per_node, nnodes);
    for (std::size_t n = 0; n < nnodes; ++n) ws.per_node[n].clear();
    for (sdf::AppId i = 0; i < napps; ++i) {
      for (sdf::ActorId a = 0; a < view.app(i).actor_count(); ++a) {
        const platform::NodeId node = view.node_of(i, a);
        ws.per_node[node].push_back(NodeOccupant{{i, a}, ws.loads[i][a]});
      }
    }

    // Step 4: waiting and response times.
    for (sdf::AppId i = 0; i < napps; ++i) {
      ws.response[i].resize(view.app(i).actor_count(), 0.0);
    }
    for (std::size_t n = 0; n < nnodes; ++n) {
      const auto& entries = ws.per_node[n];
      if (entries.empty()) continue;

      // Node-level composite for the inverse method: one O(n) fold, then an
      // O(1) removal per actor (falls back to a direct fold if some other
      // actor saturates P == 1, the paper's non-invertible case).
      Composite node_total = Composite::identity();
      if (opts_.method == Method::CompositionInverse) {
        for (const NodeOccupant& e : entries) {
          node_total = compose(node_total, to_composite(e.load));
        }
      }

      for (std::size_t s = 0; s < entries.size(); ++s) {
        const NodeOccupant& e = entries[s];
        double twait = 0.0;
        if (opts_.method == Method::CompositionInverse) {
          const Composite self = to_composite(e.load);
          if (can_invert(self)) {
            twait = decompose(node_total, self).weighted_blocking;
          } else {
            collect_others(entries, s, ws.others);
            twait = compose_all(ws.others).weighted_blocking;
          }
        } else {
          collect_others(entries, s, ws.others);
          twait = waiting_for(ws.others, e.who, opts_);
        }
        const double mean_exec =
            ws.means[e.who.app].empty()
                ? static_cast<double>(view.app(e.who.app).actor(e.who.actor).exec_time)
                : ws.means[e.who.app][e.who.actor];
        out[e.who.app].actors[e.who.actor].waiting_time = twait;
        ws.response[e.who.app][e.who.actor] = mean_exec + twait;
        out[e.who.app].actors[e.who.actor].response_time =
            ws.response[e.who.app][e.who.actor];
      }
    }

    // Step 4b (interconnect extension): per-link waiting, composed into the
    // same fixed point. Each flow loads every link on its route; the
    // producer's response time then absorbs, per hop, the transfer time
    // plus the second-order expected waiting behind the *other* flows on
    // that link. Always second-order, whatever the node method — links are
    // a house extension orthogonal to the paper's method axis, and the
    // sim-agreement bound documented in tests/test_interconnect.cpp is
    // calibrated against this composition.
    if (!ws.flows.empty()) {
      const std::size_t nlinks = topo.link_count();
      ensure_slots(ws.per_link, nlinks);
      for (std::size_t l = 0; l < nlinks; ++l) ws.per_link[l].clear();
      for (std::uint32_t f = 0; f < ws.flows.size(); ++f) {
        const LinkFlow& flow = ws.flows[f];
        for (std::uint32_t k = flow.route_begin; k < flow.route_end; ++k) {
          ws.per_link[ws.flow_links[k]].push_back(LinkOccupant{
              f, link_flow_load(ws.flow_service[k], flow.reps,
                                out[flow.app].estimated_period)});
        }
      }
      for (std::uint32_t f = 0; f < ws.flows.size(); ++f) {
        const LinkFlow& flow = ws.flows[f];
        double tlink = 0.0;
        for (std::uint32_t k = flow.route_begin; k < flow.route_end; ++k) {
          ws.others.clear();
          for (const LinkOccupant& o : ws.per_link[ws.flow_links[k]]) {
            if (o.flow != f) ws.others.push_back(o.load);
          }
          tlink += ws.flow_service[k] + waiting_time_second_order(ws.others);
        }
        out[flow.app].actors[flow.src].waiting_time += tlink;
        ws.response[flow.app][flow.src] += tlink;
        out[flow.app].actors[flow.src].response_time =
            ws.response[flow.app][flow.src];
      }
    }

    // Step 5: periods of the response-time graphs — a warm-started weight
    // rewrite on the cached structure, not a fresh analysis. One Howard
    // solve per application: the dominant cost of deep fixed-point runs,
    // and exactly what the per-app sharding spreads across workers.
    for_each_app([&](sdf::AppId i) {
      const auto res = engines[i]->recompute(ws.response[i]);
      if (res.deadlocked) {
        throw sdf::GraphError("estimate: response-time graph deadlocks");
      }
      out[i].estimated_period = res.period;
    });
  }
}

}  // namespace procon::prob
