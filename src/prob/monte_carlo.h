// Monte-Carlo evaluation of the expected waiting time.
//
// Samples the paper's own probabilistic model directly: every other actor
// independently blocks the node with probability P(a); among the blockers,
// each is equally likely to be the one in service (uniformly distributed
// residual time in [0, tau]) while the rest are fully queued (Section 3.2's
// case analysis, generalised). The sample mean converges to the exact
// Equation 4 value - the tests exploit this as an independent validation of
// both the closed form and its O(n^2) implementation.
//
// As an estimation technique it is also available through
// Method::MonteCarlo in the ContentionEstimator: slower than the closed
// forms but trivially extensible to alternative service disciplines.
#pragma once

#include <cstddef>
#include <span>

#include "prob/load.h"
#include "util/rng.h"

namespace procon::prob {

/// Sample-mean waiting time over `trials` independent arrival experiments.
[[nodiscard]] double waiting_time_monte_carlo(std::span<const ActorLoad> others,
                                              util::Rng& rng, std::size_t trials);

}  // namespace procon::prob
