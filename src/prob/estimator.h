// The contention estimator: the paper's Figure 4 algorithm.
//
// Pipeline for a use-case (set of concurrently running applications):
//   1. compute each application's isolation period Per(A) analytically;
//   2. derive per-actor loads P(a) = tau q / Per and mu(a) = tau/2;
//   3. for every actor, evaluate the expected waiting time caused by the
//      other actors mapped on the same node, using the selected method;
//   4. form response times tau'(a) = tau(a) + t_wait(a);
//   5. recompute each application's period from the response-time graph.
//
// Methods (Section 4):
//   Exact                - Eq. 4 in full (via the O(n^2) symmetric-poly DP)
//   SecondOrder          - Eq. 5 (the paper's "Probabilistic Second Order")
//   FourthOrder          - 4th-order truncation ("Probabilistic Fourth Order")
//   MthOrder             - any truncation order (ablation studies)
//   Composability        - fold of Eq. 6/7 over the other actors
//   CompositionInverse   - full-node composite, own contribution removed via
//                          Eq. 8/9 (O(1) per actor after an O(n) node pass)
//
// A single pass matches the paper; EstimatorOptions::iterations > 1 enables
// the natural fixed-point extension (recompute P from the estimated
// contended periods and repeat).
//
// Interconnect extension (house, not in the paper): when the platform
// carries a platform::Topology, every channel whose producer and consumer
// sit on different nodes becomes a *flow* over its deterministic link
// route. Between steps 4 and 5 of each pass, each flow loads every link on
// its route with link_flow_load(T_l, q(src), Per(A)) and the producer's
// response time absorbs, per hop, the transfer time plus the expected
// waiting behind the other flows on that link — so link contention feeds
// the same step-5 fixed point as processor contention. The link term
// always uses the second-order composition, independently of the node
// method (links are orthogonal to the paper's method axis). With no
// topology there are no flows and results are bitwise identical to the
// paper pipeline.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "prob/compose.h"
#include "prob/load.h"
#include "prob/waiting_time.h"

namespace procon::util {
class ThreadPool;  // estimator.h stays light; see the pool overload below
}

namespace procon::prob {

enum class Method {
  Exact,
  SecondOrder,
  FourthOrder,
  MthOrder,
  Composability,
  CompositionInverse,
  MonteCarlo,  ///< sampling of the queue model (see prob/monte_carlo.h)
};

/// Human-readable method name ("Probabilistic Second Order" etc.).
[[nodiscard]] std::string method_name(Method m);

/// Allocation-free variant: the same names as static strings. Steady-state
/// callers assign the result into a reused std::string (capacity retained),
/// keeping warm report paths heap-free.
[[nodiscard]] const char* method_name_c(Method m) noexcept;

struct EstimatorOptions {
  Method method = Method::SecondOrder;
  int order = 2;       ///< truncation order when method == MthOrder
  int iterations = 1;  ///< fixed-point passes; 1 = paper's algorithm
  std::size_t mc_trials = 20'000;  ///< samples per actor for MonteCarlo
  std::uint64_t mc_seed = 7;       ///< MonteCarlo reproducibility seed
};

/// Per-actor estimate.
struct ActorEstimate {
  double waiting_time = 0.0;   ///< expected t_wait
  double response_time = 0.0;  ///< tau + t_wait
};

/// Per-application estimate.
struct AppEstimate {
  double isolation_period = 0.0;  ///< Per(A) with dedicated resources
  double estimated_period = 0.0;  ///< Per(A) under estimated contention
  std::vector<ActorEstimate> actors;

  [[nodiscard]] double estimated_throughput() const noexcept {
    return estimated_period > 0.0 ? 1.0 / estimated_period : 0.0;
  }
  /// Contention slowdown factor (>= 1 in practice).
  [[nodiscard]] double normalised_period() const noexcept {
    return isolation_period > 0.0 ? estimated_period / isolation_period : 0.0;
  }
};

/// One actor instance grouped on its node (step 3 of Figure 4) — exposed
/// only as the element type of EstimatorWorkspace's grouping arena.
struct NodeOccupant {
  platform::GlobalActor who;  ///< which actor of which (view) application
  ActorLoad load;             ///< its probabilistic load summary
};

/// One routed channel of the view (interconnect extension): a channel whose
/// producer and consumer sit on different nodes, flattened with its link
/// route for the per-link waiting-time term. Element type of
/// EstimatorWorkspace's flow arena.
struct LinkFlow {
  sdf::AppId app = 0;             ///< producing (view) application
  sdf::ActorId src = 0;           ///< producing actor, app-local id
  std::uint64_t reps = 0;         ///< q(src): transfers per iteration
  std::uint32_t route_begin = 0;  ///< first hop in flow_links / flow_service
  std::uint32_t route_end = 0;    ///< one past the last hop
};

/// One flow occupying a link during a pass, with its per-hop load — the
/// link-tier analogue of NodeOccupant.
struct LinkOccupant {
  std::uint32_t flow = 0;  ///< index into EstimatorWorkspace::flows
  ActorLoad load;          ///< link_flow_load of this flow on this link
};

/// Reusable scratch for the Figure 4 pipeline: every temporary the
/// algorithm builds per call/pass (step-1 mean tables, step-2 load tables,
/// the step-3 per-node grouping, step-4 response times and the
/// waiting-time fold buffer) lives here with grow-only capacity, so a
/// warm estimate_into() call of previously-seen shapes performs zero heap
/// allocations. One workspace per serial caller (it is mutated freely);
/// sharded callers may share one workspace across a pool because every
/// per-application slot is written by exactly one work item.
struct EstimatorWorkspace {
  std::vector<std::vector<double>> means;        ///< per app: mean exec times
  std::vector<std::vector<ActorLoad>> loads;     ///< per app: step-2 loads
  std::vector<std::vector<NodeOccupant>> per_node;  ///< step-3 grouping arena
  std::vector<std::vector<double>> response;     ///< per app: step-4 responses
  std::vector<ActorLoad> others;                 ///< step-4 fold scratch
  std::vector<LinkFlow> flows;                   ///< routed channels of the view
  std::vector<std::uint32_t> flow_links;         ///< concatenated route link ids
  std::vector<double> flow_service;              ///< per-hop transfer times
  std::vector<std::vector<LinkOccupant>> per_link;  ///< per-link grouping arena
};

class ContentionEstimator {
 public:
  explicit ContentionEstimator(EstimatorOptions opts = {});

  /// Runs the Figure 4 algorithm on all applications of `sys` (assumed all
  /// concurrently active). Throws sdf::GraphError for invalid systems.
  ///
  /// Deprecated one-shot shim: builds fresh engines per call. Repeated
  /// callers should use api::Workbench::contention / sweep_use_cases, which
  /// return the same bits from session-cached engines.
  [[deprecated("one-shot shim; use api::Workbench::contention or the "
               "SystemView/engine overloads")]] [[nodiscard]]
  std::vector<AppEstimate> estimate(const platform::System& sys) const;

  /// Stochastic variant (Section 6 extension): one execution-time model per
  /// application, one distribution per actor. Means drive the throughput
  /// analysis, residual-life times drive mu; with all-constant models this
  /// is identical to estimate(sys).
  [[deprecated("one-shot shim; use api::Workbench::contention or the "
               "SystemView/engine overloads")]] [[nodiscard]]
  std::vector<AppEstimate> estimate(
      const platform::System& sys,
      std::span<const sdf::ExecTimeModel> models) const;

  /// Zero-copy restriction variant: runs the algorithm on the applications
  /// selected by `view` (view/use-case order), reading graphs and mapping
  /// rows through the view — no restrict_to copy. Builds fresh engines for
  /// the selected applications; repeated callers should pass engines.
  [[nodiscard]] std::vector<AppEstimate> estimate(
      const platform::SystemView& view,
      std::span<const sdf::ExecTimeModel> models = {}) const;

  /// View variant with caller-owned engines: engines[i] must have been built
  /// from view.app(i). This is the core implementation every other overload
  /// funnels into.
  [[nodiscard]] std::vector<AppEstimate> estimate(
      const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
      std::span<analysis::ThroughputEngine* const> engines) const;

  /// Nested-sharding variant: same algorithm and bitwise-identical results
  /// as the engine overload above, but the per-application analysis steps
  /// of every fixed-point pass (isolation periods, load derivation, and the
  /// Step-5 response-time period recomputes — one Howard solve per app per
  /// pass) are sharded across `pool`. Each application's engine is touched
  /// by exactly one work item per pass, and results land in per-app slots,
  /// so the outcome is independent of worker count and scheduling. Called
  /// from inside a body already running on `pool` (an api::Workbench sweep
  /// item), the sharding degrades to the inline serial loop — safe by
  /// ThreadPool's nesting contract. Worth it for deep fixed-point runs
  /// (EstimatorOptions::iterations > 1) or many applications; for a single
  /// cheap pass the fan-out overhead can dominate.
  [[nodiscard]] std::vector<AppEstimate> estimate(
      const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
      std::span<analysis::ThroughputEngine* const> engines,
      util::ThreadPool& pool) const;

  /// Same algorithm, but all period analyses go through caller-owned
  /// ThroughputEngines (one per application of `sys`, in order). Callers
  /// that score the same applications many times — the mapping explorer,
  /// admission what-ifs — build the engines once and amortise every
  /// structure-dependent step across calls; each recompute then only
  /// rewrites execution times and warm-starts Howard. The engines must have
  /// been built from exactly the applications of `sys`.
  [[nodiscard]] std::vector<AppEstimate> estimate(
      const platform::System& sys, std::span<const sdf::ExecTimeModel> models,
      std::span<analysis::ThroughputEngine> engines) const;

  /// Pointer variant of the engine overload, for callers whose engines are
  /// not contiguous per system — a Workbench sweep selects the engines of a
  /// use-case's applications out of a per-worker clone set. engines[i] must
  /// have been built from apps()[i] of `sys`; entries are dereferenced, never
  /// retained.
  [[nodiscard]] std::vector<AppEstimate> estimate(
      const platform::System& sys, std::span<const sdf::ExecTimeModel> models,
      std::span<analysis::ThroughputEngine* const> engines) const;

  /// Sink-friendly core: writes the estimates into caller-owned slots
  /// instead of returning a fresh vector. `out` must have exactly
  /// view.app_count() elements; every field of every slot (including each
  /// slot's `actors` vector, resized in place) is overwritten, so stale
  /// contents never leak through. All temporaries come from `ws` with
  /// grow-only capacity: once the workspace and the out-slots have seen the
  /// shapes involved, repeated calls perform zero heap allocations — the
  /// per-use-case pass of api::Workbench's streaming sweeps and the warm
  /// contention path. `pool` (optional) shards the per-app passes exactly
  /// like the pool overload of estimate(). Results are bitwise identical to
  /// estimate() on the same inputs for any pool size.
  void estimate_into(const platform::SystemView& view,
                     std::span<const sdf::ExecTimeModel> models,
                     std::span<analysis::ThroughputEngine* const> engines,
                     EstimatorWorkspace& ws, std::span<AppEstimate> out,
                     util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] const EstimatorOptions& options() const noexcept { return opts_; }

 private:
  /// Shared body of the engine overloads; `pool` == nullptr runs serially.
  [[nodiscard]] std::vector<AppEstimate> estimate_impl(
      const platform::SystemView& view, std::span<const sdf::ExecTimeModel> models,
      std::span<analysis::ThroughputEngine* const> engines,
      util::ThreadPool* pool) const;

  EstimatorOptions opts_;
};

}  // namespace procon::prob
