#include "prob/waiting_time.h"

#include <stdexcept>
#include <vector>

#include "util/symmetric_poly.h"

namespace procon::prob {
namespace {

/// Shared core: evaluates the series truncated at inner degree `max_j`
/// (max_j = n-1 gives the exact Eq. 4). Scratch buffers are thread_local —
/// this sits in the innermost estimation loop (once per actor per node per
/// pass), so warm calls must not touch the heap, and sharded estimator
/// passes run it concurrently from pool workers.
double waiting_time_series(std::span<const ActorLoad> others, std::size_t max_j) {
  const std::size_t n = others.size();
  if (n == 0) return 0.0;

  static thread_local std::vector<double> probs;
  static thread_local std::vector<double> e;
  static thread_local std::vector<double> ei;
  probs.clear();
  probs.resize(n);
  for (std::size_t i = 0; i < n; ++i) probs[i] = others[i].probability;
  util::elementary_symmetric_into(probs, e);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Elementary symmetric polynomials of the probabilities excluding i.
    util::elementary_symmetric_remove_one_into(e, probs[i], ei);
    double series = 1.0;
    double sign = 1.0;
    const std::size_t limit = std::min(max_j, n - 1);
    for (std::size_t j = 1; j <= limit; ++j) {
      series += sign * ei[j] / static_cast<double>(j + 1);
      sign = -sign;
    }
    total += others[i].weighted_blocking() * series;
  }
  return total;
}

}  // namespace

double waiting_time_exact(std::span<const ActorLoad> others) {
  return others.empty() ? 0.0 : waiting_time_series(others, others.size() - 1);
}

double waiting_time_approx(std::span<const ActorLoad> others, int order) {
  if (order < 1) throw std::invalid_argument("waiting_time_approx: order must be >= 1");
  return waiting_time_series(others, static_cast<std::size_t>(order - 1));
}

double waiting_time_exact_bruteforce(std::span<const ActorLoad> others,
                                     std::size_t max_actors) {
  const std::size_t n = others.size();
  if (n > max_actors) {
    throw std::invalid_argument("waiting_time_exact_bruteforce: too many actors");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Inner sum: over subset sizes j of the other n-1 actors, the e_j term
    // enumerated explicitly as all j-subsets.
    double series = 1.0;
    // Enumerate all subsets of indices != i.
    std::vector<std::size_t> rest;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) rest.push_back(k);
    }
    const std::size_t m = rest.size();
    for (std::size_t mask = 1; mask < (1ULL << m); ++mask) {
      double prod = 1.0;
      std::size_t j = 0;
      for (std::size_t b = 0; b < m; ++b) {
        if (mask & (1ULL << b)) {
          prod *= others[rest[b]].probability;
          ++j;
        }
      }
      const double sign = (j % 2 == 1) ? 1.0 : -1.0;
      series += sign * prod / static_cast<double>(j + 1);
    }
    total += others[i].weighted_blocking() * series;
  }
  return total;
}

}  // namespace procon::prob
