// Expected waiting-time evaluation (Equations 3, 4 and 5 of the paper).
//
// Given the set of *other* actors sharing a node (each summarised as an
// ActorLoad), these functions return the expected time a newly arriving
// actor waits before the node becomes free.
//
// Equation 4:
//   t_wait = sum_i mu_i P_i * ( 1 + sum_{j=1}^{n-1} (-1)^{j+1}/(j+1)
//                                   e_j(P_1..P_{i-1}, P_{i+1}..P_n) )
// where e_j is the j-th elementary symmetric polynomial. The naive
// evaluation is O(n * n^n); here all e_j families are obtained by one
// O(n^2) DP plus an O(n) leave-one-out division per actor (see
// util/symmetric_poly.h), which computes the *identical* value in O(n^2).
//
// The m-th order approximation truncates the inner sum at j <= m-1
// (Eq. 5 is the case m = 2); the paper evaluates m = 2 and m = 4.
#pragma once

#include <span>

#include "prob/load.h"

namespace procon::prob {

/// Exact expected waiting time (Eq. 4) over the given other-actor loads.
/// Empty input yields 0.
[[nodiscard]] double waiting_time_exact(std::span<const ActorLoad> others);

/// m-th order approximation (Eq. 5 generalised). `order` >= 1; order == 1
/// keeps only the leading mu*P terms, order == 2 reproduces Eq. 5, and
/// order >= n is identical to the exact formula.
[[nodiscard]] double waiting_time_approx(std::span<const ActorLoad> others, int order);

/// Convenience wrappers for the two orders the paper evaluates.
[[nodiscard]] inline double waiting_time_second_order(std::span<const ActorLoad> o) {
  return waiting_time_approx(o, 2);
}
[[nodiscard]] inline double waiting_time_fourth_order(std::span<const ActorLoad> o) {
  return waiting_time_approx(o, 4);
}

/// Reference implementation of Eq. 4 by explicit subset enumeration
/// (O(n * 2^n)); exists to cross-validate the DP in tests. Throws
/// std::invalid_argument beyond `max_actors`.
[[nodiscard]] double waiting_time_exact_bruteforce(std::span<const ActorLoad> others,
                                                   std::size_t max_actors = 20);

}  // namespace procon::prob
