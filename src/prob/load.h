// Per-actor probabilistic load attributes (Definitions 4 and 5).
//
// Every actor mapped on a shared node is summarised by two numbers:
//   P(a)  = tau(a) * q(a) / Per(A)   - blocking probability: the chance the
//           node is found busy executing `a` at a random instant;
//   mu(a) = tau(a) / 2               - expected residual service time given
//           the node is found blocked by `a` (uniform arrival within the
//           firing, Eq. 1-2 of the paper).
//
// These two attributes are the *only* information an application exposes to
// the contention analysis - the source of the approach's scalability.
#pragma once

#include <vector>

#include "sdf/exec_time.h"
#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace procon::prob {

/// Probabilistic summary of one actor on its node.
struct ActorLoad {
  double probability = 0.0;   ///< P(a), in [0, 1]
  double mean_blocking = 0.0; ///< mu(a), time units
  double exec_time = 0.0;     ///< tau(a), kept for exact queue-position terms

  /// mu * P, the single-actor expected waiting contribution.
  [[nodiscard]] double weighted_blocking() const noexcept {
    return probability * mean_blocking;
  }
};

/// Computes P(a) for one actor. Clamps to [0, 1]: utilisation above one
/// (infeasible load) saturates the probability, mirroring the paper's
/// interpretation of P as a fraction of time the resource is held.
[[nodiscard]] double blocking_probability(double exec_time, std::uint64_t repetitions,
                                          double period) noexcept;

/// mu(a) for constant execution times (Eq. 2).
[[nodiscard]] double mean_blocking_time(double exec_time) noexcept;

/// Derives loads for every actor of an application with isolation period
/// `period` and repetition vector `q`. Throws sdf::GraphError if sizes
/// mismatch or period <= 0.
[[nodiscard]] std::vector<ActorLoad> derive_loads(const sdf::Graph& g,
                                                  const sdf::RepetitionVector& q,
                                                  double period);

/// Reuse variant: clears `out` and refills it in place (same values as
/// derive_loads). Steady-state callers (the estimator workspace) hand the
/// same vector back per pass, so warm calls stay within its capacity and
/// perform no heap allocation.
void derive_loads_into(const sdf::Graph& g, const sdf::RepetitionVector& q,
                       double period, std::vector<ActorLoad>& out);

/// Stochastic variant (Section 6 extension): execution times follow the
/// given distributions. P uses the mean, mu the renewal-theoretic residual
/// E[tau^2] / (2 E[tau]) - which reduces to tau/2 for constant times.
[[nodiscard]] std::vector<ActorLoad> derive_loads_stochastic(
    const sdf::Graph& g, const sdf::RepetitionVector& q, double period,
    const sdf::ExecTimeModel& model);

/// Reuse variant of derive_loads_stochastic (see derive_loads_into).
void derive_loads_stochastic_into(const sdf::Graph& g, const sdf::RepetitionVector& q,
                                  double period, const sdf::ExecTimeModel& model,
                                  std::vector<ActorLoad>& out);

/// Per-link flow load (interconnect extension): the load one routed channel
/// places on one link of its route, in the same P/mu algebra as actors on
/// nodes. The producing actor fires `repetitions` times per period, each
/// firing occupying the link for `service_time` (the transfer of one
/// production burst), so P = clamp(service_time * repetitions / period) and
/// mu = service_time / 2 — Definitions 4/5 with the link as the shared
/// resource. Composable with every waiting-time method exactly like actor
/// loads.
[[nodiscard]] ActorLoad link_flow_load(double service_time,
                                       std::uint64_t repetitions,
                                       double period) noexcept;

}  // namespace procon::prob
