// dse::Racer — best-arm-identification candidate racing for DSE.
//
// The paper's probabilistic estimator exists to make design-space
// exploration cheap, yet the exhaustive DSE paths spend their budget
// uniformly: every candidate mapping / buffer vector is evaluated to full
// precision, even ones that are obviously dominated after a few cheap
// looks. The racer treats candidates as arms of a best-arm-identification
// problem and pulls them through a graded fidelity ladder:
//
//   (a) allocation-free probabilistic-estimator passes on cached
//       ThroughputEngines (second order, fixed-point depths doubling up
//       to the full-precision depth),
//   (b) short-horizon SimEngine runs on arm-cached engines,
//   (c) full-precision evaluation only for the surviving arms.
//
// Per-arm confidence intervals (empirical mean +/- confidence * stderr +
// a relative guard band) shrink as pulls accumulate; an arm is eliminated
// as soon as its lower bound clears the incumbent best's upper bound.
// Structurally identical candidates (equal Zobrist fingerprints) share one
// arm — and therefore one transposition-table entry — and the pruned
// duplicates receive the representative's outcome bitwise.
//
// Determinism contract (the repo's standing one): every pull is a pure
// function of (arm content, rung index) — arm RNG is counter-derived via
// util::counter_seed(seed, arm fingerprint, rung) — pulls land in per-arm
// slots, and all aggregation / elimination decisions run serially in arm
// order. The winner, every outcome, and every statistic are therefore
// bitwise identical for any thread count, pool size, and transposition-
// table state. `enabled = false` is the oracle mode: every arm goes
// straight to full precision (exactly the exhaustive path).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analysis/engine.h"
#include "analysis/transposition_table.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "prob/estimator.h"
#include "sdf/types.h"
#include "sim/sim_engine.h"
#include "util/thread_pool.h"

namespace procon::dse {

/// \brief Mixes every EstimatorOptions field into a transposition key.
///
/// One shared definition for all mapping-score consumers (the mapper,
/// racer pulls, Workbench score/optimise queries), so their MappingScore
/// entries interoperate: the same (system fingerprint, estimator
/// configuration) always builds the same key.
void absorb_estimator_options(analysis::TTKeyBuilder& builder,
                              const prob::EstimatorOptions& options) noexcept;

/// \brief Racing configuration, threaded through MapperOptions,
/// BufferExplorerOptions and the api::Workbench / api::AnalysisService
/// query descriptors.
struct RacerOptions {
  /// false = oracle mode: skip the fidelity ladder and evaluate every arm
  /// to full precision (bitwise the exhaustive path). Embedding consumers
  /// (MapperOptions, BufferExplorerOptions) default this to false so racing
  /// is strictly opt-in per query.
  bool enabled = true;
  /// Tier-(a) rungs per arm: allocation-free estimator passes on cached
  /// engines. The top rung runs a second-order estimate at the
  /// full-precision fixed-point depth, each rung below it at half the
  /// depth of the one above (floored at one pass) — the fixed point
  /// converges as a damped oscillation, so rungs hug the target depth
  /// instead of climbing linearly from one pass.
  std::size_t estimator_pulls = 2;
  /// Tier-(b) rungs per arm: short-horizon SimEngine runs on arm-cached
  /// engines (0 = skip the simulation tier). Rung j simulates
  /// (j+1) * sim_horizon time units.
  std::size_t sim_pulls = 0;
  /// Base horizon of one tier-(b) pull, in simulated time units.
  sdf::Time sim_horizon = 20'000;
  /// Confidence-interval width multiplier on the empirical standard error
  /// (larger = more conservative elimination).
  double confidence = 2.0;
  /// Relative guard band added to every interval: arms within this
  /// fraction of the best mean are never eliminated on cheap evidence
  /// alone. Protects against a fidelity ladder whose rungs agree exactly
  /// (zero variance) but misrank near-ties.
  double rel_slack = 0.02;
  /// Arms still active after the ladder get full-precision evaluations;
  /// the cap keeps that set small (the best-mean survivors are kept).
  std::size_t max_survivors = 2;
  /// Total cheap-pull budget per race (0 = bounded by the ladder alone).
  std::size_t budget = 0;
  /// Mapper only: annealing proposals raced per round (the speculation
  /// width in racing mode — fixed, not worker-count dependent).
  std::size_t batch = 8;
  /// Buffer explorer only: steps between full re-sync sweeps (a race in
  /// which every arm is evaluated to full precision, refreshing the
  /// priors). 0 disables periodic re-syncs.
  std::size_t resync_every = 12;
  /// Buffer explorer only: per-step growth of a stale prior's interval
  /// radius, as a fraction of the prior value.
  double staleness_slack = 0.01;
  /// Root of the counter-derived per-(arm, rung) random streams (tier-(b)
  /// sampling seeds).
  std::uint64_t seed = 0x5ACE;
};

/// \brief Racing introspection: pulls per fidelity tier, eliminations per
/// round, and the work saved versus the exhaustive path.
///
/// Plain counters (fixed-size, codec-trivial, allocation-free); surfaced
/// through MapperResult / FrontierResult / MappingRace, api::Workbench,
/// api::AnalysisService and the CLI's `[racer: ...]` line. All counts are
/// part of the determinism contract: identical for any thread count.
struct RacerStats {
  /// Elimination rounds tracked individually; later rounds fold into the
  /// last bucket.
  static constexpr std::size_t kMaxRounds = 8;
  std::uint64_t races = 0;            ///< race() calls aggregated here
  std::uint64_t arms = 0;             ///< total arms entered (incl. pruned)
  std::uint64_t pruned_similar = 0;   ///< arms merged by equal fingerprint
  std::uint64_t estimator_pulls = 0;  ///< tier-(a) pulls performed
  std::uint64_t sim_pulls = 0;        ///< tier-(b) pulls performed
  std::uint64_t full_evals = 0;       ///< tier-(c) full-precision evaluations
  std::uint64_t eliminated = 0;       ///< arms dropped before full precision
  /// Full-precision evaluations the equivalent exhaustive path would have
  /// performed for the same decisions (accounted by the racing caller).
  std::uint64_t exhaustive_evals = 0;
  std::uint64_t rounds = 0;           ///< elimination rounds run
  /// Arms eliminated in round r (r >= kMaxRounds folds into the last
  /// bucket). Survivor-cap cuts count in the round they happen after.
  std::uint64_t eliminated_per_round[kMaxRounds] = {};

  /// Accumulates `other` into this (counter-wise addition; per-round
  /// buckets add element-wise).
  void merge(const RacerStats& other) noexcept;
  /// Full-precision evaluations saved versus the exhaustive path, as a
  /// ratio (exhaustive / actual; 1.0 when nothing was saved or nothing ran).
  [[nodiscard]] double eval_ratio() const noexcept {
    return full_evals > 0 && exhaustive_evals > 0
               ? static_cast<double>(exhaustive_evals) /
                     static_cast<double>(full_evals)
               : 1.0;
  }
};

/// \brief Per-arm result of one race.
struct ArmOutcome {
  /// Full-precision score for survivors (and their pruned duplicates);
  /// the last confidence-interval mean for eliminated arms.
  double score = 0.0;
  /// true iff `score` is a full-precision (tier-c) evaluation.
  bool full = false;
  /// Cheap pulls this arm received (0 for pruned duplicates).
  std::uint32_t pulls = 0;
  /// Round in which the arm was eliminated (-1 = survived to full
  /// precision; pruned duplicates copy their representative's value).
  std::int32_t eliminated_round = -1;
};

/// \brief Adapter between the racer core and one candidate family
/// (mappings, buffer vectors, ...). Implementations own all evaluation
/// state; the racer owns scheduling, intervals and elimination.
class ArmSource {
 public:
  virtual ~ArmSource() = default;
  /// Similarity key of `arm`: equal non-zero fingerprints mean
  /// structurally identical candidates (merged into one arm; the
  /// duplicates inherit the representative's outcome bitwise). Return 0 to
  /// opt out of merging for this arm.
  [[nodiscard]] virtual std::uint64_t arm_fingerprint(std::size_t arm) const = 0;
  /// Cheap pull of `arm` at ladder rung `rung` (tier (a) then (b), in
  /// RacerOptions order). Must be a pure function of (arm content, rung):
  /// `worker` only selects scratch state. Tier-(a) rungs may run
  /// concurrently across arms; tier-(b) rungs are called serially.
  [[nodiscard]] virtual double pull(std::size_t arm, std::size_t rung,
                                    std::size_t worker) = 0;
  /// Full-precision score of `arm` (tier (c)); pure function of the arm
  /// content. May run concurrently across arms unless the race is serial.
  [[nodiscard]] virtual double full_eval(std::size_t arm, std::size_t worker) = 0;
  /// Extra confidence-interval radius for `arm` (e.g. staleness of a
  /// cached prior). Defaults to 0.
  [[nodiscard]] virtual double radius_hint(std::size_t arm) const;
  /// True when `rung` belongs to the estimator tier under `o` (used for
  /// the per-tier pull statistics).
  [[nodiscard]] static bool is_estimator_rung(const RacerOptions& o,
                                              std::size_t rung) noexcept {
    return rung < o.estimator_pulls;
  }
};

/// \brief The racing core: similarity pruning, the pull/eliminate loop and
/// the survivor full-precision stage, with reusable grow-only arenas.
///
/// A Racer is a mutable session object (its arenas and statistics carry
/// across races); concurrent race() calls on one instance are not allowed.
/// All decisions are serial and in arm order, pulls land in per-arm slots,
/// so a race is bitwise deterministic for any `pool` size (see the header
/// comment for the full contract).
class Racer {
 public:
  Racer() = default;

  /// Races `arm_count` arms of `source` and returns the winner's index
  /// (lowest full-precision score; ties break to the lowest arm index).
  /// `outcomes` must have exactly `arm_count` elements, all overwritten.
  /// `pool` (optional) shards tier-(a) pulls and full evaluations across
  /// workers — the caller must guarantee one ArmSource scratch state per
  /// pool worker; pass nullptr for a fully serial race (required when the
  /// source's evaluations share mutable state, e.g. the buffer explorer's
  /// incremental evaluator). Results are identical either way.
  std::size_t race(const RacerOptions& opts, std::size_t arm_count,
                   ArmSource& source, std::span<ArmOutcome> outcomes,
                   util::ThreadPool* pool = nullptr);

  /// Statistics aggregated over every race() since construction /
  /// reset_stats(). Note: RacerStats::exhaustive_evals is the caller's to
  /// fill (the racer cannot know the oracle's cost model).
  [[nodiscard]] const RacerStats& stats() const noexcept { return stats_; }
  /// Mutable statistics access for callers accounting exhaustive_evals.
  [[nodiscard]] RacerStats& stats() noexcept { return stats_; }
  /// Zeroes the aggregated statistics.
  void reset_stats() noexcept { stats_ = RacerStats{}; }

 private:
  /// Per-arm running interval state (Welford mean / M2).
  struct ArmState {
    double mean = 0.0;
    double m2 = 0.0;
    std::uint32_t pulls = 0;
    bool survivor = false;
  };

  RacerStats stats_;
  // Grow-only arenas: warm races of a previously-seen arm count perform
  // zero heap allocations (asserted by tests/test_steady_state_alloc.cpp).
  std::vector<ArmState> arms_;
  std::vector<std::uint32_t> rep_;                       // similarity groups
  std::vector<std::pair<std::uint64_t, std::uint32_t>> fp_sort_;
  std::vector<std::uint32_t> active_;
  std::vector<double> pull_slots_;
};

/// \brief Worker-local mutable scoring state: a system whose mapping is
/// rebound per candidate plus one engine per application, and the racer's
/// allocation-free estimator scratch.
///
/// Sessions (api::Workbench) keep one per pool worker and hand them to
/// optimise_mapping / race_mapping_scores so repeated queries skip the
/// per-call graph copies and engine construction.
struct AnalysisWorkspace {
  platform::System sys;                             ///< mapping rebound per candidate
  std::vector<analysis::ThroughputEngine> engines;  ///< one per application

  // Racer pull scratch (grow-only; populated lazily by MappingArms — warm
  // tier-(a) pulls perform zero heap allocations):
  prob::EstimatorWorkspace est_ws;                  ///< estimator arenas
  std::vector<prob::AppEstimate> est_slots;         ///< estimate out-slots
  std::vector<analysis::ThroughputEngine*> ptrs;    ///< engine pointer scratch
  platform::UseCase full_uc;                        ///< 0..N-1, built once
  platform::SystemView view;                        ///< rebound per pull
};

/// \brief ArmSource racing candidate mappings (score = worst estimated
/// slowdown, as dse::evaluate_mapping).
///
/// Tier (a) runs second-order estimates in the workspace's persistent
/// arenas, at fixed-point depths doubling up to the full-precision depth
/// (the waiting-time fixed point oscillates as it converges, so rungs hug
/// the target depth instead of climbing linearly from one pass); tier (b)
/// runs short-horizon simulations on per-arm
/// SimEngines cached across races by mapping fingerprint; tier (c) is the
/// configured full-precision estimate. Every tier probes/stores the
/// transposition table under MappingScore keys absorbing that tier's
/// estimator configuration, so table state never changes any value — and
/// structurally identical candidates share entries across queries and
/// sessions.
class MappingArms : public ArmSource {
 public:
  /// Binds the evaluation state. `workspaces[w]` serves racer worker `w`
  /// (pass a pool to Racer::race only with one workspace per pool worker).
  /// `table` may be nullptr. Both are borrowed, not owned.
  MappingArms(std::span<AnalysisWorkspace> workspaces,
              const prob::EstimatorOptions& full_precision,
              const RacerOptions& racer, analysis::TranspositionTable* table);

  /// Points the source at a candidate list for the next race (fingerprints
  /// are captured here; the span must stay valid through the race). Arm
  /// SimEngines from a previous bind are kept when the fingerprint at that
  /// index is unchanged.
  void bind(std::span<const platform::Mapping> candidates);

  /// Live Zobrist fingerprint of candidate `arm` (captured at bind()).
  [[nodiscard]] std::uint64_t arm_fingerprint(std::size_t arm) const override;
  /// Tier-(a)/(b) pull of candidate `arm` (see class comment).
  [[nodiscard]] double pull(std::size_t arm, std::size_t rung,
                            std::size_t worker) override;
  /// Full-precision score of candidate `arm` (transposition-backed).
  [[nodiscard]] double full_eval(std::size_t arm, std::size_t worker) override;

 private:
  /// Transposition-backed estimator score of workspaces_[worker] with the
  /// candidate mapping already set (allocation-free when warm).
  double estimator_score(std::size_t worker, const prob::EstimatorOptions& opts);
  /// Computes per-app isolation periods once (analytic, mapping-free).
  void ensure_isolation();

  std::span<AnalysisWorkspace> workspaces_;
  prob::EstimatorOptions full_;
  RacerOptions racer_;
  analysis::TranspositionTable* table_;
  std::span<const platform::Mapping> candidates_;
  std::vector<std::uint64_t> fps_;             // per arm, captured at bind
  std::vector<double> isolation_;              // per app, computed once
  bool isolation_ready_ = false;
  // Per-arm short-horizon engines, kept across binds while the arm's
  // fingerprint is unchanged (session-cached: racing the same candidates
  // again reuses them, reset + run_view per pull).
  std::vector<std::unique_ptr<sim::SimEngine>> sim_slots_;
  std::vector<std::uint64_t> sim_slot_fp_;
};

/// \brief Result of racing a candidate-mapping list.
struct MappingRace {
  /// Per-candidate scores, in input order: full precision for survivors
  /// and their pruned duplicates, the last interval mean for eliminated
  /// arms (oracle mode: full precision for every candidate — bitwise
  /// dse::evaluate_mapping / Workbench::score_mappings values).
  std::vector<double> scores;
  /// Per-candidate racing outcomes, in input order.
  std::vector<ArmOutcome> outcomes;
  /// Winner index (lowest full-precision score; ties to the lowest index).
  std::size_t best = 0;
  /// Racing statistics of this race.
  RacerStats stats;
};

/// \brief Races candidate mappings and returns per-candidate scores, the
/// winner and the racing statistics.
///
/// `workspaces[w]` serves pool worker w (as optimise_mapping); pass at
/// least one. With racer.enabled == false this is the exhaustive path:
/// every candidate is scored to full precision, bitwise identical to
/// dse::evaluate_mapping per candidate (Workbench::score_mappings is a shim
/// over this mode). Deterministic for any `pool` size either way.
[[nodiscard]] MappingRace race_mapping_scores(
    std::span<const platform::Mapping> candidates,
    const prob::EstimatorOptions& estimator, const RacerOptions& racer,
    util::ThreadPool* pool, std::span<AnalysisWorkspace> workspaces,
    analysis::TranspositionTable* table = nullptr);

}  // namespace procon::dse
