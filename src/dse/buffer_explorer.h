// Buffer-capacity / throughput trade-off exploration.
//
// Bounded channel buffers create back-pressure and lengthen the period;
// larger buffers cost memory. Following the trade-off framing of Stuijk et
// al. ([16], cited by the paper), this explorer greedily grows capacities
// from the minimal feasible configuration, one production quantum at a
// time, always expanding the channel that improves the analytic period
// most per token, and records the Pareto frontier (total buffer size vs
// period).
//
// Candidate evaluation has two engines with bitwise-identical results:
//  * per-candidate (incremental = false): build a bounded graph copy and a
//    fresh ThroughputEngine per capacity vector — the reference path;
//  * incremental (default): a capacity bump only changes the *reverse*
//    ("space") channel of the bumped channel, and channels expand to HSDF
//    independently, so the evaluator re-expands just that channel's edges
//    and re-merges them with the cached remainder instead of re-deriving
//    the whole expansion per candidate (bench_workbench tracks the factor).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/transposition_table.h"
#include "dse/racer.h"
#include "sdf/graph.h"
#include "sdf/transform.h"

namespace procon::dse {

struct BufferPoint {
  std::vector<std::uint64_t> capacities;  ///< per channel
  std::uint64_t total_tokens = 0;         ///< sum of capacities
  double period = 0.0;                    ///< analytic period when so bounded
};

struct BufferExplorerOptions {
  std::size_t max_steps = 256;  ///< capacity increments to try
  /// Stop when within this relative distance of the unbounded period.
  double convergence = 1e-9;
  /// Patch only the bumped channel's reverse-channel HSDF edges per
  /// candidate instead of rebuilding an engine from scratch. Identical
  /// results; false keeps the reference path (and the bench baseline).
  bool incremental = true;
  /// Candidate racing (dse::Racer): when enabled, each greedy step races
  /// the per-channel growth candidates on cached priors instead of
  /// re-evaluating every channel — full (Howard-solve) evaluations go only
  /// to the `racer.max_survivors` most promising channels, with periodic
  /// full re-sync sweeps (`racer.resync_every`). Plateau verdicts need no
  /// verification sweep: the grow-all fallback's capacities dominate every
  /// single-bump candidate componentwise, and the period is monotone
  /// non-increasing in capacities, so a failing grow-all proves no single
  /// bump could have improved. Off by default: the exhaustive greedy walk,
  /// bitwise-stable across releases.
  RacerOptions racer{.enabled = false};
};

/// Frontier plus racing introspection (the session-facing result of
/// api::Workbench::buffer_frontier).
struct FrontierResult {
  /// The Pareto staircase (first point = minimal feasible configuration).
  std::vector<BufferPoint> points;
  /// Racing statistics (all-zero when options.racer.enabled == false).
  RacerStats racer;
  /// Bounded-period candidate evaluations the walk requested (transposition
  /// hits included, so the count is table-state invariant). Counted on both
  /// the exhaustive and the racing walk — the honest numerator/denominator
  /// for racer-vs-exhaustive cost comparisons, including re-sync sweeps and
  /// grow-all probes.
  std::uint64_t evaluations = 0;
};

/// Explores the trade-off for one application graph. The first point is the
/// minimal feasible configuration, the last is (near-)unbounded
/// performance; points are strictly improving in period and increasing in
/// total buffer size (a Pareto staircase). Throws sdf::GraphError for
/// graphs that deadlock unbounded. (Session entry point:
/// api::Workbench::buffer_frontier, same bits plus provenance.)
[[nodiscard]] std::vector<BufferPoint> explore_buffer_tradeoff(
    const sdf::Graph& g, const BufferExplorerOptions& options = {});

/// Table-backed variant: memoises the per-capacity-vector bounded period
/// (and the unbounded reference period) in `table`, keyed by the graph's
/// Zobrist component x the caps vector. The greedy walk re-evaluates
/// neighbouring capacity vectors constantly — and repeated explorations of
/// structurally identical graphs (e.g. across tenants) re-evaluate all of
/// them — so warm walks skip the Howard solves entirely. Periods are
/// stored bitwise; the frontier is identical with table == nullptr (which
/// is exactly the two-argument overload).
[[nodiscard]] std::vector<BufferPoint> explore_buffer_tradeoff(
    const sdf::Graph& g, const BufferExplorerOptions& options,
    analysis::TranspositionTable* table);

/// Full-result variant: the frontier plus the racing statistics. With
/// options.racer.enabled == false the points are bitwise identical to
/// explore_buffer_tradeoff (which is a shim over this function) and the
/// statistics are all zero. With racing enabled the walk is still fully
/// deterministic (priors and sweeps are serial and counter-free); the
/// frontier may differ from the exhaustive one within the racer's
/// confidence tolerance, for a fraction of its full evaluations.
[[nodiscard]] FrontierResult explore_buffer_frontier(
    const sdf::Graph& g, const BufferExplorerOptions& options = {},
    analysis::TranspositionTable* table = nullptr);

}  // namespace procon::dse
