// Buffer-capacity / throughput trade-off exploration.
//
// Bounded channel buffers create back-pressure and lengthen the period;
// larger buffers cost memory. Following the trade-off framing of Stuijk et
// al. ([16], cited by the paper), this explorer greedily grows capacities
// from the minimal feasible configuration, one production quantum at a
// time, always expanding the channel that improves the analytic period
// most per token, and records the Pareto frontier (total buffer size vs
// period).
//
// Candidate evaluation has two engines with bitwise-identical results:
//  * per-candidate (incremental = false): build a bounded graph copy and a
//    fresh ThroughputEngine per capacity vector — the reference path;
//  * incremental (default): a capacity bump only changes the *reverse*
//    ("space") channel of the bumped channel, and channels expand to HSDF
//    independently, so the evaluator re-expands just that channel's edges
//    and re-merges them with the cached remainder instead of re-deriving
//    the whole expansion per candidate (bench_workbench tracks the factor).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/transposition_table.h"
#include "sdf/graph.h"
#include "sdf/transform.h"

namespace procon::dse {

struct BufferPoint {
  std::vector<std::uint64_t> capacities;  ///< per channel
  std::uint64_t total_tokens = 0;         ///< sum of capacities
  double period = 0.0;                    ///< analytic period when so bounded
};

struct BufferExplorerOptions {
  std::size_t max_steps = 256;  ///< capacity increments to try
  /// Stop when within this relative distance of the unbounded period.
  double convergence = 1e-9;
  /// Patch only the bumped channel's reverse-channel HSDF edges per
  /// candidate instead of rebuilding an engine from scratch. Identical
  /// results; false keeps the reference path (and the bench baseline).
  bool incremental = true;
};

/// Explores the trade-off for one application graph. The first point is the
/// minimal feasible configuration, the last is (near-)unbounded
/// performance; points are strictly improving in period and increasing in
/// total buffer size (a Pareto staircase). Throws sdf::GraphError for
/// graphs that deadlock unbounded. (Session entry point:
/// api::Workbench::buffer_frontier, same bits plus provenance.)
[[nodiscard]] std::vector<BufferPoint> explore_buffer_tradeoff(
    const sdf::Graph& g, const BufferExplorerOptions& options = {});

/// Table-backed variant: memoises the per-capacity-vector bounded period
/// (and the unbounded reference period) in `table`, keyed by the graph's
/// Zobrist component x the caps vector. The greedy walk re-evaluates
/// neighbouring capacity vectors constantly — and repeated explorations of
/// structurally identical graphs (e.g. across tenants) re-evaluate all of
/// them — so warm walks skip the Howard solves entirely. Periods are
/// stored bitwise; the frontier is identical with table == nullptr (which
/// is exactly the two-argument overload).
[[nodiscard]] std::vector<BufferPoint> explore_buffer_tradeoff(
    const sdf::Graph& g, const BufferExplorerOptions& options,
    analysis::TranspositionTable* table);

}  // namespace procon::dse
