// Mapping design-space exploration driven by the probabilistic estimator.
//
// The paper's speed argument (minutes of analysis vs hours of simulation)
// is what makes automatic mapping exploration practical: a candidate
// mapping can be scored analytically in microseconds. This module provides
// a simulated-annealing mapper that minimises the worst estimated slowdown
// (max over applications of estimated period / isolation period) by moving
// one actor to another node per step.
//
// Candidate scoring shards across a thread pool by speculation: each batch
// proposes the next W moves from the current state, scores them
// concurrently (one system + engine-set clone per worker), then commits
// them in step order up to the first acceptance — whose successors are
// discarded and re-proposed from the new state. Every step's proposal and
// acceptance draw depend only on (seed, step index) and the state after the
// previous step, so the trajectory — and therefore the result — is
// bitwise identical for any worker count and any speculation width; only
// the wasted-evaluation count varies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/engine.h"
#include "analysis/transposition_table.h"
#include "dse/racer.h"
#include "platform/system.h"
#include "prob/estimator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace procon::dse {

struct MapperOptions {
  std::size_t iterations = 2000;   ///< annealing steps (proposals, in racing mode)
  double initial_temperature = 1.0;
  double cooling = 0.995;          ///< geometric temperature decay per step
  std::uint64_t seed = 1;
  prob::EstimatorOptions estimator;  ///< scoring method (2nd order default)
  /// Candidate racing (dse::Racer): when enabled, each annealing round
  /// proposes `racer.batch` moves, races them through the fidelity ladder
  /// and applies one Metropolis test to the full-precision winner — far
  /// fewer full evaluations per proposal. Off by default (the exhaustive
  /// speculative-annealing path, bitwise-stable across releases).
  RacerOptions racer{.enabled = false};
};

struct MapperResult {
  platform::Mapping mapping;
  double score = 0.0;         ///< worst estimated slowdown of `mapping`
  double initial_score = 0.0; ///< score of the starting mapping
  /// Committed full-precision evaluations (start + one per annealing step;
  /// in racing mode, start + one per survivor); independent of worker count.
  std::size_t evaluations = 0;
  std::size_t accepted_moves = 0;
  /// Total candidates scored including speculation discarded past an
  /// accepted move. Depends on the speculation width (= worker count) in
  /// the exhaustive path — diagnostic only there; in racing mode the width
  /// is the fixed racer.batch, so the count is deterministic too.
  std::size_t scored_candidates = 0;
  /// Racing statistics (all-zero when options.racer.enabled == false).
  RacerStats racer;
};

/// Scores one complete mapping: max over applications of the estimated
/// normalised period (>= 1; lower is better). Throws sdf::GraphError on
/// invalid systems.
[[nodiscard]] double evaluate_mapping(std::span<const sdf::Graph> apps,
                                      const platform::Platform& platform,
                                      const platform::Mapping& mapping,
                                      const prob::EstimatorOptions& estimator = {});

/// Simulated annealing from `start` (use Mapping::by_index / random /
/// load_balanced to seed it). Deterministic for a fixed options.seed — the
/// same result for any `pool` size, including none (serial).
/// `pool` may be nullptr; it is borrowed for the call, not retained.
///
/// Deprecated entry point: prefer api::Workbench::optimise_mapping, which
/// reuses the session's cached engines and thread pool across queries.
[[deprecated("one-shot shim; use api::Workbench::optimise_mapping or the "
             "workspace overload")]] [[nodiscard]]
MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                              const platform::Platform& platform,
                              const platform::Mapping& start,
                              const MapperOptions& options = {},
                              util::ThreadPool* pool = nullptr);

/// Variant with caller-owned scoring state: `workspaces[w]` serves pool
/// worker w. At least one is required; sharding needs one per pool worker
/// (fewer fall back to serial scoring and also narrow the speculation
/// width). The workspaces' mappings are overwritten. Results are identical
/// to the building overload for any workspace count.
///
/// `table` (optional) memoises candidate scores keyed by the workspace
/// system's live Zobrist fingerprint x the estimator configuration: a
/// candidate mapping already scored — by this run, an earlier query, or
/// another session sharing the table — skips the estimator entirely.
/// Scores are stored bitwise, so the annealing trajectory (and result) is
/// unchanged by the table; only the time per step varies.
[[nodiscard]] MapperResult optimise_mapping(
    std::span<const sdf::Graph> apps, const platform::Platform& platform,
    const platform::Mapping& start, const MapperOptions& options,
    util::ThreadPool* pool, std::span<AnalysisWorkspace> workspaces,
    analysis::TranspositionTable* table = nullptr);

}  // namespace procon::dse
