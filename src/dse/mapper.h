// Mapping design-space exploration driven by the probabilistic estimator.
//
// The paper's speed argument (minutes of analysis vs hours of simulation)
// is what makes automatic mapping exploration practical: a candidate
// mapping can be scored analytically in microseconds. This module provides
// a simulated-annealing mapper that minimises the worst estimated slowdown
// (max over applications of estimated period / isolation period) by moving
// one actor to another node per step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/system.h"
#include "prob/estimator.h"
#include "util/rng.h"

namespace procon::dse {

struct MapperOptions {
  std::size_t iterations = 2000;   ///< annealing steps
  double initial_temperature = 1.0;
  double cooling = 0.995;          ///< geometric temperature decay per step
  std::uint64_t seed = 1;
  prob::EstimatorOptions estimator;  ///< scoring method (2nd order default)
};

struct MapperResult {
  platform::Mapping mapping;
  double score = 0.0;         ///< worst estimated slowdown of `mapping`
  double initial_score = 0.0; ///< score of the starting mapping
  std::size_t evaluations = 0;
  std::size_t accepted_moves = 0;
};

/// Scores one complete mapping: max over applications of the estimated
/// normalised period (>= 1; lower is better). Throws sdf::GraphError on
/// invalid systems.
[[nodiscard]] double evaluate_mapping(std::span<const sdf::Graph> apps,
                                      const platform::Platform& platform,
                                      const platform::Mapping& mapping,
                                      const prob::EstimatorOptions& estimator = {});

/// Simulated annealing from `start` (use Mapping::by_index / random /
/// load_balanced to seed it). Deterministic for a fixed options.seed.
[[nodiscard]] MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                                            const platform::Platform& platform,
                                            const platform::Mapping& start,
                                            const MapperOptions& options = {});

}  // namespace procon::dse
