#include "dse/racer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"
#include "util/rng.h"

namespace procon::dse {

void absorb_estimator_options(analysis::TTKeyBuilder& builder,
                              const prob::EstimatorOptions& options) noexcept {
  builder.absorb(static_cast<std::uint64_t>(options.method));
  builder.absorb(static_cast<std::uint64_t>(options.order));
  builder.absorb(static_cast<std::uint64_t>(options.iterations));
  builder.absorb(options.mc_trials);
  builder.absorb(options.mc_seed);
}

void RacerStats::merge(const RacerStats& other) noexcept {
  races += other.races;
  arms += other.arms;
  pruned_similar += other.pruned_similar;
  estimator_pulls += other.estimator_pulls;
  sim_pulls += other.sim_pulls;
  full_evals += other.full_evals;
  eliminated += other.eliminated;
  exhaustive_evals += other.exhaustive_evals;
  rounds += other.rounds;
  for (std::size_t r = 0; r < kMaxRounds; ++r) {
    eliminated_per_round[r] += other.eliminated_per_round[r];
  }
}

double ArmSource::radius_hint(std::size_t /*arm*/) const { return 0.0; }

std::size_t Racer::race(const RacerOptions& opts, std::size_t arm_count,
                        ArmSource& source, std::span<ArmOutcome> outcomes,
                        util::ThreadPool* pool) {
  if (arm_count == 0) throw std::invalid_argument("Racer::race: no arms");
  if (outcomes.size() != arm_count) {
    throw std::invalid_argument("Racer::race: outcomes span size mismatch");
  }
  ++stats_.races;
  stats_.arms += arm_count;

  // Similarity pruning: group arms by non-zero fingerprint; the lowest
  // index of each group races, the rest inherit its outcome bitwise.
  rep_.resize(arm_count);
  for (std::size_t i = 0; i < arm_count; ++i) {
    rep_[i] = static_cast<std::uint32_t>(i);
  }
  fp_sort_.clear();
  for (std::size_t i = 0; i < arm_count; ++i) {
    const std::uint64_t fp = source.arm_fingerprint(i);
    if (fp != 0) fp_sort_.emplace_back(fp, static_cast<std::uint32_t>(i));
  }
  std::sort(fp_sort_.begin(), fp_sort_.end());
  for (std::size_t k = 1; k < fp_sort_.size(); ++k) {
    if (fp_sort_[k].first == fp_sort_[k - 1].first) {
      rep_[fp_sort_[k].second] = rep_[fp_sort_[k - 1].second];
    }
  }
  active_.clear();
  for (std::size_t i = 0; i < arm_count; ++i) {
    if (rep_[i] == i) {
      active_.push_back(static_cast<std::uint32_t>(i));
    } else {
      ++stats_.pruned_similar;
    }
  }
  arms_.assign(arm_count, ArmState{});
  for (std::size_t i = 0; i < arm_count; ++i) outcomes[i] = ArmOutcome{};

  const std::size_t cap = std::max<std::size_t>(1, opts.max_survivors);
  const std::size_t ladder =
      opts.enabled ? opts.estimator_pulls + opts.sim_pulls : 0;
  const auto radius = [&](std::uint32_t arm) {
    const ArmState& s = arms_[arm];
    const double var = s.pulls > 1 ? s.m2 / static_cast<double>(s.pulls - 1) : 0.0;
    const double stderr_ =
        s.pulls > 0 ? std::sqrt(var / static_cast<double>(s.pulls)) : 0.0;
    return opts.confidence * stderr_ + opts.rel_slack * std::abs(s.mean) +
           source.radius_hint(arm);
  };

  std::size_t spent = 0;
  std::size_t round = 0;
  for (std::size_t rung = 0; rung < ladder; ++rung) {
    if (active_.size() <= cap) break;
    if (opts.budget != 0 && spent + active_.size() > opts.budget) break;
    const bool tier_a = ArmSource::is_estimator_rung(opts, rung);
    if (pull_slots_.size() < active_.size()) pull_slots_.resize(active_.size());
    const auto body = [&](std::size_t k, std::size_t w) {
      pull_slots_[k] = source.pull(active_[k], rung, w);
    };
    // Tier-(a) pulls land in per-arm slots and are pure per (arm, rung),
    // so sharding cannot change any value. Tier-(b) pulls stay serial:
    // arm-engine caches are shared state.
    if (tier_a && pool != nullptr && active_.size() > 1) {
      pool->for_each_index(active_.size(), body);
    } else {
      for (std::size_t k = 0; k < active_.size(); ++k) body(k, 0);
    }
    spent += active_.size();
    (tier_a ? stats_.estimator_pulls : stats_.sim_pulls) += active_.size();

    // Aggregation and elimination run serially in arm order — the
    // deterministic half of the contract.
    for (std::size_t k = 0; k < active_.size(); ++k) {
      ArmState& s = arms_[active_[k]];
      ++s.pulls;
      const double d = pull_slots_[k] - s.mean;
      s.mean += d / static_cast<double>(s.pulls);
      s.m2 += d * (pull_slots_[k] - s.mean);
    }
    std::size_t best_k = 0;
    for (std::size_t k = 1; k < active_.size(); ++k) {
      if (arms_[active_[k]].mean < arms_[active_[best_k]].mean) best_k = k;
    }
    const std::uint32_t best = active_[best_k];
    const double best_ucb = arms_[best].mean + radius(best);
    std::size_t kept = 0;
    std::uint64_t cut = 0;
    for (std::size_t k = 0; k < active_.size(); ++k) {
      const std::uint32_t a = active_[k];
      if (a != best && arms_[a].mean - radius(a) > best_ucb) {
        outcomes[a].eliminated_round = static_cast<std::int32_t>(round);
        ++cut;
      } else {
        active_[kept++] = a;
      }
    }
    active_.resize(kept);
    stats_.eliminated += cut;
    stats_.eliminated_per_round[std::min(round, RacerStats::kMaxRounds - 1)] +=
        cut;
    ++round;
    ++stats_.rounds;
  }

  // Survivor cap: keep the best-mean arms (ties to the lowest index). Only
  // meaningful once at least one round gathered evidence — oracle mode and
  // budget-starved races evaluate every remaining arm instead.
  if (round > 0 && active_.size() > cap) {
    std::sort(active_.begin(), active_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (arms_[a].mean != arms_[b].mean) {
                  return arms_[a].mean < arms_[b].mean;
                }
                return a < b;
              });
    const std::uint64_t cut = active_.size() - cap;
    for (std::size_t k = cap; k < active_.size(); ++k) {
      outcomes[active_[k]].eliminated_round = static_cast<std::int32_t>(round);
    }
    stats_.eliminated += cut;
    stats_.eliminated_per_round[std::min(round, RacerStats::kMaxRounds - 1)] +=
        cut;
    active_.resize(cap);
    std::sort(active_.begin(), active_.end());  // back to arm order
  }
  for (const std::uint32_t a : active_) arms_[a].survivor = true;

  // Tier (c): full-precision evaluations, one per-arm slot each.
  const auto eval_body = [&](std::size_t k, std::size_t w) {
    const std::uint32_t a = active_[k];
    outcomes[a].score = source.full_eval(a, w);
  };
  if (pool != nullptr && active_.size() > 1) {
    pool->for_each_index(active_.size(), eval_body);
  } else {
    for (std::size_t k = 0; k < active_.size(); ++k) eval_body(k, 0);
  }
  stats_.full_evals += active_.size();

  for (std::size_t i = 0; i < arm_count; ++i) {
    if (rep_[i] != i) continue;
    outcomes[i].pulls = arms_[i].pulls;
    if (arms_[i].survivor) {
      outcomes[i].full = true;
    } else {
      outcomes[i].score = arms_[i].mean;
    }
  }
  for (std::size_t i = 0; i < arm_count; ++i) {
    if (rep_[i] != i) outcomes[i] = outcomes[rep_[i]];
  }

  std::size_t winner = active_[0];
  for (const std::uint32_t a : active_) {
    if (outcomes[a].score < outcomes[winner].score) winner = a;
  }
  return winner;
}

// ---- mapping arms ----------------------------------------------------------

namespace {

/// Tier-(a) ladder rung k: a second-order estimate whose fixed-point depth
/// doubles toward the full-precision depth — the top rung runs at
/// full.iterations, the rung below it at half that, and so on (floored at
/// one pass). The waiting-time fixed point converges as a damped
/// oscillation, so only depths on the full target's side of the oscillation
/// rank candidates consistently; a linear 1, 2, 3, ... climb alternates
/// between over- and under-estimates and poisons the interval means. The
/// variance across rungs still feeds the arm's confidence interval, and
/// when the top rung's options coincide with the caller's full-precision
/// configuration a survivor's tier-(c) evaluation is a transposition hit.
prob::EstimatorOptions tier_a_options(const prob::EstimatorOptions& full,
                                      const RacerOptions& racer,
                                      std::size_t rung) {
  prob::EstimatorOptions o = full;
  o.method = prob::Method::SecondOrder;
  const std::size_t back = racer.estimator_pulls - 1 - rung;
  o.iterations = back >= 31 ? 1 : std::max(1, full.iterations >> back);
  return o;
}

}  // namespace

MappingArms::MappingArms(std::span<AnalysisWorkspace> workspaces,
                         const prob::EstimatorOptions& full_precision,
                         const RacerOptions& racer,
                         analysis::TranspositionTable* table)
    : workspaces_(workspaces), full_(full_precision), racer_(racer), table_(table) {
  if (workspaces_.empty()) {
    throw std::invalid_argument("MappingArms: need at least one workspace");
  }
}

void MappingArms::bind(std::span<const platform::Mapping> candidates) {
  candidates_ = candidates;
  if (fps_.size() < candidates.size()) fps_.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    fps_[i] = candidates[i].fingerprint();
  }
  if (sim_slots_.size() < candidates.size()) {
    sim_slots_.resize(candidates.size());
    sim_slot_fp_.resize(candidates.size(), 0);
  }
}

std::uint64_t MappingArms::arm_fingerprint(std::size_t arm) const {
  return fps_[arm];
}

double MappingArms::estimator_score(std::size_t worker,
                                    const prob::EstimatorOptions& opts) {
  AnalysisWorkspace& ws = workspaces_[worker];
  analysis::TTKey key{};
  if (table_ != nullptr) {
    analysis::TTKeyBuilder b(ws.sys.fingerprint(), analysis::TTQuery::MappingScore);
    absorb_estimator_options(b, opts);
    key = b.key();
    analysis::TTValue v;
    if (table_->lookup(key, v)) return v.primary;
  }
  if (ws.full_uc.size() != ws.sys.app_count()) ws.full_uc = ws.sys.full_use_case();
  ws.view.rebind(ws.sys, ws.full_uc);
  ws.ptrs.clear();
  for (analysis::ThroughputEngine& e : ws.engines) {
    e.reset();  // cold start: the score is a pure function of the mapping
    ws.ptrs.push_back(&e);
  }
  if (ws.est_slots.size() < ws.engines.size()) ws.est_slots.resize(ws.engines.size());
  const prob::ContentionEstimator est(opts);
  est.estimate_into(ws.view, {}, ws.ptrs, ws.est_ws,
                    std::span<prob::AppEstimate>(ws.est_slots.data(),
                                                 ws.engines.size()));
  double worst = 0.0;
  for (std::size_t i = 0; i < ws.engines.size(); ++i) {
    worst = std::max(worst, ws.est_slots[i].normalised_period());
  }
  if (table_ != nullptr) {
    analysis::TTValue v;
    v.primary = worst;
    table_->store(key, v);
  }
  return worst;
}

void MappingArms::ensure_isolation() {
  if (isolation_ready_) return;
  AnalysisWorkspace& ws = workspaces_.front();
  isolation_.resize(ws.engines.size());
  for (std::size_t i = 0; i < ws.engines.size(); ++i) {
    ws.engines[i].reset();
    isolation_[i] = ws.engines[i].recompute().period;
  }
  isolation_ready_ = true;
}

PROCON_WARM_PATH double MappingArms::pull(std::size_t arm, std::size_t rung,
                                          std::size_t worker) {
  PROCON_ASSERT_NO_ALLOC("MappingArms::pull");
  if (ArmSource::is_estimator_rung(racer_, rung)) {
    AnalysisWorkspace& ws = workspaces_[worker];
    ws.sys.set_mapping(candidates_[arm]);
    return estimator_score(worker, tier_a_options(full_, racer_, rung));
  }
  // Tier (b): short-horizon simulation on the arm-cached engine. Serial by
  // the Racer contract (the slot cache is shared across workers), so
  // workspace 0 is always the scratch.
  ensure_isolation();
  if (sim_slots_[arm] == nullptr || sim_slot_fp_[arm] != fps_[arm]) {
    AnalysisWorkspace& ws = workspaces_.front();
    ws.sys.set_mapping(candidates_[arm]);
    sim_slots_[arm] = std::make_unique<sim::SimEngine>(ws.sys);
    sim_slot_fp_[arm] = fps_[arm];
  }
  const std::size_t j = rung - racer_.estimator_pulls;
  sim::SimOptions so;
  so.horizon = racer_.sim_horizon * static_cast<sdf::Time>(j + 1);
  so.sample_seed = util::counter_seed(racer_.seed, fps_[arm], rung);
  sim::SimEngine& engine = *sim_slots_[arm];
  engine.reset();
  const sim::SimResultView r = engine.run_view(so);
  double worst = 0.0;
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    const double iso = isolation_[i];
    const double avg = r.apps[i].average_period;
    // A horizon too short to observe a steady state pins the arm at a
    // large finite sentinel instead of a spuriously perfect 0.
    worst = std::max(worst, avg > 0.0 && iso > 0.0 ? avg / iso : 1e9);
  }
  return worst;
}

double MappingArms::full_eval(std::size_t arm, std::size_t worker) {
  AnalysisWorkspace& ws = workspaces_[worker];
  ws.sys.set_mapping(candidates_[arm]);
  return estimator_score(worker, full_);
}

MappingRace race_mapping_scores(std::span<const platform::Mapping> candidates,
                                const prob::EstimatorOptions& estimator,
                                const RacerOptions& racer,
                                util::ThreadPool* pool,
                                std::span<AnalysisWorkspace> workspaces,
                                analysis::TranspositionTable* table) {
  if (workspaces.empty()) {
    throw std::invalid_argument("race_mapping_scores: need at least one workspace");
  }
  MappingRace out;
  out.scores.resize(candidates.size(), 0.0);
  out.outcomes.resize(candidates.size());
  if (candidates.empty()) return out;

  MappingArms arms(workspaces, estimator, racer, table);
  arms.bind(candidates);
  Racer r;
  // The pool hands out worker ids up to its own size, so sharding needs a
  // workspace per pool worker; with fewer, race serially.
  util::ThreadPool* shard =
      pool != nullptr && workspaces.size() >= pool->size() ? pool : nullptr;
  out.best = r.race(racer, candidates.size(), arms,
                    std::span<ArmOutcome>(out.outcomes), shard);
  // The exhaustive path scores every candidate to full precision.
  r.stats().exhaustive_evals += candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out.scores[i] = out.outcomes[i].score;
  }
  out.stats = r.stats();
  return out;
}

}  // namespace procon::dse
