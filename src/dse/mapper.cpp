#include "dse/mapper.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procon::dse {

double evaluate_mapping(std::span<const sdf::Graph> apps,
                        const platform::Platform& platform,
                        const platform::Mapping& mapping,
                        const prob::EstimatorOptions& estimator) {
  platform::System sys(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                       platform, mapping);
  const prob::ContentionEstimator est(estimator);
  double worst = 0.0;
  for (const auto& e : est.estimate(sys)) {
    worst = std::max(worst, e.normalised_period());
  }
  return worst;
}

MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                              const platform::Platform& platform,
                              const platform::Mapping& start,
                              const MapperOptions& options) {
  if (platform.node_count() < 2) {
    // Nothing to move; the start mapping is the only candidate.
    MapperResult r{start, evaluate_mapping(apps, platform, start, options.estimator),
                   0.0, 1, 0};
    r.initial_score = r.score;
    return r;
  }
  if (!start.is_complete()) {
    throw std::invalid_argument("optimise_mapping: start mapping incomplete");
  }

  util::Rng rng(options.seed);
  MapperResult result;
  result.mapping = start;
  result.score = evaluate_mapping(apps, platform, start, options.estimator);
  result.initial_score = result.score;
  result.evaluations = 1;

  platform::Mapping current = start;
  double current_score = result.score;
  double temperature = options.initial_temperature;

  // Pre-compute the actor universe for uniform move selection.
  struct Slot {
    sdf::AppId app;
    sdf::ActorId actor;
  };
  std::vector<Slot> slots;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) {
      slots.push_back({i, a});
    }
  }
  if (slots.empty()) return result;

  for (std::size_t step = 0; step < options.iterations; ++step) {
    // Move: reassign one uniformly chosen actor to another node.
    const Slot slot = slots[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    const platform::NodeId old_node = current.node_of(slot.app, slot.actor);
    platform::NodeId new_node = static_cast<platform::NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(platform.node_count()) - 2));
    if (new_node >= old_node) ++new_node;

    current.assign(slot.app, slot.actor, new_node);
    const double candidate_score =
        evaluate_mapping(apps, platform, current, options.estimator);
    ++result.evaluations;

    const double delta = candidate_score - current_score;
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.uniform01() < std::exp(-delta / temperature));
    if (accept) {
      current_score = candidate_score;
      ++result.accepted_moves;
      if (candidate_score < result.score) {
        result.score = candidate_score;
        result.mapping = current;
      }
    } else {
      current.assign(slot.app, slot.actor, old_node);  // undo
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace procon::dse
