#include "dse/mapper.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/engine.h"

namespace procon::dse {
namespace {

/// Builds one ThroughputEngine per application; candidate scoring re-uses
/// the cached structure and only rewrites execution times.
std::vector<analysis::ThroughputEngine> make_engines(
    std::span<const sdf::Graph> apps) {
  std::vector<analysis::ThroughputEngine> engines;
  engines.reserve(apps.size());
  for (const sdf::Graph& g : apps) engines.emplace_back(g);
  return engines;
}

/// Scores a candidate as a pure function of the mapping: engines are reset
/// to a cold start first, so the result does not depend on which candidates
/// the same engine clone evaluated before — the property that makes
/// speculative scoring bitwise deterministic across worker counts.
double score_system(const platform::System& sys, const prob::ContentionEstimator& est,
                    std::span<analysis::ThroughputEngine> engines) {
  for (analysis::ThroughputEngine& e : engines) e.reset();
  double worst = 0.0;
  for (const auto& e : est.estimate(sys, {}, engines)) {
    worst = std::max(worst, e.normalised_period());
  }
  return worst;
}

/// Per-step randomness: an independent short stream derived from (seed,
/// step). Random access per step index is what lets a batch of future steps
/// be proposed before knowing earlier steps' outcomes.
util::Rng step_rng(std::uint64_t seed, std::size_t step) {
  return util::Rng(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(step) + 1)));
}

/// Probes `table` for the score of `sys`'s current mapping; computes and
/// stores it on a miss. With no table this is exactly score_system. The
/// key roots at the system's live Zobrist fingerprint (maintained through
/// set_mapping in O(1)), so structurally identical candidates — across
/// steps, queries or sessions — resolve to the same entry.
double scored_system(const platform::System& sys, const prob::ContentionEstimator& est,
                     std::span<analysis::ThroughputEngine> engines,
                     const prob::EstimatorOptions& opts,
                     analysis::TranspositionTable* table) {
  if (table == nullptr) return score_system(sys, est, engines);
  analysis::TTKeyBuilder b(sys.fingerprint(), analysis::TTQuery::MappingScore);
  absorb_estimator_options(b, opts);
  const analysis::TTKey key = b.key();
  analysis::TTValue v;
  if (table->lookup(key, v)) return v.primary;
  const double score = score_system(sys, est, engines);
  v.primary = score;
  table->store(key, v);
  return score;
}

}  // namespace

double evaluate_mapping(std::span<const sdf::Graph> apps,
                        const platform::Platform& platform,
                        const platform::Mapping& mapping,
                        const prob::EstimatorOptions& estimator) {
  platform::System sys(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                       platform, mapping);
  const prob::ContentionEstimator est(estimator);
  auto engines = make_engines(apps);
  return score_system(sys, est, engines);
}

MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                              const platform::Platform& platform,
                              const platform::Mapping& start,
                              const MapperOptions& options,
                              util::ThreadPool* pool) {
  // One system clone + engine set per worker. Engines are built once and
  // copied (a copy shares no state and skips the expansion/DFS work).
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  auto prototype = make_engines(apps);
  std::vector<AnalysisWorkspace> workspaces;
  workspaces.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    AnalysisWorkspace ws;
    ws.sys = platform::System(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                              platform, start);
    ws.engines = prototype;
    workspaces.push_back(std::move(ws));
  }
  return optimise_mapping(apps, platform, start, options, pool, workspaces);
}

MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                              const platform::Platform& platform,
                              const platform::Mapping& start,
                              const MapperOptions& options,
                              util::ThreadPool* pool,
                              std::span<AnalysisWorkspace> workspaces,
                              analysis::TranspositionTable* table) {
  if (platform.node_count() < 2) {
    // Nothing to move; the start mapping is the only candidate.
    MapperResult r;
    r.mapping = start;
    r.score = evaluate_mapping(apps, platform, start, options.estimator);
    r.initial_score = r.score;
    r.evaluations = 1;
    r.scored_candidates = 1;
    return r;
  }
  if (!start.is_complete()) {
    throw std::invalid_argument("optimise_mapping: start mapping incomplete");
  }
  if (workspaces.empty()) {
    throw std::invalid_argument("optimise_mapping: need at least one workspace");
  }

  const prob::ContentionEstimator est(options.estimator);
  const std::size_t workers =
      std::min(workspaces.size(), pool != nullptr ? pool->size() : std::size_t{1});
  std::span<AnalysisWorkspace> state = workspaces;

  MapperResult result;
  result.mapping = start;
  state[0].sys.set_mapping(start);
  result.score = scored_system(state[0].sys, est, state[0].engines,
                               options.estimator, table);
  result.initial_score = result.score;
  result.evaluations = 1;
  result.scored_candidates = 1;

  platform::Mapping current = start;
  double current_score = result.score;

  // Pre-compute the actor universe for uniform move selection.
  struct Slot {
    sdf::AppId app;
    sdf::ActorId actor;
  };
  std::vector<Slot> slots;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) {
      slots.push_back({i, a});
    }
  }
  if (slots.empty()) return result;

  struct Proposal {
    Slot slot;
    platform::NodeId old_node = 0;
    platform::NodeId new_node = 0;
    double accept_draw = 0.0;
    double score = 0.0;
  };
  std::vector<Proposal> batch;
  std::size_t step = 0;

  if (options.racer.enabled) {
    // Racing mode: each round proposes a fixed-width batch of moves from
    // the current state (proposal b of the round draws from the counter
    // stream at global proposal index step + b), races the batch through
    // the fidelity ladder, and applies one Metropolis test to the
    // full-precision winner. The width is options.racer.batch — fixed, not
    // worker-count derived — so the trajectory, every statistic and even
    // scored_candidates are bitwise identical for any thread count.
    Racer racer;
    MappingArms arms(workspaces, options.estimator, options.racer, table);
    std::vector<platform::Mapping> candidates;
    std::vector<ArmOutcome> outcomes;
    util::ThreadPool* shard =
        pool != nullptr && workspaces.size() >= pool->size() ? pool : nullptr;
    const std::size_t batch_width = std::max<std::size_t>(1, options.racer.batch);
    std::size_t round = 0;
    while (step < options.iterations) {
      const std::size_t width =
          std::min(batch_width, options.iterations - step);
      batch.assign(width, Proposal{});
      candidates.assign(width, current);
      for (std::size_t b = 0; b < width; ++b) {
        util::Rng rng = util::counter_rng(options.seed, 1, step + b);
        Proposal& p = batch[b];
        p.slot = slots[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
        p.old_node = current.node_of(p.slot.app, p.slot.actor);
        auto node = static_cast<platform::NodeId>(rng.uniform_int(
            0, static_cast<std::int64_t>(platform.node_count()) - 2));
        if (node >= p.old_node) ++node;
        p.new_node = node;
        candidates[b].assign(p.slot.app, p.slot.actor, p.new_node);
      }
      arms.bind(candidates);
      outcomes.assign(width, ArmOutcome{});
      const std::size_t best = racer.race(options.racer, width, arms,
                                          std::span<ArmOutcome>(outcomes), shard);
      // Exhaustive speculation would have full-evaluated the whole batch.
      racer.stats().exhaustive_evals += width;
      result.scored_candidates += width;

      const double temperature =
          options.initial_temperature *
          std::pow(options.cooling, static_cast<double>(step));
      const double winner_score = outcomes[best].score;
      const double delta = winner_score - current_score;
      const double draw = util::counter_rng(options.seed, 2, round).uniform01();
      const bool accept =
          delta <= 0.0 ||
          (temperature > 0.0 && draw < std::exp(-delta / temperature));
      if (accept) {
        current.assign(batch[best].slot.app, batch[best].slot.actor,
                       batch[best].new_node);
        current_score = winner_score;
        ++result.accepted_moves;
        if (winner_score < result.score) {
          result.score = winner_score;
          result.mapping = current;
        }
      }
      step += width;
      ++round;
    }
    result.evaluations = 1 + static_cast<std::size_t>(racer.stats().full_evals);
    result.racer = racer.stats();
    return result;
  }

  while (step < options.iterations) {
    // Speculate the next W steps from the current state. Proposals and
    // acceptance draws are functions of (seed, step index) and the current
    // mapping only, so the committed trajectory below is identical for any
    // speculation width.
    const std::size_t width =
        std::min<std::size_t>(std::max<std::size_t>(workers, 1),
                              options.iterations - step);
    batch.assign(width, Proposal{});
    for (std::size_t b = 0; b < width; ++b) {
      util::Rng rng = step_rng(options.seed, step + b);
      Proposal& p = batch[b];
      p.slot = slots[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
      p.old_node = current.node_of(p.slot.app, p.slot.actor);
      auto node = static_cast<platform::NodeId>(rng.uniform_int(
          0, static_cast<std::int64_t>(platform.node_count()) - 2));
      if (node >= p.old_node) ++node;
      p.new_node = node;
      p.accept_draw = rng.uniform01();
    }

    auto score_one = [&](std::size_t b, std::size_t w) {
      AnalysisWorkspace& ws = state[w];
      platform::Mapping candidate = current;
      candidate.assign(batch[b].slot.app, batch[b].slot.actor, batch[b].new_node);
      ws.sys.set_mapping(candidate);
      batch[b].score =
          scored_system(ws.sys, est, ws.engines, options.estimator, table);
    };
    // The pool hands out worker ids up to its own size, so sharding needs a
    // workspace per pool worker; with fewer workspaces score serially.
    if (pool != nullptr && width > 1 && state.size() >= pool->size()) {
      pool->for_each_index(width, score_one);
    } else {
      for (std::size_t b = 0; b < width; ++b) score_one(b, 0);
    }
    result.scored_candidates += width;

    // Commit in step order; the first acceptance invalidates the rest of
    // the batch (they were proposed from the pre-acceptance state).
    for (std::size_t b = 0; b < width; ++b) {
      const Proposal& p = batch[b];
      const double temperature =
          options.initial_temperature *
          std::pow(options.cooling, static_cast<double>(step));
      ++result.evaluations;
      ++step;
      const double delta = p.score - current_score;
      const bool accept =
          delta <= 0.0 ||
          (temperature > 0.0 && p.accept_draw < std::exp(-delta / temperature));
      if (accept) {
        current.assign(p.slot.app, p.slot.actor, p.new_node);
        current_score = p.score;
        ++result.accepted_moves;
        if (p.score < result.score) {
          result.score = p.score;
          result.mapping = current;
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace procon::dse
