#include "dse/mapper.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/engine.h"

namespace procon::dse {
namespace {

/// Builds one ThroughputEngine per application; the annealing loop scores
/// thousands of candidate mappings over the same graphs, so all
/// structure-dependent analysis is paid once here.
std::vector<analysis::ThroughputEngine> make_engines(
    std::span<const sdf::Graph> apps) {
  std::vector<analysis::ThroughputEngine> engines;
  engines.reserve(apps.size());
  for (const sdf::Graph& g : apps) engines.emplace_back(g);
  return engines;
}

double score_system(const platform::System& sys, const prob::ContentionEstimator& est,
                    std::span<analysis::ThroughputEngine> engines) {
  double worst = 0.0;
  for (const auto& e : est.estimate(sys, {}, engines)) {
    worst = std::max(worst, e.normalised_period());
  }
  return worst;
}

}  // namespace

double evaluate_mapping(std::span<const sdf::Graph> apps,
                        const platform::Platform& platform,
                        const platform::Mapping& mapping,
                        const prob::EstimatorOptions& estimator) {
  platform::System sys(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                       platform, mapping);
  const prob::ContentionEstimator est(estimator);
  auto engines = make_engines(apps);
  return score_system(sys, est, engines);
}

MapperResult optimise_mapping(std::span<const sdf::Graph> apps,
                              const platform::Platform& platform,
                              const platform::Mapping& start,
                              const MapperOptions& options) {
  if (platform.node_count() < 2) {
    // Nothing to move; the start mapping is the only candidate.
    MapperResult r{start, evaluate_mapping(apps, platform, start, options.estimator),
                   0.0, 1, 0};
    r.initial_score = r.score;
    return r;
  }
  if (!start.is_complete()) {
    throw std::invalid_argument("optimise_mapping: start mapping incomplete");
  }

  util::Rng rng(options.seed);
  // Hoisted out of the annealing loop: the estimator, one engine per
  // application (all structure-dependent analysis), and the system itself
  // (its graph copies); each candidate only rebinds the mapping.
  const prob::ContentionEstimator est(options.estimator);
  auto engines = make_engines(apps);
  platform::System sys(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                       platform, start);

  MapperResult result;
  result.mapping = start;
  result.score = score_system(sys, est, engines);
  result.initial_score = result.score;
  result.evaluations = 1;

  platform::Mapping current = start;
  double current_score = result.score;
  double temperature = options.initial_temperature;

  // Pre-compute the actor universe for uniform move selection.
  struct Slot {
    sdf::AppId app;
    sdf::ActorId actor;
  };
  std::vector<Slot> slots;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) {
      slots.push_back({i, a});
    }
  }
  if (slots.empty()) return result;

  for (std::size_t step = 0; step < options.iterations; ++step) {
    // Move: reassign one uniformly chosen actor to another node.
    const Slot slot = slots[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    const platform::NodeId old_node = current.node_of(slot.app, slot.actor);
    platform::NodeId new_node = static_cast<platform::NodeId>(rng.uniform_int(
        0, static_cast<std::int64_t>(platform.node_count()) - 2));
    if (new_node >= old_node) ++new_node;

    current.assign(slot.app, slot.actor, new_node);
    sys.set_mapping(current);
    const double candidate_score = score_system(sys, est, engines);
    ++result.evaluations;

    const double delta = candidate_score - current_score;
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.uniform01() < std::exp(-delta / temperature));
    if (accept) {
      current_score = candidate_score;
      ++result.accepted_moves;
      if (candidate_score < result.score) {
        result.score = candidate_score;
        result.mapping = current;
      }
    } else {
      current.assign(slot.app, slot.actor, old_node);  // undo
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace procon::dse
