#include "dse/buffer_explorer.h"

#include <algorithm>

#include "analysis/engine.h"

namespace procon::dse {
namespace {

std::uint64_t total_of(const std::vector<std::uint64_t>& caps) {
  std::uint64_t t = 0;
  for (const auto c : caps) t += c;
  return t;
}

}  // namespace

std::vector<BufferPoint> explore_buffer_tradeoff(const sdf::Graph& g,
                                                 const BufferExplorerOptions& options) {
  // Hoisted once for the whole exploration: the self-loop closure and its
  // repetition vector. Bounding a channel appends a reverse "space" channel
  // whose rates are the forward rates swapped, so every bounded variant
  // shares the closed graph's actors and repetition vector; only the
  // channel set differs per candidate. Each candidate therefore skips the
  // closure copy and the balance-equation solve, and all period analyses go
  // through ThroughputEngine rather than the from-scratch compute_period.
  const sdf::Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  if (!q) throw sdf::GraphError("explore_buffer_tradeoff: inconsistent graph");
  const analysis::EngineOptions eng_opts{.assume_closed = true,
                                         .repetition = &*q};

  // Capacity vectors index the original graph's channels; the closure keeps
  // those ids and appends its self-loops, which stay unbounded (capacity 0).
  std::vector<std::uint64_t> padded(closed.channel_count(), 0);
  auto bounded_period = [&](const std::vector<std::uint64_t>& caps) {
    std::copy(caps.begin(), caps.end(), padded.begin());
    analysis::ThroughputEngine engine(sdf::with_buffer_capacities(closed, padded),
                                      eng_opts);
    const auto r = engine.recompute();
    if (r.deadlocked) {
      throw sdf::GraphError("explore_buffer_tradeoff: bounded graph deadlocks");
    }
    return r.period;
  };

  const double unbounded =
      analysis::ThroughputEngine(closed, eng_opts).recompute().period;
  std::vector<std::uint64_t> caps = sdf::minimal_feasible_capacities(g);

  std::vector<BufferPoint> frontier;
  double current = bounded_period(caps);
  frontier.push_back(BufferPoint{caps, total_of(caps), current});

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (current <= unbounded * (1.0 + options.convergence)) break;

    // Greedy: grow each channel by one production quantum, keep the best.
    double best_period = current;
    sdf::ChannelId best_channel = sdf::kInvalidChannel;
    std::uint64_t best_increment = 0;
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      if (g.channel(c).is_self_loop()) continue;
      const std::uint64_t increment = g.channel(c).prod_rate;
      caps[c] += increment;
      const double candidate = bounded_period(caps);
      caps[c] -= increment;
      if (candidate < best_period - 1e-12) {
        best_period = candidate;
        best_channel = c;
        best_increment = increment;
      }
    }
    if (best_channel == sdf::kInvalidChannel) {
      // No single increment helps: grow every channel once (plateaus can
      // need simultaneous growth); if that does not help either, stop.
      auto grown = caps;
      for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
        if (!g.channel(c).is_self_loop()) grown[c] += g.channel(c).prod_rate;
      }
      const double candidate = bounded_period(grown);
      if (candidate >= current - 1e-12) break;
      caps = std::move(grown);
      current = candidate;
    } else {
      caps[best_channel] += best_increment;
      current = best_period;
    }
    frontier.push_back(BufferPoint{caps, total_of(caps), current});
  }
  return frontier;
}

}  // namespace procon::dse
