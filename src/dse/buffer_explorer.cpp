#include "dse/buffer_explorer.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "analysis/engine.h"
#include "analysis/howard.h"
#include "analysis/hsdf.h"
#include "sdf/zobrist.h"

namespace procon::dse {
namespace {

std::uint64_t total_of(const std::vector<std::uint64_t>& caps) {
  std::uint64_t t = 0;
  for (const auto c : caps) t += c;
  return t;
}

/// Incremental bounded-period evaluator. The bounded variant of a graph is
/// the closed graph plus one reverse "space" channel per bounded channel;
/// in the HSDF expansion every channel contributes an independent candidate
/// edge set, and a capacity bump only changes the initial tokens of the
/// bumped channel's reverse channel. This evaluator therefore expands the
/// closed graph's channels once, caches one deduplicated edge segment per
/// reverse channel, and per candidate re-expands only the segments whose
/// capacity changed before re-merging and solving. Results are bitwise
/// identical to a fresh ThroughputEngine on the bounded graph copy: the
/// merged candidate multiset is the same, the sort-dedup is order
/// independent, and Howard cold-starts either way.
class BoundedPeriodEvaluator {
 public:
  BoundedPeriodEvaluator(const sdf::Graph& original, const sdf::Graph& closed,
                         const sdf::RepetitionVector& q)
      : q_(q) {
    node_base_.resize(closed.actor_count());
    std::uint32_t next = 0;
    for (sdf::ActorId a = 0; a < closed.actor_count(); ++a) {
      node_base_[a] = next;
      const double tau = static_cast<double>(closed.actor(a).exec_time);
      for (std::uint64_t k = 0; k < q[a]; ++k) {
        h_.nodes.push_back(analysis::HsdfNode{a, static_cast<std::uint32_t>(k), tau});
      }
      next += static_cast<std::uint32_t>(q[a]);
    }

    // The closed graph's own channels (forward + closure self-loops) never
    // change across candidates: expand and deduplicate them once.
    for (const sdf::Channel& ch : closed.channels()) {
      analysis::append_channel_candidates(ch, q_, node_base_, static_);
    }
    analysis::dedup_candidates(static_);

    // One mutable segment per bounded (non-self-loop) original channel.
    segments_.resize(original.channel_count());
    cached_caps_.assign(original.channel_count(), 0);
    for (sdf::ChannelId c = 0; c < original.channel_count(); ++c) {
      bounded_.push_back(!original.channel(c).is_self_loop());
      forward_.push_back(original.channel(c));
    }
  }

  /// Analytic period of the closed graph bounded to `caps` (indexed by
  /// original channel id; self-loop channels are their own bound and are
  /// ignored). Deadlock is reported through the result, as with
  /// ThroughputEngine::recompute.
  analysis::PeriodResult period(const std::vector<std::uint64_t>& caps) {
    for (sdf::ChannelId c = 0; c < caps.size(); ++c) {
      if (!bounded_[c]) continue;
      if (caps[c] == cached_caps_[c]) continue;
      if (caps[c] == 0) {
        // Back to unbounded: drop the reverse channel entirely.
        segments_[c].clear();
        cached_caps_[c] = 0;
        continue;
      }
      const sdf::Channel& fwd = forward_[c];
      if (caps[c] < fwd.initial_tokens) {
        throw sdf::GraphError("explore_buffer_tradeoff: capacity below initial tokens");
      }
      // Reverse channel: consumer frees space, producer claims it.
      const sdf::Channel space{fwd.dst, fwd.src, fwd.cons_rate, fwd.prod_rate,
                               caps[c] - fwd.initial_tokens};
      segments_[c].clear();
      analysis::append_channel_candidates(space, q_, node_base_, segments_[c]);
      analysis::dedup_candidates(segments_[c]);
      cached_caps_[c] = caps[c];
    }

    merged_.assign(static_.begin(), static_.end());
    for (const auto& seg : segments_) {
      merged_.insert(merged_.end(), seg.begin(), seg.end());
    }
    analysis::dedup_candidates(merged_);
    h_.edges.clear();
    h_.edges.reserve(merged_.size());
    for (const analysis::HsdfEdgeCandidate& cand : merged_) {
      h_.edges.push_back(analysis::HsdfEdge{cand.src(), cand.dst(), cand.tokens});
    }

    solver_.build(h_);
    analysis::PeriodResult out;
    if (solver_.deadlocked()) {
      out.deadlocked = true;
      return out;
    }
    if (!solver_.has_cycle()) return out;
    out.period = solver_.solve();
    return out;
  }

 private:
  sdf::RepetitionVector q_;
  std::vector<std::uint32_t> node_base_;
  analysis::Hsdf h_;                                  // nodes fixed, edges per candidate
  std::vector<analysis::HsdfEdgeCandidate> static_;   // closed graph's channels
  std::vector<std::vector<analysis::HsdfEdgeCandidate>> segments_;  // per reverse channel
  std::vector<std::uint64_t> cached_caps_;
  std::vector<std::uint8_t> bounded_;
  std::vector<sdf::Channel> forward_;
  std::vector<analysis::HsdfEdgeCandidate> merged_;   // scratch
  analysis::HowardSolver solver_;
};

/// ArmSource racing the per-channel growth candidates of one greedy step.
/// Pulls return the channel's cached prior (the bounded period of its
/// candidate the last time it was fully evaluated) SHIFTED by the walk's
/// progress since that measurement: a prior taken when the period was B
/// reads as prior - (B - current) today. Without the shift, the channel
/// committed last step (whose refreshed prior equals the new current
/// period) would dominate every stale prior and the race would re-try it
/// forever; the relative view ranks arms by how promising their bump was
/// against the period of its day. Full
/// evaluations bump the capacity, solve, restore, and refresh the prior
/// and its baseline. All evaluation goes through the single shared
/// bounded-period evaluator, so races must stay serial (pool == nullptr).
class BufferArms final : public ArmSource {
 public:
  BufferArms(const sdf::Graph& g, std::vector<std::uint64_t>& caps,
             const std::function<double(const std::vector<std::uint64_t>&)>& eval,
             double staleness_slack, const double& current)
      : g_(g), caps_(caps), eval_(eval), staleness_(staleness_slack),
        current_(current) {
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      if (!g.channel(c).is_self_loop()) channels_.push_back(c);
    }
    prior_.assign(channels_.size(), 0.0);
    base_.assign(channels_.size(), 0.0);
    age_.assign(channels_.size(), 0);
  }

  [[nodiscard]] std::size_t arm_count() const noexcept { return channels_.size(); }
  [[nodiscard]] sdf::ChannelId channel(std::size_t arm) const { return channels_[arm]; }
  [[nodiscard]] std::uint64_t increment(std::size_t arm) const {
    return g_.channel(channels_[arm]).prod_rate;
  }
  /// Called after a capacity commit: every arm's candidate vector changed,
  /// so every prior ages by one step (growing its interval radius).
  void age_all() noexcept {
    for (auto& a : age_) ++a;
  }

  [[nodiscard]] std::uint64_t arm_fingerprint(std::size_t /*arm*/) const override {
    return 0;  // growth candidates are pairwise distinct; no merging
  }
  [[nodiscard]] double pull(std::size_t arm, std::size_t /*rung*/,
                            std::size_t /*worker*/) override {
    // Relative view: the prior minus the global improvement since it was
    // measured (base_ - current_ >= 0 as the walk only improves).
    return prior_[arm] - (base_[arm] - current_);
  }
  [[nodiscard]] double radius_hint(std::size_t arm) const override {
    return staleness_ * static_cast<double>(age_[arm]) * std::abs(prior_[arm]);
  }
  [[nodiscard]] double full_eval(std::size_t arm, std::size_t /*worker*/) override {
    const sdf::ChannelId c = channels_[arm];
    const std::uint64_t inc = increment(arm);
    caps_[c] += inc;
    const double p = eval_(caps_);
    caps_[c] -= inc;
    prior_[arm] = p;
    base_[arm] = current_;
    age_[arm] = 0;
    return p;
  }

 private:
  const sdf::Graph& g_;
  std::vector<std::uint64_t>& caps_;
  const std::function<double(const std::vector<std::uint64_t>&)>& eval_;
  double staleness_;
  const double& current_;       // the walk's live committed period
  std::vector<sdf::ChannelId> channels_;
  std::vector<double> prior_;   // last full-precision period per arm
  std::vector<double> base_;    // committed period when that prior was taken
  std::vector<std::uint64_t> age_;  // commits since that evaluation
};

}  // namespace

std::vector<BufferPoint> explore_buffer_tradeoff(const sdf::Graph& g,
                                                 const BufferExplorerOptions& options) {
  return explore_buffer_frontier(g, options, nullptr).points;
}

std::vector<BufferPoint> explore_buffer_tradeoff(const sdf::Graph& g,
                                                 const BufferExplorerOptions& options,
                                                 analysis::TranspositionTable* table) {
  return explore_buffer_frontier(g, options, table).points;
}

FrontierResult explore_buffer_frontier(const sdf::Graph& g,
                                       const BufferExplorerOptions& options,
                                       analysis::TranspositionTable* table) {
  // Hoisted once for the whole exploration: the self-loop closure and its
  // repetition vector. Bounding a channel appends a reverse "space" channel
  // whose rates are the forward rates swapped, so every bounded variant
  // shares the closed graph's actors and repetition vector; only the
  // channel set differs per candidate.
  const sdf::Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  if (!q) throw sdf::GraphError("explore_buffer_tradeoff: inconsistent graph");
  const analysis::EngineOptions eng_opts{.assume_closed = true,
                                         .repetition = &*q};

  // Capacity vectors index the original graph's channels; the closure keeps
  // those ids and appends its self-loops, which stay unbounded (capacity 0).
  FrontierResult out;
  std::vector<std::uint64_t> padded(closed.channel_count(), 0);
  std::optional<BoundedPeriodEvaluator> evaluator;
  std::function<double(const std::vector<std::uint64_t>&)> bounded_period;
  if (options.incremental) {
    evaluator.emplace(g, closed, *q);
    bounded_period = [&](const std::vector<std::uint64_t>& caps) {
      const auto r = evaluator->period(caps);
      if (r.deadlocked) {
        throw sdf::GraphError("explore_buffer_tradeoff: bounded graph deadlocks");
      }
      return r.period;
    };
  } else {
    // Reference path: bounded graph copy + fresh engine per candidate.
    bounded_period = [&](const std::vector<std::uint64_t>& caps) {
      std::copy(caps.begin(), caps.end(), padded.begin());
      analysis::ThroughputEngine engine(sdf::with_buffer_capacities(closed, padded),
                                        eng_opts);
      const auto r = engine.recompute();
      if (r.deadlocked) {
        throw sdf::GraphError("explore_buffer_tradeoff: bounded graph deadlocks");
      }
      return r.period;
    };
  }

  if (table != nullptr) {
    // Memoise per capacity vector: the bounded period is a pure function of
    // (graph structure, caps) — the incremental evaluator's diff-patching
    // tolerates skipped evaluations, since it patches against the caps it
    // last *computed*, not the caps it was last asked about.
    const std::uint64_t gcomp = sdf::ZobristHash::graph_component(g);
    bounded_period = [table, gcomp, raw = std::move(bounded_period)](
                         const std::vector<std::uint64_t>& caps) {
      analysis::TTKeyBuilder b(gcomp, analysis::TTQuery::BufferPeriod);
      b.absorb(caps.size());
      for (const std::uint64_t c : caps) b.absorb(c);
      const analysis::TTKey key = b.key();
      analysis::TTValue v;
      if (table->lookup(key, v)) return v.primary;
      v.primary = raw(caps);
      table->store(key, v);
      return v.primary;
    };
  }

  // Count every candidate evaluation the walk requests (after the table
  // layer, so hits count too and the number is table-state invariant) —
  // the honest cost figure racer-vs-exhaustive comparisons divide.
  bounded_period = [&out, raw = std::move(bounded_period)](
                       const std::vector<std::uint64_t>& caps) {
    ++out.evaluations;
    return raw(caps);
  };

  double unbounded = 0.0;
  {
    // The unbounded reference period, keyed on the *closed* graph's
    // component so it never aliases entries computed from the open graph.
    analysis::TTKey key;
    analysis::TTValue v;
    bool hit = false;
    if (table != nullptr) {
      analysis::TTKeyBuilder b(sdf::ZobristHash::graph_component(closed),
                               analysis::TTQuery::IsolationPeriod);
      key = b.key();
      hit = table->lookup(key, v);
    }
    if (hit) {
      unbounded = v.primary;
    } else {
      unbounded = analysis::ThroughputEngine(closed, eng_opts).recompute().period;
      if (table != nullptr) {
        v.primary = unbounded;
        table->store(key, v);
      }
    }
  }
  std::vector<std::uint64_t> caps = sdf::minimal_feasible_capacities(g);

  std::vector<BufferPoint>& frontier = out.points;
  double current = bounded_period(caps);
  frontier.push_back(BufferPoint{caps, total_of(caps), current});

  if (options.racer.enabled) {
    // Racing walk: per greedy step, race the per-channel growth candidates
    // on cached priors; only the most promising channels get full
    // (Howard-solve) evaluations. Step 0 and every resync_every-th step run
    // a full sweep (every arm full-evaluated, priors refreshed) — step 0
    // seeds the priors. A plateau verdict from cheap evidence goes straight
    // to the grow-all fallback: grow-all's capacities dominate every
    // single-bump candidate componentwise and the period is monotone
    // non-increasing in capacities, so grow-all improves whenever any
    // single bump would — a failing grow-all is a *proof* of plateau, no
    // verification sweep needed. The trade is step granularity (a stale
    // prior can hide which single channel binds, and the walk then takes a
    // coarser all-channel step), not termination or period quality.
    Racer racer;
    BufferArms arms(g, caps, bounded_period, options.racer.staleness_slack,
                    current);
    if (arms.arm_count() > 0) {
      std::vector<ArmOutcome> outcomes(arms.arm_count());
      RacerOptions step_opts = options.racer;
      step_opts.estimator_pulls = 1;  // one prior-based look per arm
      step_opts.sim_pulls = 0;
      RacerOptions sweep_opts = step_opts;
      sweep_opts.max_survivors = arms.arm_count();  // full refresh

      for (std::size_t step = 0; step < options.max_steps; ++step) {
        if (current <= unbounded * (1.0 + options.convergence)) break;
        const bool resync = options.racer.resync_every != 0 &&
                            step % options.racer.resync_every == 0;
        std::size_t best =
            racer.race(resync ? sweep_opts : step_opts, arms.arm_count(), arms,
                       std::span<ArmOutcome>(outcomes), nullptr);
        // The exhaustive walk evaluates every channel's candidate per step.
        racer.stats().exhaustive_evals += arms.arm_count();
        const double best_period = outcomes[best].score;
        if (best_period < current - 1e-12) {
          caps[arms.channel(best)] += arms.increment(best);
          current = best_period;
          arms.age_all();
        } else {
          // Cheap evidence says plateau: grow every channel once (as the
          // exhaustive walk's fallback). By monotonicity this dominates
          // every single-bump candidate, so if even this does not help the
          // walk has provably converged.
          auto grown = caps;
          for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
            if (!g.channel(c).is_self_loop()) grown[c] += g.channel(c).prod_rate;
          }
          const double candidate = bounded_period(grown);
          if (candidate >= current - 1e-12) break;
          caps = std::move(grown);
          current = candidate;
          arms.age_all();
        }
        frontier.push_back(BufferPoint{caps, total_of(caps), current});
      }
    }
    out.racer = racer.stats();
    return out;
  }

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    if (current <= unbounded * (1.0 + options.convergence)) break;

    // Greedy: grow each channel by one production quantum, keep the best.
    double best_period = current;
    sdf::ChannelId best_channel = sdf::kInvalidChannel;
    std::uint64_t best_increment = 0;
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      if (g.channel(c).is_self_loop()) continue;
      const std::uint64_t increment = g.channel(c).prod_rate;
      caps[c] += increment;
      const double candidate = bounded_period(caps);
      caps[c] -= increment;
      if (candidate < best_period - 1e-12) {
        best_period = candidate;
        best_channel = c;
        best_increment = increment;
      }
    }
    if (best_channel == sdf::kInvalidChannel) {
      // No single increment helps: grow every channel once (plateaus can
      // need simultaneous growth); if that does not help either, stop.
      auto grown = caps;
      for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
        if (!g.channel(c).is_self_loop()) grown[c] += g.channel(c).prod_rate;
      }
      const double candidate = bounded_period(grown);
      if (candidate >= current - 1e-12) break;
      caps = std::move(grown);
      current = candidate;
    } else {
      caps[best_channel] += best_increment;
      current = best_period;
    }
    frontier.push_back(BufferPoint{caps, total_of(caps), current});
  }
  return out;
}

}  // namespace procon::dse
