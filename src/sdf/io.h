// Text serialisation for SDF graphs.
//
// A line-oriented format (one graph per stream) mirroring what SDF3's XML
// carries, without XML machinery:
//
//     graph <name>
//     actor <name> <exec_time>
//     dist <actor_name> constant <value>
//     dist <actor_name> uniform <lo> <hi>
//     dist <actor_name> discrete <k> <value weight>{k}
//     channel <src_name> <dst_name> <prod_rate> <cons_rate> <initial_tokens>
//     end
//
// `dist` lines carry the optional stochastic execution-time model (Section 6
// extension). Weights are written as C99 hexfloats so a written model parses
// back *bitwise* identical (ExecTimeDistribution::from_normalised rebuilds
// the derived moments from the already-normalised weights). The model is not
// part of sdf::Graph itself, so the model-free write_graph cannot emit it
// and the model-free read_graph REJECTS input containing `dist` lines
// rather than silently dropping the model — round-tripping a stochastic
// system requires the model-aware overloads below.
//
// Blank lines and lines starting with '#' are ignored. Also provides
// Graphviz DOT export for visual inspection of generated graphs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sdf/exec_time.h"
#include "sdf/graph.h"

namespace procon::sdf {

/// Thrown on parse errors, with a 1-based line number in the message.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialises one graph in the line format above.
void write_graph(std::ostream& os, const Graph& g);
[[nodiscard]] std::string to_text(const Graph& g);

/// Serialises one graph plus its stochastic execution-time model (`dist`
/// lines; constant distributions as `constant`, everything else as
/// `discrete` with hexfloat weights). The model must have one distribution
/// per actor; throws std::invalid_argument on a size mismatch.
void write_graph(std::ostream& os, const Graph& g, const ExecTimeModel& model);

/// Parses exactly one graph; throws ParseError on malformed input — and on
/// `dist` lines, which would otherwise be silently dropped (use the
/// model-aware overload below for stochastic systems).
[[nodiscard]] Graph read_graph(std::istream& is);
[[nodiscard]] Graph graph_from_text(const std::string& text);

/// Parses exactly one graph and its execution-time model. Actors without a
/// `dist` line default to constant(exec_time), so `model` always comes back
/// with one distribution per actor. A model written by the model-aware
/// write_graph parses back bitwise identical (weights, moments, sampling).
[[nodiscard]] Graph read_graph(std::istream& is, ExecTimeModel& model);

/// Parses a stream containing any number of graphs (rejects `dist` lines,
/// like the model-free read_graph).
[[nodiscard]] std::vector<Graph> read_graphs(std::istream& is);

/// Parses any number of graphs plus one execution-time model per graph
/// (models[i] belongs to graphs[i]; defaulted like the single-graph
/// overload).
[[nodiscard]] std::vector<Graph> read_graphs(std::istream& is,
                                             std::vector<ExecTimeModel>& models);

/// Graphviz DOT rendering: actors as nodes "name (tau)", channels as edges
/// labelled "prod/cons [tokens]".
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace procon::sdf
