// Text serialisation for SDF graphs.
//
// A line-oriented format (one graph per stream) mirroring what SDF3's XML
// carries, without XML machinery:
//
//     graph <name>
//     actor <name> <exec_time>
//     channel <src_name> <dst_name> <prod_rate> <cons_rate> <initial_tokens>
//     end
//
// Blank lines and lines starting with '#' are ignored. Also provides
// Graphviz DOT export for visual inspection of generated graphs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sdf/graph.h"

namespace procon::sdf {

/// Thrown on parse errors, with a 1-based line number in the message.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialises one graph in the line format above.
void write_graph(std::ostream& os, const Graph& g);
[[nodiscard]] std::string to_text(const Graph& g);

/// Parses exactly one graph; throws ParseError on malformed input.
[[nodiscard]] Graph read_graph(std::istream& is);
[[nodiscard]] Graph graph_from_text(const std::string& text);

/// Parses a stream containing any number of graphs.
[[nodiscard]] std::vector<Graph> read_graphs(std::istream& is);

/// Graphviz DOT rendering: actors as nodes "name (tau)", channels as edges
/// labelled "prod/cons [tokens]".
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace procon::sdf
