#include "sdf/transform.h"

#include <algorithm>

#include "sdf/algorithms.h"
#include "util/rational.h"

namespace procon::sdf {

Graph with_buffer_capacities(const Graph& g,
                             std::span<const std::uint64_t> capacities) {
  if (capacities.size() != g.channel_count()) {
    throw GraphError("with_buffer_capacities: size mismatch");
  }
  Graph out = g;
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    const std::uint64_t cap = capacities[c];
    if (cap == 0) continue;  // unbounded
    const Channel& ch = g.channel(c);
    if (cap < ch.initial_tokens) {
      throw GraphError("with_buffer_capacities: capacity below initial tokens");
    }
    if (ch.is_self_loop()) continue;  // a self-loop is its own bound
    // Space channel: the producer consumes `prod` slots per firing, the
    // consumer frees `cons` slots per firing; initially cap - d slots free.
    out.add_channel(ch.dst, ch.src, ch.cons_rate, ch.prod_rate,
                    cap - ch.initial_tokens);
  }
  return out;
}

Graph with_uniform_buffer_capacity(const Graph& g, std::uint64_t capacity) {
  std::vector<std::uint64_t> caps(g.channel_count(), capacity);
  // Never bound below the initial token count.
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    caps[c] = std::max<std::uint64_t>(capacity, g.channel(c).initial_tokens);
  }
  return with_buffer_capacities(g, caps);
}

Graph reversed(const Graph& g) {
  Graph out(g.name() + "-reversed");
  for (const Actor& a : g.actors()) out.add_actor(a.name, a.exec_time);
  for (const Channel& ch : g.channels()) {
    out.add_channel(ch.dst, ch.src, ch.cons_rate, ch.prod_rate, ch.initial_tokens);
  }
  return out;
}

std::vector<std::uint64_t> minimal_feasible_capacities(const Graph& g) {
  std::vector<std::uint64_t> caps(g.channel_count(), 0);
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    const Channel& ch = g.channel(c);
    const auto gcd = static_cast<std::uint64_t>(
        util::gcd64(ch.prod_rate, ch.cons_rate));
    const std::uint64_t bound = ch.prod_rate + ch.cons_rate - gcd;
    caps[c] = std::max<std::uint64_t>(bound, ch.initial_tokens);
  }

  // The local bound ignores cycle interactions (the exact problem is
  // NP-hard, [16]); repair by growing buffers that abstract execution
  // reports as starved, one production quantum at a time.
  for (std::uint32_t guard = 0;; ++guard) {
    if (guard > 100'000) {
      throw GraphError("minimal_feasible_capacities: repair did not converge");
    }
    const Graph bounded = with_buffer_capacities(g, caps);
    const DeadlockDiagnosis diag = diagnose_deadlock(bounded);
    if (diag.deadlock_free) return caps;

    // Space channels were appended after the original ones, in channel
    // order, skipping unbounded channels and self-loops; rebuild that
    // mapping to translate starved space channels back to originals.
    std::vector<ChannelId> space_to_original;
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
      if (caps[c] > 0 && !g.channel(c).is_self_loop()) {
        space_to_original.push_back(c);
      }
    }
    bool grew = false;
    for (const ChannelId starved : diag.starved_channels) {
      if (starved >= g.channel_count()) {
        const ChannelId orig =
            space_to_original[starved - static_cast<ChannelId>(g.channel_count())];
        caps[orig] += g.channel(orig).prod_rate;
        grew = true;
        break;
      }
    }
    if (!grew) {
      // No space channel is the blocker: the unbounded graph deadlocks.
      throw GraphError("minimal_feasible_capacities: graph deadlocks unbounded");
    }
  }
}

}  // namespace procon::sdf
