// Synchronous Data Flow graph (SDFG) representation.
//
// An SDFG is a directed (multi-)graph whose vertices ("actors") represent
// tasks with fixed execution times, and whose edges ("channels") carry
// tokens. A channel has a production rate (tokens appended per source actor
// firing), a consumption rate (tokens removed per destination firing) and a
// number of initial tokens. An actor may fire when every incoming channel
// holds at least its consumption rate worth of tokens. See Lee &
// Messerschmitt (1987) and Definition 1-3 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sdf/types.h"

namespace procon::sdf {

/// Thrown on malformed graph construction or queries with invalid ids.
class GraphError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A task vertex: name plus fixed execution time tau (Definition 1).
struct Actor {
  std::string name;
  Time exec_time = 1;
};

/// A token-carrying edge between two actors.
struct Channel {
  ActorId src = kInvalidActor;
  ActorId dst = kInvalidActor;
  std::uint32_t prod_rate = 1;      ///< tokens produced per src firing
  std::uint32_t cons_rate = 1;      ///< tokens consumed per dst firing
  std::uint64_t initial_tokens = 0; ///< tokens present before execution starts

  [[nodiscard]] bool is_self_loop() const noexcept { return src == dst; }
};

/// An SDF application graph. Actors and channels are stored densely and
/// addressed by index; the class maintains adjacency lists as channels are
/// added. Graphs are value types (copyable) so analyses can cheaply derive
/// modified variants (e.g. response-time-annotated copies).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  /// Adds an actor; returns its id. exec_time must be >= 0.
  ActorId add_actor(std::string name, Time exec_time);

  /// Adds a channel; rates must be >= 1 and endpoints valid. Returns its id.
  ChannelId add_channel(ActorId src, ActorId dst, std::uint32_t prod_rate,
                        std::uint32_t cons_rate, std::uint64_t initial_tokens = 0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t actor_count() const noexcept { return actors_.size(); }
  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }

  [[nodiscard]] const Actor& actor(ActorId a) const;
  [[nodiscard]] Actor& actor(ActorId a);
  [[nodiscard]] const Channel& channel(ChannelId c) const;

  [[nodiscard]] std::span<const Actor> actors() const noexcept { return actors_; }
  [[nodiscard]] std::span<const Channel> channels() const noexcept { return channels_; }

  /// Ids of channels leaving / entering an actor (self-loops appear in both).
  [[nodiscard]] std::span<const ChannelId> out_channels(ActorId a) const;
  [[nodiscard]] std::span<const ChannelId> in_channels(ActorId a) const;

  /// Looks up an actor by name; returns kInvalidActor if absent.
  [[nodiscard]] ActorId find_actor(const std::string& name) const noexcept;

  /// Total of exec_time over all actors weighted by nothing (raw sum).
  [[nodiscard]] Time total_exec_time() const noexcept;

  /// Returns a copy of this graph with every actor's execution time replaced
  /// by new_times[a] (rounded analysis is done elsewhere; this variant takes
  /// integral times). Sizes must match.
  [[nodiscard]] Graph with_exec_times(std::span<const Time> new_times) const;

  /// Returns a copy with a self-loop channel (rate 1/1, one initial token)
  /// added to every actor that does not already have one, which disables
  /// auto-concurrency (an actor cannot overlap with itself).
  [[nodiscard]] Graph with_self_loops() const;

  /// True if some channel a->a with prod == cons and >=1 token exists.
  [[nodiscard]] bool has_self_loop(ActorId a) const;

 private:
  void check_actor(ActorId a) const;

  std::string name_;
  std::vector<Actor> actors_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::vector<ChannelId>> in_;
};

}  // namespace procon::sdf
