#include "sdf/algorithms.h"

#include <algorithm>
#include <functional>
#include <string_view>

namespace procon::sdf {

SccResult strongly_connected_components(const Graph& g) {
  // Iterative Tarjan to avoid deep recursion on large generated graphs.
  const std::size_t n = g.actor_count();
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<ActorId> stack;
  SccResult result;
  result.component_of.assign(n, 0);
  std::uint32_t next_index = 0;

  struct Frame {
    ActorId actor;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (ActorId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const ActorId v = frame.actor;
      const auto out = g.out_channels(v);
      if (frame.edge_pos < out.size()) {
        const ActorId w = g.channel(out[frame.edge_pos]).dst;
        ++frame.edge_pos;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const ActorId parent = call_stack.back().actor;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it.
          while (true) {
            const ActorId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = result.component_count;
            if (w == v) break;
          }
          ++result.component_count;
        }
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Graph& g) {
  if (g.actor_count() == 0) return false;
  return strongly_connected_components(g).component_count == 1;
}

DeadlockDiagnosis diagnose_deadlock(const Graph& g) {
  DeadlockDiagnosis diag;
  const auto q_opt = compute_repetition_vector(g);
  if (!q_opt) return diag;  // inconsistent: treated as not deadlock-free
  const RepetitionVector& q = *q_opt;

  std::vector<std::uint64_t> tokens(g.channel_count());
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    tokens[c] = g.channel(c).initial_tokens;
  }
  std::vector<std::uint64_t> remaining(g.actor_count());
  for (ActorId a = 0; a < g.actor_count(); ++a) remaining[a] = q[a];

  auto can_fire = [&](ActorId a) {
    if (remaining[a] == 0) return false;
    for (const ChannelId cid : g.in_channels(a)) {
      if (tokens[cid] < g.channel(cid).cons_rate) return false;
    }
    return true;
  };
  auto fire = [&](ActorId a) {
    for (const ChannelId cid : g.in_channels(a)) tokens[cid] -= g.channel(cid).cons_rate;
    for (const ChannelId cid : g.out_channels(a)) tokens[cid] += g.channel(cid).prod_rate;
    --remaining[a];
  };

  // Worklist abstract execution. Firing an actor can only enable successors,
  // so a simple round-robin sweep terminates in O(iter_work * degree).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
      while (can_fire(a)) {
        fire(a);
        progressed = true;
      }
    }
  }

  for (ActorId a = 0; a < g.actor_count(); ++a) {
    if (remaining[a] > 0) diag.starved_actors.push_back(a);
  }
  if (diag.starved_actors.empty()) {
    diag.deadlock_free = true;
    return diag;
  }
  for (const ActorId a : diag.starved_actors) {
    for (const ChannelId cid : g.in_channels(a)) {
      if (tokens[cid] < g.channel(cid).cons_rate) diag.starved_channels.push_back(cid);
    }
  }
  return diag;
}

bool is_deadlock_free(const Graph& g) { return diagnose_deadlock(g).deadlock_free; }

std::uint64_t fingerprint_mix(std::uint64_t h, std::uint64_t v) noexcept {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

std::uint64_t graph_fingerprint(const Graph& g, std::uint64_t seed) noexcept {
  std::uint64_t h =
      fingerprint_mix(seed, std::hash<std::string_view>{}(g.name()));
  h = fingerprint_mix(h, g.actor_count());
  h = fingerprint_mix(h, g.channel_count());
  for (const Actor& a : g.actors()) {
    h = fingerprint_mix(h, std::hash<std::string_view>{}(a.name));
    h = fingerprint_mix(h, static_cast<std::uint64_t>(a.exec_time));
  }
  for (const Channel& c : g.channels()) {
    h = fingerprint_mix(h, c.src);
    h = fingerprint_mix(h, c.dst);
    h = fingerprint_mix(h, c.prod_rate);
    h = fingerprint_mix(h, c.cons_rate);
    h = fingerprint_mix(h, c.initial_tokens);
  }
  return h;
}

bool graphs_equal(const Graph& a, const Graph& b) noexcept {
  if (a.name() != b.name() || a.actor_count() != b.actor_count() ||
      a.channel_count() != b.channel_count()) {
    return false;
  }
  for (ActorId i = 0; i < a.actor_count(); ++i) {
    const Actor& x = a.actor(i);
    const Actor& y = b.actor(i);
    if (x.name != y.name || x.exec_time != y.exec_time) return false;
  }
  for (ChannelId c = 0; c < a.channel_count(); ++c) {
    const Channel& x = a.channel(c);
    const Channel& y = b.channel(c);
    if (x.src != y.src || x.dst != y.dst || x.prod_rate != y.prod_rate ||
        x.cons_rate != y.cons_rate || x.initial_tokens != y.initial_tokens) {
      return false;
    }
  }
  return true;
}

}  // namespace procon::sdf
