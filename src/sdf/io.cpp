#include "sdf/io.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>

namespace procon::sdf {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("line " + std::to_string(line) + ": " + what);
}

/// Weights travel as C99 hexfloats: exact round-trip, no decimal rounding.
std::string weight_to_text(double w) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", w);
  return buf;
}

double weight_from_text(std::size_t line, const std::string& token) {
  char* end = nullptr;
  const double w = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    fail(line, "malformed weight '" + token + "'");
  }
  return w;
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << "graph " << (g.name().empty() ? "unnamed" : g.name()) << '\n';
  for (const Actor& a : g.actors()) {
    os << "actor " << a.name << ' ' << a.exec_time << '\n';
  }
  for (const Channel& c : g.channels()) {
    os << "channel " << g.actor(c.src).name << ' ' << g.actor(c.dst).name << ' '
       << c.prod_rate << ' ' << c.cons_rate << ' ' << c.initial_tokens << '\n';
  }
  os << "end\n";
}

void write_graph(std::ostream& os, const Graph& g, const ExecTimeModel& model) {
  if (model.size() != g.actor_count()) {
    throw std::invalid_argument(
        "write_graph: exec-time model size does not match actor count");
  }
  os << "graph " << (g.name().empty() ? "unnamed" : g.name()) << '\n';
  for (const Actor& a : g.actors()) {
    os << "actor " << a.name << ' ' << a.exec_time << '\n';
  }
  for (std::size_t i = 0; i < model.size(); ++i) {
    const ExecTimeDistribution& d = model[i];
    const std::string& name = g.actor(static_cast<ActorId>(i)).name;
    if (d.is_constant()) {
      os << "dist " << name << " constant " << d.outcomes().front().value << '\n';
    } else {
      // Outcomes are stored sorted + normalised; written as-is they parse
      // back through from_normalised bitwise (uniform shapes included).
      os << "dist " << name << " discrete " << d.outcomes().size();
      for (const auto& o : d.outcomes()) {
        os << ' ' << o.value << ' ' << weight_to_text(o.weight);
      }
      os << '\n';
    }
  }
  for (const Channel& c : g.channels()) {
    os << "channel " << g.actor(c.src).name << ' ' << g.actor(c.dst).name << ' '
       << c.prod_rate << ' ' << c.cons_rate << ' ' << c.initial_tokens << '\n';
  }
  os << "end\n";
}

std::string to_text(const Graph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

namespace {

// Reads one graph starting at the current stream position. Returns nullopt
// if the stream is exhausted before a "graph" keyword is found. `model`
// receives the graph's `dist` lines (defaulted to constant(exec_time));
// nullptr REJECTS dist lines — a model-free parse must not silently drop a
// stochastic model.
std::optional<Graph> read_one(std::istream& is, std::size_t& line_no,
                              ExecTimeModel* model) {
  std::string line;
  std::optional<Graph> g;
  std::vector<std::optional<ExecTimeDistribution>> dists;
  const auto finish = [&](Graph done) {
    if (model != nullptr) {
      model->clear();
      model->reserve(done.actor_count());
      for (std::size_t i = 0; i < done.actor_count(); ++i) {
        model->push_back(i < dists.size() && dists[i]
                             ? *std::move(dists[i])
                             : ExecTimeDistribution::constant(
                                   done.actor(static_cast<ActorId>(i)).exec_time));
      }
    }
    return done;
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "graph") {
      std::string name;
      if (!(ls >> name)) fail(line_no, "graph requires a name");
      g.emplace(name);
      dists.clear();
    } else if (keyword == "dist") {
      if (!g) fail(line_no, "dist before graph");
      if (model == nullptr) {
        fail(line_no,
             "stochastic exec-time model present; use the model-aware "
             "read_graph/read_graphs overload");
      }
      std::string actor_name, shape;
      if (!(ls >> actor_name >> shape)) {
        fail(line_no, "dist requires <actor> <constant|uniform|discrete> ...");
      }
      const ActorId a = g->find_actor(actor_name);
      if (a == kInvalidActor) fail(line_no, "unknown actor " + actor_name);
      if (a < dists.size() && dists[a]) fail(line_no, "duplicate dist for " + actor_name);
      if (dists.size() <= a) dists.resize(a + 1);
      try {
        if (shape == "constant") {
          Time v = 0;
          if (!(ls >> v)) fail(line_no, "constant requires <value>");
          dists[a] = ExecTimeDistribution::constant(v);
        } else if (shape == "uniform") {
          Time lo = 0, hi = 0;
          if (!(ls >> lo >> hi)) fail(line_no, "uniform requires <lo> <hi>");
          dists[a] = ExecTimeDistribution::uniform(lo, hi);
        } else if (shape == "discrete") {
          std::size_t k = 0;
          if (!(ls >> k) || k == 0) fail(line_no, "discrete requires <k> > 0");
          std::vector<ExecTimeDistribution::Outcome> outcomes;
          outcomes.reserve(k);
          for (std::size_t i = 0; i < k; ++i) {
            Time v = 0;
            std::string w;
            if (!(ls >> v >> w)) fail(line_no, "discrete requires k <value weight> pairs");
            outcomes.push_back({v, weight_from_text(line_no, w)});
          }
          dists[a] = ExecTimeDistribution::from_normalised(std::move(outcomes));
        } else {
          fail(line_no, "unknown dist shape '" + shape + "'");
        }
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "actor") {
      if (!g) fail(line_no, "actor before graph");
      std::string name;
      Time tau = 0;
      if (!(ls >> name >> tau)) fail(line_no, "actor requires <name> <exec_time>");
      if (g->find_actor(name) != kInvalidActor) fail(line_no, "duplicate actor " + name);
      try {
        g->add_actor(name, tau);
      } catch (const GraphError& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "channel") {
      if (!g) fail(line_no, "channel before graph");
      std::string src, dst;
      std::int64_t prod = 0, cons = 0, tokens = 0;
      if (!(ls >> src >> dst >> prod >> cons >> tokens)) {
        fail(line_no, "channel requires <src> <dst> <prod> <cons> <tokens>");
      }
      const ActorId s = g->find_actor(src);
      const ActorId d = g->find_actor(dst);
      if (s == kInvalidActor) fail(line_no, "unknown actor " + src);
      if (d == kInvalidActor) fail(line_no, "unknown actor " + dst);
      if (prod <= 0 || cons <= 0 || tokens < 0) fail(line_no, "invalid channel parameters");
      try {
        g->add_channel(s, d, static_cast<std::uint32_t>(prod),
                       static_cast<std::uint32_t>(cons),
                       static_cast<std::uint64_t>(tokens));
      } catch (const GraphError& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "end") {
      if (!g) fail(line_no, "end before graph");
      return finish(*std::move(g));
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (g) fail(line_no, "unexpected end of input (missing 'end')");
  return std::nullopt;
}

}  // namespace

Graph read_graph(std::istream& is) {
  std::size_t line_no = 0;
  auto g = read_one(is, line_no, nullptr);
  if (!g) throw ParseError("no graph found in input");
  return *std::move(g);
}

Graph read_graph(std::istream& is, ExecTimeModel& model) {
  std::size_t line_no = 0;
  auto g = read_one(is, line_no, &model);
  if (!g) throw ParseError("no graph found in input");
  return *std::move(g);
}

Graph graph_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

std::vector<Graph> read_graphs(std::istream& is) {
  std::vector<Graph> graphs;
  std::size_t line_no = 0;
  while (auto g = read_one(is, line_no, nullptr)) {
    graphs.push_back(*std::move(g));
  }
  return graphs;
}

std::vector<Graph> read_graphs(std::istream& is,
                               std::vector<ExecTimeModel>& models) {
  std::vector<Graph> graphs;
  models.clear();
  std::size_t line_no = 0;
  ExecTimeModel model;
  while (auto g = read_one(is, line_no, &model)) {
    graphs.push_back(*std::move(g));
    models.push_back(std::move(model));
  }
  return graphs;
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << (g.name().empty() ? "sdf" : g.name()) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < g.actor_count(); ++i) {
    const Actor& a = g.actor(static_cast<ActorId>(i));
    os << "  a" << i << " [label=\"" << a.name << "\\n(" << a.exec_time << ")\"];\n";
  }
  for (const Channel& c : g.channels()) {
    os << "  a" << c.src << " -> a" << c.dst << " [label=\"" << c.prod_rate << "/"
       << c.cons_rate;
    if (c.initial_tokens > 0) os << " [" << c.initial_tokens << "]";
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace procon::sdf
