#include "sdf/io.h"

#include <optional>
#include <sstream>

namespace procon::sdf {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("line " + std::to_string(line) + ": " + what);
}

}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << "graph " << (g.name().empty() ? "unnamed" : g.name()) << '\n';
  for (const Actor& a : g.actors()) {
    os << "actor " << a.name << ' ' << a.exec_time << '\n';
  }
  for (const Channel& c : g.channels()) {
    os << "channel " << g.actor(c.src).name << ' ' << g.actor(c.dst).name << ' '
       << c.prod_rate << ' ' << c.cons_rate << ' ' << c.initial_tokens << '\n';
  }
  os << "end\n";
}

std::string to_text(const Graph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

namespace {

// Reads one graph starting at the current stream position. Returns nullopt
// if the stream is exhausted before a "graph" keyword is found.
std::optional<Graph> read_one(std::istream& is, std::size_t& line_no) {
  std::string line;
  std::optional<Graph> g;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "graph") {
      std::string name;
      if (!(ls >> name)) fail(line_no, "graph requires a name");
      g.emplace(name);
    } else if (keyword == "actor") {
      if (!g) fail(line_no, "actor before graph");
      std::string name;
      Time tau = 0;
      if (!(ls >> name >> tau)) fail(line_no, "actor requires <name> <exec_time>");
      if (g->find_actor(name) != kInvalidActor) fail(line_no, "duplicate actor " + name);
      try {
        g->add_actor(name, tau);
      } catch (const GraphError& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "channel") {
      if (!g) fail(line_no, "channel before graph");
      std::string src, dst;
      std::int64_t prod = 0, cons = 0, tokens = 0;
      if (!(ls >> src >> dst >> prod >> cons >> tokens)) {
        fail(line_no, "channel requires <src> <dst> <prod> <cons> <tokens>");
      }
      const ActorId s = g->find_actor(src);
      const ActorId d = g->find_actor(dst);
      if (s == kInvalidActor) fail(line_no, "unknown actor " + src);
      if (d == kInvalidActor) fail(line_no, "unknown actor " + dst);
      if (prod <= 0 || cons <= 0 || tokens < 0) fail(line_no, "invalid channel parameters");
      try {
        g->add_channel(s, d, static_cast<std::uint32_t>(prod),
                       static_cast<std::uint32_t>(cons),
                       static_cast<std::uint64_t>(tokens));
      } catch (const GraphError& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "end") {
      if (!g) fail(line_no, "end before graph");
      return g;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (g) fail(line_no, "unexpected end of input (missing 'end')");
  return std::nullopt;
}

}  // namespace

Graph read_graph(std::istream& is) {
  std::size_t line_no = 0;
  auto g = read_one(is, line_no);
  if (!g) throw ParseError("no graph found in input");
  return *std::move(g);
}

Graph graph_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

std::vector<Graph> read_graphs(std::istream& is) {
  std::vector<Graph> graphs;
  std::size_t line_no = 0;
  while (auto g = read_one(is, line_no)) {
    graphs.push_back(*std::move(g));
  }
  return graphs;
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << (g.name().empty() ? "sdf" : g.name()) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < g.actor_count(); ++i) {
    const Actor& a = g.actor(static_cast<ActorId>(i));
    os << "  a" << i << " [label=\"" << a.name << "\\n(" << a.exec_time << ")\"];\n";
  }
  for (const Channel& c : g.channels()) {
    os << "  a" << c.src << " -> a" << c.dst << " [label=\"" << c.prod_rate << "/"
       << c.cons_rate;
    if (c.initial_tokens > 0) os << " [" << c.initial_tokens << "]";
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace procon::sdf
