#include "sdf/repetition.h"

#include <queue>

#include "util/rational.h"

namespace procon::sdf {

using util::Rational;

std::optional<RepetitionVector> compute_repetition_vector(const Graph& g) {
  const std::size_t n = g.actor_count();
  std::vector<Rational> ratio(n, Rational(0));  // 0 = unvisited
  std::vector<int> component(n, -1);
  int ncomp = 0;

  // BFS over the undirected structure, propagating firing-rate ratios.
  for (ActorId start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    const int comp = ncomp++;
    component[start] = comp;
    ratio[start] = Rational(1);
    std::queue<ActorId> work;
    work.push(start);
    while (!work.empty()) {
      const ActorId a = work.front();
      work.pop();
      auto relax = [&](ActorId b, const Rational& expected) -> bool {
        if (component[b] == -1) {
          component[b] = comp;
          ratio[b] = expected;
          work.push(b);
          return true;
        }
        return ratio[b] == expected;
      };
      for (const ChannelId cid : g.out_channels(a)) {
        const Channel& c = g.channel(cid);
        // q[a]*prod == q[dst]*cons  =>  q[dst] = q[a]*prod/cons.
        const Rational expected =
            ratio[a] * Rational(c.prod_rate) / Rational(c.cons_rate);
        if (!relax(c.dst, expected)) return std::nullopt;
      }
      for (const ChannelId cid : g.in_channels(a)) {
        const Channel& c = g.channel(cid);
        const Rational expected =
            ratio[a] * Rational(c.cons_rate) / Rational(c.prod_rate);
        if (!relax(c.src, expected)) return std::nullopt;
      }
    }
  }

  // Scale each component to the smallest positive integer vector.
  std::vector<std::int64_t> den_lcm(static_cast<std::size_t>(ncomp), 1);
  for (ActorId a = 0; a < n; ++a) {
    auto& l = den_lcm[static_cast<std::size_t>(component[a])];
    l = util::lcm64(l, ratio[a].den());
  }
  std::vector<std::int64_t> num_gcd(static_cast<std::size_t>(ncomp), 0);
  std::vector<std::int64_t> scaled(n, 0);
  for (ActorId a = 0; a < n; ++a) {
    const auto comp = static_cast<std::size_t>(component[a]);
    const Rational v = ratio[a] * Rational(den_lcm[comp]);
    scaled[a] = v.num();  // v.den() == 1 by construction
    num_gcd[comp] = util::gcd64(num_gcd[comp], scaled[a]);
  }
  RepetitionVector q(n, 0);
  for (ActorId a = 0; a < n; ++a) {
    const auto comp = static_cast<std::size_t>(component[a]);
    q[a] = static_cast<std::uint64_t>(scaled[a] / num_gcd[comp]);
  }
  return q;
}

bool is_consistent(const Graph& g) {
  return compute_repetition_vector(g).has_value();
}

std::uint64_t repetition_sum(const RepetitionVector& q) {
  std::uint64_t s = 0;
  for (const auto v : q) s += v;
  return s;
}

Time iteration_workload(const Graph& g, const RepetitionVector& q) {
  Time w = 0;
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    w += g.actor(a).exec_time * static_cast<Time>(q[a]);
  }
  return w;
}

}  // namespace procon::sdf
