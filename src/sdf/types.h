// Fundamental identifier and time types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace procon::sdf {

/// Index of an actor within its Graph.
using ActorId = std::uint32_t;
/// Index of a channel within its Graph.
using ChannelId = std::uint32_t;
/// Index of an application (graph) within a System.
using AppId = std::uint32_t;

/// Discrete time in abstract "time units" (the paper's cycles).
using Time = std::int64_t;

inline constexpr ActorId kInvalidActor = std::numeric_limits<ActorId>::max();
inline constexpr ChannelId kInvalidChannel = std::numeric_limits<ChannelId>::max();
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

}  // namespace procon::sdf
