#include "sdf/graph.h"

#include <algorithm>

namespace procon::sdf {

ActorId Graph::add_actor(std::string name, Time exec_time) {
  if (exec_time < 0) throw GraphError("actor execution time must be >= 0");
  const auto id = static_cast<ActorId>(actors_.size());
  actors_.push_back(Actor{std::move(name), exec_time});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

ChannelId Graph::add_channel(ActorId src, ActorId dst, std::uint32_t prod_rate,
                             std::uint32_t cons_rate, std::uint64_t initial_tokens) {
  check_actor(src);
  check_actor(dst);
  if (prod_rate == 0 || cons_rate == 0) {
    throw GraphError("channel rates must be >= 1");
  }
  const auto id = static_cast<ChannelId>(channels_.size());
  channels_.push_back(Channel{src, dst, prod_rate, cons_rate, initial_tokens});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

void Graph::check_actor(ActorId a) const {
  if (a >= actors_.size()) throw GraphError("invalid actor id");
}

const Actor& Graph::actor(ActorId a) const {
  check_actor(a);
  return actors_[a];
}

Actor& Graph::actor(ActorId a) {
  check_actor(a);
  return actors_[a];
}

const Channel& Graph::channel(ChannelId c) const {
  if (c >= channels_.size()) throw GraphError("invalid channel id");
  return channels_[c];
}

std::span<const ChannelId> Graph::out_channels(ActorId a) const {
  check_actor(a);
  return out_[a];
}

std::span<const ChannelId> Graph::in_channels(ActorId a) const {
  check_actor(a);
  return in_[a];
}

ActorId Graph::find_actor(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) return static_cast<ActorId>(i);
  }
  return kInvalidActor;
}

Time Graph::total_exec_time() const noexcept {
  Time sum = 0;
  for (const auto& a : actors_) sum += a.exec_time;
  return sum;
}

Graph Graph::with_exec_times(std::span<const Time> new_times) const {
  if (new_times.size() != actors_.size()) {
    throw GraphError("with_exec_times: size mismatch");
  }
  Graph g = *this;
  for (std::size_t i = 0; i < new_times.size(); ++i) {
    if (new_times[i] < 0) throw GraphError("with_exec_times: negative time");
    g.actors_[i].exec_time = new_times[i];
  }
  return g;
}

bool Graph::has_self_loop(ActorId a) const {
  check_actor(a);
  return std::any_of(out_[a].begin(), out_[a].end(), [&](ChannelId c) {
    const Channel& ch = channels_[c];
    return ch.dst == a && ch.prod_rate == ch.cons_rate && ch.initial_tokens >= 1;
  });
}

Graph Graph::with_self_loops() const {
  Graph g = *this;
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    if (!g.has_self_loop(a)) {
      g.add_channel(a, a, 1, 1, 1);
    }
  }
  return g;
}

}  // namespace procon::sdf
