// Zobrist-style structural hashing for graphs, mappings and systems.
//
// A Zobrist hash assigns every *feature* of a structure an independent
// pseudo-random 64-bit code drawn from a deterministic, seed-fixed table,
// and defines the hash of the structure as the XOR of its feature codes.
// XOR is its own inverse, so adding or removing a feature updates the hash
// in O(1) — the classic trick from game-tree search, applied here to the
// repeated-analysis problem: admission probes, DSE candidates and
// multi-tenant service queries keep re-analysing structurally identical
// (sub)systems, and an incrementally-maintained fingerprint is what lets a
// transposition table recognise them without rehashing O(system) state.
//
// The features are the paper-relevant structure only — actor execution
// times, channel endpoints/rates/tokens, and (mapping slot, node) pairs.
// Names are deliberately *excluded*: analysis results do not depend on
// them, so two differently-named but structurally identical applications
// hash equal and can share transposition entries across tenants. Callers
// that need exact identity (the admission candidate LRU, the service
// session LRU) still tie-break with graphs_equal / systems_equal, which do
// compare names.
//
// Composition convention (used by platform::System / platform::Mapping /
// platform::SystemView):
//
//   system fp = place(kPlatformTag, 0, platform component)
//             ^ XOR_i place(kAppTag,     i, graph_component(app_i))
//             ^ XOR_i place(kMappingTag, i, mapping row component_i)
//
// `place` salts a slot-free component by its position, so reordering
// applications changes the hash while each per-app component stays
// reusable: a SystemView re-places the parent's cached components at view
// slots in O(use-case size) instead of rehashing graphs.
#pragma once

#include <cstdint>
#include <span>

#include "sdf/graph.h"
#include "sdf/types.h"

namespace procon::sdf {

/// \brief Deterministic, seed-fixed Zobrist feature hashing over SDF
/// structures.
///
/// All members are static and allocation-free; the feature table is
/// generated at compile time from a fixed seed, so hashes are stable across
/// runs, platforms and thread counts (a requirement for the committed
/// bench identity records). See the header comment for the composition
/// convention and the name-exclusion rationale.
class ZobristHash {
 public:
  /// Fixed generator seed for the compile-time feature table. Changing it
  /// changes every fingerprint (and invalidates any persisted hashes).
  static constexpr std::uint64_t kSeed = 0x5A0B'F157'C0DE'2007ULL;

  /// Placement tag for per-application graph components.
  static constexpr std::uint64_t kAppTag = 0xA1;
  /// Placement tag for per-application mapping-row components.
  static constexpr std::uint64_t kMappingTag = 0xB2;
  /// Placement tag for the platform component (always slot 0).
  static constexpr std::uint64_t kPlatformTag = 0xC3;

  /// Feature code of actor `a` with execution time `exec_time`.
  [[nodiscard]] static std::uint64_t actor_feature(ActorId a,
                                                   Time exec_time) noexcept;

  /// Feature code of channel `c` (mixes src, dst, rates and initial tokens).
  [[nodiscard]] static std::uint64_t channel_feature(ChannelId c,
                                                     const Channel& ch) noexcept;

  /// Feature code of processing node `node` with type `type`.
  [[nodiscard]] static std::uint64_t node_feature(std::uint32_t node,
                                                  std::uint32_t type) noexcept;

  /// Feature code of the (actor `a` -> node `node`) mapping assignment.
  /// Unmapped slots (platform::kInvalidNode) hash like any other value, so
  /// partially-built mappings have well-defined fingerprints.
  [[nodiscard]] static std::uint64_t mapping_feature(ActorId a,
                                                     std::uint32_t node) noexcept;

  /// Feature code of an interconnect's shape: kind (bus/ring/mesh as an
  /// integer) and mesh dimensions. Drawn from its own table row, so a
  /// topology-bearing platform never aliases the same platform without one
  /// (kind None contributes no feature at all — by convention the caller
  /// skips both topology and link features in that case, keeping
  /// no-topology fingerprints bitwise identical to pre-interconnect ones).
  [[nodiscard]] static std::uint64_t topology_feature(std::uint8_t kind,
                                                      std::uint32_t rows,
                                                      std::uint32_t cols) noexcept;

  /// Feature code of directed interconnect link `link` (mixes endpoints,
  /// width and latency). XOR-delta friendly: set_link_width/latency on a
  /// System XORs the old and new codes in O(1).
  [[nodiscard]] static std::uint64_t link_feature(std::uint32_t link,
                                                  std::uint32_t src,
                                                  std::uint32_t dst,
                                                  std::uint32_t width,
                                                  Time latency) noexcept;

  /// Slot-free structural component of a whole graph: XOR of all actor and
  /// channel features. Name-free by design (see header comment). O(actors +
  /// channels), no allocation.
  [[nodiscard]] static std::uint64_t graph_component(const Graph& g) noexcept;

  /// Slot-free component of one mapping row: XOR of mapping_feature(a,
  /// nodes[a]) over all actors. O(actors), no allocation.
  [[nodiscard]] static std::uint64_t mapping_row_component(
      std::span<const std::uint32_t> nodes) noexcept;

  /// Salts a slot-free `component` by (`tag`, `slot`) so position matters in
  /// a XOR composition. place(t, s, c1) ^ place(t, s, c2) has the XOR-delta
  /// property needed for O(1) in-place updates: replacing component c1 by c2
  /// at the same slot XORs exactly those two terms.
  [[nodiscard]] static std::uint64_t place(std::uint64_t tag, std::uint64_t slot,
                                           std::uint64_t component) noexcept;
};

}  // namespace procon::sdf
