// Repetition vector and consistency analysis (Definition 2 of the paper).
//
// The repetition vector q of an SDFG is the smallest positive integer
// solution of the balance equations  q[src]*prod == q[dst]*cons  for every
// channel. A graph admitting such a solution is "consistent"; only
// consistent graphs can execute forever in bounded memory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdf/graph.h"

namespace procon::sdf {

/// q[a] = number of firings of actor a per graph iteration.
using RepetitionVector = std::vector<std::uint64_t>;

/// Computes the repetition vector. Returns std::nullopt if the graph is
/// inconsistent (balance equations unsolvable). For graphs with several
/// weakly-connected components, each component is normalised independently
/// (the standard convention). Actors with no channels get q = 1.
[[nodiscard]] std::optional<RepetitionVector> compute_repetition_vector(const Graph& g);

/// True iff the balance equations have a positive solution.
[[nodiscard]] bool is_consistent(const Graph& g);

/// Sum over actors of q[a] (number of HSDF vertices after expansion).
[[nodiscard]] std::uint64_t repetition_sum(const RepetitionVector& q);

/// Total work of one iteration: sum over actors of q[a] * tau(a). For a
/// fully sequential schedule this lower-bounds the period on one processor.
[[nodiscard]] Time iteration_workload(const Graph& g, const RepetitionVector& q);

}  // namespace procon::sdf
