// Execution-time distributions (the paper's Section 6 extension: "the
// approach can be easily extended to varying execution times, for example,
// in data dependent executions where execution times are not fixed but
// follow a probabilistic distribution").
//
// A distribution supplies the two moments the probabilistic analysis needs:
//   P(a)  uses the mean:            P = E[tau] * q / Per
//   mu(a) uses the residual life:   mu = E[tau^2] / (2 E[tau])
// (for a constant time tau this degenerates to the paper's tau/2), and a
// sampler for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sdf/types.h"
#include "util/rng.h"

namespace procon::sdf {

/// A discrete probability distribution over integer execution times.
/// Supported shapes: constant, uniform over [lo, hi], and an explicit
/// probability mass function.
class ExecTimeDistribution {
 public:
  /// Degenerate distribution at `value` (the paper's base model).
  static ExecTimeDistribution constant(Time value);

  /// Uniform over the integers lo..hi inclusive.
  static ExecTimeDistribution uniform(Time lo, Time hi);

  /// Explicit pmf: entries (value, weight); weights are normalised.
  struct Outcome {
    Time value = 0;
    double weight = 1.0;
  };
  static ExecTimeDistribution discrete(std::vector<Outcome> outcomes);

  /// Trusted reconstruction from an already-normalised outcome list (values
  /// ascending, weights summing to ~1), as produced by outcomes(). Skips
  /// the normalising division, so a distribution rebuilt from its own
  /// outcomes() is *bitwise* identical (weights, mean, moments, sampling) —
  /// the contract serialisers (sdf::io, net::codec) rely on. Throws
  /// std::invalid_argument on empty, unsorted or non-positive input.
  static ExecTimeDistribution from_normalised(std::vector<Outcome> outcomes);

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double second_moment() const noexcept { return m2_; }
  [[nodiscard]] double variance() const noexcept { return m2_ - mean_ * mean_; }

  /// Expected residual service time seen by a random arrival while a firing
  /// is in progress: E[tau^2] / (2 E[tau]) (renewal theory; equals tau/2
  /// for constant tau, matching Definition 5). Zero for a zero-mean
  /// distribution.
  [[nodiscard]] double mean_residual() const noexcept {
    return mean_ > 0.0 ? m2_ / (2.0 * mean_) : 0.0;
  }

  [[nodiscard]] bool is_constant() const noexcept { return outcomes_.size() == 1; }

  /// Draws one execution time.
  [[nodiscard]] Time sample(util::Rng& rng) const;

  [[nodiscard]] const std::vector<Outcome>& outcomes() const noexcept {
    return outcomes_;
  }

 private:
  explicit ExecTimeDistribution(std::vector<Outcome> outcomes);
  struct Normalised {};  // tag: outcomes are already sorted + normalised
  ExecTimeDistribution(std::vector<Outcome> outcomes, Normalised);

  std::vector<Outcome> outcomes_;  // normalised weights, values ascending
  std::vector<double> cumulative_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// One distribution per actor of a graph.
using ExecTimeModel = std::vector<ExecTimeDistribution>;

/// The trivial model matching the graph's fixed times.
[[nodiscard]] ExecTimeModel constant_model(const class Graph& g);

}  // namespace procon::sdf
