#include "sdf/exec_time.h"

#include <algorithm>

#include "sdf/graph.h"

namespace procon::sdf {

ExecTimeDistribution::ExecTimeDistribution(std::vector<Outcome> outcomes)
    : outcomes_(std::move(outcomes)) {
  if (outcomes_.empty()) {
    throw std::invalid_argument("ExecTimeDistribution: empty outcome set");
  }
  double total = 0.0;
  for (const Outcome& o : outcomes_) {
    if (o.value < 0) {
      throw std::invalid_argument("ExecTimeDistribution: negative time");
    }
    if (o.weight <= 0.0) {
      throw std::invalid_argument("ExecTimeDistribution: non-positive weight");
    }
    total += o.weight;
  }
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const Outcome& a, const Outcome& b) { return a.value < b.value; });
  cumulative_.reserve(outcomes_.size());
  double acc = 0.0;
  for (Outcome& o : outcomes_) {
    o.weight /= total;
    acc += o.weight;
    cumulative_.push_back(acc);
    const auto v = static_cast<double>(o.value);
    mean_ += o.weight * v;
    m2_ += o.weight * v * v;
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

ExecTimeDistribution::ExecTimeDistribution(std::vector<Outcome> outcomes, Normalised)
    : outcomes_(std::move(outcomes)) {
  if (outcomes_.empty()) {
    throw std::invalid_argument("ExecTimeDistribution: empty outcome set");
  }
  cumulative_.reserve(outcomes_.size());
  double acc = 0.0;
  Time prev = -1;
  for (const Outcome& o : outcomes_) {
    if (o.value < 0 || o.value <= prev) {
      throw std::invalid_argument(
          "ExecTimeDistribution: from_normalised requires ascending values");
    }
    if (o.weight <= 0.0) {
      throw std::invalid_argument("ExecTimeDistribution: non-positive weight");
    }
    prev = o.value;
    // Same accumulation order as the normalising constructor, minus the
    // division — feeding outcomes() back in reproduces every derived field
    // bitwise.
    acc += o.weight;
    cumulative_.push_back(acc);
    const auto v = static_cast<double>(o.value);
    mean_ += o.weight * v;
    m2_ += o.weight * v * v;
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

ExecTimeDistribution ExecTimeDistribution::from_normalised(
    std::vector<Outcome> outcomes) {
  return ExecTimeDistribution(std::move(outcomes), Normalised{});
}

ExecTimeDistribution ExecTimeDistribution::constant(Time value) {
  return ExecTimeDistribution({Outcome{value, 1.0}});
}

ExecTimeDistribution ExecTimeDistribution::uniform(Time lo, Time hi) {
  if (lo > hi) throw std::invalid_argument("ExecTimeDistribution: lo > hi");
  std::vector<Outcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (Time v = lo; v <= hi; ++v) outcomes.push_back(Outcome{v, 1.0});
  return ExecTimeDistribution(std::move(outcomes));
}

ExecTimeDistribution ExecTimeDistribution::discrete(std::vector<Outcome> outcomes) {
  return ExecTimeDistribution(std::move(outcomes));
}

Time ExecTimeDistribution::sample(util::Rng& rng) const {
  if (outcomes_.size() == 1) return outcomes_[0].value;
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return outcomes_[std::min(idx, outcomes_.size() - 1)].value;
}

ExecTimeModel constant_model(const Graph& g) {
  ExecTimeModel model;
  model.reserve(g.actor_count());
  for (const Actor& a : g.actors()) {
    model.push_back(ExecTimeDistribution::constant(a.exec_time));
  }
  return model;
}

}  // namespace procon::sdf
