#include "sdf/zobrist.h"

#include <array>

namespace procon::sdf {

namespace {

// splitmix64 finaliser: a cheap, well-distributed 64-bit mixer (the same
// family as fingerprint_mix, but kept separate so Zobrist components and
// the oracle graph_fingerprint stay independent hash functions).
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The seed-fixed feature table: 256 independent 64-bit codes generated at
// compile time by iterating splitmix64 from ZobristHash::kSeed. Entries act
// as per-dimension salts so distinct feature kinds (actor vs channel vs
// mapping vs node) and distinct field positions draw from unrelated
// streams.
constexpr std::array<std::uint64_t, 256> make_table() noexcept {
  std::array<std::uint64_t, 256> t{};
  std::uint64_t state = ZobristHash::kSeed;
  for (auto& e : t) {
    state += 0x9E3779B97F4A7C15ULL;
    e = mix(state);
  }
  return t;
}

constexpr std::array<std::uint64_t, 256> kTable = make_table();

// Distinct table rows per feature kind / field dimension.
constexpr std::size_t kActorDim = 0;
constexpr std::size_t kChannelDim = 8;
constexpr std::size_t kNodeDim = 16;
constexpr std::size_t kMappingDim = 24;
constexpr std::size_t kPlaceDim = 32;
constexpr std::size_t kLinkDim = 40;

// Chains one field into a feature hash, salted by its dimension row.
constexpr std::uint64_t step(std::uint64_t h, std::uint64_t v,
                             std::size_t dim) noexcept {
  return mix(h ^ v ^ kTable[dim & 0xFF]);
}

}  // namespace

std::uint64_t ZobristHash::actor_feature(ActorId a, Time exec_time) noexcept {
  std::uint64_t h = step(kTable[kActorDim], a, kActorDim + 1);
  return step(h, static_cast<std::uint64_t>(exec_time), kActorDim + 2);
}

std::uint64_t ZobristHash::channel_feature(ChannelId c, const Channel& ch) noexcept {
  std::uint64_t h = step(kTable[kChannelDim], c, kChannelDim + 1);
  h = step(h, ch.src, kChannelDim + 2);
  h = step(h, ch.dst, kChannelDim + 3);
  h = step(h, ch.prod_rate, kChannelDim + 4);
  h = step(h, ch.cons_rate, kChannelDim + 5);
  return step(h, ch.initial_tokens, kChannelDim + 6);
}

std::uint64_t ZobristHash::node_feature(std::uint32_t node, std::uint32_t type) noexcept {
  std::uint64_t h = step(kTable[kNodeDim], node, kNodeDim + 1);
  return step(h, type, kNodeDim + 2);
}

std::uint64_t ZobristHash::mapping_feature(ActorId a, std::uint32_t node) noexcept {
  std::uint64_t h = step(kTable[kMappingDim], a, kMappingDim + 1);
  return step(h, node, kMappingDim + 2);
}

std::uint64_t ZobristHash::topology_feature(std::uint8_t kind, std::uint32_t rows,
                                            std::uint32_t cols) noexcept {
  std::uint64_t h = step(kTable[kLinkDim], kind, kLinkDim + 1);
  h = step(h, rows, kLinkDim + 2);
  return step(h, cols, kLinkDim + 3);
}

std::uint64_t ZobristHash::link_feature(std::uint32_t link, std::uint32_t src,
                                        std::uint32_t dst, std::uint32_t width,
                                        Time latency) noexcept {
  std::uint64_t h = step(kTable[kLinkDim + 4], link, kLinkDim + 5);
  h = step(h, src, kLinkDim + 6);
  h = step(h, dst, kLinkDim + 7);
  h = step(h, width, kLinkDim + 8);
  return step(h, static_cast<std::uint64_t>(latency), kLinkDim + 9);
}

std::uint64_t ZobristHash::graph_component(const Graph& g) noexcept {
  std::uint64_t comp = 0;
  ActorId a = 0;
  for (const Actor& actor : g.actors()) {
    comp ^= actor_feature(a++, actor.exec_time);
  }
  ChannelId c = 0;
  for (const Channel& ch : g.channels()) {
    comp ^= channel_feature(c++, ch);
  }
  return comp;
}

std::uint64_t ZobristHash::mapping_row_component(
    std::span<const std::uint32_t> nodes) noexcept {
  std::uint64_t comp = 0;
  for (ActorId a = 0; a < nodes.size(); ++a) {
    comp ^= mapping_feature(a, nodes[a]);
  }
  return comp;
}

std::uint64_t ZobristHash::place(std::uint64_t tag, std::uint64_t slot,
                                 std::uint64_t component) noexcept {
  std::uint64_t h = step(kTable[kPlaceDim], tag, kPlaceDim + 1);
  h = step(h, slot, kPlaceDim + 2);
  return mix(h ^ component);
}

}  // namespace procon::sdf
