// Structural graph algorithms: strongly connected components (Tarjan),
// strong-connectivity and deadlock-freedom checks.
//
// The paper's evaluation graphs are strongly connected (every actor
// reachable from every actor) and deadlock-free; the generator relies on
// these predicates, and the HSDF/MCR analyses require strong connectivity
// for a well-defined maximum cycle ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/graph.h"
#include "sdf/repetition.h"

namespace procon::sdf {

/// Tarjan strongly-connected components. Returns component index per actor,
/// numbered in reverse topological order (0 is a sink component).
struct SccResult {
  std::vector<std::uint32_t> component_of;  ///< actor -> component index
  std::uint32_t component_count = 0;
};
[[nodiscard]] SccResult strongly_connected_components(const Graph& g);

/// True iff the graph has exactly one SCC containing all actors (and at
/// least one actor).
[[nodiscard]] bool is_strongly_connected(const Graph& g);

/// Deadlock-freedom via abstract execution: tries to complete one full
/// iteration (each actor a fired q[a] times) by repeatedly firing enabled
/// actors on token counts only. For consistent SDFGs this succeeds iff the
/// graph is deadlock-free (Lee & Messerschmitt). Returns false for
/// inconsistent graphs.
[[nodiscard]] bool is_deadlock_free(const Graph& g);

/// Like is_deadlock_free but reports the set of actors that still had
/// pending firings when execution stalled (empty if none). Used by the
/// generator's token-repair loop.
struct DeadlockDiagnosis {
  bool deadlock_free = false;
  std::vector<ActorId> starved_actors;    ///< actors with pending firings
  std::vector<ChannelId> starved_channels;///< in-channels lacking tokens
};
[[nodiscard]] DeadlockDiagnosis diagnose_deadlock(const Graph& g);

/// Structural fingerprint of a graph (name, actors, channels), mixed into
/// `seed` — one shared definition of "same graph" for every structure-keyed
/// cache (the admission candidate LRU, the service session LRU). Collisions
/// must be disambiguated with graphs_equal. No allocation.
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g,
                                              std::uint64_t seed = 0) noexcept;

/// Exact structural equality (the fingerprint's tie-breaker): same name,
/// actors (names + execution times) and channels (endpoints, rates, initial
/// tokens). No allocation.
[[nodiscard]] bool graphs_equal(const Graph& a, const Graph& b) noexcept;

/// Mixes one value into a structural hash (splitmix-style combiner shared
/// by the fingerprint helpers; exposed so compound caches — e.g. a whole
/// System — can extend the same hash).
[[nodiscard]] std::uint64_t fingerprint_mix(std::uint64_t h,
                                            std::uint64_t v) noexcept;

}  // namespace procon::sdf
