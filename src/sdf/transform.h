// Structural graph transformations.
//
// * Buffer capacities: bounded FIFOs are modelled by a reverse channel
//   carrying "free space" tokens (Stuijk et al. [16]; Wiggers et al. [20]):
//   a producer claims space before writing, a consumer releases it. The
//   transformed graph's throughput analysis then accounts for back-pressure,
//   and the simulator executes it unchanged.
// * Reversal: flips every channel (the paper's Section 3.1 thought
//   experiment reverses a cycle to show the estimate's insensitivity to
//   inter-graph dependencies).
#pragma once

#include <cstdint>
#include <span>

#include "sdf/graph.h"

namespace procon::sdf {

/// Returns a copy of `g` where channel i is bounded to `capacities[i]`
/// tokens (0 = unbounded, channel left untouched). Each bounded channel
/// gains a reverse "space" channel with capacity - initial_tokens free
/// slots. Throws GraphError if a capacity is smaller than the channel's
/// initial tokens, or on size mismatch.
[[nodiscard]] Graph with_buffer_capacities(const Graph& g,
                                           std::span<const std::uint64_t> capacities);

/// Bounds every channel to the same capacity (convenience).
[[nodiscard]] Graph with_uniform_buffer_capacity(const Graph& g,
                                                 std::uint64_t capacity);

/// Returns the channel-reversed graph: every channel src->dst becomes
/// dst->src with production/consumption rates swapped and the same token
/// count. Actor set and execution times are unchanged. The reverse of a
/// consistent graph is consistent with the same repetition vector.
[[nodiscard]] Graph reversed(const Graph& g);

/// Per-channel capacities under which the graph still completes an
/// iteration: starts from the per-channel lower bound
/// max(initial_tokens, prod + cons - gcd(prod, cons)) and then grows
/// starved buffers (reported by abstract-execution deadlock diagnosis)
/// until the bounded graph is live. A small feasibility baseline - not the
/// throughput-optimal buffers of [16] - useful as the floor of buffer
/// sweeps. Throws GraphError if `g` itself deadlocks.
[[nodiscard]] std::vector<std::uint64_t> minimal_feasible_capacities(const Graph& g);

}  // namespace procon::sdf
