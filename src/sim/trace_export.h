// Trace exporters: VCD waveforms and ASCII Gantt charts.
//
// The simulator's service-interval trace can be rendered as
//  * a Value Change Dump (IEEE 1364 VCD) with one multi-bit signal per
//    processing node whose value identifies the executing actor (0 = idle),
//    viewable in any waveform viewer (GTKWave etc.); or
//  * a fixed-width ASCII Gantt chart for quick terminal inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "platform/system.h"
#include "sim/metrics.h"

namespace procon::sim {

/// Writes a VCD document for `result.trace`. Each node becomes one 16-bit
/// signal named after the platform node; its value during a service
/// interval is 1 + the global index of the executing actor, 0 when idle.
/// Requires the trace to have been collected (SimOptions::collect_trace);
/// an empty trace yields a valid VCD with constant-idle signals.
void write_vcd(std::ostream& os, const platform::System& sys, const SimResult& result,
               const std::string& timescale = "1ns");

[[nodiscard]] std::string to_vcd(const platform::System& sys, const SimResult& result,
                                 const std::string& timescale = "1ns");

/// Renders an ASCII Gantt chart of [from, to) with `width` columns. One row
/// per node; each column shows the actor occupying the node at that time
/// slice (letter per application, lower-case cycling by actor id), '.' for
/// idle and '*' when several firings fall into one column.
[[nodiscard]] std::string render_gantt(const platform::System& sys,
                                       const SimResult& result, sdf::Time from,
                                       sdf::Time to, std::size_t width = 80);

}  // namespace procon::sim
