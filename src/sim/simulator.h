// Discrete-event simulator for multiple SDF applications sharing
// processing nodes (the reference engine standing in for POOSL [18]).
//
// Operational semantics (matching the paper's model):
//  * an actor becomes "ready" when every input channel holds at least its
//    consumption rate worth of tokens, it is not already queued/executing,
//    and (no auto-concurrency) its previous firing has completed;
//  * a ready actor requests its node and waits for the arbiter;
//  * tokens are consumed when service starts and produced when it ends;
//  * nodes are non-preemptive under FCFS (the paper's arbiter, "least
//    contention on their own" - no imposed order) and round-robin;
//    TDMA is preemptive by slot construction.
//
// The simulator is fully deterministic: simultaneous events are processed
// in creation order and FCFS ties resolve by arrival order.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/system.h"
#include "sdf/exec_time.h"
#include "sim/metrics.h"

namespace procon::sim {

enum class Arbitration {
  Fcfs,        ///< first-come-first-served, non-preemptive (paper's setup)
  RoundRobin,  ///< work-conserving cyclic order, non-preemptive
  Tdma,        ///< time-division wheel, one slot per mapped actor
};

struct SimOptions {
  sdf::Time horizon = 500'000;      ///< simulated time units (paper: 500k cycles)
  Arbitration arbitration = Arbitration::Fcfs;
  sdf::Time tdma_slot = 0;          ///< TDMA slot length; 0 = actor exec time
  double warmup_fraction = 0.25;    ///< iterations discarded for steady state
  std::uint64_t min_iterations = 4; ///< below this, results flagged unconverged
  std::uint64_t max_events = 0;     ///< safety cap (0 = derived from horizon)

  /// Stochastic execution times (Section 6 extension): one model per
  /// (active) application, one distribution per actor. Empty = the graphs'
  /// fixed times. Stored by value — the options own their models, so there
  /// is no lifetime coupling to the caller (the former const-pointer field
  /// dangled whenever the pointed-to vector died before the run).
  std::vector<sdf::ExecTimeModel> exec_models = {};
  std::uint64_t sample_seed = 0x5EED;  ///< seed for execution-time sampling

  /// Record every service interval into SimResult::trace (costs memory
  /// proportional to the number of firings).
  bool collect_trace = false;
};

/// Runs all applications of `sys` concurrently until the horizon.
/// Throws sdf::GraphError on invalid systems (validate() failures).
///
/// One-shot convenience shim over sim::SimEngine (sim/sim_engine.h):
/// builds the engine's cached structure per call. Repeated simulations of
/// one system (sweeps, stochastic replications) should construct a
/// SimEngine once and reset()+run() it — identical results, without the
/// per-call flatten/validate.
[[nodiscard]] SimResult simulate(const platform::System& sys,
                                 const SimOptions& opts = {});

/// Runs only the applications of one use-case (the restriction the paper's
/// per-use-case reference sweeps simulate). Results are indexed in
/// use-case order, exactly as simulate(sys.restrict_to(uc), opts) — but
/// restricted zero-copy through the engine's id remap tables, without the
/// restrict_to deep copy.
[[nodiscard]] SimResult simulate(const platform::System& sys,
                                 const platform::UseCase& uc,
                                 const SimOptions& opts = {});

}  // namespace procon::sim
