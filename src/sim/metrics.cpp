#include "sim/metrics.h"

#include <algorithm>

namespace procon::sim {

void finalise_app_metrics(AppSimResult& app, double warmup_fraction,
                          std::uint64_t min_iterations) {
  app.iterations = app.iteration_times.size();
  app.converged = false;
  app.average_period = 0.0;
  app.worst_period = 0.0;
  if (app.iteration_times.size() < 2) return;

  const auto n = app.iteration_times.size();
  auto first = static_cast<std::size_t>(warmup_fraction * static_cast<double>(n));
  if (first >= n - 1) first = n - 2;  // keep at least one gap

  const std::uint64_t kept_gaps = n - 1 - first;
  app.average_period =
      static_cast<double>(app.iteration_times.back() - app.iteration_times[first]) /
      static_cast<double>(kept_gaps);
  sdf::Time worst = 0;
  for (std::size_t i = first + 1; i < n; ++i) {
    worst = std::max(worst, app.iteration_times[i] - app.iteration_times[i - 1]);
  }
  app.worst_period = static_cast<double>(worst);
  app.converged = kept_gaps + 1 >= min_iterations;
}

}  // namespace procon::sim
