#include "sim/metrics.h"

#include <algorithm>

namespace procon::sim {

PeriodStats steady_state_metrics(std::span<const sdf::Time> iteration_times,
                                 double warmup_fraction,
                                 std::uint64_t min_iterations) noexcept {
  PeriodStats stats;
  stats.iterations = iteration_times.size();
  if (iteration_times.size() < 2) return stats;

  const auto n = iteration_times.size();
  auto first = static_cast<std::size_t>(warmup_fraction * static_cast<double>(n));
  if (first >= n - 1) first = n - 2;  // keep at least one gap

  const std::uint64_t kept_gaps = n - 1 - first;
  stats.average_period =
      static_cast<double>(iteration_times.back() - iteration_times[first]) /
      static_cast<double>(kept_gaps);
  sdf::Time worst = 0;
  for (std::size_t i = first + 1; i < n; ++i) {
    worst = std::max(worst, iteration_times[i] - iteration_times[i - 1]);
  }
  stats.worst_period = static_cast<double>(worst);
  stats.converged = kept_gaps + 1 >= min_iterations;
  return stats;
}

void finalise_app_metrics(AppSimResult& app, double warmup_fraction,
                          std::uint64_t min_iterations) {
  const PeriodStats stats =
      steady_state_metrics(app.iteration_times, warmup_fraction, min_iterations);
  app.iterations = stats.iterations;
  app.converged = stats.converged;
  app.average_period = stats.average_period;
  app.worst_period = stats.worst_period;
}

AppSimResult AppSimView::materialise() const {
  AppSimResult out;
  out.iterations = iterations;
  out.converged = converged;
  out.average_period = average_period;
  out.worst_period = worst_period;
  out.actors.assign(actors.begin(), actors.end());
  out.iteration_times.assign(iteration_times.begin(), iteration_times.end());
  return out;
}

SimResult SimResultView::materialise() const {
  SimResult out;
  out.events_processed = events_processed;
  out.horizon = horizon;
  out.apps.reserve(apps.size());
  for (const AppSimView& app : apps) out.apps.push_back(app.materialise());
  out.node_utilisation.assign(node_utilisation.begin(), node_utilisation.end());
  out.link_utilisation.assign(link_utilisation.begin(), link_utilisation.end());
  out.trace.assign(trace.begin(), trace.end());
  return out;
}

}  // namespace procon::sim
