#include "sim/trace_export.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace procon::sim {
namespace {

/// VCD identifier for signal index i: short printable ASCII code.
std::string vcd_id(std::size_t i) {
  std::string id;
  do {
    id += static_cast<char>('!' + i % 94);
    i /= 94;
  } while (i > 0);
  return id;
}

std::string binary16(std::uint32_t v) {
  std::string s(16, '0');
  for (int b = 0; b < 16; ++b) {
    if (v & (1u << b)) s[static_cast<std::size_t>(15 - b)] = '1';
  }
  return s;
}

/// Global actor index (1-based for VCD values; 0 = idle).
std::uint32_t actor_code(const platform::System& sys, std::uint32_t app,
                         std::uint32_t actor) {
  std::uint32_t base = 1;
  for (std::uint32_t i = 0; i < app; ++i) {
    base += static_cast<std::uint32_t>(sys.app(i).actor_count());
  }
  return base + actor;
}

}  // namespace

void write_vcd(std::ostream& os, const platform::System& sys,
               const SimResult& result, const std::string& timescale) {
  os << "$date procon trace $end\n";
  os << "$version procon simulator $end\n";
  os << "$timescale " << timescale << " $end\n";
  os << "$scope module platform $end\n";
  const std::size_t nodes = sys.platform().node_count();
  for (std::size_t n = 0; n < nodes; ++n) {
    os << "$var wire 16 " << vcd_id(n) << ' ' << sys.platform().node(
        static_cast<platform::NodeId>(n)).name << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Change list: (time, node, value).
  struct Change {
    sdf::Time time;
    std::uint32_t node;
    std::uint32_t value;
  };
  std::vector<Change> changes;
  changes.reserve(2 * result.trace.size() + nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    changes.push_back({0, static_cast<std::uint32_t>(n), 0});
  }
  for (const TraceEvent& e : result.trace) {
    changes.push_back({e.start, e.node, actor_code(sys, e.app, e.actor)});
    changes.push_back({e.end, e.node, 0});
  }
  // Stable ordering: by time; at equal times idle transitions (value 0)
  // first so a back-to-back firing overwrites the idle marker.
  std::stable_sort(changes.begin(), changes.end(), [](const Change& a, const Change& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.value < b.value;
  });

  sdf::Time now = -1;
  std::vector<std::uint32_t> last(nodes, UINT32_MAX);
  for (const Change& c : changes) {
    // Firings in flight at the horizon would change past it; the dump ends
    // at the horizon, so their completion is clipped away.
    if (c.time > result.horizon) continue;
    if (last[c.node] == c.value) continue;
    if (c.time != now) {
      os << '#' << c.time << '\n';
      now = c.time;
    }
    os << 'b' << binary16(c.value) << ' ' << vcd_id(c.node) << '\n';
    last[c.node] = c.value;
  }
  os << '#' << result.horizon << '\n';
}

std::string to_vcd(const platform::System& sys, const SimResult& result,
                   const std::string& timescale) {
  std::ostringstream os;
  write_vcd(os, sys, result, timescale);
  return os.str();
}

std::string render_gantt(const platform::System& sys, const SimResult& result,
                         sdf::Time from, sdf::Time to, std::size_t width) {
  if (to <= from || width == 0) {
    throw std::invalid_argument("render_gantt: empty window");
  }
  const std::size_t nodes = sys.platform().node_count();
  const double scale = static_cast<double>(to - from) / static_cast<double>(width);

  // cells[node][col]: 0 = idle, code = single occupant, UINT32_MAX = mixed.
  std::vector<std::vector<std::uint32_t>> cells(nodes,
                                                std::vector<std::uint32_t>(width, 0));
  for (const TraceEvent& e : result.trace) {
    if (e.end <= from || e.start >= to) continue;
    const auto lo = static_cast<std::size_t>(
        std::max<double>(0.0, static_cast<double>(e.start - from) / scale));
    const auto hi = std::min<std::size_t>(
        width - 1,
        static_cast<std::size_t>(static_cast<double>(e.end - 1 - from) / scale));
    const std::uint32_t code = actor_code(sys, e.app, e.actor);
    for (std::size_t col = lo; col <= hi && col < width; ++col) {
      auto& cell = cells[e.node][col];
      if (cell == 0) cell = code;
      else if (cell != code) cell = UINT32_MAX;
    }
  }

  auto glyph = [&](std::uint32_t code) -> char {
    if (code == 0) return '.';
    if (code == UINT32_MAX) return '*';
    // Decode app / actor from the code.
    std::uint32_t rest = code - 1;
    std::uint32_t app = 0;
    while (app < sys.app_count() && rest >= sys.app(app).actor_count()) {
      rest -= static_cast<std::uint32_t>(sys.app(app).actor_count());
      ++app;
    }
    // Letter per application, case alternating by actor parity for a hint
    // of structure: A/a, B/b, ...
    const char base = static_cast<char>('A' + app % 26);
    return (rest % 2 == 0) ? base : static_cast<char>(base + ('a' - 'A'));
  };

  std::ostringstream os;
  os << "time " << from << " .. " << to << " (" << scale << " units/col)\n";
  for (std::size_t n = 0; n < nodes; ++n) {
    const std::string& name =
        sys.platform().node(static_cast<platform::NodeId>(n)).name;
    os << name;
    os << std::string(name.size() < 8 ? 8 - name.size() : 1, ' ');
    os << '|';
    for (std::size_t col = 0; col < width; ++col) os << glyph(cells[n][col]);
    os << "|\n";
  }
  return os.str();
}

}  // namespace procon::sim
