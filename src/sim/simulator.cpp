// Thin one-shot shims over sim::SimEngine, which owns the actual
// event-driven run loop and all cached structure (see sim/sim_engine.h).
#include "sim/simulator.h"

#include <stdexcept>

#include "sim/sim_engine.h"

namespace procon::sim {

SimResult simulate(const platform::System& sys, const SimOptions& opts) {
  if (opts.horizon <= 0) throw std::invalid_argument("simulate: horizon must be > 0");
  SimEngine engine(sys);
  return engine.run(opts);
}

SimResult simulate(const platform::System& sys, const platform::UseCase& uc,
                   const SimOptions& opts) {
  if (opts.horizon <= 0) throw std::invalid_argument("simulate: horizon must be > 0");
  // Build over the restriction view: only the selected applications are
  // validated and flattened — restrict_to semantics (including duplicate
  // entries, which become independent flat applications), restrict_to cost
  // minus the deep copy.
  SimEngine engine(platform::SystemView(sys, uc));
  return engine.run(opts);
}

}  // namespace procon::sim
