#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sdf/repetition.h"
#include "util/rng.h"

namespace procon::sim {
namespace {

using platform::NodeId;
using sdf::ActorId;
using sdf::AppId;
using sdf::Time;

enum class ActorState : std::uint8_t { Idle, Queued, Running };

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;  // creation order; makes simultaneous events stable
  std::uint32_t actor = 0;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Flattened view of the system plus all mutable execution state.
class Engine {
 public:
  Engine(const platform::System& sys, const SimOptions& opts)
      : sys_(sys), opts_(opts), sample_rng_(opts.sample_seed) {
    build();
  }

  SimResult run() {
    // Seed: everything that can fire at t = 0 requests its node.
    for (std::uint32_t a = 0; a < actor_count_; ++a) try_enqueue(a, 0);
    for (NodeId n = 0; n < node_count_; ++n) try_dispatch(n, 0);

    const std::uint64_t max_events =
        opts_.max_events ? opts_.max_events : 200'000'000ULL;
    std::uint64_t processed = 0;
    while (!events_.empty() && processed < max_events) {
      const Event ev = events_.top();
      if (ev.time > opts_.horizon) break;
      events_.pop();
      ++processed;
      on_completion(ev.actor, ev.time);
    }
    return finalise(processed);
  }

 private:
  // --- static tables -------------------------------------------------------
  const platform::System& sys_;
  const SimOptions opts_;

  std::uint32_t actor_count_ = 0;
  std::uint32_t node_count_ = 0;
  std::vector<std::uint32_t> app_actor_base_;    // app -> first global actor
  std::vector<AppId> app_of_;                    // global actor -> app
  std::vector<ActorId> local_of_;                // global actor -> local id
  std::vector<Time> exec_;                       // global actor -> tau
  std::vector<NodeId> node_of_;                  // global actor -> node
  std::vector<std::uint64_t> reps_;              // global actor -> q(a)

  // Channels, flattened: tokens plus, per actor, in/out channel index lists.
  std::vector<std::uint64_t> tokens_;
  std::vector<std::uint32_t> chan_cons_;   // consumption rate
  std::vector<std::uint32_t> chan_prod_;   // production rate
  std::vector<std::uint32_t> chan_dst_;    // consumer global actor
  std::vector<std::vector<std::uint32_t>> in_of_;   // actor -> channel ids
  std::vector<std::vector<std::uint32_t>> out_of_;  // actor -> channel ids

  std::vector<std::vector<std::uint32_t>> wheel_;   // node -> mapped actors
  std::vector<Time> slot_len_;                      // global actor -> TDMA slot
  std::vector<const sdf::ExecTimeDistribution*> dist_;  // nullptr = fixed time
  util::Rng sample_rng_;

  // --- mutable state -------------------------------------------------------
  std::vector<ActorState> state_;
  std::vector<Time> ready_time_;
  std::vector<std::deque<std::uint32_t>> fcfs_queue_;  // node -> waiting actors
  std::vector<std::size_t> rr_next_;                   // node -> wheel cursor
  std::vector<bool> node_busy_;
  std::vector<Time> node_busy_time_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;

  // Metrics.
  std::vector<std::uint64_t> completions_;            // per global actor
  std::vector<std::uint64_t> app_iterations_;         // per app
  std::vector<std::vector<Time>> iteration_times_;    // per app
  std::vector<ActorStats> actor_stats_;               // per global actor
  std::vector<TraceEvent> trace_;

  void build() {
    sys_.validate();
    const auto apps = sys_.apps();
    node_count_ = static_cast<std::uint32_t>(sys_.platform().node_count());

    std::uint32_t chan_base = 0;
    for (AppId i = 0; i < apps.size(); ++i) {
      const sdf::Graph& g = apps[i];
      app_actor_base_.push_back(actor_count_);
      const auto q = sdf::compute_repetition_vector(g);
      for (ActorId a = 0; a < g.actor_count(); ++a) {
        app_of_.push_back(i);
        local_of_.push_back(a);
        exec_.push_back(g.actor(a).exec_time);
        node_of_.push_back(sys_.mapping().node_of(i, a));
        reps_.push_back((*q)[a]);
        in_of_.emplace_back();
        out_of_.emplace_back();
        ++actor_count_;
      }
      for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
        const sdf::Channel& ch = g.channel(c);
        const std::uint32_t cid = chan_base + c;
        tokens_.push_back(ch.initial_tokens);
        chan_cons_.push_back(ch.cons_rate);
        chan_prod_.push_back(ch.prod_rate);
        chan_dst_.push_back(app_actor_base_[i] + ch.dst);
        in_of_[app_actor_base_[i] + ch.dst].push_back(cid);
        out_of_[app_actor_base_[i] + ch.src].push_back(cid);
      }
      chan_base += static_cast<std::uint32_t>(g.channel_count());
      app_iterations_.push_back(0);
      iteration_times_.emplace_back();
    }

    wheel_.resize(node_count_);
    for (std::uint32_t a = 0; a < actor_count_; ++a) {
      wheel_[node_of_[a]].push_back(a);
      slot_len_.push_back(opts_.tdma_slot > 0 ? opts_.tdma_slot
                                              : std::max<Time>(exec_[a], 1));
    }

    dist_.assign(actor_count_, nullptr);
    if (opts_.exec_models != nullptr) {
      if (opts_.exec_models->size() != apps.size()) {
        throw sdf::GraphError("simulate: execution-time model count mismatch");
      }
      for (std::uint32_t a = 0; a < actor_count_; ++a) {
        const auto& model = (*opts_.exec_models)[app_of_[a]];
        if (model.size() != apps[app_of_[a]].actor_count()) {
          throw sdf::GraphError("simulate: execution-time model size mismatch");
        }
        dist_[a] = &model[local_of_[a]];
      }
    }

    state_.assign(actor_count_, ActorState::Idle);
    ready_time_.assign(actor_count_, 0);
    fcfs_queue_.resize(node_count_);
    rr_next_.assign(node_count_, 0);
    node_busy_.assign(node_count_, false);
    node_busy_time_.assign(node_count_, 0);
    completions_.assign(actor_count_, 0);
    actor_stats_.assign(actor_count_, ActorStats{});
  }

  /// Service demand of the next firing: fixed, or drawn from the model.
  [[nodiscard]] Time draw_exec(std::uint32_t a) {
    return dist_[a] != nullptr ? dist_[a]->sample(sample_rng_) : exec_[a];
  }

  [[nodiscard]] bool inputs_available(std::uint32_t a) const {
    for (const std::uint32_t c : in_of_[a]) {
      if (tokens_[c] < chan_cons_[c]) return false;
    }
    return true;
  }

  void consume_inputs(std::uint32_t a) {
    for (const std::uint32_t c : in_of_[a]) tokens_[c] -= chan_cons_[c];
  }

  void schedule_completion(std::uint32_t a, Time t) {
    events_.push(Event{t, next_seq_++, a});
  }

  /// TDMA: earliest time actor `a` accumulates `demand` units of service
  /// using only its own slot on its node's wheel, starting no earlier
  /// than t. Returns {service_start, completion}.
  [[nodiscard]] std::pair<Time, Time> tdma_completion(std::uint32_t a, Time t,
                                                      Time demand) const {
    const auto& wheel = wheel_[node_of_[a]];
    Time wheel_period = 0;
    Time offset = 0;
    for (const std::uint32_t member : wheel) {
      if (member == a) offset = wheel_period;
      wheel_period += slot_len_[member];
    }
    const Time s = slot_len_[a];
    Time remaining = demand;
    // First wheel turn whose slot has not entirely passed.
    Time m = (t - offset) / wheel_period;
    if (t > m * wheel_period + offset + s) ++m;
    if (m < 0) m = 0;
    Time start = -1;
    Time now = t;
    while (remaining > 0) {
      const Time slot_begin = m * wheel_period + offset;
      const Time slot_end = slot_begin + s;
      const Time from = std::max(now, slot_begin);
      if (from < slot_end) {
        if (start < 0) start = from;
        const Time avail = slot_end - from;
        if (remaining <= avail) return {start, from + remaining};
        remaining -= avail;
        now = slot_end;
      }
      ++m;
    }
    return {start < 0 ? t : start, t};  // zero execution time: instant
  }

  void try_enqueue(std::uint32_t a, Time t) {
    if (state_[a] != ActorState::Idle || !inputs_available(a)) return;
    ready_time_[a] = t;
    if (opts_.arbitration == Arbitration::Tdma) {
      // TDMA is contention-free per construction: service time computable
      // in closed form, no queueing against other actors.
      consume_inputs(a);
      state_[a] = ActorState::Running;
      const Time demand = draw_exec(a);
      const auto [start, done] = tdma_completion(a, t, demand);
      if (opts_.collect_trace) {
        trace_.push_back(TraceEvent{start, done, app_of_[a], local_of_[a],
                                    node_of_[a]});
      }
      actor_stats_[a].total_waiting += start - t;
      actor_stats_[a].total_service += demand;
      // Busy accounting: exec units actually served, clipped at the horizon.
      node_busy_time_[node_of_[a]] +=
          std::min<Time>(demand, std::max<Time>(0, opts_.horizon - start));
      schedule_completion(a, done);
      return;
    }
    state_[a] = ActorState::Queued;
    if (opts_.arbitration == Arbitration::Fcfs) {
      fcfs_queue_[node_of_[a]].push_back(a);
    }
  }

  /// Picks the next actor to serve on `node`, or UINT32_MAX.
  [[nodiscard]] std::uint32_t pick_next(NodeId node) {
    if (opts_.arbitration == Arbitration::Fcfs) {
      auto& q = fcfs_queue_[node];
      if (q.empty()) return UINT32_MAX;
      const std::uint32_t a = q.front();
      q.pop_front();
      return a;
    }
    // Round-robin: scan the wheel from the cursor for a queued actor.
    const auto& wheel = wheel_[node];
    for (std::size_t k = 0; k < wheel.size(); ++k) {
      const std::size_t pos = (rr_next_[node] + k) % wheel.size();
      if (state_[wheel[pos]] == ActorState::Queued) {
        rr_next_[node] = (pos + 1) % wheel.size();
        return wheel[pos];
      }
    }
    return UINT32_MAX;
  }

  void try_dispatch(NodeId node, Time t) {
    if (opts_.arbitration == Arbitration::Tdma) return;  // nothing to do
    if (node_busy_[node]) return;
    const std::uint32_t a = pick_next(node);
    if (a == UINT32_MAX) return;
    consume_inputs(a);
    state_[a] = ActorState::Running;
    node_busy_[node] = true;
    const Time demand = draw_exec(a);
    if (opts_.collect_trace) {
      trace_.push_back(TraceEvent{t, t + demand, app_of_[a], local_of_[a], node});
    }
    actor_stats_[a].total_waiting += t - ready_time_[a];
    actor_stats_[a].total_service += demand;
    node_busy_time_[node] +=
        std::min(t + demand, opts_.horizon) - std::min(t, opts_.horizon);
    schedule_completion(a, t + demand);
  }

  void on_completion(std::uint32_t a, Time t) {
    // Produce outputs.
    for (const std::uint32_t c : out_of_[a]) tokens_[c] += chan_prod_[c];
    state_[a] = ActorState::Idle;
    ++completions_[a];
    ++actor_stats_[a].firings;
    update_iterations(app_of_[a], t);

    if (opts_.arbitration != Arbitration::Tdma) node_busy_[node_of_[a]] = false;

    // The finished actor may immediately be ready again, then every
    // consumer of the produced tokens.
    try_enqueue(a, t);
    for (const std::uint32_t c : out_of_[a]) try_enqueue(chan_dst_[c], t);

    // Serve the node this actor released, and the nodes of any consumers
    // that just became ready.
    try_dispatch(node_of_[a], t);
    for (const std::uint32_t c : out_of_[a]) try_dispatch(node_of_[chan_dst_[c]], t);
  }

  void update_iterations(AppId app, Time t) {
    const std::uint32_t base = app_actor_base_[app];
    const std::uint32_t end = app + 1 < app_actor_base_.size()
                                  ? app_actor_base_[app + 1]
                                  : actor_count_;
    std::uint64_t iters = ~0ULL;
    for (std::uint32_t a = base; a < end; ++a) {
      iters = std::min(iters, completions_[a] / reps_[a]);
    }
    while (app_iterations_[app] < iters) {
      ++app_iterations_[app];
      iteration_times_[app].push_back(t);
    }
  }

  SimResult finalise(std::uint64_t processed) {
    SimResult result;
    result.horizon = opts_.horizon;
    result.events_processed = processed;
    result.apps.resize(sys_.app_count());
    for (AppId i = 0; i < sys_.app_count(); ++i) {
      AppSimResult& app = result.apps[i];
      app.iteration_times = std::move(iteration_times_[i]);
      const std::uint32_t base = app_actor_base_[i];
      const std::uint32_t end =
          i + 1 < app_actor_base_.size() ? app_actor_base_[i + 1] : actor_count_;
      app.actors.assign(actor_stats_.begin() + base, actor_stats_.begin() + end);
      finalise_app_metrics(app, opts_.warmup_fraction, opts_.min_iterations);
    }
    result.trace = std::move(trace_);
    result.node_utilisation.resize(node_count_);
    for (NodeId n = 0; n < node_count_; ++n) {
      result.node_utilisation[n] =
          opts_.horizon > 0
              ? static_cast<double>(node_busy_time_[n]) / static_cast<double>(opts_.horizon)
              : 0.0;
    }
    return result;
  }
};

}  // namespace

SimResult simulate(const platform::System& sys, const SimOptions& opts) {
  if (opts.horizon <= 0) throw std::invalid_argument("simulate: horizon must be > 0");
  Engine engine(sys, opts);
  return engine.run();
}

SimResult simulate(const platform::System& sys, const platform::UseCase& uc,
                   const SimOptions& opts) {
  return simulate(sys.restrict_to(uc), opts);
}

}  // namespace procon::sim
