// Simulation metrics: per-application achieved period statistics and
// per-node utilisation.
//
// An application completes an iteration when every actor a has completed a
// multiple of q(a) firings (Definition 2/3). The achieved period is the
// steady-state average gap between successive iteration completions; the
// "simulated worst case" of Fig. 5 is the maximum such gap after warm-up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sdf/types.h"

namespace procon::sim {

/// Per-actor service statistics.
struct ActorStats {
  std::uint64_t firings = 0;
  sdf::Time total_waiting = 0;  ///< sum over firings of (service start - ready)
  sdf::Time total_service = 0;  ///< sum of execution times actually run

  [[nodiscard]] double mean_waiting() const noexcept {
    return firings ? static_cast<double>(total_waiting) / static_cast<double>(firings)
                   : 0.0;
  }
};

/// Per-application results.
struct AppSimResult {
  std::uint64_t iterations = 0;   ///< iterations completed within the horizon
  bool converged = false;         ///< enough post-warm-up iterations observed
  double average_period = 0.0;    ///< steady-state mean time per iteration
  double worst_period = 0.0;      ///< max post-warm-up iteration gap
  std::vector<ActorStats> actors;
  std::vector<sdf::Time> iteration_times;  ///< completion time of each iteration

  [[nodiscard]] double throughput() const noexcept {
    return average_period > 0.0 ? 1.0 / average_period : 0.0;
  }
};

/// One service interval of one actor firing on a node (collected when
/// SimOptions::collect_trace is set). Under TDMA the interval spans first
/// slot entry to completion (it includes foreign slots in between).
struct TraceEvent {
  sdf::Time start = 0;
  sdf::Time end = 0;
  std::uint32_t app = 0;
  std::uint32_t actor = 0;
  std::uint32_t node = 0;
};

/// Whole-run results.
struct SimResult {
  std::vector<AppSimResult> apps;
  std::vector<double> node_utilisation;  ///< busy fraction per node
  /// Busy fraction per interconnect link (empty when the platform has no
  /// topology). events_processed includes link-arbitration events.
  std::vector<double> link_utilisation;
  std::uint64_t events_processed = 0;
  sdf::Time horizon = 0;
  std::vector<TraceEvent> trace;  ///< empty unless SimOptions::collect_trace
};

/// Steady-state period statistics derived from iteration completion times —
/// the scalar core shared by the owning (AppSimResult) and view
/// (AppSimView) result paths, so both compute bit-identical numbers.
struct PeriodStats {
  std::uint64_t iterations = 0;  ///< iterations completed within the horizon
  bool converged = false;        ///< enough post-warm-up iterations observed
  double average_period = 0.0;   ///< steady-state mean time per iteration
  double worst_period = 0.0;     ///< max post-warm-up iteration gap
};

/// Computes average/worst periods from iteration completion times, skipping
/// the first `warmup_fraction` of iterations. Marks converged when at least
/// `min_iterations` remain after warm-up. Allocation-free.
[[nodiscard]] PeriodStats steady_state_metrics(
    std::span<const sdf::Time> iteration_times, double warmup_fraction,
    std::uint64_t min_iterations) noexcept;

/// Per-application results as views into engine-owned storage (the
/// allocation-free counterpart of AppSimResult). Spans are valid until the
/// owning SimEngine is reset, rerun, or destroyed.
struct AppSimView {
  std::uint64_t iterations = 0;   ///< iterations completed within the horizon
  bool converged = false;         ///< enough post-warm-up iterations observed
  double average_period = 0.0;    ///< steady-state mean time per iteration
  double worst_period = 0.0;      ///< max post-warm-up iteration gap
  std::span<const ActorStats> actors;            ///< per-actor service stats
  std::span<const sdf::Time> iteration_times;    ///< iteration completion times

  /// 1 / average_period (0 when no steady state was reached).
  [[nodiscard]] double throughput() const noexcept {
    return average_period > 0.0 ? 1.0 / average_period : 0.0;
  }
  /// Deep copy into the owning result type.
  [[nodiscard]] AppSimResult materialise() const;
};

/// Whole-run results as views into engine-owned storage. Returned by
/// SimEngine::run_view; valid until the engine is reset, rerun, or
/// destroyed. materialise() produces the owning SimResult the value API
/// returns — bit-identical fields, deep-copied storage.
struct SimResultView {
  std::span<const AppSimView> apps;              ///< per active application
  std::span<const double> node_utilisation;      ///< busy fraction per node
  /// Busy fraction per interconnect link (empty without a topology).
  std::span<const double> link_utilisation;
  std::uint64_t events_processed = 0;            ///< events the run consumed
  sdf::Time horizon = 0;                         ///< simulated horizon
  std::span<const TraceEvent> trace;  ///< empty unless SimOptions::collect_trace

  /// Deep copy into the owning result type (what SimEngine::run returns).
  [[nodiscard]] SimResult materialise() const;
};

/// Computes average/worst periods from iteration completion times, skipping
/// the first `warmup_fraction` of iterations. Marks converged when at least
/// `min_iterations` remain after warm-up.
void finalise_app_metrics(AppSimResult& app, double warmup_fraction,
                          std::uint64_t min_iterations);

}  // namespace procon::sim
