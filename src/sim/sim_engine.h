// SimEngine: the discrete-event simulator as a constructed-once,
// resettable engine (the cached-structure treatment that
// analysis::ThroughputEngine gave the period analysis).
//
// Construction flattens the whole System once into static tables — flat
// actor/channel arrays with CSR in/out adjacency, per-node arbitration
// rings, per-app repetition counts — and validates it once. After that,
// repeated simulations only clear dynamic state:
//
//   SimEngine engine(sys);          // O(system): flatten + validate
//   engine.reset();                 // arm a full-system run
//   SimResult full = engine.run({});
//   engine.reset({0, 2});           // arm a use-case-restricted run
//   SimResult uc = engine.run({});  // == simulate(sys.restrict_to({0,2}))
//
// reset(uc) restricts zero-copy: it activates the selected applications via
// the flat-id remap tables (no graph or mapping copies, no revalidation)
// and rebuilds the active arbitration rings in use-case order, so event
// creation order — and therefore every tie-break — matches a fresh
// simulation of the materialised restriction exactly. Results are bitwise
// identical to sim::simulate on the equivalent (restricted) System; the
// free function is now a thin shim over this class.
//
// The event queue and per-node ready lists are preallocated and kept
// across resets (capacity survives, contents cleared), so a reset is
// O(actors + channels + nodes), never O(events).
//
// An engine is a mutable session object: not thread-safe. Sharded callers
// (api::Workbench sweeps) keep one engine per worker. Copying an engine
// clones its cached structure — that is how worker clones are made.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/system.h"
#include "platform/system_view.h"
#include "sdf/exec_time.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace procon::sim {

class SimEngine {
 public:
  /// Flattens and validates `sys` (throws sdf::GraphError on validate()
  /// failures). The system is copied into flat tables; the engine does not
  /// retain a reference. Arms a full-system run (no reset() needed before
  /// the first run()).
  explicit SimEngine(const platform::System& sys);

  /// Builds the engine over the applications a restriction view selects —
  /// only those are validated and flattened (O(restriction), like building
  /// from the materialised copy, without the copy). Duplicate view entries
  /// become independent flat applications, exactly as restrict_to would
  /// duplicate the graph. The engine's application ids are the *view's*
  /// ids 0..k-1; reset(uc) indexes that space. The view (and its parent)
  /// are not retained.
  explicit SimEngine(const platform::SystemView& view);

  /// Number of applications of the underlying system.
  [[nodiscard]] std::size_t app_count() const noexcept {
    return app_actor_base_.size() - 1;
  }
  /// Applications active in the currently armed/last run, in use-case order.
  [[nodiscard]] const platform::UseCase& active_use_case() const noexcept {
    return active_;
  }

  /// Arms a full-system run: every application active, all dynamic state
  /// cleared (tokens to initial marking, queues and metrics emptied).
  void reset();

  /// Arms a run restricted to `uc` (parent app ids, unique, in range —
  /// throws sdf::GraphError otherwise). Results are indexed in use-case
  /// order, exactly like simulate(sys.restrict_to(uc), opts).
  void reset(const platform::UseCase& uc);

  /// Runs until the horizon and returns the results. Consumes the armed
  /// state: a second run() without an intervening reset() throws
  /// sdf::GraphError (dynamic state is spent, rerunning it would not be a
  /// simulation from time zero). Throws std::invalid_argument for a
  /// non-positive horizon and sdf::GraphError for execution-time model
  /// mismatches (opts.exec_models entries pair with *active* applications,
  /// in use-case order).
  [[nodiscard]] SimResult run(const SimOptions& opts = {});

 private:
  enum class ActorState : std::uint8_t { Idle, Queued, Running };

  struct Event {
    sdf::Time time = 0;
    std::uint64_t seq = 0;  // creation order; makes simultaneous events stable
    std::uint32_t actor = 0;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void build(const platform::SystemView& view);
  void bind_options(const SimOptions& opts);

  [[nodiscard]] sdf::Time draw_exec(std::uint32_t a);
  [[nodiscard]] bool inputs_available(std::uint32_t a) const;
  void consume_inputs(std::uint32_t a);
  void schedule_completion(std::uint32_t a, sdf::Time t);
  [[nodiscard]] std::pair<sdf::Time, sdf::Time> tdma_completion(
      std::uint32_t a, sdf::Time t, sdf::Time demand) const;
  void try_enqueue(std::uint32_t a, sdf::Time t);
  [[nodiscard]] std::uint32_t pick_next(platform::NodeId node);
  void try_dispatch(platform::NodeId node, sdf::Time t);
  void on_completion(std::uint32_t a, sdf::Time t);
  void update_iterations(std::uint32_t active_app, sdf::Time t);
  [[nodiscard]] SimResult finalise(std::uint64_t processed);

  // --- static structure (built once per system) ----------------------------
  std::uint32_t actor_count_ = 0;  // flat actors over *all* applications
  std::uint32_t node_count_ = 0;
  std::vector<std::uint32_t> app_actor_base_;  // app -> first flat actor (size A+1)
  std::vector<sdf::AppId> app_of_;             // flat actor -> parent app
  std::vector<sdf::ActorId> local_of_;         // flat actor -> app-local id
  std::vector<sdf::Time> exec_;                // flat actor -> tau
  std::vector<platform::NodeId> node_of_;      // flat actor -> node
  std::vector<std::uint64_t> reps_;            // flat actor -> q(a)

  // Channels, flattened, with CSR in/out adjacency per actor.
  std::vector<std::uint64_t> init_tokens_;     // flat channel -> initial marking
  std::vector<std::uint32_t> chan_cons_;       // consumption rate
  std::vector<std::uint32_t> chan_prod_;       // production rate
  std::vector<std::uint32_t> chan_dst_;        // consumer flat actor
  std::vector<std::uint32_t> in_start_;        // actor -> offset (size actors+1)
  std::vector<std::uint32_t> in_list_;         // flat channel ids
  std::vector<std::uint32_t> out_start_;
  std::vector<std::uint32_t> out_list_;

  // --- per-reset state (active restriction) --------------------------------
  platform::UseCase active_;                   // active apps, use-case order
  std::vector<std::uint32_t> active_index_;    // parent app -> active slot or ~0
  std::vector<std::vector<std::uint32_t>> wheel_;  // node -> active actors (ring)
  bool armed_ = false;

  // --- per-run option bindings ---------------------------------------------
  SimOptions opts_;  // scalar fields only; models are bound through dist_
  std::vector<sdf::Time> slot_len_;            // flat actor -> TDMA slot
  std::vector<const sdf::ExecTimeDistribution*> dist_;  // nullptr = fixed time
  util::Rng sample_rng_{0};

  // --- dynamic state (cleared by reset, capacity kept) ---------------------
  std::vector<std::uint64_t> tokens_;
  std::vector<ActorState> state_;
  std::vector<sdf::Time> ready_time_;
  /// Per-node FCFS ready list: a vector + head cursor (pop never shrinks,
  /// reset rewinds), so steady-state operation does not allocate.
  std::vector<std::vector<std::uint32_t>> fcfs_queue_;
  std::vector<std::size_t> fcfs_head_;
  std::vector<std::size_t> rr_next_;           // node -> wheel cursor
  std::vector<std::uint8_t> node_busy_;
  std::vector<sdf::Time> node_busy_time_;
  std::vector<Event> events_;                  // binary min-heap (std::*_heap)
  std::uint64_t next_seq_ = 0;

  // Metrics (flat-actor arrays are full-size; per-app arrays are active-size).
  std::vector<std::uint64_t> completions_;
  std::vector<ActorStats> actor_stats_;
  std::vector<std::uint64_t> app_iterations_;        // per active app
  std::vector<std::vector<sdf::Time>> iteration_times_;  // per active app
  std::vector<TraceEvent> trace_;
};

/// Runs the applications selected by a zero-copy restriction view. Results
/// are indexed in view order, exactly like simulate(view.materialise()).
[[nodiscard]] SimResult simulate(const platform::SystemView& view,
                                 const SimOptions& opts = {});

}  // namespace procon::sim
