// SimEngine: the discrete-event simulator as a constructed-once,
// resettable engine (the cached-structure treatment that
// analysis::ThroughputEngine gave the period analysis).
//
// Construction flattens the whole System once into static tables — flat
// actor/channel arrays with CSR in/out adjacency, per-node arbitration
// rings, per-app repetition counts — and validates it once. After that,
// repeated simulations only clear dynamic state:
//
//   SimEngine engine(sys);          // O(system): flatten + validate
//   engine.reset();                 // arm a full-system run
//   SimResult full = engine.run({});
//   engine.reset({0, 2});           // arm a use-case-restricted run
//   SimResult uc = engine.run({});  // == simulate(sys.restrict_to({0,2}))
//
// reset(uc) restricts zero-copy: it activates the selected applications via
// the flat-id remap tables (no graph or mapping copies, no revalidation)
// and installs the active arbitration rings in use-case order, so event
// creation order — and therefore every tie-break — matches a fresh
// simulation of the materialised restriction exactly. Results are bitwise
// identical to sim::simulate on the equivalent (restricted) System; the
// free function is now a thin shim over this class.
//
// Steady-state serving contract: every per-use-case structure is cached on
// first sight. The arbitration rings of a use-case are built once (CSR,
// keyed by the use-case) and only *installed* on later resets, the event
// queue / ready lists / iteration-time and trace arenas are preallocated
// and keep their capacity across resets, and run_view() returns the
// results as views into engine-owned storage. The second and every later
// reset(uc) + run_view() of a previously-seen use-case therefore performs
// ZERO heap allocations (tests/test_steady_state_alloc.cpp asserts this
// with an instrumented allocator; bench_steady_state tracks it per PR).
// The value-returning run() stays as a deep-copying shim.
//
// The ring cache is bounded: a capacity set at construction (default
// generous) caps the number of distinct use-cases whose rings stay
// resident, with least-recently-reset eviction beyond it — a long-running
// server sweeping unbounded distinct use-cases no longer grows without
// bound. Eviction is correctness-neutral: resetting to an evicted
// use-case rebuilds its rings bit-identically (the build is a pure
// function of structure and use-case); only the zero-allocation guarantee
// narrows to working sets that fit the capacity.
//
// Interconnect: when the platform carries a topology (platform::Topology),
// every channel whose producer and consumer sit on different nodes is
// routed over its deterministic link sequence at build time. A producer
// firing then emits a *message* instead of depositing tokens instantly;
// the message queues FCFS at each link in turn (per-link vector + head
// cursor rings, pooled message arena), occupies each link for the
// precomputed per-hop service time, and deposits the tokens at the
// consumer when the last hop completes. Link events ride the same
// preallocated heap, tagged in the high bit of Event::actor, and count
// toward events_processed; per-link busy fractions are reported as
// SimResultView::link_utilisation. Links arbitrate FCFS under every
// arbitration mode (node arbitration stays as configured). With no
// topology attached no message is ever created and runs are bitwise
// identical to the pre-interconnect engine.
//
// An engine is a mutable session object: not thread-safe. Sharded callers
// (api::Workbench sweeps) keep one engine per worker. Copying an engine
// clones its cached structure — that is how worker clones are made.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "platform/system.h"
#include "platform/system_view.h"
#include "sdf/exec_time.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace procon::sim {

/// \brief Resettable discrete-event simulation engine with cached structure.
///
/// Flattens a platform::System (or a restriction view of one) once into
/// flat CSR tables and serves repeated simulations through
/// reset()/reset(uc)/run()/run_view(). Results are bitwise identical to a
/// fresh sim::simulate of the materialised (restricted) system, for every
/// arbitration mode, seed and execution-time model.
///
/// Determinism: simultaneous events are processed in creation order and all
/// arbitration tie-breaks follow use-case order, so a run is a pure
/// function of (structure, active use-case, options) — never of engine
/// history.
///
/// Thread-safety: a SimEngine is a mutable session object; concurrent calls
/// on one engine are not allowed. Sharded callers clone one engine per
/// worker (copying clones the cached structure and ring cache).
class SimEngine {
 public:
  /// \brief Default bound on resident per-use-case ring sets — generous
  /// enough that fixed sweep lists never evict, small enough that an
  /// unbounded stream of distinct use-cases stays bounded.
  static constexpr std::size_t kDefaultRingCacheCapacity = 256;

  /// \brief Flattens and validates `sys`.
  ///
  /// Throws sdf::GraphError on validate() failures. The system is copied
  /// into flat tables; the engine does not retain a reference. Arms a
  /// full-system run (no reset() needed before the first run()).
  /// \param sys the applications + platform + mapping to simulate
  /// \param ring_cache_capacity maximum resident per-use-case ring sets
  ///        (least-recently-reset eviction beyond it; clamped to >= 1)
  explicit SimEngine(const platform::System& sys,
                     std::size_t ring_cache_capacity = kDefaultRingCacheCapacity);

  /// \brief Builds the engine over the applications a restriction view
  /// selects.
  ///
  /// Only the selected applications are validated and flattened
  /// (O(restriction), like building from the materialised copy, without the
  /// copy). Duplicate view entries become independent flat applications,
  /// exactly as restrict_to would duplicate the graph. The engine's
  /// application ids are the *view's* ids 0..k-1; reset(uc) indexes that
  /// space. The view (and its parent) are not retained.
  /// \param view zero-copy restriction selecting the applications to flatten
  /// \param ring_cache_capacity maximum resident per-use-case ring sets
  ///        (least-recently-reset eviction beyond it; clamped to >= 1)
  explicit SimEngine(const platform::SystemView& view,
                     std::size_t ring_cache_capacity = kDefaultRingCacheCapacity);

  /// \brief Number of applications of the underlying system.
  /// \return the flattened application count (view ids 0..app_count()-1)
  [[nodiscard]] std::size_t app_count() const noexcept {
    return app_actor_base_.size() - 1;
  }

  /// \brief Applications active in the currently armed/last run.
  /// \return the active use-case, in use-case order
  [[nodiscard]] const platform::UseCase& active_use_case() const noexcept {
    return active_;
  }

  /// \brief Number of distinct use-cases whose arbitration rings are cached.
  ///
  /// Grows by one the first time a use-case is reset to (including the
  /// full-system use-case) up to ring_cache_capacity(); beyond that, the
  /// least-recently-reset set is evicted first. A repeated sweep over a
  /// fixed use-case list that fits the capacity stops growing it after the
  /// first pass.
  /// \return cached ring-set count (<= ring_cache_capacity())
  [[nodiscard]] std::size_t ring_cache_size() const noexcept {
    return ring_index_.size();
  }

  /// \brief Maximum resident ring sets before least-recently-reset eviction.
  /// \return the construction-time capacity (>= 1)
  [[nodiscard]] std::size_t ring_cache_capacity() const noexcept {
    return ring_capacity_;
  }

  /// \brief Arms a full-system run: every application active, all dynamic
  /// state cleared (tokens to initial marking, queues and metrics emptied).
  void reset();

  /// \brief Arms a run restricted to `uc`.
  ///
  /// Results are indexed in use-case order, exactly like
  /// simulate(sys.restrict_to(uc), opts). The use-case's arbitration rings
  /// are built and cached on first sight; later resets to the same use-case
  /// only install the cached rings and clear dynamic state — zero heap
  /// allocations once the use-case has been seen.
  /// \param uc engine app ids, unique and in range — throws sdf::GraphError
  ///        otherwise
  void reset(const platform::UseCase& uc);

  /// \brief Runs until the horizon and returns an owning deep copy of the
  /// results.
  ///
  /// Compatibility shim over run_view(): identical values, plus one deep
  /// copy of the per-app metrics, iteration times and trace into a
  /// standalone SimResult. Steady-state callers that can tolerate
  /// engine-owned storage should prefer run_view().
  ///
  /// Consumes the armed state: a second run without an intervening reset()
  /// throws sdf::GraphError (dynamic state is spent, rerunning it would not
  /// be a simulation from time zero).
  /// \param opts horizon, arbitration, execution-time models, trace flag.
  ///        Throws std::invalid_argument for a non-positive horizon and
  ///        sdf::GraphError for execution-time model mismatches
  ///        (opts.exec_models entries pair with *active* applications, in
  ///        use-case order).
  /// \return owning per-application results, in use-case order
  [[nodiscard]] SimResult run(const SimOptions& opts = {});

  /// \brief Runs until the horizon and returns views into engine-owned
  /// storage — the allocation-free steady-state serving path.
  ///
  /// Same contract as run() (armed-state consumption, option validation,
  /// bitwise-identical numbers), but the returned SimResultView only
  /// borrows the engine's preallocated result arenas: per-actor stats,
  /// iteration times, trace and node utilisation are spans. The view is
  /// valid until the next reset()/run_view() call or engine destruction;
  /// call SimResultView::materialise() to keep a copy.
  /// \param opts same options as run()
  /// \return per-application result views, in use-case order
  [[nodiscard]] SimResultView run_view(const SimOptions& opts = {});

 private:
  enum class ActorState : std::uint8_t { Idle, Queued, Running };

  struct Event {
    sdf::Time time = 0;
    std::uint64_t seq = 0;  // creation order; makes simultaneous events stable
    std::uint32_t actor = 0;

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Arbitration rings of one use-case in CSR form: ring of node n is
  /// flat[start[n] .. start[n+1]), members in use-case order then local id
  /// — the exact push order a fresh restricted build would produce.
  struct RingSet {
    std::vector<std::uint32_t> start;  // node -> offset (size nodes+1)
    std::vector<std::uint32_t> flat;   // active flat actor ids
    platform::UseCase key;             // owning use-case (for LRU eviction)
    std::uint64_t last_used = 0;       // reset stamp (LRU order)
  };

  /// One inter-node transfer in flight on the interconnect: the producing
  /// channel and the hop it currently occupies. Pooled with a free list so
  /// warm runs reuse capacity (zero-alloc steady state).
  struct Msg {
    std::uint32_t chan = 0;
    std::uint32_t hop = 0;
  };

  void build(const platform::SystemView& view);
  void bind_options(const SimOptions& opts);
  /// Installs (building + caching on first sight) the rings of `uc`.
  void install_rings(const platform::UseCase& uc);
  [[nodiscard]] std::span<const std::uint32_t> ring(platform::NodeId node) const {
    const RingSet& rs = ring_store_[rings_idx_];
    return {rs.flat.data() + rs.start[node], rs.start[node + 1] - rs.start[node]};
  }

  [[nodiscard]] sdf::Time draw_exec(std::uint32_t a);
  [[nodiscard]] bool inputs_available(std::uint32_t a) const;
  void consume_inputs(std::uint32_t a);
  void schedule_completion(std::uint32_t a, sdf::Time t);
  [[nodiscard]] std::pair<sdf::Time, sdf::Time> tdma_completion(
      std::uint32_t a, sdf::Time t, sdf::Time demand) const;
  void try_enqueue(std::uint32_t a, sdf::Time t);
  [[nodiscard]] std::uint32_t pick_next(platform::NodeId node);
  void try_dispatch(platform::NodeId node, sdf::Time t);
  void on_completion(std::uint32_t a, sdf::Time t);
  void send_message(std::uint32_t chan, sdf::Time t);
  void try_dispatch_link(platform::LinkId link, sdf::Time t);
  void on_link_completion(std::uint32_t msg, sdf::Time t);
  void update_iterations(std::uint32_t active_app, sdf::Time t);
  [[nodiscard]] SimResultView finalise_view(std::uint64_t processed);

  // --- static structure (built once per system) ----------------------------
  std::uint32_t actor_count_ = 0;  // flat actors over *all* applications
  std::uint32_t node_count_ = 0;
  std::vector<std::uint32_t> app_actor_base_;  // app -> first flat actor (size A+1)
  std::vector<sdf::AppId> app_of_;             // flat actor -> parent app
  std::vector<sdf::ActorId> local_of_;         // flat actor -> app-local id
  std::vector<sdf::Time> exec_;                // flat actor -> tau
  std::vector<platform::NodeId> node_of_;      // flat actor -> node
  std::vector<std::uint64_t> reps_;            // flat actor -> q(a)
  platform::UseCase full_uc_;                  // 0..A-1, built once for reset()

  // Channels, flattened, with CSR in/out adjacency per actor.
  std::vector<std::uint64_t> init_tokens_;     // flat channel -> initial marking
  std::vector<std::uint32_t> chan_cons_;       // consumption rate
  std::vector<std::uint32_t> chan_prod_;       // production rate
  std::vector<std::uint32_t> chan_dst_;        // consumer flat actor
  std::vector<std::uint32_t> in_start_;        // actor -> offset (size actors+1)
  std::vector<std::uint32_t> in_list_;         // flat channel ids
  std::vector<std::uint32_t> out_start_;
  std::vector<std::uint32_t> out_list_;

  // Interconnect routes, baked at build time from the platform's topology:
  // channel c crosses links route_links_[route_start_[c] .. route_start_[c+1])
  // in order, occupying hop k for route_service_[k] time units (the transfer
  // of chan_prod_[c] tokens). Channels with an empty range (same node, or no
  // topology) deposit tokens instantly — the legacy model, bit-identical.
  std::uint32_t link_count_ = 0;
  std::vector<std::uint32_t> route_start_;     // flat channel -> offset (size C+1)
  std::vector<platform::LinkId> route_links_;
  std::vector<sdf::Time> route_service_;

  // --- ring cache (one RingSet per recently-seen use-case) -----------------
  // Entries live in a deque (stable under growth) and are addressed by
  // index, so the engine stays default-copyable: worker clones copy the
  // cache and their index remains valid. Bounded by ring_capacity_ with
  // least-recently-reset eviction; evicted slots go on the free list and
  // are rebuilt in place (their vectors keep capacity), never erased from
  // the deque.
  std::deque<RingSet> ring_store_;
  std::map<platform::UseCase, std::size_t> ring_index_;
  std::vector<std::size_t> ring_free_;         // evicted ring_store_ slots
  std::size_t ring_capacity_ = kDefaultRingCacheCapacity;
  std::uint64_t ring_clock_ = 0;               // stamps installs (LRU order)
  std::size_t rings_idx_ = 0;                  // active entry in ring_store_

  // --- per-reset state (active restriction) --------------------------------
  platform::UseCase active_;                   // active apps, use-case order
  std::vector<std::uint32_t> active_index_;    // parent app -> active slot or ~0
  bool armed_ = false;

  // --- per-run option bindings ---------------------------------------------
  SimOptions opts_;  // scalar fields only; models are bound through dist_
  std::vector<sdf::Time> slot_len_;            // flat actor -> TDMA slot
  std::vector<const sdf::ExecTimeDistribution*> dist_;  // nullptr = fixed time
  util::Rng sample_rng_{0};

  // --- dynamic state (cleared by reset, capacity kept) ---------------------
  std::vector<std::uint64_t> tokens_;
  std::vector<ActorState> state_;
  std::vector<sdf::Time> ready_time_;
  /// Per-node FCFS ready list: a vector + head cursor (pop never shrinks,
  /// reset rewinds), so steady-state operation does not allocate.
  std::vector<std::vector<std::uint32_t>> fcfs_queue_;
  std::vector<std::size_t> fcfs_head_;
  std::vector<std::size_t> rr_next_;           // node -> ring cursor
  std::vector<std::uint8_t> node_busy_;
  std::vector<sdf::Time> node_busy_time_;
  std::vector<Event> events_;                  // binary min-heap (std::*_heap)
  std::uint64_t next_seq_ = 0;

  // Interconnect dynamic state: per-link FCFS queues of in-flight messages
  // (vector + head cursor, like the node ready lists) and a pooled message
  // arena with a free list. Links arbitrate FCFS under every arbitration
  // mode; their events ride the one preallocated heap, tagged by the high
  // bit of Event::actor.
  std::vector<Msg> msg_pool_;
  std::vector<std::uint32_t> msg_free_;
  std::vector<std::vector<std::uint32_t>> link_queue_;
  std::vector<std::size_t> link_head_;
  std::vector<std::uint8_t> link_busy_;
  std::vector<sdf::Time> link_busy_time_;

  // Metrics arenas (flat-actor arrays are full-size; per-app arrays use the
  // first active-count slots and never shrink, so capacity survives resets).
  std::vector<std::uint64_t> completions_;
  std::vector<ActorStats> actor_stats_;
  std::vector<std::uint64_t> app_iterations_;        // per active app
  std::vector<std::vector<sdf::Time>> iteration_times_;  // per active app
  std::vector<TraceEvent> trace_;

  // Result-view arenas (reused per run; run_view returns spans over these).
  std::vector<AppSimView> view_apps_;
  std::vector<double> node_util_;
  std::vector<double> link_util_;
};

/// \brief Runs the applications selected by a zero-copy restriction view.
///
/// One-shot convenience: builds a SimEngine over the view per call. Results
/// are indexed in view order, exactly like simulate(view.materialise()).
/// \param view restriction selecting the applications to run
/// \param opts simulation options (see SimOptions)
/// \return owning per-application results, in view order
[[nodiscard]] SimResult simulate(const platform::SystemView& view,
                                 const SimOptions& opts = {});

}  // namespace procon::sim
