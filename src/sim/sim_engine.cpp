#include "sim/sim_engine.h"

#include <algorithm>
#include <stdexcept>

#include "sdf/repetition.h"
#include "util/contracts.h"

namespace procon::sim {

using platform::NodeId;
using sdf::ActorId;
using sdf::AppId;
using sdf::Time;

namespace {
constexpr std::uint32_t kNoActor = UINT32_MAX;
constexpr std::uint32_t kInactive = UINT32_MAX;
// Heap events with this bit set in Event::actor are link completions; the
// low bits index msg_pool_. Flat actor counts stay far below 2^31.
constexpr std::uint32_t kLinkFlag = 0x80000000u;
}  // namespace

SimEngine::SimEngine(const platform::System& sys, std::size_t ring_cache_capacity)
    : ring_capacity_(std::max<std::size_t>(ring_cache_capacity, 1)) {
  sys.validate();
  build(platform::SystemView(sys));
  reset();
}

SimEngine::SimEngine(const platform::SystemView& view, std::size_t ring_cache_capacity)
    : ring_capacity_(std::max<std::size_t>(ring_cache_capacity, 1)) {
  view.validate();
  build(view);
  reset();
}

void SimEngine::build(const platform::SystemView& view) {
  node_count_ = static_cast<std::uint32_t>(view.platform().node_count());

  // Flatten actors and channels over every selected application; adjacency
  // is gathered in per-actor buckets first, then packed into CSR arrays.
  std::vector<std::vector<std::uint32_t>> in_of;
  std::vector<std::vector<std::uint32_t>> out_of;
  std::vector<std::uint32_t> chan_src;  // flat channel -> producer flat actor
  std::uint32_t chan_base = 0;
  for (AppId i = 0; i < view.app_count(); ++i) {
    const sdf::Graph& g = view.app(i);
    app_actor_base_.push_back(actor_count_);
    const auto q = sdf::compute_repetition_vector(g);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
      app_of_.push_back(i);
      local_of_.push_back(a);
      exec_.push_back(g.actor(a).exec_time);
      node_of_.push_back(view.node_of(i, a));
      reps_.push_back((*q)[a]);
      in_of.emplace_back();
      out_of.emplace_back();
      ++actor_count_;
    }
    for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
      const sdf::Channel& ch = g.channel(c);
      const std::uint32_t cid = chan_base + c;
      init_tokens_.push_back(ch.initial_tokens);
      chan_cons_.push_back(ch.cons_rate);
      chan_prod_.push_back(ch.prod_rate);
      chan_dst_.push_back(app_actor_base_[i] + ch.dst);
      chan_src.push_back(app_actor_base_[i] + ch.src);
      in_of[app_actor_base_[i] + ch.dst].push_back(cid);
      out_of[app_actor_base_[i] + ch.src].push_back(cid);
    }
    chan_base += static_cast<std::uint32_t>(g.channel_count());
  }
  app_actor_base_.push_back(actor_count_);

  const auto pack = [this](const std::vector<std::vector<std::uint32_t>>& lists,
                           std::vector<std::uint32_t>& start,
                           std::vector<std::uint32_t>& flat) {
    start.assign(actor_count_ + 1, 0);
    std::uint32_t total = 0;
    for (std::uint32_t a = 0; a < actor_count_; ++a) {
      start[a] = total;
      total += static_cast<std::uint32_t>(lists[a].size());
    }
    start[actor_count_] = total;
    flat.reserve(total);
    for (const auto& l : lists) flat.insert(flat.end(), l.begin(), l.end());
  };
  pack(in_of, in_start_, in_list_);
  pack(out_of, out_start_, out_list_);

  // Bake interconnect routes: a pure function of (topology, mapping), so a
  // rebuilt engine reproduces them bit-identically. Per-hop service times
  // are precomputed for the channel's production burst.
  const platform::Topology& topo = view.platform().topology();
  link_count_ = static_cast<std::uint32_t>(topo.link_count());
  const std::size_t chan_count = init_tokens_.size();
  route_start_.assign(chan_count + 1, 0);
  for (std::size_t c = 0; c < chan_count; ++c) {
    route_start_[c] = static_cast<std::uint32_t>(route_links_.size());
    if (!topo.none() && node_of_[chan_src[c]] != node_of_[chan_dst_[c]]) {
      topo.route(node_of_[chan_src[c]], node_of_[chan_dst_[c]], route_links_);
    }
  }
  route_start_[chan_count] = static_cast<std::uint32_t>(route_links_.size());
  route_service_.reserve(route_links_.size());
  for (std::size_t c = 0; c < chan_count; ++c) {
    for (std::uint32_t k = route_start_[c]; k < route_start_[c + 1]; ++k) {
      route_service_.push_back(topo.service_time(route_links_[k], chan_prod_[c]));
    }
  }

  full_uc_.resize(app_count());
  for (AppId i = 0; i < full_uc_.size(); ++i) full_uc_[i] = i;

  // Preallocate everything sized by static structure so resets never grow.
  tokens_.resize(init_tokens_.size());
  state_.resize(actor_count_);
  ready_time_.resize(actor_count_);
  slot_len_.resize(actor_count_);
  dist_.resize(actor_count_);
  completions_.resize(actor_count_);
  actor_stats_.resize(actor_count_);
  active_index_.resize(view.app_count());
  app_iterations_.reserve(view.app_count());
  iteration_times_.resize(view.app_count());
  view_apps_.reserve(view.app_count());
  node_util_.resize(node_count_);
  fcfs_queue_.resize(node_count_);
  fcfs_head_.resize(node_count_);
  rr_next_.resize(node_count_);
  node_busy_.resize(node_count_);
  node_busy_time_.resize(node_count_);
  link_queue_.resize(link_count_);
  link_head_.resize(link_count_);
  link_busy_.resize(link_count_);
  link_busy_time_.resize(link_count_);
  link_util_.resize(link_count_);
  events_.reserve(actor_count_ + link_count_ + 16);
}

void SimEngine::install_rings(const platform::UseCase& uc) {
  const auto it = ring_index_.find(uc);
  if (it != ring_index_.end()) {
    rings_idx_ = it->second;  // previously seen: install, nothing to build
    ring_store_[rings_idx_].last_used = ++ring_clock_;
    return;
  }

  // Capacity bound: evict the least-recently-reset entry before building a
  // new one. The victim's slot goes on the free list and is rebuilt in
  // place (vectors keep their capacity); eviction is correctness-neutral
  // because the build below is a pure function of structure and use-case.
  // The currently-installed entry is never the victim — a cache of
  // capacity 1 simply replaces the previous entry on every new use-case.
  while (ring_index_.size() >= ring_capacity_) {
    std::size_t victim = SIZE_MAX;
    for (const auto& [key, idx] : ring_index_) {
      (void)key;
      if (idx == rings_idx_ && ring_index_.size() > 1) continue;
      if (victim == SIZE_MAX ||
          ring_store_[idx].last_used < ring_store_[victim].last_used) {
        victim = idx;
      }
    }
    if (victim == SIZE_MAX) break;
    ring_index_.erase(ring_store_[victim].key);
    ring_free_.push_back(victim);
  }

  // First sight of this use-case: build its rings in CSR form — members of
  // a node's ring in use-case order then local id, the exact push order a
  // fresh build of the materialised restriction would produce, so
  // round-robin scans and TDMA wheels tie-break identically.
  std::size_t slot;
  if (!ring_free_.empty()) {
    slot = ring_free_.back();
    ring_free_.pop_back();
  } else {
    slot = ring_store_.size();
    ring_store_.emplace_back();
  }
  RingSet& rs = ring_store_[slot];
  rs.start.assign(node_count_ + 1, 0);
  std::uint32_t total = 0;
  for (const AppId app : uc) {
    total += app_actor_base_[app + 1] - app_actor_base_[app];
  }
  rs.flat.resize(total);
  for (const AppId app : uc) {
    for (std::uint32_t a = app_actor_base_[app]; a < app_actor_base_[app + 1]; ++a) {
      ++rs.start[node_of_[a] + 1];
    }
  }
  for (NodeId n = 0; n < node_count_; ++n) rs.start[n + 1] += rs.start[n];
  std::vector<std::uint32_t> cursor(rs.start.begin(), rs.start.end() - 1);
  for (const AppId app : uc) {
    for (std::uint32_t a = app_actor_base_[app]; a < app_actor_base_[app + 1]; ++a) {
      rs.flat[cursor[node_of_[a]]++] = a;
    }
  }
  rs.key.assign(uc.begin(), uc.end());
  rs.last_used = ++ring_clock_;
  rings_idx_ = slot;
  ring_index_.emplace(uc, slot);
}

PROCON_WARM_PATH void SimEngine::reset() { reset(full_uc_); }

PROCON_WARM_PATH void SimEngine::reset(const platform::UseCase& uc) {
  PROCON_ASSERT_NO_ALLOC("SimEngine::reset");
  std::fill(active_index_.begin(), active_index_.end(), kInactive);
  for (std::uint32_t j = 0; j < uc.size(); ++j) {
    if (uc[j] >= app_count()) {
      throw sdf::GraphError("SimEngine::reset: use-case references unknown application");
    }
    if (active_index_[uc[j]] != kInactive) {
      throw sdf::GraphError("SimEngine::reset: duplicate application in use-case");
    }
    active_index_[uc[j]] = j;
  }
  active_ = uc;

  // Dynamic state back to time zero; capacities survive.
  std::copy(init_tokens_.begin(), init_tokens_.end(), tokens_.begin());
  std::fill(state_.begin(), state_.end(), ActorState::Idle);
  std::fill(ready_time_.begin(), ready_time_.end(), Time{0});
  std::fill(rr_next_.begin(), rr_next_.end(), std::size_t{0});
  std::fill(node_busy_.begin(), node_busy_.end(), std::uint8_t{0});
  std::fill(node_busy_time_.begin(), node_busy_time_.end(), Time{0});
  std::fill(completions_.begin(), completions_.end(), std::uint64_t{0});
  std::fill(actor_stats_.begin(), actor_stats_.end(), ActorStats{});
  for (auto& q : fcfs_queue_) q.clear();
  std::fill(fcfs_head_.begin(), fcfs_head_.end(), std::size_t{0});
  for (auto& q : link_queue_) q.clear();
  std::fill(link_head_.begin(), link_head_.end(), std::size_t{0});
  std::fill(link_busy_.begin(), link_busy_.end(), std::uint8_t{0});
  std::fill(link_busy_time_.begin(), link_busy_time_.end(), Time{0});
  msg_pool_.clear();
  msg_free_.clear();
  events_.clear();
  next_seq_ = 0;
  trace_.clear();
  app_iterations_.assign(active_.size(), 0);
  // The iteration-time arena keeps every per-slot buffer (and its capacity)
  // alive across resets; only the first active-count slots are used.
  for (std::uint32_t j = 0; j < active_.size(); ++j) iteration_times_[j].clear();

  // Arbitration rings: cached per use-case, built on first sight only.
  install_rings(active_);
  armed_ = true;
}

void SimEngine::bind_options(const SimOptions& opts) {
  std::fill(dist_.begin(), dist_.end(), nullptr);
  if (!opts.exec_models.empty()) {
    if (opts.exec_models.size() != active_.size()) {
      throw sdf::GraphError("simulate: execution-time model count mismatch");
    }
    for (std::uint32_t j = 0; j < active_.size(); ++j) {
      const sdf::ExecTimeModel& model = opts.exec_models[j];
      const AppId app = active_[j];
      const std::uint32_t base = app_actor_base_[app];
      if (model.size() != app_actor_base_[app + 1] - base) {
        throw sdf::GraphError("simulate: execution-time model size mismatch");
      }
      for (std::uint32_t a = base; a < app_actor_base_[app + 1]; ++a) {
        dist_[a] = &model[a - base];
      }
    }
  }
  for (const AppId app : active_) {
    for (std::uint32_t a = app_actor_base_[app]; a < app_actor_base_[app + 1]; ++a) {
      slot_len_[a] = opts.tdma_slot > 0 ? opts.tdma_slot
                                        : std::max<Time>(exec_[a], 1);
    }
  }
  sample_rng_ = util::Rng(opts.sample_seed);
}

SimResult SimEngine::run(const SimOptions& opts) {
  // Deep-copying shim: identical numbers, owning storage.
  return run_view(opts).materialise();
}

PROCON_WARM_PATH SimResultView SimEngine::run_view(const SimOptions& opts) {
  PROCON_ASSERT_NO_ALLOC("SimEngine::run_view");
  if (opts.horizon <= 0) {
    throw std::invalid_argument("simulate: horizon must be > 0");
  }
  if (!armed_) {
    throw sdf::GraphError("SimEngine::run: reset() required between runs");
  }
  // Copy only the scalar option fields; the stochastic models are bound by
  // pointer (dist_) from the caller's options, which outlive this
  // synchronous run — no per-run deep copy of the model tables.
  opts_.horizon = opts.horizon;
  opts_.arbitration = opts.arbitration;
  opts_.tdma_slot = opts.tdma_slot;
  opts_.warmup_fraction = opts.warmup_fraction;
  opts_.min_iterations = opts.min_iterations;
  opts_.max_events = opts.max_events;
  opts_.sample_seed = opts.sample_seed;
  opts_.collect_trace = opts.collect_trace;
  bind_options(opts);
  armed_ = false;  // dynamic state is about to be spent

  // Seed: everything that can fire at t = 0 requests its node, in the same
  // order a fresh restricted build would (use-case order, then local id).
  for (const AppId app : active_) {
    for (std::uint32_t a = app_actor_base_[app]; a < app_actor_base_[app + 1]; ++a) {
      try_enqueue(a, 0);
    }
  }
  for (NodeId n = 0; n < node_count_; ++n) try_dispatch(n, 0);

  const std::uint64_t max_events =
      opts_.max_events ? opts_.max_events : 200'000'000ULL;
  std::uint64_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    const Event ev = events_.front();
    if (ev.time > opts_.horizon) break;
    std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
    events_.pop_back();
    ++processed;
    if (ev.actor & kLinkFlag) {
      on_link_completion(ev.actor & ~kLinkFlag, ev.time);
    } else {
      on_completion(ev.actor, ev.time);
    }
  }
  return finalise_view(processed);
}

Time SimEngine::draw_exec(std::uint32_t a) {
  return dist_[a] != nullptr ? dist_[a]->sample(sample_rng_) : exec_[a];
}

bool SimEngine::inputs_available(std::uint32_t a) const {
  for (std::uint32_t k = in_start_[a]; k < in_start_[a + 1]; ++k) {
    const std::uint32_t c = in_list_[k];
    if (tokens_[c] < chan_cons_[c]) return false;
  }
  return true;
}

void SimEngine::consume_inputs(std::uint32_t a) {
  for (std::uint32_t k = in_start_[a]; k < in_start_[a + 1]; ++k) {
    const std::uint32_t c = in_list_[k];
    tokens_[c] -= chan_cons_[c];
  }
}

void SimEngine::schedule_completion(std::uint32_t a, Time t) {
  events_.push_back(Event{t, next_seq_++, a});
  std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

std::pair<Time, Time> SimEngine::tdma_completion(std::uint32_t a, Time t,
                                                 Time demand) const {
  const std::span<const std::uint32_t> wheel = ring(node_of_[a]);
  Time wheel_period = 0;
  Time offset = 0;
  for (const std::uint32_t member : wheel) {
    if (member == a) offset = wheel_period;
    wheel_period += slot_len_[member];
  }
  const Time s = slot_len_[a];
  Time remaining = demand;
  // First wheel turn whose slot has not entirely passed.
  Time m = (t - offset) / wheel_period;
  if (t > m * wheel_period + offset + s) ++m;
  if (m < 0) m = 0;
  Time start = -1;
  Time now = t;
  while (remaining > 0) {
    const Time slot_begin = m * wheel_period + offset;
    const Time slot_end = slot_begin + s;
    const Time from = std::max(now, slot_begin);
    if (from < slot_end) {
      if (start < 0) start = from;
      const Time avail = slot_end - from;
      if (remaining <= avail) return {start, from + remaining};
      remaining -= avail;
      now = slot_end;
    }
    ++m;
  }
  return {start < 0 ? t : start, t};  // zero execution time: instant
}

void SimEngine::try_enqueue(std::uint32_t a, Time t) {
  if (state_[a] != ActorState::Idle || !inputs_available(a)) return;
  ready_time_[a] = t;
  if (opts_.arbitration == Arbitration::Tdma) {
    // TDMA is contention-free per construction: service time computable
    // in closed form, no queueing against other actors.
    consume_inputs(a);
    state_[a] = ActorState::Running;
    const Time demand = draw_exec(a);
    const auto [start, done] = tdma_completion(a, t, demand);
    if (opts_.collect_trace) {
      trace_.push_back(TraceEvent{start, done, active_index_[app_of_[a]],
                                  local_of_[a], node_of_[a]});
    }
    actor_stats_[a].total_waiting += start - t;
    actor_stats_[a].total_service += demand;
    // Busy accounting: exec units actually served, clipped at the horizon.
    node_busy_time_[node_of_[a]] +=
        std::min<Time>(demand, std::max<Time>(0, opts_.horizon - start));
    schedule_completion(a, done);
    return;
  }
  state_[a] = ActorState::Queued;
  if (opts_.arbitration == Arbitration::Fcfs) {
    fcfs_queue_[node_of_[a]].push_back(a);
  }
}

std::uint32_t SimEngine::pick_next(NodeId node) {
  if (opts_.arbitration == Arbitration::Fcfs) {
    auto& q = fcfs_queue_[node];
    std::size_t& head = fcfs_head_[node];
    if (head == q.size()) return kNoActor;
    const std::uint32_t a = q[head++];
    // Amortised compaction keeps the served prefix from growing without
    // bound on long runs while staying O(1) per pop.
    if (head >= 4096 && head * 2 >= q.size()) {
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    return a;
  }
  // Round-robin: scan the ring from the cursor for a queued actor.
  const std::span<const std::uint32_t> wheel = ring(node);
  for (std::size_t k = 0; k < wheel.size(); ++k) {
    const std::size_t pos = (rr_next_[node] + k) % wheel.size();
    if (state_[wheel[pos]] == ActorState::Queued) {
      rr_next_[node] = (pos + 1) % wheel.size();
      return wheel[pos];
    }
  }
  return kNoActor;
}

void SimEngine::try_dispatch(NodeId node, Time t) {
  if (opts_.arbitration == Arbitration::Tdma) return;  // nothing to do
  if (node_busy_[node]) return;
  const std::uint32_t a = pick_next(node);
  if (a == kNoActor) return;
  consume_inputs(a);
  state_[a] = ActorState::Running;
  node_busy_[node] = 1;
  const Time demand = draw_exec(a);
  if (opts_.collect_trace) {
    trace_.push_back(TraceEvent{t, t + demand, active_index_[app_of_[a]],
                                local_of_[a], node});
  }
  actor_stats_[a].total_waiting += t - ready_time_[a];
  actor_stats_[a].total_service += demand;
  node_busy_time_[node] +=
      std::min(t + demand, opts_.horizon) - std::min(t, opts_.horizon);
  schedule_completion(a, t + demand);
}

void SimEngine::on_completion(std::uint32_t a, Time t) {
  // Produce outputs: instantly on unrouted channels, as an interconnect
  // message on routed ones (tokens arrive when the last hop completes).
  for (std::uint32_t k = out_start_[a]; k < out_start_[a + 1]; ++k) {
    const std::uint32_t c = out_list_[k];
    if (route_start_[c] == route_start_[c + 1]) {
      tokens_[c] += chan_prod_[c];
    } else {
      send_message(c, t);
    }
  }
  state_[a] = ActorState::Idle;
  ++completions_[a];
  ++actor_stats_[a].firings;
  update_iterations(active_index_[app_of_[a]], t);

  if (opts_.arbitration != Arbitration::Tdma) node_busy_[node_of_[a]] = 0;

  // The finished actor may immediately be ready again, then every
  // consumer of the produced tokens.
  try_enqueue(a, t);
  for (std::uint32_t k = out_start_[a]; k < out_start_[a + 1]; ++k) {
    try_enqueue(chan_dst_[out_list_[k]], t);
  }

  // Serve the node this actor released, and the nodes of any consumers
  // that just became ready.
  try_dispatch(node_of_[a], t);
  for (std::uint32_t k = out_start_[a]; k < out_start_[a + 1]; ++k) {
    try_dispatch(node_of_[chan_dst_[out_list_[k]]], t);
  }
}

void SimEngine::send_message(std::uint32_t chan, Time t) {
  std::uint32_t m;
  if (!msg_free_.empty()) {
    m = msg_free_.back();
    msg_free_.pop_back();
    msg_pool_[m] = Msg{chan, 0};
  } else {
    m = static_cast<std::uint32_t>(msg_pool_.size());
    msg_pool_.push_back(Msg{chan, 0});
  }
  link_queue_[route_links_[route_start_[chan]]].push_back(m);
  try_dispatch_link(route_links_[route_start_[chan]], t);
}

void SimEngine::try_dispatch_link(platform::LinkId link, Time t) {
  if (link_busy_[link]) return;
  auto& q = link_queue_[link];
  std::size_t& head = link_head_[link];
  if (head == q.size()) return;
  const std::uint32_t m = q[head++];
  // Same amortised compaction as the node ready lists.
  if (head >= 4096 && head * 2 >= q.size()) {
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(head));
    head = 0;
  }
  link_busy_[link] = 1;
  const Msg& msg = msg_pool_[m];
  const Time service = route_service_[route_start_[msg.chan] + msg.hop];
  link_busy_time_[link] +=
      std::min(t + service, opts_.horizon) - std::min(t, opts_.horizon);
  events_.push_back(Event{t + service, next_seq_++, kLinkFlag | m});
  std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

void SimEngine::on_link_completion(std::uint32_t m, Time t) {
  const Msg msg = msg_pool_[m];
  const platform::LinkId link = route_links_[route_start_[msg.chan] + msg.hop];
  link_busy_[link] = 0;
  const std::uint32_t next_hop = msg.hop + 1;
  if (route_start_[msg.chan] + next_hop == route_start_[msg.chan + 1]) {
    // Final hop: the tokens arrive at the consumer.
    tokens_[msg.chan] += chan_prod_[msg.chan];
    msg_free_.push_back(m);
    const std::uint32_t dst = chan_dst_[msg.chan];
    try_enqueue(dst, t);
    try_dispatch_link(link, t);
    try_dispatch(node_of_[dst], t);
  } else {
    // Forward to the next hop, then backfill the link just released.
    msg_pool_[m].hop = next_hop;
    link_queue_[route_links_[route_start_[msg.chan] + next_hop]].push_back(m);
    try_dispatch_link(route_links_[route_start_[msg.chan] + next_hop], t);
    try_dispatch_link(link, t);
  }
}

void SimEngine::update_iterations(std::uint32_t active_app, Time t) {
  const AppId app = active_[active_app];
  const std::uint32_t base = app_actor_base_[app];
  const std::uint32_t end = app_actor_base_[app + 1];
  std::uint64_t iters = ~0ULL;
  for (std::uint32_t a = base; a < end; ++a) {
    iters = std::min(iters, completions_[a] / reps_[a]);
  }
  while (app_iterations_[active_app] < iters) {
    ++app_iterations_[active_app];
    iteration_times_[active_app].push_back(t);
  }
}

SimResultView SimEngine::finalise_view(std::uint64_t processed) {
  view_apps_.clear();
  for (std::uint32_t j = 0; j < active_.size(); ++j) {
    AppSimView app;
    const PeriodStats stats = steady_state_metrics(
        iteration_times_[j], opts_.warmup_fraction, opts_.min_iterations);
    app.iterations = stats.iterations;
    app.converged = stats.converged;
    app.average_period = stats.average_period;
    app.worst_period = stats.worst_period;
    const std::uint32_t base = app_actor_base_[active_[j]];
    const std::uint32_t end = app_actor_base_[active_[j] + 1];
    app.actors = {actor_stats_.data() + base, end - base};
    app.iteration_times = {iteration_times_[j].data(), iteration_times_[j].size()};
    view_apps_.push_back(app);
  }
  for (NodeId n = 0; n < node_count_; ++n) {
    node_util_[n] =
        opts_.horizon > 0
            ? static_cast<double>(node_busy_time_[n]) / static_cast<double>(opts_.horizon)
            : 0.0;
  }
  for (std::uint32_t l = 0; l < link_count_; ++l) {
    link_util_[l] =
        opts_.horizon > 0
            ? static_cast<double>(link_busy_time_[l]) / static_cast<double>(opts_.horizon)
            : 0.0;
  }
  SimResultView result;
  result.apps = view_apps_;
  result.node_utilisation = node_util_;
  result.link_utilisation = link_util_;
  result.events_processed = processed;
  result.horizon = opts_.horizon;
  result.trace = trace_;
  return result;
}

SimResult simulate(const platform::SystemView& view, const SimOptions& opts) {
  if (opts.horizon <= 0) {
    throw std::invalid_argument("simulate: horizon must be > 0");
  }
  SimEngine engine(view);
  return engine.run(opts);
}

}  // namespace procon::sim
