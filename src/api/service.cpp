#include "api/service.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "sdf/algorithms.h"

namespace procon::api {

namespace {

/// Exact structural equality of two systems (the fingerprint tie-breaker):
/// identical analysis inputs, hence identical results from a shared session.
bool systems_equal(const platform::System& a, const platform::System& b) noexcept {
  if (a.app_count() != b.app_count() ||
      a.platform().node_count() != b.platform().node_count()) {
    return false;
  }
  for (platform::NodeId n = 0; n < a.platform().node_count(); ++n) {
    if (a.platform().node(n).type != b.platform().node(n).type) return false;
  }
  for (sdf::AppId i = 0; i < a.app_count(); ++i) {
    if (!sdf::graphs_equal(a.app(i), b.app(i))) return false;
    for (sdf::ActorId act = 0; act < a.app(i).actor_count(); ++act) {
      if (a.mapping().node_of(i, act) != b.mapping().node_of(i, act)) return false;
    }
  }
  return true;
}

void append_u64(std::string& key, std::uint64_t v) {
  key.push_back('#');
  key.append(std::to_string(v));
}

void append_double(std::string& key, double v) {
  // Bit pattern, not decimal text: the key must distinguish every distinct
  // option value exactly.
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  append_u64(key, bits);
}

/// 128-bit content hash accumulator for coalescing keys of payloads too
/// large to spell out (stochastic exec-time models). Two independently
/// seeded splitmix64 chains, same collision standard as the transposition
/// table's primary+verify pair: a wrong coalesce requires a simultaneous
/// 128-bit collision.
struct ContentHash {
  std::uint64_t a = 0x9E3779B97F4A7C15ull;
  std::uint64_t b = 0xD1B54A32D192ED03ull;

  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
  void absorb(std::uint64_t v) noexcept {
    a = mix(a ^ v);
    b = mix(b + (v ^ 0xA5A5A5A5A5A5A5A5ull));
  }
  void absorb_double(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    absorb(bits);
  }
};

}  // namespace

AnalysisService::AnalysisService(const ServiceOptions& opts)
    : result_cache_epochs_(opts.result_cache_epochs),
      result_cache_stride_(std::max<std::size_t>(opts.result_cache_stride, 1)),
      session_capacity_(std::max<std::size_t>(opts.session_capacity, 1)),
      session_threads_(opts.session_threads),
      table_(opts.transposition_capacity > 0
                 ? std::make_shared<analysis::TranspositionTable>(
                       opts.transposition_capacity, opts.transposition_shards)
                 : nullptr),
      pool_(opts.threads) {}

AnalysisService::~AnalysisService() { drain(); }

void AnalysisService::drain() {
  std::unique_lock<std::mutex> lock(m_);
  idle_cv_.wait(lock, [&] {
    for (const auto& s : sessions_) {
      if (s->busy || !s->queue.empty()) return false;
    }
    return true;
  });
}

SystemId AnalysisService::register_system(platform::System sys) {
  sys.validate();  // fail at the door, not inside a worker
  // The system's incrementally-maintained Zobrist fingerprint: O(1) to read
  // (no structural walk) and name-free, so renamed-but-identical tenants
  // land on the same value. Collisions are disambiguated by systems_equal,
  // which compares names too — sharing stays exact.
  const std::uint64_t fp = sys.fingerprint();
  std::lock_guard<std::mutex> lock(m_);
  registrations_.push_back(Registration{std::move(sys), fp});
  return static_cast<SystemId>(registrations_.size() - 1);
}

const platform::System& AnalysisService::system(SystemId id) const {
  std::lock_guard<std::mutex> lock(m_);
  return registrations_.at(id).system;
}

std::size_t AnalysisService::tenant_count() const {
  std::lock_guard<std::mutex> lock(m_);
  return registrations_.size();
}

std::size_t AnalysisService::session_count() const {
  std::lock_guard<std::mutex> lock(m_);
  return sessions_.size();
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

analysis::TranspositionTable::Stats AnalysisService::transposition_stats() const {
  // No service lock: the table aggregates under its own shard mutexes and
  // the shared_ptr member is immutable after construction.
  return table_ ? table_->stats() : analysis::TranspositionTable::Stats{};
}

dse::RacerStats AnalysisService::racer_stats() const {
  std::lock_guard<std::mutex> lock(m_);
  dse::RacerStats out = retired_racer_;
  for (const auto& s : sessions_) {
    // Busy sessions are being mutated by a drainer outside the service
    // lock; skip them rather than race on their counters (their totals
    // show up at the next idle snapshot or at eviction).
    if (s->bench != nullptr && !s->busy) out.merge(s->bench->racer_stats());
  }
  return out;
}

AnalysisService::Session* AnalysisService::find_serial(
    std::uint64_t serial) noexcept {
  for (auto& s : sessions_) {
    if (s->serial == serial) return s.get();
  }
  return nullptr;
}

AnalysisService::Session& AnalysisService::session_for(
    std::unique_lock<std::mutex>& lock, SystemId id) {
  Registration& reg = registrations_.at(id);

  for (;;) {
    Session* found = nullptr;

    // Hot path: the session this tenant resolved to last time, matched by
    // its never-reused serial — no structural comparison at all.
    if (reg.resolved_serial != 0) found = find_serial(reg.resolved_serial);

    // Shared hit: any live session (being) built from a bitwise-identical
    // system serves this tenant (fingerprint first, exact equality as
    // tie-breaker against the session's origin registration — constructing
    // placeholders have no Workbench yet but always have an origin).
    if (found == nullptr) {
      for (auto& s : sessions_) {
        if (s->fingerprint == reg.fingerprint &&
            systems_equal(*s->origin, reg.system)) {
          found = s.get();
          break;
        }
      }
    }

    if (found != nullptr) {
      if (!found->constructing) {
        found->last_used = ++clock_;
        reg.resolved_serial = found->serial;
        return *found;
      }
      // Another resolver is building this structure's Workbench outside
      // the lock. Wait for it instead of building a duplicate; re-find by
      // serial on every wake — the build may have failed and erased the
      // placeholder, in which case we retry from scratch.
      const std::uint64_t serial = found->serial;
      construct_cv_.wait(lock, [&] {
        Session* s = find_serial(serial);
        return s == nullptr || !s->constructing;
      });
      continue;
    }

    // Miss: evict idle least-recently-used sessions down to capacity.
    // Busy, queued, pinned or constructing sessions are never evicted
    // (their addresses are live in workers/builders); if everything is
    // busy the store temporarily overflows and is trimmed by a later miss.
    while (sessions_.size() >= session_capacity_) {
      std::size_t victim = sessions_.size();
      for (std::size_t i = 0; i < sessions_.size(); ++i) {
        const Session& s = *sessions_[i];
        if (s.busy || s.pins > 0 || s.constructing || !s.queue.empty()) continue;
        if (victim == sessions_.size() ||
            s.last_used < sessions_[victim]->last_used) {
          victim = i;
        }
      }
      if (victim == sessions_.size()) break;  // everything busy: overflow
      if (sessions_[victim]->bench != nullptr) {
        retired_racer_.merge(sessions_[victim]->bench->racer_stats());
      }
      sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(victim));
      ++stats_.sessions_evicted;
    }

    // Cold build, latched: publish a constructing placeholder, then build
    // the Workbench with the service lock RELEASED — hot tenants' submits
    // proceed concurrently instead of stalling behind a cold tenant's
    // session construction. Rebuilds after eviction are identical by
    // construction: a Workbench is a pure function of its System, and
    // queries never depend on session history.
    auto placeholder = std::make_unique<Session>();
    const std::uint64_t serial = ++session_serial_;
    placeholder->serial = serial;
    placeholder->fingerprint = reg.fingerprint;
    placeholder->origin = &reg.system;
    placeholder->constructing = true;
    placeholder->last_used = ++clock_;
    sessions_.push_back(std::move(placeholder));

    lock.unlock();
    std::unique_ptr<Workbench> bench;
    try {
      bench = std::make_unique<Workbench>(
          reg.system,
          WorkbenchOptions{.threads = session_threads_, .table = table_});
    } catch (...) {
      lock.lock();
      Session* mine = find_serial(serial);
      if (mine != nullptr) {
        for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
          if (it->get() == mine) {
            sessions_.erase(it);
            break;
          }
        }
      }
      construct_cv_.notify_all();
      throw;
    }
    lock.lock();

    // The placeholder cannot have been evicted (constructing sessions are
    // skipped above), so the re-find always succeeds.
    Session* mine = find_serial(serial);
    mine->bench = std::move(bench);
    mine->constructing = false;
    mine->last_used = ++clock_;
    reg.resolved_serial = serial;
    ++stats_.sessions_built;
    construct_cv_.notify_all();
    return *mine;
  }
}

std::string AnalysisService::coalesce_key(std::uint64_t serial,
                                          const QueryDesc& d) {
  std::string key;
  key.reserve(64);
  append_u64(key, serial);
  append_u64(key, static_cast<std::uint64_t>(d.kind));
  switch (d.kind) {
    case QueryKind::Throughput:
    case QueryKind::Latency:
    case QueryKind::Bottleneck:
      append_u64(key, d.app);
      break;
    case QueryKind::BufferFrontier:
      append_u64(key, d.app);
      append_u64(key, d.buffers.max_steps);
      append_double(key, d.buffers.convergence);
      append_u64(key, d.buffers.incremental ? 1 : 0);
      // Racing options change the walk (and the statistics in the result),
      // so two descriptors may only coalesce when every racer knob matches.
      append_u64(key, d.buffers.racer.enabled ? 1 : 0);
      append_u64(key, d.buffers.racer.estimator_pulls);
      append_u64(key, d.buffers.racer.sim_pulls);
      append_u64(key, static_cast<std::uint64_t>(d.buffers.racer.sim_horizon));
      append_double(key, d.buffers.racer.confidence);
      append_double(key, d.buffers.racer.rel_slack);
      append_u64(key, d.buffers.racer.max_survivors);
      append_u64(key, d.buffers.racer.budget);
      append_u64(key, d.buffers.racer.batch);
      append_u64(key, d.buffers.racer.resync_every);
      append_double(key, d.buffers.racer.staleness_slack);
      append_u64(key, d.buffers.racer.seed);
      break;
    case QueryKind::Contention:
      for (const sdf::AppId a : d.use_case) append_u64(key, a);
      append_u64(key, static_cast<std::uint64_t>(d.estimator.method));
      append_u64(key, static_cast<std::uint64_t>(d.estimator.order));
      append_u64(key, static_cast<std::uint64_t>(d.estimator.iterations));
      append_u64(key, d.estimator.mc_trials);
      append_u64(key, d.estimator.mc_seed);
      break;
    case QueryKind::Wcrt:
      for (const sdf::AppId a : d.use_case) append_u64(key, a);
      append_u64(key, static_cast<std::uint64_t>(d.wcrt.policy));
      append_u64(key, static_cast<std::uint64_t>(d.wcrt.tdma_slot));
      break;
    case QueryKind::Simulate:
      // Stochastic execution-time models are too large to spell into the
      // key; absorb their full content (outcome values + weights bitwise)
      // into a 128-bit hash instead. Simulation is deterministic given
      // sample_seed, so content-equal models coalescing is exact up to a
      // 128-bit collision — the transposition table's standard.
      if (!d.sim.exec_models.empty()) {
        ContentHash h;
        h.absorb(d.sim.exec_models.size());
        for (const sdf::ExecTimeModel& m : d.sim.exec_models) {
          h.absorb(m.size());
          for (const sdf::ExecTimeDistribution& dist : m) {
            h.absorb(dist.outcomes().size());
            for (const auto& o : dist.outcomes()) {
              h.absorb(static_cast<std::uint64_t>(o.value));
              h.absorb_double(o.weight);
            }
          }
        }
        append_u64(key, h.a);
        append_u64(key, h.b);
      }
      for (const sdf::AppId a : d.use_case) append_u64(key, a);
      append_u64(key, static_cast<std::uint64_t>(d.sim.horizon));
      append_u64(key, static_cast<std::uint64_t>(d.sim.arbitration));
      append_u64(key, static_cast<std::uint64_t>(d.sim.tdma_slot));
      append_double(key, d.sim.warmup_fraction);
      append_u64(key, d.sim.min_iterations);
      append_u64(key, d.sim.max_events);
      append_u64(key, d.sim.sample_seed);
      append_u64(key, d.sim.collect_trace ? 1 : 0);
      break;
    case QueryKind::TopologySweep: {
      // The candidate list is arbitrarily long; absorb it into a 128-bit
      // content hash like Simulate's exec-time models. Link endpoints are
      // canonical from (kind, dims), so only the mutable attributes
      // (widths, latencies) need hashing beyond the shape.
      ContentHash h;
      h.absorb(d.topologies.size());
      for (const platform::Topology& t : d.topologies) {
        h.absorb(static_cast<std::uint64_t>(t.kind()));
        h.absorb(t.node_count());
        h.absorb(t.rows());
        h.absorb(t.cols());
        for (std::size_t l = 0; l < t.link_count(); ++l) {
          const platform::Link& lk = t.link(static_cast<platform::LinkId>(l));
          h.absorb(lk.width);
          h.absorb(static_cast<std::uint64_t>(lk.latency));
        }
      }
      append_u64(key, h.a);
      append_u64(key, h.b);
      for (const sdf::AppId a : d.use_case) append_u64(key, a);
      append_u64(key, static_cast<std::uint64_t>(d.estimator.method));
      append_u64(key, static_cast<std::uint64_t>(d.estimator.order));
      append_u64(key, static_cast<std::uint64_t>(d.estimator.iterations));
      append_u64(key, d.estimator.mc_trials);
      append_u64(key, d.estimator.mc_seed);
      append_u64(key, d.topo_with_sim ? 1 : 0);
      if (d.topo_with_sim) {
        append_u64(key, static_cast<std::uint64_t>(d.sim.horizon));
        append_u64(key, static_cast<std::uint64_t>(d.sim.arbitration));
        append_u64(key, static_cast<std::uint64_t>(d.sim.tdma_slot));
        append_double(key, d.sim.warmup_fraction);
        append_u64(key, d.sim.min_iterations);
        append_u64(key, d.sim.max_events);
        append_u64(key, d.sim.sample_seed);
        append_u64(key, d.sim.collect_trace ? 1 : 0);
      }
      break;
    }
  }
  return key;
}

QueryValue AnalysisService::execute(Workbench& wb, const QueryDesc& d) {
  switch (d.kind) {
    case QueryKind::Throughput:
      return wb.throughput(d.app);
    case QueryKind::Latency:
      return wb.latency(d.app);
    case QueryKind::Bottleneck:
      return wb.bottleneck(d.app);
    case QueryKind::BufferFrontier:
      return wb.buffer_frontier(d.app, d.buffers);
    case QueryKind::Contention:
      return d.use_case.empty() ? wb.contention(d.estimator)
                                : wb.contention(d.use_case, d.estimator);
    case QueryKind::Wcrt:
      return d.use_case.empty() ? wb.wcrt(d.wcrt) : wb.wcrt(d.use_case, d.wcrt);
    case QueryKind::Simulate:
      return d.use_case.empty() ? wb.simulate(d.sim)
                                : wb.simulate(d.use_case, d.sim);
    case QueryKind::TopologySweep: {
      TopologySweepOptions topts;
      topts.estimator = d.estimator;
      topts.with_sim = d.topo_with_sim;
      topts.sim = d.sim;
      topts.use_case = d.use_case;
      return wb.sweep_topologies(d.topologies, topts);
    }
  }
  throw std::logic_error("AnalysisService: unhandled query kind");
}

QueryTicket AnalysisService::submit(SystemId id, QueryDesc desc) {
  std::shared_ptr<detail::TicketShared<QueryValue>> state;
  Session* to_drain = nullptr;
  {
    std::unique_lock<std::mutex> lock(m_);
    Session& s = session_for(lock, id);
    ++stats_.submitted;

    const std::string key = coalesce_key(s.serial, desc);
    if (!key.empty()) {
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // A pending or running twin exists: attach instead of re-running.
        // (Cancelled entries are replaced — their work will never happen.)
        std::lock_guard<std::mutex> slock(it->second->m);
        if (it->second->status != TicketStatus::Cancelled) {
          ++it->second->clients;
          ++stats_.coalesced;
          state = it->second;
        }
      }
      if (!state) {
        // Coalescing-after-completion: a recently executed twin's result
        // is still in the arena — alias its slot in an already-Done
        // ticket. Bitwise-identical by the purity contract, zero copies.
        const auto hit = results_.find(key);
        if (hit != results_.end()) {
          hit->second.epoch = result_epoch_;  // refresh: hot entries live on
          state = std::make_shared<detail::TicketShared<QueryValue>>();
          state->status = TicketStatus::Done;
          state->value = hit->second.value;
          ++stats_.result_hits;
        }
      }
    }
    if (!state) {
      state = std::make_shared<detail::TicketShared<QueryValue>>();
      if (!key.empty()) inflight_[key] = state;
      s.queue.push_back(Job{state, std::move(desc), key});
      s.last_used = ++clock_;
      to_drain = schedule(s);
    }
  }
  if (to_drain != nullptr) {
    pool_.post([this, to_drain] { drain_session(to_drain); });
  }
  return QueryTicket(std::move(state));
}

AnalysisService::Session* AnalysisService::schedule(Session& s) {
  // One drainer per session at a time serialises Workbench access; the
  // drainer re-checks the queue before exiting, so a job enqueued while it
  // winds down is never stranded. While a sweep is waiting the session is
  // theirs at the next boundary — don't race a fresh drainer against it
  // (the sweep reposts one for the remaining queue when it finishes). The
  // session pointer is stable: it is unique_ptr-owned and never evicted
  // while busy.
  if (s.busy || s.queue.empty() || s.sweep_waiters > 0) return nullptr;
  s.busy = true;
  return &s;
}

void AnalysisService::drain_session(Session* s) {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    // Yield to a waiting streaming sweep at the next query boundary: a
    // continuous ticket stream must not starve sweeps (the sweep reposts
    // this drainer for the remaining queue when it finishes).
    if (s->queue.empty() || s->sweep_waiters > 0) {
      s->busy = false;
      idle_cv_.notify_all();
      return;
    }
    Job job = std::move(s->queue.front());
    s->queue.pop_front();
    {
      std::lock_guard<std::mutex> slock(job.state->m);
      if (job.state->status == TicketStatus::Cancelled) {
        // Every client withdrew before execution: drop the work.
        ++stats_.cancelled;
        if (!job.key.empty()) {
          const auto it = inflight_.find(job.key);
          if (it != inflight_.end() && it->second == job.state) inflight_.erase(it);
        }
        continue;
      }
      job.state->status = TicketStatus::Running;
    }

    // Execute without the service lock: other sessions proceed in
    // parallel; this session is protected by busy == true. The result
    // lands directly in its shared arena slot — every consumer (coalesced
    // tickets, share() holders, the result cache) aliases it, none copies.
    lock.unlock();
    std::shared_ptr<QueryValue> value;
    std::exception_ptr error;
    try {
      value = std::make_shared<QueryValue>(execute(*s->bench, job.desc));
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();

    ++stats_.executed;
    if (!job.key.empty()) {
      const auto it = inflight_.find(job.key);
      if (it != inflight_.end() && it->second == job.state) inflight_.erase(it);
    }
    std::shared_ptr<const QueryValue> published = std::move(value);
    if (!error && !job.key.empty()) store_result(job.key, published);
    {
      std::lock_guard<std::mutex> slock(job.state->m);
      job.state->status =
          error ? TicketStatus::Failed : TicketStatus::Done;
      job.state->error = error;
      job.state->value = std::move(published);
    }
    job.state->cv.notify_all();
  }
}

void AnalysisService::store_result(const std::string& key,
                                   std::shared_ptr<const QueryValue> value) {
  if (result_cache_epochs_ == 0) return;
  results_[key] = CachedResult{std::move(value), result_epoch_};
  // Epoch-based reclamation: every stride executions the epoch advances
  // and entries not hit for result_cache_epochs_ epochs are forgotten.
  // Holders of the value (tickets, share() handles) are unaffected — the
  // arena slot is a shared_ptr, reclamation only drops the cache's ref.
  if (++epoch_executed_ >= result_cache_stride_) {
    epoch_executed_ = 0;
    ++result_epoch_;
    if (result_epoch_ >= result_cache_epochs_) {
      const std::uint64_t horizon = result_epoch_ - result_cache_epochs_;
      for (auto it = results_.begin(); it != results_.end();) {
        it = it->second.epoch <= horizon ? results_.erase(it) : std::next(it);
      }
    }
  }
}

SweepSummary AnalysisService::sweep_use_cases(
    SystemId id, std::span<const platform::UseCase> use_cases,
    const SweepOptions& opts, SweepSink& sink) {
  Session* s = nullptr;
  {
    std::unique_lock<std::mutex> lock(m_);
    s = &session_for(lock, id);
    // Pin (no eviction while we wait) and signal the drainer to yield at
    // its next query boundary — sweeps acquire the session after the
    // currently-running ticket, ahead of queued ones, so a continuous
    // submit stream cannot starve them. Queued tickets resume afterwards.
    ++s->pins;
    ++s->sweep_waiters;
    idle_cv_.wait(lock, [&] { return !s->busy; });
    --s->sweep_waiters;
    --s->pins;
    s->busy = true;  // exclusive: tickets queue up behind the sweep
    s->last_used = ++clock_;
  }
  SweepSummary summary;
  Session* to_drain = nullptr;
  try {
    summary = s->bench->sweep_use_cases(use_cases, opts, sink);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(m_);
      s->busy = false;
      to_drain = schedule(*s);
      idle_cv_.notify_all();
    }
    if (to_drain != nullptr) {
      pool_.post([this, to_drain] { drain_session(to_drain); });
    }
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    s->busy = false;
    to_drain = schedule(*s);  // tickets that queued during the sweep
    idle_cv_.notify_all();
  }
  if (to_drain != nullptr) {
    pool_.post([this, to_drain] { drain_session(to_drain); });
  }
  return summary;
}

}  // namespace procon::api
