// procon::api::AnalysisService — the asynchronous, multi-tenant front door
// over Workbench sessions.
//
// A Workbench is deliberately a *single-client* object: one stateful
// session per System, queries strictly serialised, parallelism only inside
// a query. That is the right shape for one analyst and exactly the wrong
// shape for a server. The AnalysisService is the layer in between — the
// session-vs-service split: it owns
//
//   * a resident store of registered platform::Systems (tenants),
//   * a bounded, fingerprint-keyed LRU of live Workbench sessions (one per
//     distinct registered system *structure*; bitwise-identical
//     registrations share a session, eviction rebuilds on next touch —
//     the same eviction discipline as the admission controller's
//     candidate LRU),
//   * a shared util::ThreadPool whose work queue executes submitted
//     queries.
//
// The query surface is asynchronous and streaming:
//
//   * submit(SystemId, QueryDesc) returns a Ticket — a future-like handle
//     with wait()/try_get()/get()/cancel(). Queries on one session are
//     serialised (the Workbench contract); queries on different sessions
//     run concurrently on the pool workers.
//   * identical in-flight queries COALESCE: a submit that matches a
//     pending or running query attaches to its ticket state instead of
//     enqueueing a duplicate — thousands of clients asking the admission
//     question of the moment cost one evaluation.
//   * sweep_use_cases(SystemId, ..., SweepSink&) streams per-use-case
//     results to the caller as views into session-owned arenas
//     (Workbench::sweep_use_cases streaming overload): caller-driven
//     consumption, zero result copies, zero heap allocations once warm.
//
// Determinism: a query executes as exactly one Workbench call on exactly
// one worker, and Workbench queries are pure functions of (system,
// options). Results are therefore bitwise identical to the equivalent
// serial Workbench call, for any client count, worker count, submission
// order or eviction history (asserted by tests/test_service.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "api/report.h"
#include "api/workbench.h"

namespace procon::api {

/// \brief Handle of a registered tenant system (dense, never reused).
using SystemId = std::uint32_t;

/// \brief Which Workbench query a ticket runs.
enum class QueryKind : std::uint8_t {
  Throughput,      ///< Workbench::throughput(app)
  Latency,         ///< Workbench::latency(app)
  Bottleneck,      ///< Workbench::bottleneck(app)
  BufferFrontier,  ///< Workbench::buffer_frontier(app, buffers)
  Contention,      ///< Workbench::contention([use_case,] estimator)
  Wcrt,            ///< Workbench::wcrt([use_case,] wcrt)
  Simulate,        ///< Workbench::simulate([use_case,] sim)
  TopologySweep,   ///< Workbench::sweep_topologies(topologies, ...)
};

/// \brief One submitted query: the kind plus every option the kind reads.
///
/// Fields irrelevant to `kind` are ignored (and excluded from the
/// coalescing key). An empty `use_case` means "all applications" for the
/// whole-system kinds.
struct QueryDesc {
  QueryKind kind = QueryKind::Throughput;  ///< which query to run
  /// Target application (Throughput / Latency / Bottleneck /
  /// BufferFrontier).
  sdf::AppId app = 0;
  /// Restriction for Contention / Wcrt / Simulate; empty = full system.
  platform::UseCase use_case;
  prob::EstimatorOptions estimator;  ///< Contention configuration
  wcrt::WcrtOptions wcrt;            ///< Wcrt configuration
  sim::SimOptions sim;               ///< Simulate configuration
  /// BufferFrontier configuration, including its racing options
  /// (buffers.racer — enabled=false keeps the exhaustive greedy walk).
  dse::BufferExplorerOptions buffers;
  /// Candidate interconnects for TopologySweep, evaluated in order (the
  /// sweep reads `estimator`, `sim` and `use_case` above for its options).
  std::vector<platform::Topology> topologies;
  /// Whether TopologySweep also runs the routed simulation per candidate.
  bool topo_with_sim = true;
};

/// \brief Every result shape a ticket can carry, in QueryKind order.
using QueryValue = std::variant<Report<analysis::PeriodResult>,
                                Report<analysis::GraphLatencyResult>,
                                Report<analysis::BottleneckReport>,
                                Report<dse::FrontierResult>,
                                Report<std::vector<prob::AppEstimate>>,
                                Report<std::vector<wcrt::AppBound>>,
                                Report<sim::SimResult>,
                                Report<std::vector<TopologyResult>>>;

/// \brief Lifecycle of a ticket's underlying query.
enum class TicketStatus : std::uint8_t {
  Pending,    ///< queued, not yet picked up by a worker
  Running,    ///< executing on a worker
  Done,       ///< finished; the value is available
  Cancelled,  ///< abandoned before execution (every client cancelled)
  Failed,     ///< the query threw; get() rethrows the exception
};

namespace detail {

/// \brief Shared completion state behind one (possibly coalesced) query.
///
/// One instance per *executed* query; every coalesced Ticket holds a
/// reference. The result itself is a shared arena slot
/// (shared_ptr<const T>): the service's result cache, coalesced siblings
/// and Ticket::share() callers all alias one immutable value instead of
/// deep-copying Reports per client. Internal — sized and locked by the
/// service and the tickets.
template <typename T>
struct TicketShared {
  std::mutex m;               ///< guards every field below
  std::condition_variable cv; ///< notified on any terminal transition
  TicketStatus status = TicketStatus::Pending;  ///< current lifecycle stage
  /// The result slot (non-null exactly when status == Done). Immutable
  /// once published; aliased by the service's result cache.
  std::shared_ptr<const T> value;
  std::exception_ptr error;   ///< set when status == Failed
  std::size_t clients = 1;    ///< tickets attached (grows by coalescing)
  std::size_t cancels = 0;    ///< distinct tickets that cancelled
};

}  // namespace detail

/// \brief Future-like handle to a submitted query.
///
/// Obtained from AnalysisService::submit. Move-only; several tickets may
/// share one underlying query through coalescing, which cancel() respects
/// (a query is abandoned only when *every* attached ticket cancels).
/// Thread-safe: distinct threads may operate on distinct tickets of the
/// same query concurrently; one ticket is a single-owner object.
template <typename T>
class Ticket {
 public:
  /// \brief Empty ticket (valid() == false); assign from submit() to use.
  Ticket() = default;

  Ticket(Ticket&&) noexcept = default;             ///< tickets move
  Ticket& operator=(Ticket&&) noexcept = default;  ///< tickets move
  Ticket(const Ticket&) = delete;                  ///< single owner
  Ticket& operator=(const Ticket&) = delete;       ///< single owner

  /// \brief Whether this ticket refers to a submitted query.
  /// \return true unless default-constructed or moved-from
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// \brief Current lifecycle stage of the underlying query.
  /// \return the status at the time of the call (may advance immediately
  ///         after)
  [[nodiscard]] TicketStatus status() const {
    std::lock_guard<std::mutex> lock(check().m);
    return state_->status;
  }

  /// \brief Blocks until the query reaches a terminal state (Done,
  /// Cancelled or Failed).
  void wait() const {
    auto& s = check();
    std::unique_lock<std::mutex> lock(s.m);
    s.cv.wait(lock, [&] { return terminal(s.status); });
  }

  /// \brief Non-blocking result access.
  /// \return pointer to the value when Done (valid while the ticket lives),
  ///         nullptr in every other state
  [[nodiscard]] const T* try_get() const {
    auto& s = check();
    std::lock_guard<std::mutex> lock(s.m);
    return s.status == TicketStatus::Done ? s.value.get() : nullptr;
  }

  /// \brief Blocking result access: wait(), then the value.
  ///
  /// Rethrows the query's exception when it Failed; throws std::logic_error
  /// when the query was Cancelled.
  /// \return the query result (valid while the ticket lives)
  [[nodiscard]] const T& get() const& {
    auto& s = check();
    std::unique_lock<std::mutex> lock(s.m);
    s.cv.wait(lock, [&] { return terminal(s.status); });
    if (s.status == TicketStatus::Failed) std::rethrow_exception(s.error);
    if (s.status == TicketStatus::Cancelled) {
      throw std::logic_error("Ticket::get: query was cancelled");
    }
    return *s.value;
  }

  /// \brief Rvalue get(): returns the value BY VALUE, so
  /// `service.submit(...).get()` is safe — the expiring ticket may be the
  /// last owner of the shared state a reference would dangle into. Copies
  /// (never moves): coalesced siblings may still read the same state.
  /// \return a copy of the query result
  [[nodiscard]] T get() && {
    const Ticket& self = *this;
    return self.get();
  }

  /// \brief Zero-copy result access: wait(), then shared ownership of the
  /// immutable value — no deep copy, valid after the ticket (and the
  /// service) are gone. The handle the AnalysisServer's completion path
  /// uses to encode results without copying Reports. Throws exactly like
  /// get() on Failed/Cancelled queries.
  /// \return shared handle to the query result
  [[nodiscard]] std::shared_ptr<const T> share() const {
    auto& s = check();
    std::unique_lock<std::mutex> lock(s.m);
    s.cv.wait(lock, [&] { return terminal(s.status); });
    if (s.status == TicketStatus::Failed) std::rethrow_exception(s.error);
    if (s.status == TicketStatus::Cancelled) {
      throw std::logic_error("Ticket::share: query was cancelled");
    }
    return s.value;
  }

  /// \brief Withdraws this ticket's interest in the query.
  ///
  /// The query is abandoned — transitions to Cancelled, never executes —
  /// only when it is still Pending and every coalesced ticket has
  /// cancelled; a Running or finished query, and a query other clients
  /// still await, proceeds unaffected. Idempotent per ticket.
  /// \return true when this call abandoned the query, false otherwise
  bool cancel() {
    auto& s = check();
    std::lock_guard<std::mutex> lock(s.m);
    if (cancelled_) return false;
    cancelled_ = true;
    ++s.cancels;
    if (s.status == TicketStatus::Pending && s.cancels >= s.clients) {
      s.status = TicketStatus::Cancelled;
      s.cv.notify_all();
      return true;
    }
    return false;
  }

 private:
  friend class AnalysisService;
  explicit Ticket(std::shared_ptr<detail::TicketShared<T>> state)
      : state_(std::move(state)) {}

  [[nodiscard]] static bool terminal(TicketStatus st) noexcept {
    return st == TicketStatus::Done || st == TicketStatus::Cancelled ||
           st == TicketStatus::Failed;
  }
  [[nodiscard]] detail::TicketShared<T>& check() const {
    if (!state_) throw std::logic_error("Ticket: empty (default-constructed?)");
    return *state_;
  }

  std::shared_ptr<detail::TicketShared<T>> state_;
  bool cancelled_ = false;
};

/// \brief The ticket type AnalysisService::submit returns.
using QueryTicket = Ticket<QueryValue>;

/// \brief Construction options of an AnalysisService.
struct ServiceOptions {
  /// Service workers executing tickets (including the calling thread's
  /// slot, like WorkbenchOptions::threads). 0 = one per hardware thread;
  /// 1 = no background workers at all — submit() then executes
  /// synchronously before returning (tickets complete immediately).
  std::size_t threads = 0;
  /// Maximum live Workbench sessions; beyond it the least-recently-used
  /// *idle* session is evicted (rebuilt identically on next touch).
  /// Clamped to >= 1.
  std::size_t session_capacity = 8;
  /// Worker count inside each session's own pool (sharded queries of one
  /// ticket). Default 1: cross-query parallelism comes from the service
  /// pool, so per-query sharding usually only adds oversubscription.
  std::size_t session_threads = 1;
  /// Entry capacity of the service-wide analysis::TranspositionTable,
  /// shared by every session the service builds. Because Zobrist
  /// fingerprints are name-free, structurally identical tenants hit each
  /// other's entries — and entries outlive session eviction, so a rebuilt
  /// session starts warm. 0 disables the table entirely (sessions run
  /// table-free, bitwise identical results either way).
  std::size_t transposition_capacity = std::size_t{1} << 16;
  /// Shard count of the shared table (rounded down to a power of two,
  /// clamped to >= 1). More shards = less lock contention between sessions
  /// executing on different pool workers.
  std::size_t transposition_shards = 16;
  /// Epochs a completed result stays in the service's result cache. A
  /// submit whose coalescing key matches a cached result completes
  /// immediately — same shared value slot, zero re-execution, zero copy
  /// (bitwise-identical by the purity contract). 0 disables the cache.
  std::size_t result_cache_epochs = 4;
  /// Executed queries per reclamation epoch: every this-many executions
  /// the epoch advances and entries older than result_cache_epochs are
  /// dropped. Outstanding Ticket/share() holders keep their values alive
  /// (shared_ptr); reclamation only forgets the cache's reference.
  std::size_t result_cache_stride = 64;
};

/// \brief Service-level counters (monotonic since construction).
struct ServiceStats {
  std::uint64_t submitted = 0;        ///< submit() calls accepted
  std::uint64_t coalesced = 0;        ///< submits attached to in-flight queries
  std::uint64_t executed = 0;         ///< queries actually run on a session
  std::uint64_t cancelled = 0;        ///< queries abandoned before execution
  std::uint64_t sessions_built = 0;   ///< Workbench constructions (cold + rebuilds)
  std::uint64_t sessions_evicted = 0; ///< sessions dropped by the LRU bound
  std::uint64_t result_hits = 0;      ///< submits served from the result cache
};

/// \brief Asynchronous, multi-tenant analysis server over Workbench
/// sessions: register Systems, submit ticketed queries, stream sweeps.
///
/// See the header comment above for the architecture. Thread-safety: every
/// public method may be called from any thread concurrently; per-session
/// execution is serialised internally (the Workbench contract), sessions
/// run in parallel across the pool. Determinism: results are bitwise
/// identical to the equivalent serial Workbench call for any client/worker
/// count and any eviction history.
class AnalysisService {
 public:
  /// \brief Builds an empty service (no tenants, no sessions).
  /// \param opts worker count, session capacity, per-session threads
  explicit AnalysisService(const ServiceOptions& opts = {});

  /// \brief Blocks until every submitted query finished, then shuts the
  /// pool down. Outstanding tickets stay readable (they own their shared
  /// state); streaming sweeps must have returned.
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;             ///< unique
  AnalysisService& operator=(const AnalysisService&) = delete;  ///< unique

  /// \brief Registers a tenant system and returns its handle.
  ///
  /// Validates like Workbench construction (throws sdf::GraphError on
  /// invalid systems — registration either yields a servable tenant or
  /// fails). The system is copied into the resident store; sessions are
  /// built lazily on first query. Registering a bitwise-identical system
  /// twice yields two SystemIds that *share* one live session (the
  /// fingerprint-keyed LRU) — safe because queries never mutate results.
  /// \param sys the applications + platform + mapping to serve
  /// \return dense handle for submit()/sweep_use_cases()
  SystemId register_system(platform::System sys);

  /// \brief The registered system behind a handle (the resident copy).
  /// \param id handle from register_system; throws std::out_of_range
  ///        otherwise
  /// \return the tenant's system
  [[nodiscard]] const platform::System& system(SystemId id) const;

  /// \brief Number of registered tenants.
  /// \return registration count (never shrinks)
  [[nodiscard]] std::size_t tenant_count() const;

  /// \brief Number of live Workbench sessions (<= capacity except while
  /// every session is busy).
  /// \return live session count
  [[nodiscard]] std::size_t session_count() const;

  /// \brief Submits a query against a tenant's session.
  ///
  /// Non-blocking (with background workers): the query is enqueued on the
  /// tenant's session, executed in submission order per session,
  /// concurrently across sessions. An identical query already pending or
  /// running on the same session structure coalesces — the returned ticket
  /// shares its completion state (queries whose options embed
  /// non-fingerprintable state, i.e. Simulate with stochastic exec_models,
  /// never coalesce). Throws std::out_of_range for unknown ids; analysis
  /// errors surface through the ticket as Failed.
  /// \param id tenant handle
  /// \param desc the query (kind + options)
  /// \return ticket tracking the (possibly shared) query
  [[nodiscard]] QueryTicket submit(SystemId id, QueryDesc desc);

  /// \brief Streams a use-case sweep of a tenant to `sink`, caller-driven.
  ///
  /// Blocks until the sweep finishes (or the sink stops it): acquires the
  /// tenant's session exclusively at the next query boundary — after the
  /// currently-running ticket but ahead of queued ones, so a continuous
  /// submit stream cannot starve sweeps (queued tickets resume when the
  /// sweep returns) — then runs the Workbench streaming sweep on the
  /// *calling* thread, delivering per-use-case views into session-owned
  /// arenas. Numbers are bitwise identical to the vector-returning
  /// Workbench sweep; a warm sweep of a previously-seen use-case list
  /// performs zero heap allocations inside the sweep itself. Throws
  /// std::out_of_range for unknown ids.
  /// \param id tenant handle
  /// \param use_cases use-cases to evaluate, delivered in input order
  /// \param opts what to evaluate per use-case (estimates / bounds / sim)
  /// \param sink receives each result; may stop the sweep early
  /// \return delivery summary (count, early stop, wall time)
  SweepSummary sweep_use_cases(SystemId id,
                               std::span<const platform::UseCase> use_cases,
                               const SweepOptions& opts, SweepSink& sink);

  /// \brief Snapshot of the service counters.
  /// \return monotonic totals since construction
  [[nodiscard]] ServiceStats stats() const;

  /// \brief Snapshot of the shared transposition table's counters
  /// (aggregated and per shard). All zeros when the table is disabled
  /// (ServiceOptions::transposition_capacity == 0).
  /// \return hits / misses / stores / evictions / verify failures
  [[nodiscard]] analysis::TranspositionTable::Stats transposition_stats() const;

  /// Aggregated dse::Racer statistics across every session of this service
  /// (live idle sessions plus everything retired by eviction; sessions
  /// currently executing a query are skipped and show up at the next idle
  /// snapshot). Behind the CLI's `[racer: ...]` line, mirroring
  /// transposition_stats().
  [[nodiscard]] dse::RacerStats racer_stats() const;

  /// \brief Blocks until every query submitted so far has finished.
  void drain();

 private:
  struct Registration {
    platform::System system;
    std::uint64_t fingerprint = 0;
    /// Serial of the session this tenant last resolved to: the hot-path
    /// shortcut past the fingerprint scan + structural comparison. Serials
    /// are never reused, so a stale hint simply misses.
    std::uint64_t resolved_serial = 0;
  };

  struct Job {
    std::shared_ptr<detail::TicketShared<QueryValue>> state;
    QueryDesc desc;
    std::string key;  // in-flight coalescing key; empty = not coalescable
  };

  struct Session {
    std::uint64_t serial = 0;    // unique forever (coalesce keys, hints)
    std::uint64_t fingerprint = 0;
    std::unique_ptr<Workbench> bench;  // null while constructing
    // The registration's resident system this session is (being) built
    // from: the structural-equality anchor while bench is still null.
    // Stable — registrations_ is a deque that only grows.
    const platform::System* origin = nullptr;
    bool constructing = false;   // placeholder: Workbench build in flight
    std::deque<Job> queue;       // submitted, not yet executed
    bool busy = false;           // a drainer or a streaming sweep holds it
    std::size_t pins = 0;        // sweep acquirers waiting (blocks eviction)
    std::size_t sweep_waiters = 0;  // drainers yield at the next boundary
    std::uint64_t last_used = 0; // LRU stamp
  };

  /// One completed result kept for coalescing-after-completion, stamped
  /// with the epoch of its last hit (epoch-based reclamation).
  struct CachedResult {
    std::shared_ptr<const QueryValue> value;
    std::uint64_t epoch = 0;
  };

  /// Live session for registration `id`. The construction latch: a cold
  /// build publishes a `constructing` placeholder, releases `lock`, builds
  /// the Workbench, then relocks and fills the placeholder in — hot
  /// tenants' submits only ever wait for the map scan, never for a build.
  /// Concurrent resolvers of the same structure wait on construct_cv_ and
  /// re-find the session by serial. The pointer is stable while
  /// busy/pinned/constructing.
  Session& session_for(std::unique_lock<std::mutex>& lock, SystemId id);
  /// The live session with serial `serial`, or nullptr (under the lock).
  [[nodiscard]] Session* find_serial(std::uint64_t serial) noexcept;
  /// Publishes a completed result under `key` at the current epoch and
  /// advances the reclamation epoch every result_cache_stride executions
  /// (under the lock).
  void store_result(const std::string& key,
                    std::shared_ptr<const QueryValue> value);
  /// Claims `s` for a drainer if it has work and none holds it. Returns
  /// the session to post a drainer for (nullptr when none needed); the
  /// caller posts OUTSIDE the service lock — with no background workers
  /// post() runs the drainer inline, which must not hold the lock.
  [[nodiscard]] Session* schedule(Session& s);
  /// Executes `s`'s queue until empty (one drainer at a time per session).
  void drain_session(Session* s);
  /// Runs one query on a session's Workbench (no service lock held).
  static QueryValue execute(Workbench& wb, const QueryDesc& desc);
  /// Coalescing key of `desc` against session serial `serial` (unique per
  /// live session, so fingerprint collisions can never cross-attach two
  /// different tenants' queries). Stochastic exec-time models are keyed by
  /// a 128-bit content hash over their outcome lists (values + weights
  /// bitwise) — the same collision standard as the transposition table's
  /// verify tags, so such Simulate queries coalesce and cache too.
  static std::string coalesce_key(std::uint64_t serial, const QueryDesc& desc);

  mutable std::mutex m_;
  std::condition_variable idle_cv_;  // session went idle / queue drained
  std::condition_variable construct_cv_;  // a session build finished/failed
  // Deque: registrations are returned by reference (system(id)) and must
  // stay put while later registrations grow the store.
  std::deque<Registration> registrations_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<std::string, std::shared_ptr<detail::TicketShared<QueryValue>>>
      inflight_;
  // Completed-result arena: coalescing keys -> shared value slots, pruned
  // by epoch (see ServiceOptions::result_cache_epochs).
  std::unordered_map<std::string, CachedResult> results_;
  std::uint64_t result_epoch_ = 0;      // advances per stride executions
  std::uint64_t epoch_executed_ = 0;    // executions in the current epoch
  std::size_t result_cache_epochs_ = 4;
  std::size_t result_cache_stride_ = 64;
  ServiceStats stats_;
  dse::RacerStats retired_racer_;  // racer counters of evicted sessions
  std::uint64_t clock_ = 0;          // LRU stamps
  std::uint64_t session_serial_ = 0; // unique session ids, never reused
  std::size_t session_capacity_ = 8;
  std::size_t session_threads_ = 1;
  // One table for the whole service: every session shares it, so a tenant's
  // warm entries serve every structurally identical tenant. shared_ptr so
  // sessions (whose Workbench holds a reference) can outlive nothing —
  // the service owns both — but the Workbench API takes shared ownership.
  std::shared_ptr<analysis::TranspositionTable> table_;
  // Declared last: destroyed first, so the pool joins (draining posted
  // drainers) while every member above is still alive.
  util::ThreadPool pool_;
};

}  // namespace procon::api
