// procon::api::Workbench — one stateful analysis session over a System.
//
// The paper's core claim is that analytic contention estimation is fast
// enough to drive design-space exploration and run-time decisions across
// many concurrent use-cases. The free functions this library grew up with
// (compute_period, ContentionEstimator::estimate, worst_case_bounds,
// simulate, explore_buffer_tradeoff, optimise_mapping) each re-ingest raw
// graphs and re-pay every structure-dependent analysis step per call. A
// Workbench is constructed once from a platform::System and owns instead:
//
//   * one ThroughputEngine per application (self-loop closure, repetition
//     vector, HSDF topology and structural verdicts cached once),
//   * one cached HSDF expansion per application (latency / bottleneck),
//   * one sim::SimEngine over the whole system (flat event-driven
//     structure built once; every simulation query — full, per use-case,
//     or inside a with_sim sweep — is a reset + run),
//   * a persistent thread pool that shards independent evaluations —
//     use-case sweeps and mapper candidate scoring — across workers with
//     one engine-set clone per worker.
//
// Every query returns Report<T>: the value plus provenance (method,
// evaluation count, workers, wall time). Results are bitwise identical to
// the corresponding free functions: engines are reset to a cold start at
// each query boundary, so a query is a pure function of the session's
// system and the query options, never of query history or scheduling.
// In particular sweep_use_cases and optimise_mapping return the same bits
// for any thread count.
//
// Thread-safety: a Workbench is a mutable session — queries update cached
// engines, so concurrent queries on one Workbench are not allowed. The
// parallelism lives *inside* a query, not across queries.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "analysis/engine.h"
#include "analysis/hsdf.h"
#include "analysis/latency.h"
#include "analysis/throughput.h"
#include "analysis/transposition_table.h"
#include "api/report.h"
#include "dse/buffer_explorer.h"
#include "dse/mapper.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "prob/estimator.h"
#include "sim/sim_engine.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"
#include "wcrt/wcrt.h"

namespace procon::api {

/// \brief Session construction options.
struct WorkbenchOptions {
  /// Worker count for sharded queries (sweeps, mapper scoring). 0 = one per
  /// hardware thread. 1 = fully serial (no background threads at all).
  std::size_t threads = 0;
  /// Optional shared transposition table memoising compact analysis results
  /// (periods, latencies, bottleneck/WCRT summaries, mapping scores) under
  /// this session's queries, keyed by the session system's Zobrist
  /// fingerprints. Sessions over structurally identical systems sharing one
  /// table share each other's results (fingerprints are name-free); every
  /// query returns bitwise-identical values with or without a table.
  /// nullptr disables memoisation.
  std::shared_ptr<analysis::TranspositionTable> table = nullptr;
};

/// \brief Per-use-case results of a sweep.
struct UseCaseResult {
  /// The evaluated use-case (parent application ids, in input order).
  platform::UseCase use_case;
  /// One estimate per selected application, in use-case order.
  std::vector<prob::AppEstimate> estimates;
  /// Worst-case bounds (only when SweepOptions::with_wcrt).
  std::vector<wcrt::AppBound> bounds;
  /// Reference simulation (only when SweepOptions::with_sim), apps in
  /// use-case order — the paper's per-use-case validation sweep.
  sim::SimResult sim;
};

/// \brief What a use-case sweep evaluates per item.
struct SweepOptions {
  /// Estimator configuration (method, fixed-point passes).
  prob::EstimatorOptions estimator;
  /// Also compute the worst-case (Analyzed Worst Case) bound per use-case.
  bool with_wcrt = false;
  /// Worst-case bound configuration (when with_wcrt).
  wcrt::WcrtOptions wcrt;
  /// Also run the reference discrete-event simulation per use-case, on the
  /// worker's session-cached SimEngine (reset per use-case, never rebuilt).
  bool with_sim = false;
  /// Simulation configuration (when with_sim).
  sim::SimOptions sim;
};

/// \brief One use-case's sweep results as views into session-owned storage
/// (the streaming counterpart of UseCaseResult).
///
/// Every span/pointer borrows the sweeping Workbench's arenas and is valid
/// only for the duration of the SweepSink::on_use_case call that delivers
/// it; consumers that need to keep a result copy it (e.g.
/// SimResultView::materialise()).
struct UseCaseView {
  /// The evaluated use-case (parent application ids, in input order).
  std::span<const sdf::AppId> use_case;
  /// One estimate per selected application, in use-case order.
  std::span<const prob::AppEstimate> estimates;
  /// Worst-case bounds (empty unless SweepOptions::with_wcrt).
  std::span<const wcrt::AppBound> bounds;
  /// Reference simulation views (null unless SweepOptions::with_sim).
  const sim::SimResultView* sim = nullptr;
};

/// \brief Consumer of a streaming use-case sweep (caller-driven
/// consumption: results are delivered one use-case at a time, in input
/// order, as views into engine-owned arenas).
///
/// Implementations decide per result whether to aggregate, copy, forward or
/// stop; the sweep owns no per-use-case result storage beyond its reused
/// arenas, which is what makes warm sweeps allocation-free.
class SweepSink {
 public:
  virtual ~SweepSink() = default;
  /// \brief Delivers use-case `index`'s results.
  ///
  /// Called from the sweeping thread, in input order. The views in `result`
  /// are invalidated when the call returns (the next use-case reuses the
  /// arenas).
  /// \param index position of this use-case in the swept list
  /// \param result views into session-owned storage
  /// \return true to continue the sweep, false to stop after this use-case
  virtual bool on_use_case(std::size_t index, const UseCaseView& result) = 0;
};

/// \brief Plain-data summary of a streaming sweep (deliberately no strings:
/// the warm streaming path performs zero heap allocations end to end).
struct SweepSummary {
  std::size_t delivered = 0;  ///< sink callbacks made
  bool stopped_early = false; ///< the sink returned false before the end
  double wall_ms = 0.0;       ///< wall-clock time of the sweep
};

/// \brief What a topology sweep evaluates per candidate interconnect.
struct TopologySweepOptions {
  /// Link-aware estimator configuration (method, fixed-point passes).
  prob::EstimatorOptions estimator;
  /// Also run the routed discrete-event simulation per topology.
  bool with_sim = true;
  /// Simulation configuration (when with_sim).
  sim::SimOptions sim;
  /// Restriction applied to every candidate; empty = full system.
  platform::UseCase use_case;
};

/// \brief One candidate interconnect's results, in input order.
struct TopologyResult {
  /// Link-aware contention estimates (apps in use-case order).
  std::vector<prob::AppEstimate> estimates;
  /// Routed reference simulation (empty unless with_sim).
  sim::SimResult sim;
};

/// \brief One stateful analysis session over a platform::System — every
/// analysis and DSE entry point as a uniform, Report-returning query.
///
/// Owns one analysis::ThroughputEngine and one cached HSDF expansion per
/// application, one sim::SimEngine over the whole system, and a persistent
/// thread pool for sharded queries; see the header comment above for the
/// full caching contract.
///
/// Determinism: every query is bitwise identical to the legacy free
/// function it replaces (engines cold-start at each query boundary), and
/// the sharded queries return identical bits for any thread count.
///
/// Thread-safety: a Workbench is a mutable session — queries update cached
/// engines, so concurrent queries on one Workbench are not allowed. The
/// parallelism lives *inside* a query, not across queries.
class Workbench {
 public:
  /// Builds all per-application analysis state. Throws sdf::GraphError for
  /// invalid systems (incomplete mapping, inconsistent or deadlocking
  /// applications) — a session is valid for its whole lifetime.
  explicit Workbench(platform::System sys, const WorkbenchOptions& opts = {});

  Workbench(const Workbench&) = delete;             ///< sessions are unique
  Workbench& operator=(const Workbench&) = delete;  ///< sessions are unique

  /// The session's system (applications + platform + mapping).
  [[nodiscard]] const platform::System& system() const noexcept { return sys_; }
  /// Number of applications in the session.
  [[nodiscard]] std::size_t app_count() const noexcept { return sys_.app_count(); }
  /// Total workers of the session pool (1 = fully serial).
  [[nodiscard]] std::size_t thread_count() const noexcept { return pool_.size(); }

  // ---- single-application queries (cached structure) ----------------------

  /// Isolation period of one application (== analysis::compute_period).
  [[nodiscard]] Report<analysis::PeriodResult> throughput(sdf::AppId app);

  /// Single-iteration latency (== analysis::compute_latency).
  [[nodiscard]] Report<analysis::GraphLatencyResult> latency(sdf::AppId app);

  /// Critical-cycle actors (== analysis::find_bottleneck).
  [[nodiscard]] Report<analysis::BottleneckReport> bottleneck(sdf::AppId app);

  /// Buffer-size / period Pareto frontier plus racing statistics
  /// (== dse::explore_buffer_frontier; with opts.racer.enabled == false the
  /// points are bitwise dse::explore_buffer_tradeoff and the statistics are
  /// all zero).
  [[nodiscard]] Report<dse::FrontierResult> buffer_frontier(
      sdf::AppId app, const dse::BufferExplorerOptions& opts = {});

  // ---- whole-system queries ----------------------------------------------

  /// Probabilistic contention estimate for all applications running
  /// concurrently (== prob::ContentionEstimator::estimate). Deep fixed-point
  /// runs (EstimatorOptions::iterations > 1) shard their per-application
  /// engine work across the session pool — nested sharding inside one
  /// use-case evaluation — with bitwise-identical results for any thread
  /// count.
  [[nodiscard]] Report<std::vector<prob::AppEstimate>> contention(
      const prob::EstimatorOptions& opts = {});

  /// Same, restricted to one use-case (== estimate on sys.restrict_to(uc)),
  /// with the same nested per-app sharding for deep fixed-point runs.
  [[nodiscard]] Report<std::vector<prob::AppEstimate>> contention(
      const platform::UseCase& uc, const prob::EstimatorOptions& opts = {});

  /// Allocation-free steady-state variant of contention(): identical
  /// numbers, but the estimates are served as a span into session-owned
  /// slots (the estimator runs in the session's persistent workspace). The
  /// returned reference — value span and provenance alike — is valid until
  /// the next contention/contention_view/sweep call or session destruction.
  /// After one warm-up query per distinct shape, repeated calls perform
  /// zero heap allocations; contention() is a deep-copying shim over this
  /// path.
  [[nodiscard]] const Report<std::span<const prob::AppEstimate>>& contention_view(
      const prob::EstimatorOptions& opts = {});
  /// Use-case-restricted contention_view (see above; == contention(uc, opts)
  /// served as a view).
  [[nodiscard]] const Report<std::span<const prob::AppEstimate>>& contention_view(
      const platform::UseCase& uc, const prob::EstimatorOptions& opts = {});

  /// Worst-case period bounds (== wcrt::worst_case_bounds).
  [[nodiscard]] Report<std::vector<wcrt::AppBound>> wcrt(
      const wcrt::WcrtOptions& opts = {});
  /// Worst-case bounds restricted to one use-case (zero-copy view).
  [[nodiscard]] Report<std::vector<wcrt::AppBound>> wcrt(
      const platform::UseCase& uc, const wcrt::WcrtOptions& opts = {});

  /// Reference discrete-event simulation (== sim::simulate), on the
  /// session's cached SimEngine: the first call flattens the system once,
  /// every further call is a reset + run. Use-case runs restrict through
  /// the engine's id remap tables — no restrict_to copy, no rebuild.
  [[nodiscard]] Report<sim::SimResult> simulate(const sim::SimOptions& opts = {});
  /// Simulation restricted to one use-case: a reset(uc) + run of the
  /// session engine, whose per-use-case arbitration rings are cached after
  /// first sight.
  [[nodiscard]] Report<sim::SimResult> simulate(const platform::UseCase& uc,
                                                const sim::SimOptions& opts = {});

  // ---- sharded queries (run on the session's thread pool) -----------------

  /// Estimates every given use-case, sharded across the pool with one
  /// engine-set clone per worker. Results are in input order and bitwise
  /// identical for any thread count (each use-case evaluation is a pure
  /// function of the use-case and options).
  [[nodiscard]] Report<std::vector<UseCaseResult>> sweep_use_cases(
      std::span<const platform::UseCase> use_cases, const SweepOptions& opts = {});

  /// All 2^N - 1 non-empty use-cases (the paper's full enumeration).
  [[nodiscard]] Report<std::vector<UseCaseResult>> sweep_all_use_cases(
      const SweepOptions& opts = {});

  /// Streaming sweep: evaluates the use-cases serially in input order and
  /// delivers each result to `sink` as views into session-owned arenas —
  /// the zero-allocation counterpart of the vector-returning sweep
  /// (estimates and bounds come from persistent workspaces, simulations
  /// from the session SimEngine's run_view()). Numbers are bitwise
  /// identical to sweep_use_cases(use_cases, opts) on the same session.
  /// After one warm pass over a use-case list (shapes and sim ring cache
  /// seen), re-sweeping the same list performs zero heap allocations
  /// (asserted by tests/test_steady_state_alloc.cpp). The sink may stop the
  /// sweep early by returning false.
  SweepSummary sweep_use_cases(std::span<const platform::UseCase> use_cases,
                               const SweepOptions& opts, SweepSink& sink);

  /// Evaluates the session's applications under each candidate interconnect
  /// topology: the sweep retargets a lazily-built clone of the session
  /// system per candidate (the session's own system, engines and SimEngine
  /// are untouched — a sweep never perturbs later plain queries), runs the
  /// link-aware estimator through the session's ThroughputEngines (topology
  /// does not change application structure, so they are shared as-is), and,
  /// when opts.with_sim, the routed simulation on a per-topology SimEngine
  /// cache keyed by the retargeted system's fingerprint (LRU-bounded:
  /// re-sweeping a seen topology list reuses flattened engines instead of
  /// rebuilding). Candidates with TopologyKind::None reproduce the
  /// topology-free contention/simulate results bitwise. Throws
  /// std::invalid_argument when a candidate's node count does not match the
  /// platform.
  [[nodiscard]] Report<std::vector<TopologyResult>> sweep_topologies(
      std::span<const platform::Topology> topologies,
      const TopologySweepOptions& opts = {});

  /// Scores candidate mappings of the session's applications (max estimated
  /// slowdown; == dse::evaluate_mapping per candidate), sharded across the
  /// pool. Results in input order, bitwise identical for any thread count.
  [[nodiscard]] Report<std::vector<double>> score_mappings(
      std::span<const platform::Mapping> candidates,
      const prob::EstimatorOptions& opts = {});

  /// Races candidate mappings through the dse::Racer fidelity ladder
  /// (== dse::race_mapping_scores on the session's cached workspaces, pool
  /// and transposition table). With racer.enabled == false this is the
  /// exhaustive path — per-candidate values bitwise score_mappings —
  /// plus the winner index and (zero-saving) statistics. Deterministic for
  /// any thread count either way; score_mappings is a shim over that mode.
  [[nodiscard]] Report<dse::MappingRace> race_mappings(
      std::span<const platform::Mapping> candidates,
      const prob::EstimatorOptions& opts = {},
      const dse::RacerOptions& racer = {});

  /// Simulated-annealing mapping exploration from the session's current
  /// mapping, with speculative candidate scoring on the pool
  /// (== dse::optimise_mapping; deterministic for any thread count).
  [[nodiscard]] Report<dse::MapperResult> optimise_mapping(
      const dse::MapperOptions& opts = {});

  // ---- introspection -------------------------------------------------------

  /// Counter snapshot of the session's transposition table (all zeros when
  /// the session was built without one). The table may be shared: counters
  /// cover every session/controller attached to it, not just this one.
  [[nodiscard]] analysis::TranspositionTable::Stats transposition_stats() const;

  /// The session's transposition table (nullptr when memoisation is off) —
  /// lets callers attach further consumers (e.g. an AdmissionController)
  /// to the same table.
  [[nodiscard]] const std::shared_ptr<analysis::TranspositionTable>&
  transposition_table() const noexcept {
    return table_;
  }

  /// Aggregated racing statistics over every DSE query of this session
  /// (buffer_frontier, race_mappings / score_mappings, optimise_mapping) —
  /// the session-level counterpart of transposition_stats(), behind the
  /// CLI's `[racer: ...]` line. Oracle-mode queries contribute races with
  /// zero savings (eval_ratio 1).
  [[nodiscard]] const dse::RacerStats& racer_stats() const noexcept {
    return racer_stats_;
  }

 private:
  void check_app(sdf::AppId app) const;
  const analysis::Hsdf& cached_hsdf(sdf::AppId app);
  /// Engine pointers for the given applications, each reset to cold start.
  std::vector<analysis::ThroughputEngine*> engines_for(
      std::vector<analysis::ThroughputEngine>& engines,
      const platform::UseCase& uc);
  /// Allocation-free engines_for: fills ptr_scratch_ (session engines, each
  /// reset) and returns it as a span.
  std::span<analysis::ThroughputEngine* const> scratch_engines_for(
      std::span<const sdf::AppId> uc);
  /// Shared core of contention()/contention_view(): runs the estimator in
  /// the session workspace, serves the result via contention_report_.
  const Report<std::span<const prob::AppEstimate>>& contention_core(
      const platform::UseCase& uc, const prob::EstimatorOptions& opts);
  /// Worker-local mutable state for sharded queries (one per pool worker):
  /// a system clone whose mapping may be rebound, plus one engine clone per
  /// application. Built lazily, reused by every sharded query.
  std::vector<dse::AnalysisWorkspace>& worker_sets();
  /// The session's simulation engine (lazy; structure flattened once).
  sim::SimEngine& sim_engine();
  /// One SimEngine clone per pool worker for with_sim sweeps (lazy).
  std::vector<sim::SimEngine>& sim_worker_engines();
  /// SimEngine for the current topology of `scratch` from the per-topology
  /// cache (flattens on first sight of a structure, LRU-evicts beyond
  /// kTopologySimCacheCapacity).
  sim::SimEngine& topology_sim_engine(const platform::System& scratch);

  platform::System sys_;
  std::shared_ptr<analysis::TranspositionTable> table_;  // nullptr = off
  std::vector<analysis::ThroughputEngine> engines_;  // one per application
  std::vector<analysis::Hsdf> hsdf_;                 // lazy, for latency/bottleneck
  std::vector<std::uint8_t> hsdf_ready_;
  util::ThreadPool pool_;
  std::vector<dse::AnalysisWorkspace> workers_;      // lazy, for sharded queries
  std::vector<sim::SimEngine> sim_engine_;           // lazy, 0 or 1 entries
  std::vector<sim::SimEngine> sim_workers_;          // lazy, for with_sim sweeps

  // Steady-state serving scratch: session-owned arenas behind the
  // allocation-free query paths (contention_view, streaming sweeps). All
  // grow-only; see the method docs for lifetime rules.
  platform::UseCase full_uc_;                        // 0..N-1, built once
  platform::SystemView scratch_view_;                // rebound per query
  std::vector<analysis::ThroughputEngine*> ptr_scratch_;
  prob::EstimatorWorkspace est_ws_;
  wcrt::WcrtWorkspace wcrt_ws_;
  std::vector<prob::AppEstimate> est_pool_;          // grow-only result slots
  std::vector<wcrt::AppBound> bound_pool_;           // grow-only result slots
  Report<std::span<const prob::AppEstimate>> contention_report_;
  sim::SimResultView sweep_sim_view_;                // per-use-case sim views
  dse::RacerStats racer_stats_;                      // merged across DSE queries

  // Topology-sweep state: a lazily-built clone of the session system that
  // sweep_topologies retargets per candidate, plus a fingerprint-keyed LRU
  // of flattened SimEngines — one per distinct retargeted structure, so a
  // re-swept topology list skips the rebuild (the session's 9th family of
  // cached objects).
  static constexpr std::size_t kTopologySimCacheCapacity = 8;
  struct TopologySimEntry {
    std::uint64_t fingerprint = 0;              // retargeted system fingerprint
    std::uint64_t stamp = 0;                    // LRU clock value at last use
    std::unique_ptr<sim::SimEngine> engine;     // flattened routed engine
  };
  std::vector<platform::System> topo_scratch_;  // lazy, 0 or 1 entries
  std::vector<TopologySimEntry> topo_sim_cache_;
  std::uint64_t topo_sim_clock_ = 0;
};

}  // namespace procon::api
