// Uniform result envelope for Workbench queries.
//
// Every analysis the session exposes — throughput, latency, contention,
// worst-case bounds, simulation, DSE — answers with the same shape: the
// result value plus provenance describing how it was produced (method
// name, how many evaluations it took, how many workers ran it, wall
// time). Callers that compare techniques or log experiment records get
// the bookkeeping for free instead of re-timing every call site.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace procon::api {

/// \brief How a Workbench query produced its value: technique, work count,
/// parallelism and wall time.
struct Provenance {
  /// Human-readable technique, e.g. "Probabilistic Second Order" or
  /// "hsdf-mcr (Howard, cached structure)".
  std::string method;
  /// Analysis evaluations performed (period analyses, candidates scored,
  /// use-cases swept — whatever the query counts in).
  std::size_t evaluations = 0;
  /// Workers that produced the value (1 for serial queries).
  std::size_t threads = 1;
  /// Wall-clock time of the query, in milliseconds.
  double wall_ms = 0.0;
};

/// \brief Uniform result envelope of every Workbench query: the value plus
/// its Provenance.
///
/// Dereference (`*report` / `report->`) reaches the value directly, so call
/// sites read like the free functions the queries replace.
template <typename T>
struct Report {
  T value{};              ///< the query's result
  Provenance provenance;  ///< how the value was produced

  /// Read access to the value.
  [[nodiscard]] const T& operator*() const& noexcept { return value; }
  /// Mutable access to the value.
  [[nodiscard]] T& operator*() & noexcept { return value; }
  /// Rvalue deref moves the value out. Returning by value (not a dangling
  /// reference into the expiring Report) keeps the common pattern
  /// `for (auto& x : *session.query(...))` well-defined before C++23's
  /// range-for lifetime extension.
  [[nodiscard]] T operator*() && { return std::move(value); }
  /// Member access into the value.
  [[nodiscard]] const T* operator->() const noexcept { return &value; }
  /// Mutable member access into the value.
  [[nodiscard]] T* operator->() noexcept { return &value; }
};

}  // namespace procon::api
