#include "api/workbench.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "gen/use_cases.h"
#include "sdf/repetition.h"

namespace procon::api {
namespace {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-application WCRT transposition probe/store. Bounds are memoised as
/// one (isolation, worst-case) entry per app plus one (waiting, response)
/// entry per actor, all keyed by the restriction fingerprint and the WCRT
/// options; a query hits only if *every* entry is present (all-or-nothing),
/// otherwise it recomputes and stores the full set. `Sys` is a
/// platform::System or platform::SystemView (both expose app()).
template <typename Sys>
bool probe_wcrt(analysis::TranspositionTable* table, std::uint64_t fp,
                const wcrt::WcrtOptions& opts, const Sys& sys,
                std::vector<wcrt::AppBound>& out) {
  if (table == nullptr) return false;
  const std::size_t napps = sys.app_count();
  out.clear();
  out.resize(napps);
  for (std::size_t i = 0; i < napps; ++i) {
    analysis::TTKeyBuilder app_key(fp, analysis::TTQuery::WcrtAppBound);
    app_key.absorb(static_cast<std::uint64_t>(opts.policy));
    app_key.absorb(static_cast<std::uint64_t>(opts.tdma_slot));
    app_key.absorb(i);
    analysis::TTValue v;
    if (!table->lookup(app_key.key(), v)) return false;
    out[i].isolation_period = v.primary;
    out[i].worst_case_period = v.secondary;
    const std::size_t nactors = sys.app(static_cast<sdf::AppId>(i)).actor_count();
    out[i].actors.resize(nactors);
    for (std::size_t a = 0; a < nactors; ++a) {
      analysis::TTKeyBuilder actor_key(fp, analysis::TTQuery::WcrtActorBound);
      actor_key.absorb(static_cast<std::uint64_t>(opts.policy));
      actor_key.absorb(static_cast<std::uint64_t>(opts.tdma_slot));
      actor_key.absorb(i);
      actor_key.absorb(a);
      if (!table->lookup(actor_key.key(), v)) return false;
      out[i].actors[a].waiting_time = v.primary;
      out[i].actors[a].response_time = v.secondary;
    }
  }
  return true;
}

void store_wcrt(analysis::TranspositionTable* table, std::uint64_t fp,
                const wcrt::WcrtOptions& opts,
                std::span<const wcrt::AppBound> bounds) {
  if (table == nullptr) return;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    analysis::TTKeyBuilder app_key(fp, analysis::TTQuery::WcrtAppBound);
    app_key.absorb(static_cast<std::uint64_t>(opts.policy));
    app_key.absorb(static_cast<std::uint64_t>(opts.tdma_slot));
    app_key.absorb(i);
    analysis::TTValue v;
    v.primary = bounds[i].isolation_period;
    v.secondary = bounds[i].worst_case_period;
    table->store(app_key.key(), v);
    for (std::size_t a = 0; a < bounds[i].actors.size(); ++a) {
      analysis::TTKeyBuilder actor_key(fp, analysis::TTQuery::WcrtActorBound);
      actor_key.absorb(static_cast<std::uint64_t>(opts.policy));
      actor_key.absorb(static_cast<std::uint64_t>(opts.tdma_slot));
      actor_key.absorb(i);
      actor_key.absorb(a);
      analysis::TTValue av;
      av.primary = bounds[i].actors[a].waiting_time;
      av.secondary = bounds[i].actors[a].response_time;
      table->store(actor_key.key(), av);
    }
  }
}

}  // namespace

Workbench::Workbench(platform::System sys, const WorkbenchOptions& opts)
    : sys_(std::move(sys)), table_(opts.table), pool_(opts.threads) {
  sys_.validate();
  engines_.reserve(sys_.app_count());
  for (const sdf::Graph& app : sys_.apps()) engines_.emplace_back(app);
  hsdf_.resize(sys_.app_count());
  hsdf_ready_.assign(sys_.app_count(), 0);
  full_uc_ = sys_.full_use_case();
  ptr_scratch_.reserve(sys_.app_count());
}

void Workbench::check_app(sdf::AppId app) const {
  if (app >= sys_.app_count()) {
    throw sdf::GraphError("Workbench: application id out of range");
  }
}

const analysis::Hsdf& Workbench::cached_hsdf(sdf::AppId app) {
  if (!hsdf_ready_[app]) {
    const sdf::Graph closed = sys_.app(app).with_self_loops();
    const auto q = sdf::compute_repetition_vector(closed);
    if (!q) throw sdf::GraphError("Workbench: inconsistent application");
    hsdf_[app] = analysis::expand_to_hsdf(closed, *q, {});
    hsdf_ready_[app] = 1;
  }
  return hsdf_[app];
}

std::vector<analysis::ThroughputEngine*> Workbench::engines_for(
    std::vector<analysis::ThroughputEngine>& engines, const platform::UseCase& uc) {
  std::vector<analysis::ThroughputEngine*> ptrs;
  ptrs.reserve(uc.size());
  for (const sdf::AppId id : uc) {
    if (id >= engines.size()) {
      throw sdf::GraphError("Workbench: use-case references unknown application");
    }
    engines[id].reset();
    ptrs.push_back(&engines[id]);
  }
  return ptrs;
}

std::span<analysis::ThroughputEngine* const> Workbench::scratch_engines_for(
    std::span<const sdf::AppId> uc) {
  ptr_scratch_.clear();
  for (const sdf::AppId id : uc) {
    if (id >= engines_.size()) {
      throw sdf::GraphError("Workbench: use-case references unknown application");
    }
    engines_[id].reset();
    ptr_scratch_.push_back(&engines_[id]);
  }
  return ptr_scratch_;
}

std::vector<dse::AnalysisWorkspace>& Workbench::worker_sets() {
  if (workers_.empty()) {
    workers_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
      dse::AnalysisWorkspace ws;
      ws.sys = sys_;
      ws.engines = engines_;
      workers_.push_back(std::move(ws));
    }
  }
  return workers_;
}

sim::SimEngine& Workbench::sim_engine() {
  if (sim_engine_.empty()) sim_engine_.emplace_back(sys_);
  return sim_engine_.front();
}

std::vector<sim::SimEngine>& Workbench::sim_worker_engines() {
  if (sim_workers_.empty()) {
    sim_workers_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) sim_workers_.emplace_back(sys_);
  }
  return sim_workers_;
}

// ---- single-application queries -------------------------------------------

Report<analysis::PeriodResult> Workbench::throughput(sdf::AppId app) {
  check_app(app);
  Timer timer;
  Report<analysis::PeriodResult> report;
  analysis::TTKey key;
  if (table_ != nullptr) {
    key = analysis::TTKeyBuilder(sys_.app_component(app),
                                 analysis::TTQuery::IsolationPeriod)
              .key();
    analysis::TTValue v;
    if (table_->lookup(key, v)) {
      report.value.deadlocked = (v.flags & analysis::TTValue::kDeadlocked) != 0;
      report.value.period = v.primary;
      report.provenance = {"hsdf-mcr (Howard, cached structure)", 1, 1, timer.ms()};
      return report;
    }
  }
  engines_[app].reset();
  report.value = engines_[app].recompute();
  if (table_ != nullptr) {
    analysis::TTValue v;
    v.primary = report.value.period;
    v.flags = report.value.deadlocked ? analysis::TTValue::kDeadlocked : 0;
    table_->store(key, v);
  }
  report.provenance = {"hsdf-mcr (Howard, cached structure)", 1, 1, timer.ms()};
  return report;
}

Report<analysis::GraphLatencyResult> Workbench::latency(sdf::AppId app) {
  check_app(app);
  Timer timer;
  analysis::TTKey key;
  if (table_ != nullptr) {
    key = analysis::TTKeyBuilder(sys_.app_component(app), analysis::TTQuery::Latency)
              .key();
    analysis::TTValue v;
    if (table_->lookup(key, v)) {
      Report<analysis::GraphLatencyResult> report;
      report.value.latency = v.primary;
      report.value.critical_actors.assign(v.ids, v.ids + v.id_count);
      report.provenance = {"longest zero-token path (cached expansion)", 1, 1,
                           timer.ms()};
      return report;
    }
  }
  const analysis::Hsdf& h = cached_hsdf(app);
  const analysis::LatencyResult r = analysis::iteration_latency(h);
  Report<analysis::GraphLatencyResult> report;
  report.value.latency = r.latency;
  std::vector<bool> seen(sys_.app(app).actor_count(), false);
  for (const std::uint32_t node : r.path) {
    const sdf::ActorId a = h.nodes[node].source_actor;
    if (!seen[a]) {
      seen[a] = true;
      report.value.critical_actors.push_back(a);
    }
  }
  if (table_ != nullptr &&
      report.value.critical_actors.size() <= analysis::TTValue::kMaxIds) {
    // Results whose critical-actor list does not fit the compact entry are
    // simply not cached (never truncated).
    analysis::TTValue v;
    v.primary = report.value.latency;
    v.id_count = static_cast<std::uint8_t>(report.value.critical_actors.size());
    std::copy(report.value.critical_actors.begin(),
              report.value.critical_actors.end(), v.ids);
    table_->store(key, v);
  }
  report.provenance = {"longest zero-token path (cached expansion)", 1, 1,
                       timer.ms()};
  return report;
}

Report<analysis::BottleneckReport> Workbench::bottleneck(sdf::AppId app) {
  check_app(app);
  Timer timer;
  analysis::TTKey key;
  if (table_ != nullptr) {
    key = analysis::TTKeyBuilder(sys_.app_component(app),
                                 analysis::TTQuery::Bottleneck)
              .key();
    analysis::TTValue v;
    if (table_->lookup(key, v)) {
      Report<analysis::BottleneckReport> report;
      report.value.deadlocked = (v.flags & analysis::TTValue::kDeadlocked) != 0;
      report.value.period = v.primary;
      report.value.actors.assign(v.ids, v.ids + v.id_count);
      report.provenance = {"Howard policy-graph critical cycle", 1, 1, timer.ms()};
      return report;
    }
  }
  const analysis::Hsdf& h = cached_hsdf(app);
  const analysis::CriticalCycleResult cc = analysis::mcr_with_critical_cycle(h);
  Report<analysis::BottleneckReport> report;
  report.value.deadlocked = cc.mcr.deadlocked;
  report.value.period = cc.mcr.deadlocked ? 0.0 : cc.mcr.ratio;
  std::vector<bool> seen(sys_.app(app).actor_count(), false);
  for (const std::uint32_t node : cc.cycle) {
    const sdf::ActorId a = h.nodes[node].source_actor;
    if (!seen[a]) {
      seen[a] = true;
      report.value.actors.push_back(a);
    }
  }
  std::sort(report.value.actors.begin(), report.value.actors.end());
  if (table_ != nullptr && report.value.actors.size() <= analysis::TTValue::kMaxIds) {
    analysis::TTValue v;
    v.primary = report.value.period;
    v.flags = report.value.deadlocked ? analysis::TTValue::kDeadlocked : 0;
    v.id_count = static_cast<std::uint8_t>(report.value.actors.size());
    std::copy(report.value.actors.begin(), report.value.actors.end(), v.ids);
    table_->store(key, v);
  }
  report.provenance = {"Howard policy-graph critical cycle", 1, 1, timer.ms()};
  return report;
}

Report<dse::FrontierResult> Workbench::buffer_frontier(
    sdf::AppId app, const dse::BufferExplorerOptions& opts) {
  check_app(app);
  Timer timer;
  Report<dse::FrontierResult> report;
  report.value = dse::explore_buffer_frontier(sys_.app(app), opts, table_.get());
  racer_stats_.merge(report.value.racer);
  report.provenance = {opts.racer.enabled
                           ? "greedy frontier (raced candidates)"
                           : opts.incremental
                               ? "greedy frontier (incremental reverse-channel patch)"
                               : "greedy frontier (engine per candidate)",
                       report.value.points.size(), 1, timer.ms()};
  return report;
}

// ---- whole-system queries --------------------------------------------------

Report<std::vector<prob::AppEstimate>> Workbench::contention(
    const prob::EstimatorOptions& opts) {
  return contention(full_uc_, opts);
}

Report<std::vector<prob::AppEstimate>> Workbench::contention(
    const platform::UseCase& uc, const prob::EstimatorOptions& opts) {
  // Deep-copying shim over the workspace core: same numbers, owning storage.
  const auto& core = contention_core(uc, opts);
  Report<std::vector<prob::AppEstimate>> report;
  report.value.assign(core.value.begin(), core.value.end());
  report.provenance = core.provenance;
  return report;
}

const Report<std::span<const prob::AppEstimate>>& Workbench::contention_view(
    const prob::EstimatorOptions& opts) {
  return contention_core(full_uc_, opts);
}

const Report<std::span<const prob::AppEstimate>>& Workbench::contention_view(
    const platform::UseCase& uc, const prob::EstimatorOptions& opts) {
  return contention_core(uc, opts);
}

const Report<std::span<const prob::AppEstimate>>& Workbench::contention_core(
    const platform::UseCase& uc, const prob::EstimatorOptions& opts) {
  Timer timer;
  scratch_view_.rebind(sys_, uc);  // zero-copy restriction, capacity reused
  const prob::ContentionEstimator est(opts);
  const auto engines = scratch_engines_for(uc);
  // Duplicate use-case entries alias one engine across view slots; sharding
  // would then race two workers on the same mutable engine, so they force
  // the serial path (results are identical either way).
  bool unique_apps = true;
  for (std::size_t i = 0; i + 1 < uc.size() && unique_apps; ++i) {
    for (std::size_t j = i + 1; j < uc.size(); ++j) {
      if (uc[i] == uc[j]) {
        unique_apps = false;
        break;
      }
    }
  }
  // Deep fixed-point runs shard their per-app engine work (one Howard solve
  // per app per pass) across the session pool — nested sharding *inside*
  // one use-case evaluation. Results are bitwise identical either way; a
  // single cheap pass is not worth the fan-out overhead.
  const bool deep =
      opts.iterations > 1 && pool_.size() > 1 && uc.size() > 1 && unique_apps;
  if (est_pool_.size() < uc.size()) est_pool_.resize(uc.size());
  est.estimate_into(scratch_view_, {}, engines, est_ws_,
                    std::span<prob::AppEstimate>(est_pool_.data(), uc.size()),
                    deep ? &pool_ : nullptr);
  contention_report_.value =
      std::span<const prob::AppEstimate>(est_pool_.data(), uc.size());
  // Assigning a const char* into the retained string reuses its capacity —
  // the warm path stays heap-free.
  contention_report_.provenance.method = prob::method_name_c(opts.method);
  contention_report_.provenance.evaluations =
      static_cast<std::size_t>(opts.iterations);
  contention_report_.provenance.threads = deep ? pool_.size() : 1;
  contention_report_.provenance.wall_ms = timer.ms();
  return contention_report_;
}

Report<std::vector<wcrt::AppBound>> Workbench::wcrt(const wcrt::WcrtOptions& opts) {
  Timer timer;
  Report<std::vector<wcrt::AppBound>> report;
  // The full-system restriction is the identity remap, so its fingerprint
  // is the system's own (maintained) one — no view needed to probe.
  if (probe_wcrt(table_.get(), sys_.fingerprint(), opts, sys_, report.value)) {
    report.provenance = {"Analyzed Worst Case", 1, 1, timer.ms()};
    return report;
  }
  auto ptrs = engines_for(engines_, sys_.full_use_case());
  report.value = wcrt::worst_case_bounds(
      sys_, opts, std::span<analysis::ThroughputEngine* const>(ptrs));
  store_wcrt(table_.get(), sys_.fingerprint(), opts, report.value);
  report.provenance = {"Analyzed Worst Case", 1, 1, timer.ms()};
  return report;
}

Report<std::vector<wcrt::AppBound>> Workbench::wcrt(const platform::UseCase& uc,
                                                    const wcrt::WcrtOptions& opts) {
  Timer timer;
  const platform::SystemView view(sys_, uc);  // zero-copy restriction
  Report<std::vector<wcrt::AppBound>> report;
  const std::uint64_t fp = table_ != nullptr ? view.fingerprint() : 0;
  if (probe_wcrt(table_.get(), fp, opts, view, report.value)) {
    report.provenance = {"Analyzed Worst Case", 1, 1, timer.ms()};
    return report;
  }
  auto ptrs = engines_for(engines_, uc);
  report.value = wcrt::worst_case_bounds(
      view, opts, std::span<analysis::ThroughputEngine* const>(ptrs));
  store_wcrt(table_.get(), fp, opts, report.value);
  report.provenance = {"Analyzed Worst Case", 1, 1, timer.ms()};
  return report;
}

Report<sim::SimResult> Workbench::simulate(const sim::SimOptions& opts) {
  Timer timer;
  Report<sim::SimResult> report;
  sim::SimEngine& engine = sim_engine();
  engine.reset();
  report.value = engine.run(opts);
  report.provenance = {"discrete-event simulation (cached engine)",
                       report.value.events_processed, 1, timer.ms()};
  return report;
}

Report<sim::SimResult> Workbench::simulate(const platform::UseCase& uc,
                                           const sim::SimOptions& opts) {
  Timer timer;
  Report<sim::SimResult> report;
  sim::SimEngine& engine = sim_engine();
  engine.reset(uc);
  report.value = engine.run(opts);
  report.provenance = {"discrete-event simulation (cached engine)",
                       report.value.events_processed, 1, timer.ms()};
  return report;
}

// ---- sharded queries -------------------------------------------------------

Report<std::vector<UseCaseResult>> Workbench::sweep_use_cases(
    std::span<const platform::UseCase> use_cases, const SweepOptions& opts) {
  Timer timer;
  const prob::ContentionEstimator est(opts.estimator);
  auto& workers = worker_sets();
  auto* sim_engines = opts.with_sim ? &sim_worker_engines() : nullptr;

  Report<std::vector<UseCaseResult>> report;
  report.value.resize(use_cases.size());
  pool_.for_each_index(use_cases.size(), [&](std::size_t i, std::size_t w) {
    // One engine-set clone per worker; each evaluation resets its engines,
    // so the slot result is a pure function of the use-case — identical
    // regardless of which worker computes it after which other items.
    dse::AnalysisWorkspace& ws = workers[w];
    const platform::UseCase& uc = use_cases[i];
    // Zero-copy restriction: the estimator and the bounds read the selected
    // applications through a view, the simulator through its remap tables —
    // the per-use-case restrict_to deep copy is gone from the sweep.
    const platform::SystemView view(sys_, uc);
    UseCaseResult& out = report.value[i];
    out.use_case = uc;
    {
      auto ptrs = engines_for(ws.engines, uc);
      out.estimates = est.estimate(
          view, {}, std::span<analysis::ThroughputEngine* const>(ptrs));
    }
    if (opts.with_wcrt) {
      auto ptrs = engines_for(ws.engines, uc);
      out.bounds = wcrt::worst_case_bounds(
          view, opts.wcrt, std::span<analysis::ThroughputEngine* const>(ptrs));
    }
    if (sim_engines != nullptr) {
      sim::SimEngine& se = (*sim_engines)[w];
      se.reset(uc);
      out.sim = se.run(opts.sim);
    }
  });
  report.provenance = {"sweep: " + prob::method_name(opts.estimator.method),
                       use_cases.size(), pool_.size(), timer.ms()};
  return report;
}

Report<std::vector<UseCaseResult>> Workbench::sweep_all_use_cases(
    const SweepOptions& opts) {
  const auto all = gen::all_use_cases(sys_.app_count());
  return sweep_use_cases(all, opts);
}

SweepSummary Workbench::sweep_use_cases(std::span<const platform::UseCase> use_cases,
                                        const SweepOptions& opts, SweepSink& sink) {
  Timer timer;
  const prob::ContentionEstimator est(opts.estimator);
  sim::SimEngine* se = opts.with_sim ? &sim_engine() : nullptr;

  SweepSummary summary;
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    const platform::UseCase& uc = use_cases[i];
    // Zero-copy restriction into the session's scratch view; session
    // engines reset per item, so each result is a pure function of the
    // use-case and options — identical bits to the vector-returning sweep.
    scratch_view_.rebind(sys_, uc);
    UseCaseView result;
    result.use_case = std::span<const sdf::AppId>(uc);
    {
      const auto engines = scratch_engines_for(uc);
      if (est_pool_.size() < uc.size()) est_pool_.resize(uc.size());
      est.estimate_into(scratch_view_, {}, engines, est_ws_,
                        std::span<prob::AppEstimate>(est_pool_.data(), uc.size()));
      result.estimates =
          std::span<const prob::AppEstimate>(est_pool_.data(), uc.size());
    }
    if (opts.with_wcrt) {
      const auto engines = scratch_engines_for(uc);  // reset again, like the
                                                     // vector sweep's second
                                                     // engines_for call
      if (bound_pool_.size() < uc.size()) bound_pool_.resize(uc.size());
      wcrt::worst_case_bounds_into(
          scratch_view_, opts.wcrt, engines, wcrt_ws_,
          std::span<wcrt::AppBound>(bound_pool_.data(), uc.size()));
      result.bounds = std::span<const wcrt::AppBound>(bound_pool_.data(), uc.size());
    }
    if (se != nullptr) {
      se->reset(uc);
      sweep_sim_view_ = se->run_view(opts.sim);
      result.sim = &sweep_sim_view_;
    }
    ++summary.delivered;
    if (!sink.on_use_case(i, result)) {
      summary.stopped_early = true;
      break;
    }
  }
  summary.wall_ms = timer.ms();
  return summary;
}

Report<std::vector<TopologyResult>> Workbench::sweep_topologies(
    std::span<const platform::Topology> topologies,
    const TopologySweepOptions& opts) {
  Timer timer;
  const prob::ContentionEstimator est(opts.estimator);
  const platform::UseCase& uc = opts.use_case.empty() ? full_uc_ : opts.use_case;
  if (topo_scratch_.empty()) topo_scratch_.push_back(sys_);
  platform::System& scratch = topo_scratch_.front();

  Report<std::vector<TopologyResult>> report;
  report.value.resize(topologies.size());
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    scratch.set_topology(topologies[i]);
    const platform::SystemView view(scratch, uc);
    TopologyResult& out = report.value[i];
    {
      // Session engines: topology changes neither application structure nor
      // the mapping, so the per-app ThroughputEngines apply unchanged.
      const auto engines = scratch_engines_for(uc);
      out.estimates = est.estimate(view, {}, engines);
    }
    if (opts.with_sim) {
      sim::SimEngine& se = topology_sim_engine(scratch);
      se.reset(uc);
      out.sim = se.run(opts.sim);
    }
  }
  report.provenance = {"topology sweep: " + prob::method_name(opts.estimator.method),
                       topologies.size(), 1, timer.ms()};
  return report;
}

sim::SimEngine& Workbench::topology_sim_engine(const platform::System& scratch) {
  const std::uint64_t fp = scratch.fingerprint();
  for (TopologySimEntry& e : topo_sim_cache_) {
    if (e.fingerprint == fp) {
      e.stamp = ++topo_sim_clock_;
      return *e.engine;
    }
  }
  if (topo_sim_cache_.size() >= kTopologySimCacheCapacity) {
    std::size_t victim = 0;
    for (std::size_t j = 1; j < topo_sim_cache_.size(); ++j) {
      if (topo_sim_cache_[j].stamp < topo_sim_cache_[victim].stamp) victim = j;
    }
    topo_sim_cache_.erase(topo_sim_cache_.begin() +
                          static_cast<std::ptrdiff_t>(victim));
  }
  topo_sim_cache_.push_back(TopologySimEntry{
      fp, ++topo_sim_clock_, std::make_unique<sim::SimEngine>(scratch)});
  return *topo_sim_cache_.back().engine;
}

Report<std::vector<double>> Workbench::score_mappings(
    std::span<const platform::Mapping> candidates,
    const prob::EstimatorOptions& opts) {
  // Shim over the racer's oracle mode: every unique candidate is evaluated
  // to full precision (same estimator pipeline, same MappingScore keys),
  // structurally identical candidates share one evaluation and one table
  // entry — per-candidate values are unchanged.
  Timer timer;
  dse::RacerOptions oracle;
  oracle.enabled = false;
  dse::MappingRace race = dse::race_mapping_scores(
      candidates, opts, oracle, &pool_, worker_sets(), table_.get());
  racer_stats_.merge(race.stats);
  Report<std::vector<double>> report;
  report.value = std::move(race.scores);
  report.provenance = {"mapping score: " + prob::method_name(opts.method),
                       candidates.size(), pool_.size(), timer.ms()};
  return report;
}

Report<dse::MappingRace> Workbench::race_mappings(
    std::span<const platform::Mapping> candidates,
    const prob::EstimatorOptions& opts, const dse::RacerOptions& racer) {
  Timer timer;
  Report<dse::MappingRace> report;
  report.value = dse::race_mapping_scores(candidates, opts, racer, &pool_,
                                          worker_sets(), table_.get());
  racer_stats_.merge(report.value.stats);
  report.provenance = {racer.enabled ? "mapping race (fidelity ladder)"
                                     : "mapping race (oracle mode)",
                       candidates.size(), pool_.size(), timer.ms()};
  return report;
}

Report<dse::MapperResult> Workbench::optimise_mapping(const dse::MapperOptions& opts) {
  Timer timer;
  Report<dse::MapperResult> report;
  // The session's per-worker workspaces carry the scoring state, so
  // repeated mapper queries skip the per-call graph copies and engine
  // construction the free function pays.
  report.value = dse::optimise_mapping(sys_.apps(), sys_.platform(), sys_.mapping(),
                                       opts, &pool_, worker_sets(), table_.get());
  racer_stats_.merge(report.value.racer);
  report.provenance = {opts.racer.enabled
                           ? "simulated annealing (raced candidates)"
                           : "simulated annealing (speculative scoring)",
                       report.value.scored_candidates, pool_.size(), timer.ms()};
  return report;
}

analysis::TranspositionTable::Stats Workbench::transposition_stats() const {
  return table_ != nullptr ? table_->stats() : analysis::TranspositionTable::Stats{};
}

}  // namespace procon::api
