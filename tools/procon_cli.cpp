// procon - command-line front end to the library.
//
// All system-level analysis goes through one procon::api::Workbench session
// per invocation: the per-application engines are built once and shared by
// every query the subcommand issues.
//
// Subcommands:
//   generate [--seed S] [--count N] [--min-actors A] [--max-actors B]
//       Emit random consistent strongly-connected SDFGs (text format) on
//       stdout.
//   period <file>
//       Per graph: consistency, repetition sum, deadlock-freedom, exact and
//       MCR periods, latency, bottleneck actors.
//   estimate <file> [--method exact|second|fourth|compose|inverse]
//            [--order M] [--iterations K]
//       Treat each graph in the file as one application, map actor j of
//       every application onto node j, and print contention estimates plus
//       the round-robin worst-case bound.
//   simulate <file> [--horizon N] [--arbitration fcfs|rr|tdma]
//       Reference discrete-event simulation of the same system.
//   sweep <file> [--full | --per-size N] [--threads T] [--method ...]
//       Estimate every (or a sampled set of) use-case(s), sharded across T
//       workers (0 = one per hardware thread).
//   serve <file> [--clients N] [--queries Q] [--threads T] [--capacity S]
//       Drive an api::AnalysisService end to end: register the file's
//       graphs as two tenant systems, hammer them from N client threads
//       with mixed ticketed queries, verify every result against a serial
//       Workbench oracle, then stream a sink-based use-case sweep. Prints
//       the service counters (coalesce hits, sessions built/evicted) and a
//       tt-stats line for the shared transposition table.
//   client <file> (--spawn N | --endpoints h:p,h:p,...) [--tenants K]
//          [--queries Q]
//       Routed cluster workload (net::ClusterClient): build K tenant
//       systems from the file, register each on its fingerprint-derived
//       home shard, pipeline a mixed query workload over the wire, and
//       verify every decoded result bitwise against a direct
//       api::AnalysisService oracle. With --spawn N the shards are
//       in-process loopback net::AnalysisServers on ephemeral ports (and
//       when N > 1 the fleet starts at one shard and grows mid-run, so the
//       snapshot/migration path runs too); with --endpoints the shards are
//       external procon_server processes. Prints each shard's
//       ServiceStats and transposition-table counters fetched over
//       StatsRequest frames.
//   buffers <file>
//       Buffer-capacity / period Pareto frontier per graph (incremental
//       explorer).
//   dot <file>
//       Graphviz DOT for every graph on stdout.
//   selftest
//       End-to-end smoke test (used by CTest); exits non-zero on failure.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/throughput.h"
#include "analysis/transposition_table.h"
#include "api/service.h"
#include "api/workbench.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "platform/system.h"
#include "prob/estimator.h"
#include "sdf/algorithms.h"
#include "sdf/io.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "wcrt/wcrt.h"

namespace {

using namespace procon;

int usage(int code) {
  std::cout <<
      "procon - probabilistic contention analysis for SDF applications\n"
      "usage:\n"
      "  procon generate [--seed S] [--count N] [--min-actors A] [--max-actors B]\n"
      "  procon period   <file>\n"
      "  procon estimate <file> [--method exact|second|fourth|compose|inverse]\n"
      "                  [--order M] [--iterations K]\n"
      "  procon simulate <file> [--horizon N] [--arbitration fcfs|rr|tdma]\n"
      "  procon sweep    <file> [--full | --per-size N] [--threads T] [--method M]\n"
      "  procon serve    <file> [--clients N] [--queries Q] [--threads T]\n"
      "                  [--capacity S]\n"
      "  procon client   <file> (--spawn N | --endpoints h:p,...)\n"
      "                  [--tenants K] [--queries Q]\n"
      "  procon buffers  <file>\n"
      "  procon dot      <file>\n"
      "  procon selftest\n";
  return code;
}

std::vector<sdf::Graph> load_graphs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  auto graphs = sdf::read_graphs(in);
  if (graphs.empty()) throw std::runtime_error("no graphs in " + path);
  return graphs;
}

platform::System make_system(std::vector<sdf::Graph> apps) {
  std::size_t max_actors = 0;
  for (const auto& g : apps) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  return platform::System(std::move(apps), std::move(plat), std::move(map));
}

/// Simple flag scanner over argv[2..]: returns the value after `flag`.
std::string flag_value(int argc, char** argv, const std::string& flag,
                       const std::string& fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 2; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

void print_provenance(const api::Provenance& p) {
  std::cout << "[" << p.method << ": " << p.evaluations << " evaluation(s), "
            << p.threads << " thread(s), " << util::format_double(p.wall_ms, 2)
            << " ms]\n";
}

int cmd_generate(int argc, char** argv) {
  util::Rng rng(std::stoull(flag_value(argc, argv, "--seed", "2007")));
  gen::GeneratorOptions opts;
  opts.min_actors = static_cast<std::uint32_t>(
      std::stoul(flag_value(argc, argv, "--min-actors", "8")));
  opts.max_actors = static_cast<std::uint32_t>(
      std::stoul(flag_value(argc, argv, "--max-actors", "10")));
  const auto count = std::stoull(flag_value(argc, argv, "--count", "1"));
  for (const auto& g : gen::generate_graphs(rng, opts, count)) {
    sdf::write_graph(std::cout, g);
  }
  return 0;
}

int cmd_period(int argc, char** argv) {
  if (argc < 3) return usage(2);
  util::Table table("Throughput analysis");
  table.set_header({"graph", "actors", "rep.sum", "consistent", "deadlock-free",
                    "period (exact)", "period (MCR)", "latency", "bottleneck"});
  for (const auto& g : load_graphs(argv[2])) {
    const bool consistent = sdf::is_consistent(g);
    const bool live = consistent && sdf::is_deadlock_free(g);
    std::string exact = "-", mcr = "-", latency = "-", bottleneck = "-";
    std::string repsum = "-";
    if (consistent) {
      const auto q = sdf::compute_repetition_vector(g);
      repsum = std::to_string(sdf::repetition_sum(*q));
    }
    if (live) {
      // A single-application session: every per-graph query shares the
      // cached engine and expansion.
      const platform::Platform solo_plat =
          platform::Platform::homogeneous(g.actor_count());
      const std::vector<sdf::Graph> solo_apps{g};
      platform::System solo(solo_apps, solo_plat,
                            platform::Mapping::by_index(solo_apps, solo_plat));
      api::Workbench wb(std::move(solo), api::WorkbenchOptions{.threads = 1});
      exact = analysis::compute_period_exact(g).to_string();
      mcr = util::format_double(wb.throughput(0)->period, 3);
      latency = util::format_double(wb.latency(0)->latency, 3);
      const auto b = wb.bottleneck(0);
      bottleneck.clear();
      for (const auto a : b->actors) {
        if (!bottleneck.empty()) bottleneck += ",";
        bottleneck += g.actor(a).name;
      }
    }
    table.add_row({g.name(), std::to_string(g.actor_count()), repsum,
                   consistent ? "yes" : "no", live ? "yes" : "no", exact, mcr,
                   latency, bottleneck});
  }
  std::cout << table.render();
  return 0;
}

prob::EstimatorOptions parse_estimator(int argc, char** argv) {
  prob::EstimatorOptions opts;
  const std::string m = flag_value(argc, argv, "--method", "second");
  if (m == "exact") opts.method = prob::Method::Exact;
  else if (m == "second") opts.method = prob::Method::SecondOrder;
  else if (m == "fourth") opts.method = prob::Method::FourthOrder;
  else if (m == "compose") opts.method = prob::Method::Composability;
  else if (m == "inverse") opts.method = prob::Method::CompositionInverse;
  else if (m == "mth") opts.method = prob::Method::MthOrder;
  else throw std::runtime_error("unknown method " + m);
  opts.order = std::stoi(flag_value(argc, argv, "--order", "2"));
  opts.iterations = std::stoi(flag_value(argc, argv, "--iterations", "1"));
  return opts;
}

int cmd_estimate(int argc, char** argv) {
  if (argc < 3) return usage(2);
  api::Workbench wb(make_system(load_graphs(argv[2])),
                    api::WorkbenchOptions{.threads = 1});
  const prob::EstimatorOptions eopts = parse_estimator(argc, argv);
  const auto est = wb.contention(eopts);
  const auto wc = wb.wcrt();
  util::Table table("Contention estimates (" + prob::method_name(eopts.method) +
                    "), actor j -> node j");
  table.set_header({"app", "isolation", "estimated", "normalised", "throughput",
                    "worst-case bound"});
  for (std::size_t i = 0; i < est->size(); ++i) {
    table.add_row({wb.system().app(static_cast<sdf::AppId>(i)).name(),
                   util::format_double((*est)[i].isolation_period, 2),
                   util::format_double((*est)[i].estimated_period, 2),
                   util::format_double((*est)[i].normalised_period(), 2),
                   util::format_double((*est)[i].estimated_throughput(), 6),
                   util::format_double((*wc)[i].worst_case_period, 2)});
  }
  std::cout << table.render();
  print_provenance(est.provenance);
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) return usage(2);
  api::Workbench wb(make_system(load_graphs(argv[2])),
                    api::WorkbenchOptions{.threads = 1});
  sim::SimOptions sopts;
  sopts.horizon = std::stoll(flag_value(argc, argv, "--horizon", "500000"));
  const std::string arb = flag_value(argc, argv, "--arbitration", "fcfs");
  if (arb == "fcfs") sopts.arbitration = sim::Arbitration::Fcfs;
  else if (arb == "rr") sopts.arbitration = sim::Arbitration::RoundRobin;
  else if (arb == "tdma") sopts.arbitration = sim::Arbitration::Tdma;
  else throw std::runtime_error("unknown arbitration " + arb);
  const auto r = wb.simulate(sopts);
  util::Table table("Simulation (" + arb + ", horizon " +
                    std::to_string(sopts.horizon) + ")");
  table.set_header({"app", "iterations", "avg period", "worst period",
                    "converged"});
  for (std::size_t i = 0; i < r->apps.size(); ++i) {
    table.add_row({wb.system().app(static_cast<sdf::AppId>(i)).name(),
                   std::to_string(r->apps[i].iterations),
                   util::format_double(r->apps[i].average_period, 2),
                   util::format_double(r->apps[i].worst_period, 2),
                   r->apps[i].converged ? "yes" : "no"});
  }
  std::cout << table.render();
  std::cout << "node utilisation:";
  for (const double u : r->node_utilisation) {
    std::cout << ' ' << util::format_double(u, 3);
  }
  std::cout << '\n';
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) return usage(2);
  const auto threads = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--threads", "0")));
  api::Workbench wb(make_system(load_graphs(argv[2])),
                    api::WorkbenchOptions{.threads = threads});

  std::vector<platform::UseCase> use_cases;
  if (has_flag(argc, argv, "--full")) {
    use_cases = gen::all_use_cases(wb.app_count());
  } else {
    util::Rng rng(std::stoull(flag_value(argc, argv, "--seed", "2007")));
    const auto per_size = static_cast<std::size_t>(
        std::stoull(flag_value(argc, argv, "--per-size", "8")));
    use_cases = gen::sample_use_cases(wb.app_count(), per_size, rng);
  }

  api::SweepOptions sopts;
  sopts.estimator = parse_estimator(argc, argv);
  const auto swept = wb.sweep_use_cases(use_cases, sopts);

  util::Table table("Use-case sweep (" +
                    prob::method_name(sopts.estimator.method) + ")");
  table.set_header({"use-case", "app", "isolation", "estimated", "normalised"});
  for (const api::UseCaseResult& r : *swept) {
    std::string label;
    for (const auto id : r.use_case) {
      if (!label.empty()) label += "+";
      label += wb.system().app(id).name();
    }
    for (std::size_t i = 0; i < r.estimates.size(); ++i) {
      table.add_row({label, wb.system().app(r.use_case[i]).name(),
                     util::format_double(r.estimates[i].isolation_period, 2),
                     util::format_double(r.estimates[i].estimated_period, 2),
                     util::format_double(r.estimates[i].normalised_period(), 2)});
    }
  }
  std::cout << table.render();
  print_provenance(swept.provenance);

  // Candidate-mapping race: a dozen random mappings through the racer's
  // fidelity ladder (full precision only for survivors), mirroring the
  // sweep's estimator configuration.
  util::Rng map_rng(std::stoull(flag_value(argc, argv, "--seed", "2007")) + 1);
  std::vector<platform::Mapping> candidates;
  candidates.reserve(12);
  for (int i = 0; i < 12; ++i) {
    candidates.push_back(platform::Mapping::random(
        wb.system().apps(), wb.system().platform(), map_rng));
  }
  const auto race = wb.race_mappings(candidates, sopts.estimator);
  const dse::RacerStats& rs = wb.racer_stats();
  std::cout << "[racer: best candidate #" << race->best << " (score "
            << util::format_double(race->outcomes[race->best].score, 3)
            << "), " << rs.races << " race(s), " << rs.arms << " arm(s), "
            << rs.estimator_pulls + rs.sim_pulls << " cheap pull(s), "
            << rs.full_evals << " full eval(s), " << rs.eliminated
            << " eliminated, " << rs.pruned_similar << " pruned similar, "
            << util::format_double(rs.eval_ratio(), 2) << "x eval savings]\n";
  return 0;
}

/// Streams the first rows of a service-side sink sweep into a table.
class TableSink : public api::SweepSink {
 public:
  TableSink(util::Table& table, const platform::System& sys, std::size_t limit)
      : table_(table), sys_(sys), limit_(limit) {}

  bool on_use_case(std::size_t index, const api::UseCaseView& r) override {
    std::string label;
    for (const auto id : r.use_case) {
      if (!label.empty()) label += "+";
      label += sys_.app(id).name();
    }
    double worst = 0.0;
    for (const auto& e : r.estimates) {
      worst = std::max(worst, e.normalised_period());
    }
    table_.add_row({std::to_string(index), label,
                    std::to_string(r.estimates.size()),
                    util::format_double(worst, 3)});
    return index + 1 < limit_;  // caller-driven: stop once the table is full
  }

 private:
  util::Table& table_;
  const platform::System& sys_;
  std::size_t limit_;
};

int cmd_serve(int argc, char** argv) {
  if (argc < 3) return usage(2);
  const auto clients = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--clients", "4")));
  const auto queries = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--queries", "32")));
  const auto threads = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--threads", "0")));
  const auto capacity = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--capacity", "4")));

  auto graphs = load_graphs(argv[2]);
  // Two tenants from one file: the full set, and the set without its last
  // application (distinct structure, so the service keeps two sessions).
  platform::System sys_a = make_system(graphs);
  if (graphs.size() > 1) graphs.pop_back();
  platform::System sys_b = make_system(std::move(graphs));

  // Serial oracles: every ticketed result must match these bitwise.
  api::Workbench oracle_a(sys_a, api::WorkbenchOptions{.threads = 1});
  api::Workbench oracle_b(sys_b, api::WorkbenchOptions{.threads = 1});
  const auto est_a = oracle_a.contention();
  const auto est_b = oracle_b.contention();
  const auto wc_a = oracle_a.wcrt();
  const auto wc_b = oracle_b.wcrt();

  api::AnalysisService service(api::ServiceOptions{
      .threads = threads, .session_capacity = capacity});
  const api::SystemId a = service.register_system(sys_a);
  const api::SystemId b = service.register_system(sys_b);

  std::vector<std::vector<api::QueryTicket>> tickets(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (std::size_t k = 0; k < queries; ++k) {
        api::QueryDesc d;
        d.kind = (k % 2 == 0) ? api::QueryKind::Contention : api::QueryKind::Wcrt;
        tickets[c].push_back(service.submit((c + k) % 2 == 0 ? a : b, d));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::size_t verified = 0;
  std::size_t mismatches = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t k = 0; k < queries; ++k) {
      const bool on_a = (c + k) % 2 == 0;
      const api::QueryValue& v = tickets[c][k].get();
      bool same = true;
      if (k % 2 == 0) {
        const auto& r = std::get<api::Report<std::vector<prob::AppEstimate>>>(v);
        const auto& oracle = on_a ? *est_a : *est_b;
        same = r->size() == oracle.size();
        for (std::size_t i = 0; same && i < oracle.size(); ++i) {
          same = (*r)[i].estimated_period == oracle[i].estimated_period;
        }
      } else {
        const auto& r = std::get<api::Report<std::vector<wcrt::AppBound>>>(v);
        const auto& oracle = on_a ? *wc_a : *wc_b;
        same = r->size() == oracle.size();
        for (std::size_t i = 0; same && i < oracle.size(); ++i) {
          same = (*r)[i].worst_case_period == oracle[i].worst_case_period;
        }
      }
      ++verified;
      if (!same) ++mismatches;
    }
  }

  const api::ServiceStats stats = service.stats();
  util::Table table("AnalysisService: " + std::to_string(clients) +
                    " client(s) x " + std::to_string(queries) + " queries");
  table.set_header({"counter", "value"});
  table.add_row({"tickets verified", std::to_string(verified)});
  table.add_row({"oracle mismatches", std::to_string(mismatches)});
  table.add_row({"submitted", std::to_string(stats.submitted)});
  table.add_row({"coalesced (shared in-flight)", std::to_string(stats.coalesced)});
  table.add_row({"executed", std::to_string(stats.executed)});
  table.add_row({"sessions built", std::to_string(stats.sessions_built)});
  table.add_row({"sessions evicted", std::to_string(stats.sessions_evicted)});
  table.add_row({"live sessions", std::to_string(service.session_count())});
  std::cout << table.render();

  // Shared transposition table: one line so an operator can see at a glance
  // whether cross-tenant memoisation is doing any work.
  const analysis::TranspositionTable::Stats tt = service.transposition_stats();
  std::cout << "[tt-stats: " << tt.hits << " hit(s), " << tt.misses
            << " miss(es), hit-rate "
            << util::format_double(100.0 * tt.hit_rate(), 1) << "%, "
            << tt.evictions << " eviction(s), " << tt.verify_failures
            << " verify failure(s)]\n";

  // Raced buffer frontiers: one BufferFrontier ticket per tenant with the
  // dse::Racer enabled, then the aggregated racing counters — one line so
  // an operator can see at a glance how much full-precision work the
  // candidate racing saved.
  {
    api::QueryDesc d;
    d.kind = api::QueryKind::BufferFrontier;
    d.buffers.max_steps = 48;
    d.buffers.racer.enabled = true;
    auto ta = service.submit(a, d);
    auto tb = service.submit(b, d);
    (void)ta.get();
    (void)tb.get();
    const dse::RacerStats rs = service.racer_stats();
    std::cout << "[racer: " << rs.races << " race(s), " << rs.arms
              << " arm(s), " << rs.estimator_pulls + rs.sim_pulls
              << " cheap pull(s), " << rs.full_evals << " full eval(s), "
              << rs.eliminated << " eliminated, " << rs.pruned_similar
              << " pruned similar, "
              << util::format_double(rs.eval_ratio(), 2)
              << "x eval savings]\n";
  }

  // Streaming sweep: per-use-case views delivered to a sink, first 8 rows.
  util::Rng rng(2007);
  const auto ucs = gen::sample_use_cases(sys_a.app_count(), 2, rng);
  util::Table sweep_table("Streaming sweep (sink-delivered views, first 8)");
  sweep_table.set_header({"#", "use-case", "apps", "worst normalised"});
  TableSink sink(sweep_table, sys_a, 8);
  const api::SweepSummary summary = service.sweep_use_cases(a, ucs, {}, sink);
  std::cout << sweep_table.render();
  std::cout << "[sweep: " << summary.delivered << " use-case(s) delivered"
            << (summary.stopped_early ? " (stopped by sink)" : "") << ", "
            << util::format_double(summary.wall_ms, 2) << " ms]\n";

  if (mismatches != 0) {
    std::cerr << "error: service results diverged from the serial oracle\n";
    return 1;
  }
  return 0;
}

int cmd_client(int argc, char** argv) {
  if (argc < 3) return usage(2);
  const auto tenants_n = std::max<std::size_t>(
      1, std::stoull(flag_value(argc, argv, "--tenants", "4")));
  const auto queries = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--queries", "56")));
  const auto spawn = static_cast<std::size_t>(
      std::stoull(flag_value(argc, argv, "--spawn", "0")));
  const std::string endpoint_list =
      flag_value(argc, argv, "--endpoints", "");

  const auto graphs = load_graphs(argv[2]);
  // K tenants from one file: tenant k keeps the first n - (k mod n) + 1
  // applications, so fingerprints repeat every n tenants — repeats land on
  // the same shard and share one resident session there.
  std::vector<platform::System> systems;
  systems.reserve(tenants_n);
  for (std::size_t k = 0; k < tenants_n; ++k) {
    std::vector<sdf::Graph> apps(
        graphs.begin(),
        graphs.begin() +
            static_cast<std::ptrdiff_t>(graphs.size() - k % graphs.size()));
    systems.push_back(make_system(std::move(apps)));
  }

  // The shard fleet: in-process loopback servers, or external endpoints.
  std::vector<std::unique_ptr<net::AnalysisServer>> spawned;
  std::vector<std::string> endpoints;
  if (spawn > 0) {
    for (std::size_t i = 0; i < spawn; ++i) {
      spawned.push_back(std::make_unique<net::AnalysisServer>(
          net::ServerOptions{}));
      endpoints.push_back(":" + std::to_string(spawned.back()->port()));
    }
  } else {
    std::stringstream ss(endpoint_list);
    std::string e;
    while (std::getline(ss, e, ',')) {
      if (!e.empty()) endpoints.push_back(e);
    }
  }
  if (endpoints.empty()) return usage(2);

  // Spawned multi-shard fleets start at one shard and grow mid-run: the
  // displaced tenants travel the snapshot/migration frames.
  const bool migrate = spawned.size() > 1;
  std::vector<std::string> initial = endpoints;
  if (migrate) initial.resize(1);
  net::ClusterClient cluster(net::ClusterOptions{.endpoints = initial});

  // The identity oracle: a direct in-process service over the same
  // tenants. Every routed result must decode to the same bytes.
  api::AnalysisService oracle(api::ServiceOptions{});
  std::vector<net::TenantId> routed_ids;
  std::vector<api::SystemId> oracle_ids;
  for (const auto& sys : systems) {
    routed_ids.push_back(cluster.register_system(sys));
    oracle_ids.push_back(oracle.register_system(sys));
  }

  const auto desc_for = [&](std::size_t k) {
    api::QueryDesc d;
    d.kind = static_cast<api::QueryKind>(k % 8);
    d.app = static_cast<sdf::AppId>(
        k % systems[k % systems.size()].app_count());
    d.sim.horizon = 20'000;  // keep Simulate queries smoke-sized
    return d;
  };

  std::size_t mismatches = 0;
  const auto run_batch = [&](std::size_t from, std::size_t to) {
    std::vector<net::PendingQuery> pending;
    pending.reserve(to - from);
    for (std::size_t k = from; k < to; ++k) {
      pending.push_back(
          cluster.submit(routed_ids[k % systems.size()], desc_for(k)));
    }
    for (std::size_t k = from; k < to; ++k) {
      const api::QueryValue routed = cluster.await(pending[k - from]);
      const api::QueryValue direct =
          oracle.submit(oracle_ids[k % systems.size()], desc_for(k)).get();
      // Bitwise identity, provenance excluded (wall time is not a result).
      net::WireWriter a;
      net::WireWriter b;
      net::encode_query_payload(a, routed);
      net::encode_query_payload(b, direct);
      if (!std::equal(a.view().begin(), a.view().end(), b.view().begin(),
                      b.view().end())) {
        ++mismatches;
      }
    }
  };

  run_batch(0, queries / 2);
  std::size_t migrated = 0;
  if (migrate) {
    migrated = cluster.set_endpoints(endpoints);
    std::cout << "[migration: fleet grew 1 -> " << endpoints.size()
              << " shard(s), " << migrated << " tenant(s) moved]\n";
  }
  run_batch(queries / 2, queries);

  // Per-shard counters over the wire (StatsRequest), so an operator sees
  // the cross-tenant sharing that fingerprint routing produces remotely.
  util::Table table("Cluster: " + std::to_string(tenants_n) +
                    " tenant(s) x " + std::to_string(queries) +
                    " routed queries, " +
                    std::to_string(cluster.router().shard_count()) +
                    " shard(s)");
  table.set_header({"shard", "submitted", "coalesced", "result hits",
                    "executed", "sessions", "tt hit-rate"});
  for (std::size_t s = 0; s < cluster.router().shard_count(); ++s) {
    const net::WireStats ws = cluster.stats(s);
    table.add_row({cluster.router().endpoints()[s],
                   std::to_string(ws.service.submitted),
                   std::to_string(ws.service.coalesced),
                   std::to_string(ws.service.result_hits),
                   std::to_string(ws.service.executed),
                   std::to_string(ws.service.sessions_built),
                   util::format_double(100.0 * ws.table.hit_rate(), 1) + "%"});
  }
  std::cout << table.render();
  std::cout << "[identity: " << (queries - mismatches) << "/" << queries
            << " routed results bitwise-equal to the direct oracle]\n";
  if (mismatches != 0) {
    std::cerr << "error: routed results diverged from the direct oracle\n";
    return 1;
  }
  return 0;
}

int cmd_buffers(int argc, char** argv) {
  if (argc < 3) return usage(2);
  api::Workbench wb(make_system(load_graphs(argv[2])),
                    api::WorkbenchOptions{.threads = 1});
  util::Table table("Buffer-capacity / period Pareto frontier");
  table.set_header({"app", "point", "total tokens", "period"});
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    const auto frontier = wb.buffer_frontier(i);
    for (std::size_t k = 0; k < frontier->points.size(); ++k) {
      table.add_row({wb.system().app(i).name(), std::to_string(k),
                     std::to_string(frontier->points[k].total_tokens),
                     util::format_double(frontier->points[k].period, 3)});
    }
  }
  std::cout << table.render();
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 3) return usage(2);
  for (const auto& g : load_graphs(argv[2])) {
    std::cout << sdf::to_dot(g);
  }
  return 0;
}

#define CLI_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) {                                                \
      std::cerr << "selftest FAILED at " << __LINE__ << ": "      \
                << #cond << "\n";                                 \
      return 1;                                                   \
    }                                                             \
  } while (0)

int cmd_selftest() {
  // generate -> serialise -> parse -> analyse -> estimate -> simulate,
  // everything cross-checked between the Workbench session and the legacy
  // free functions.
  util::Rng rng(99);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 5;
  gopts.max_actors = 7;
  const auto graphs = gen::generate_graphs(rng, gopts, 3);
  std::stringstream stream;
  for (const auto& g : graphs) sdf::write_graph(stream, g);
  const auto parsed = sdf::read_graphs(stream);
  CLI_CHECK(parsed.size() == graphs.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    CLI_CHECK(sdf::is_consistent(parsed[i]));
    CLI_CHECK(sdf::is_strongly_connected(parsed[i]));
    CLI_CHECK(sdf::is_deadlock_free(parsed[i]));
    const double original = analysis::compute_period(graphs[i]).period;
    const double roundtrip = analysis::compute_period(parsed[i]).period;
    CLI_CHECK(std::abs(original - roundtrip) < 1e-9);
  }
  api::Workbench wb(make_system(parsed), api::WorkbenchOptions{.threads = 2});

  // Workbench queries must equal the legacy free functions bit for bit.
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    CLI_CHECK(wb.throughput(i)->period ==
              analysis::compute_period(wb.system().app(i)).period);
    CLI_CHECK(wb.latency(i)->latency ==
              analysis::compute_latency(wb.system().app(i)).latency);
  }
  const auto est = wb.contention();
  // Independent path: one-shot engines over a full-system view.
  const auto fresh =
      prob::ContentionEstimator().estimate(platform::SystemView(wb.system()));
  CLI_CHECK(est->size() == fresh.size());
  for (std::size_t i = 0; i < est->size(); ++i) {
    CLI_CHECK((*est)[i].estimated_period == fresh[i].estimated_period);
  }

  // A sharded sweep must not depend on the worker count.
  const auto use_cases = gen::all_use_cases(wb.app_count());
  api::Workbench serial(make_system(parsed), api::WorkbenchOptions{.threads = 1});
  const auto a = serial.sweep_use_cases(use_cases);
  const auto b = wb.sweep_use_cases(use_cases);
  CLI_CHECK(a->size() == b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    for (std::size_t j = 0; j < (*a)[i].estimates.size(); ++j) {
      CLI_CHECK((*a)[i].estimates[j].estimated_period ==
                (*b)[i].estimates[j].estimated_period);
    }
  }

  const auto simres = wb.simulate(sim::SimOptions{.horizon = 200'000});
  CLI_CHECK(est->size() == simres->apps.size());
  for (std::size_t i = 0; i < est->size(); ++i) {
    CLI_CHECK((*est)[i].estimated_period >= (*est)[i].isolation_period - 1e-9);
    CLI_CHECK(simres->apps[i].converged);
  }

  // The service front door answers exactly like the session underneath.
  api::AnalysisService service(api::ServiceOptions{.threads = 2});
  const api::SystemId sid = service.register_system(wb.system());
  api::QueryDesc q;
  q.kind = api::QueryKind::Contention;
  auto t1 = service.submit(sid, q);
  auto t2 = service.submit(sid, q);  // identical: may coalesce with t1
  const auto& served =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(t1.get());
  const auto& served2 =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(t2.get());
  CLI_CHECK(served->size() == est->size());
  for (std::size_t i = 0; i < est->size(); ++i) {
    CLI_CHECK((*served)[i].estimated_period == (*est)[i].estimated_period);
    CLI_CHECK((*served2)[i].estimated_period == (*est)[i].estimated_period);
  }
  const auto sstats = service.stats();
  // The second submit is served without a fresh execution: either it
  // coalesced onto the in-flight twin or it hit the result cache.
  CLI_CHECK(sstats.submitted ==
            sstats.executed + sstats.coalesced + sstats.result_hits);
  std::cout << "selftest OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  try {
    if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(0);
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "period") return cmd_period(argc, argv);
    if (cmd == "estimate") return cmd_estimate(argc, argv);
    if (cmd == "simulate") return cmd_simulate(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "buffers") return cmd_buffers(argc, argv);
    if (cmd == "dot") return cmd_dot(argc, argv);
    if (cmd == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command: " << cmd << '\n';
  return usage(2);
}
