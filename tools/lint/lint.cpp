#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/lexer.h"

namespace procon::lint {
namespace {

// ---- rule table -----------------------------------------------------------

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"det-rand", "determinism",
       "rand()/srand()/rand_r() forbidden in result-producing namespaces; "
       "use util::Rng seeded from the query"},
      {"det-random-device", "determinism",
       "std::random_device is entropy, not reproducible; seeds must be "
       "query-derived"},
      {"det-wallclock", "determinism",
       "wall-clock reads (chrono ::now(), time(), gettimeofday, "
       "clock_gettime) leak real time into results"},
      {"det-pointer-hash", "determinism",
       "hashing a pointer value (std::hash<T*>, unordered container keyed "
       "on a pointer) varies run to run; key on ids or fingerprints"},
      {"det-unordered-iter", "determinism",
       "iterating an unordered container (range-for or begin()) visits "
       "elements in hash order; iterate a sorted/indexed mirror instead"},
      {"warm-new", "warm-path",
       "`new` inside a PROCON_WARM_PATH body allocates on the warm path"},
      {"warm-container-construct", "warm-path",
       "constructing a local container inside a PROCON_WARM_PATH body "
       "allocates; use a workspace/member arena with grow-only capacity"},
      {"warm-std-function", "warm-path",
       "std::function inside a PROCON_WARM_PATH body may heap-allocate its "
       "target; take a template or function_ref-style parameter"},
      {"warm-push-back", "warm-path",
       "push_back/emplace_back on a body-local container without a prior "
       "reserve() on it reallocates on the warm path"},
      {"codec-unguarded-size", "codec-bounds",
       "resize/reserve/sized construction from a decoded integer that did "
       "not flow through get_count()/take(); a hostile length must fail "
       "before it sizes an allocation"},
      {"lint-allow-without-justification", "meta",
       "a lint:allow(rule) escape must carry a `: justification` explaining "
       "why the contract holds anyway"},
      {"lint-allow-unknown-rule", "meta",
       "a lint:allow() escape names a rule id that does not exist"},
  };
  return kRules;
}

// ---- token-stream helpers -------------------------------------------------

using Toks = std::vector<Token>;

bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::Identifier && t.text == s;
}
bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Skips a template argument list: `i` indexes the `<` token; returns the
/// index one past the matching `>`. `>>` counts as two closes. Bails out
/// (returns `i`) if no balanced close is found within the stream — the
/// `<` was a comparison, not a template.
std::size_t skip_template(const Toks& code, std::size_t i) {
  if (i >= code.size() || !is_punct(code[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    const Token& t = code[j];
    if (t.kind != TokKind::Punct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return i;  // statement ended: not a template argument list
    }
  }
  return i;
}

/// Index one past the matching `)`; `i` indexes the `(`.
std::size_t skip_parens(const Toks& code, std::size_t i) {
  if (i >= code.size() || !is_punct(code[i], "(")) return i;
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    if (is_punct(code[j], "(")) ++depth;
    if (is_punct(code[j], ")") && --depth == 0) return j + 1;
  }
  return code.size();
}

/// Index of the matching `}`; `i` indexes the `{`. Returns code.size() when
/// unbalanced.
std::size_t find_close_brace(const Toks& code, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    if (is_punct(code[j], "{")) ++depth;
    if (is_punct(code[j], "}") && --depth == 0) return j;
  }
  return code.size();
}

/// Allocating container types for the warm-path and codec families.
/// std::function is ruled separately (warm-std-function).
const std::set<std::string_view>& alloc_types() {
  static const std::set<std::string_view> kTypes = {
      "vector",        "string",        "basic_string",
      "deque",         "list",          "forward_list",
      "map",           "set",           "multimap",
      "multiset",      "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset",
      "queue",         "stack",         "priority_queue",
      "stringstream",  "ostringstream", "istringstream",
  };
  return kTypes;
}

const std::set<std::string_view>& unordered_types() {
  static const std::set<std::string_view> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

/// Decoder read methods of net::WireReader whose results taint sizes.
const std::set<std::string_view>& wire_reads() {
  static const std::set<std::string_view> kReads = {
      "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"};
  return kReads;
}

// ---- allow-escape parsing -------------------------------------------------

struct AllowMap {
  // line -> rule ids allowed on that line
  std::map<int, std::set<std::string>> by_line;
};

void parse_allows(const Toks& all, AllowMap& allows,
                  std::vector<Finding>& out, const std::string& file,
                  const Options& opts) {
  for (const Token& t : all) {
    if (t.kind != TokKind::Comment) continue;
    const std::string_view text = t.text;
    std::size_t pos = text.find("lint:allow(");
    while (pos != std::string_view::npos) {
      const std::size_t open = pos + std::string_view("lint:allow(").size();
      const std::size_t close = text.find(')', open);
      if (close == std::string_view::npos) break;
      // Comma-separated rule list inside the parens.
      std::string_view list = text.substr(open, close - open);
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string_view::npos) comma = list.size();
        std::string_view id = list.substr(start, comma - start);
        while (!id.empty() && id.front() == ' ') id.remove_prefix(1);
        while (!id.empty() && id.back() == ' ') id.remove_suffix(1);
        if (!id.empty()) {
          if (!is_rule_id(id)) {
            if (opts.enabled("lint-allow-unknown-rule")) {
              out.push_back({file, t.line, "lint-allow-unknown-rule",
                             "lint:allow names unknown rule '" +
                                 std::string(id) + "'"});
            }
          } else {
            allows.by_line[t.line].insert(std::string(id));
          }
        }
        start = comma + 1;
      }
      // Justification: a ':' after the ')' followed by non-space text.
      std::size_t j = close + 1;
      bool justified = false;
      if (j < text.size() && text[j] == ':') {
        ++j;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        justified = j < text.size() && text[j] != '\0';
      }
      if (!justified && opts.enabled("lint-allow-without-justification")) {
        out.push_back({file, t.line, "lint-allow-without-justification",
                       "lint:allow escape has no ': justification'"});
      }
      pos = text.find("lint:allow(", close);
    }
  }
}

// ---- the linter -----------------------------------------------------------

class Linter {
 public:
  Linter(std::string file, const Toks& code, const Options& opts,
         std::vector<Finding>& out)
      : file_(std::move(file)), code_(code), opts_(opts), out_(out) {}

  void run() {
    collect_unordered_vars();
    scan();
    if (file_.find(opts_.codec_path) != std::string::npos) lint_codec();
  }

 private:
  void report(std::string_view rule, int line, std::string msg) {
    if (!opts_.enabled(rule)) return;
    out_.push_back({file_, line, std::string(rule), std::move(msg)});
  }

  // -- namespace tracking --

  struct NsFrame {
    int depth;  // brace depth *after* the namespace's '{'
    bool result_producing;
  };

  bool in_result_namespace() const {
    for (const NsFrame& f : ns_) {
      if (f.result_producing) return true;
    }
    return false;
  }

  bool is_result_component(std::string_view name) const {
    return std::find(opts_.result_namespaces.begin(),
                     opts_.result_namespaces.end(),
                     name) != opts_.result_namespaces.end();
  }

  // -- pass 0: every unordered container variable declared in the file --

  void collect_unordered_vars() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind != TokKind::Identifier || !unordered_types().count(t.text)) {
        continue;
      }
      std::size_t j = i + 1;
      if (j >= code_.size() || !is_punct(code_[j], "<")) continue;
      j = skip_template(code_, j);
      if (j == i + 1) continue;  // unbalanced: comparison, not a template
      // Skip declarator decorations; give up on nested-name uses.
      while (j < code_.size() &&
             (is_punct(code_[j], "&") || is_punct(code_[j], "&&") ||
              is_punct(code_[j], "*") || is_ident(code_[j], "const"))) {
        ++j;
      }
      if (j >= code_.size()) continue;
      if (code_[j].kind != TokKind::Identifier) continue;
      if (j + 1 < code_.size() && is_punct(code_[j + 1], "(")) {
        // function returning the container, not a variable
        continue;
      }
      unordered_vars_.insert(std::string(code_[j].text));
    }
  }

  // -- main scan --

  void scan() {
    int depth = 0;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!ns_.empty() && ns_.back().depth > depth) ns_.pop_back();
        continue;
      }
      if (t.kind != TokKind::Identifier) continue;

      if (t.text == "namespace") {
        i = enter_namespace(i, depth);
        // depth adjusts on the '{' token next iteration; enter_namespace
        // leaves `i` *before* the '{' (or at the alias's ';').
        continue;
      }
      if (t.text == opts_.warm_annotation) {
        lint_warm_annotation(i);
        continue;
      }
      if (in_result_namespace()) check_determinism(i);
    }
  }

  /// Parses `namespace a::b {` / `namespace {` / `namespace x = y;`,
  /// pushing a frame for the brace forms. Returns the index of the token
  /// *before* the '{' or ';'.
  std::size_t enter_namespace(std::size_t i, int depth) {
    std::size_t j = i + 1;
    bool result = false;
    while (j < code_.size() && (code_[j].kind == TokKind::Identifier ||
                                is_punct(code_[j], "::"))) {
      if (code_[j].kind == TokKind::Identifier &&
          is_result_component(code_[j].text)) {
        result = true;
      }
      ++j;
    }
    if (j < code_.size() && is_punct(code_[j], "=")) return j;  // alias
    if (j < code_.size() && is_punct(code_[j], "{")) {
      ns_.push_back(NsFrame{depth + 1, result});
      return j - 1;
    }
    return j > i ? j - 1 : i;
  }

  // -- determinism family --

  void check_determinism(std::size_t i) {
    const Token& t = code_[i];
    const bool member_call =
        i > 0 && (is_punct(code_[i - 1], ".") || is_punct(code_[i - 1], "->"));
    auto next_is = [&](std::size_t k, std::string_view s) {
      return i + k < code_.size() && is_punct(code_[i + k], s);
    };

    // det-rand: the C PRNG family as free calls (member calls named rand on
    // a deterministic engine are someone's API, not libc).
    if ((t.text == "rand" || t.text == "srand" || t.text == "rand_r" ||
         t.text == "drand48" || t.text == "lrand48") &&
        next_is(1, "(") && !member_call) {
      report("det-rand", t.line,
             "call to " + std::string(t.text) +
                 "() in a result-producing namespace");
      return;
    }

    if (t.text == "random_device") {
      report("det-random-device", t.line,
             "std::random_device in a result-producing namespace");
      return;
    }

    // det-wallclock.
    static const std::set<std::string_view> kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock", "utc_clock",
        "file_clock", "tai_clock", "gps_clock"};
    if (kClocks.count(t.text) && next_is(1, "::") && i + 2 < code_.size() &&
        is_ident(code_[i + 2], "now")) {
      report("det-wallclock", t.line,
             std::string(t.text) + "::now() in a result-producing namespace");
      return;
    }
    if ((t.text == "gettimeofday" || t.text == "clock_gettime" ||
         t.text == "timespec_get") &&
        next_is(1, "(")) {
      report("det-wallclock", t.line,
             std::string(t.text) + "() in a result-producing namespace");
      return;
    }
    if ((t.text == "time" || t.text == "clock") && next_is(1, "(") &&
        !member_call && i >= 2 && is_punct(code_[i - 1], "::") &&
        is_ident(code_[i - 2], "std")) {
      report("det-wallclock", t.line,
             "std::" + std::string(t.text) +
                 "() in a result-producing namespace");
      return;
    }

    // det-pointer-hash: std::hash<T*> or an unordered container keyed on a
    // pointer type.
    if (t.text == "hash" && next_is(1, "<")) {
      if (template_args_have_top_level_star(i + 1, /*first_arg_only=*/false)) {
        report("det-pointer-hash", t.line,
               "std::hash over a pointer type hashes the address");
      }
      return;
    }
    if (unordered_types().count(t.text) && next_is(1, "<")) {
      if (template_args_have_top_level_star(i + 1, /*first_arg_only=*/true)) {
        report("det-pointer-hash", t.line,
               std::string(t.text) +
                   " keyed on a pointer hashes the address");
      }
      // fall through: the declaration is also recorded by pass 0
    }

    // det-unordered-iter: range-for over a known unordered variable…
    if (t.text == "for" && next_is(1, "(")) {
      check_range_for(i);
      return;
    }
    // …or explicit iteration via begin()/end() on one.
    // end()/cend() alone are harmless; flagging only the begin family keeps
    // an iterator loop to one finding.
    static const std::set<std::string_view> kIterFns = {"begin", "cbegin",
                                                        "rbegin"};
    if (member_call && kIterFns.count(t.text) && next_is(1, "(") && i >= 2 &&
        code_[i - 2].kind == TokKind::Identifier &&
        unordered_vars_.count(std::string(code_[i - 2].text))) {
      report("det-unordered-iter", t.line,
             "iteration over unordered container '" +
                 std::string(code_[i - 2].text) + "' (" +
                 std::string(t.text) + "()) has hash-dependent order");
    }
  }

  /// True when the template argument list starting at the `<` at index `lt`
  /// contains a top-level `*` (first argument only when requested —
  /// unordered containers hash only their key).
  bool template_args_have_top_level_star(std::size_t lt, bool first_arg_only) {
    int depth = 0;
    for (std::size_t j = lt; j < code_.size(); ++j) {
      const Token& t = code_[j];
      if (t.kind != TokKind::Punct) continue;
      if (t.text == "<") {
        ++depth;
      } else if (t.text == ">") {
        if (--depth == 0) return false;
      } else if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return false;
      } else if (t.text == "(") {
        j = skip_parens(code_, j) - 1;
      } else if (depth == 1 && t.text == "," && first_arg_only) {
        return false;
      } else if (depth == 1 && t.text == "*") {
        return true;
      } else if (t.text == ";" || t.text == "{") {
        return false;  // was a comparison after all
      }
    }
    return false;
  }

  void check_range_for(std::size_t for_idx) {
    const std::size_t open = for_idx + 1;
    const std::size_t close = skip_parens(code_, open);
    // Find the range-for ':' at paren depth 1 (skip "::" — one token).
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (is_punct(code_[j], "(")) ++depth;
      if (is_punct(code_[j], ")")) --depth;
      if (depth == 1 && is_punct(code_[j], ";")) return;  // classic for
      if (depth == 1 && is_punct(code_[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) return;
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (code_[j].kind == TokKind::Identifier &&
          unordered_vars_.count(std::string(code_[j].text))) {
        report("det-unordered-iter", code_[for_idx].line,
               "range-for over unordered container '" +
                   std::string(code_[j].text) + "' has hash-dependent order");
        return;
      }
    }
  }

  // -- warm-path family --

  /// `anno` indexes the PROCON_WARM_PATH token. Finds the function body it
  /// annotates and checks it. Annotated declarations (terminated by `;`
  /// before any body) are skipped — headers may carry the macro for
  /// documentation.
  void lint_warm_annotation(std::size_t anno) {
    std::size_t j = anno + 1;
    int pdepth = 0;
    bool saw_params = false;
    std::size_t body_open = code_.size();
    for (; j < code_.size(); ++j) {
      const Token& t = code_[j];
      if (is_punct(t, "(")) ++pdepth;
      if (is_punct(t, ")")) {
        if (--pdepth == 0) saw_params = true;
      }
      if (pdepth > 0) continue;
      if (is_punct(t, ";")) return;  // declaration only
      if (is_punct(t, "{") && saw_params) {
        body_open = j;
        break;
      }
    }
    if (body_open >= code_.size()) return;
    const std::size_t body_close = find_close_brace(code_, body_open);
    lint_warm_body(body_open + 1, body_close);
  }

  void lint_warm_body(std::size_t begin, std::size_t end) {
    std::set<std::string> locals;          // body-local container names
    std::set<std::string> reserved;        // locals that saw x.reserve(
    // First pass: find reserve() targets so declaration order within the
    // body does not matter for the reserve-before-push_back check.
    for (std::size_t i = begin; i + 3 < end; ++i) {
      if (code_[i].kind == TokKind::Identifier &&
          is_punct(code_[i + 1], ".") && is_ident(code_[i + 2], "reserve") &&
          is_punct(code_[i + 3], "(")) {
        reserved.insert(std::string(code_[i].text));
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = code_[i];
      if (t.kind != TokKind::Identifier) continue;

      if (t.text == "new" &&
          !(i > begin && is_ident(code_[i - 1], "operator"))) {
        report("warm-new", t.line, "`new` inside a PROCON_WARM_PATH body");
        continue;
      }

      if (t.text == "function" && i >= 2 && is_punct(code_[i - 1], "::") &&
          is_ident(code_[i - 2], "std")) {
        report("warm-std-function", t.line,
               "std::function inside a PROCON_WARM_PATH body");
        continue;
      }

      if (alloc_types().count(t.text)) {
        std::size_t j = i + 1;
        if (j < end && is_punct(code_[j], "<")) {
          const std::size_t after = skip_template(code_, j);
          if (after == j) continue;  // comparison, not a template
          j = after;
        }
        if (j >= end) continue;
        if (is_punct(code_[j], "::")) continue;  // nested type, no object
        if (is_punct(code_[j], "&") || is_punct(code_[j], "&&") ||
            is_punct(code_[j], "*")) {
          continue;  // reference/pointer binding: no construction
        }
        if (code_[j].kind == TokKind::Identifier &&
            code_[j].text != "const") {
          // `std::vector<int> tmp …` — a local that owns an allocation.
          locals.insert(std::string(code_[j].text));
          report("warm-container-construct", t.line,
                 "local " + std::string(t.text) +
                     " constructed inside a PROCON_WARM_PATH body");
        } else if (is_punct(code_[j], "(") || is_punct(code_[j], "{")) {
          report("warm-container-construct", t.line,
                 "temporary " + std::string(t.text) +
                     " constructed inside a PROCON_WARM_PATH body");
        }
        continue;
      }

      if ((t.text == "push_back" || t.text == "emplace_back") && i >= 2 &&
          is_punct(code_[i - 1], ".") &&
          code_[i - 2].kind == TokKind::Identifier && i + 1 < end &&
          is_punct(code_[i + 1], "(")) {
        const std::string target(code_[i - 2].text);
        if (locals.count(target) && !reserved.count(target)) {
          report("warm-push-back", t.line,
                 std::string(t.text) + " on unreserved body-local '" +
                     target + "' inside a PROCON_WARM_PATH body");
        }
      }
    }
  }

  // -- codec-bounds family --

  /// Taint tracking over the whole file: variables assigned from raw
  /// WireReader reads are tainted; assignment through the get_count()/take()
  /// guards sanitises. Taint is per-function (cleared when the brace depth
  /// returns to namespace level).
  void lint_codec() {
    std::set<std::string> tainted;
    int depth = 0;
    int ns_depth = 0;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind == TokKind::Identifier && t.text == "namespace") {
        // Count namespace braces so function-end detection stays right.
        std::size_t j = i + 1;
        while (j < code_.size() && (code_[j].kind == TokKind::Identifier ||
                                    is_punct(code_[j], "::"))) {
          ++j;
        }
        if (j < code_.size() && is_punct(code_[j], "{")) {
          ++ns_depth;
          ++depth;
          i = j;
        }
        continue;
      }
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        if (depth <= ns_depth) {
          if (depth < ns_depth) ns_depth = depth;
          tainted.clear();  // left a top-level function (or a namespace)
        }
        continue;
      }
      if (t.kind != TokKind::Identifier) continue;

      // Assignment / initialisation: `name = <rhs> ;`
      if (i + 1 < code_.size() && is_punct(code_[i + 1], "=")) {
        const std::size_t rhs_begin = i + 2;
        std::size_t rhs_end = rhs_begin;
        int d = 0;
        while (rhs_end < code_.size()) {
          const Token& r = code_[rhs_end];
          if (is_punct(r, "(") || is_punct(r, "{")) ++d;
          if (is_punct(r, ")") || is_punct(r, "}")) --d;
          if (d <= 0 && (is_punct(r, ";") || (d < 0))) break;
          ++rhs_end;
        }
        const std::string name(t.text);
        if (range_has_guard(rhs_begin, rhs_end)) {
          tainted.erase(name);
        } else if (range_is_tainted(rhs_begin, rhs_end, tainted)) {
          tainted.insert(name);
        }
        continue;
      }

      // `x.resize(<arg>)` / `x.reserve(<arg>)`
      if ((t.text == "resize" || t.text == "reserve") && i >= 1 &&
          (is_punct(code_[i - 1], ".") || is_punct(code_[i - 1], "->")) &&
          i + 1 < code_.size() && is_punct(code_[i + 1], "(")) {
        const std::size_t close = skip_parens(code_, i + 1);
        if (!range_has_guard(i + 2, close - 1) &&
            range_is_tainted(i + 2, close - 1, tainted)) {
          report("codec-unguarded-size", t.line,
                 std::string(t.text) +
                     " sized from a decoded integer that did not flow "
                     "through get_count()");
        }
        continue;
      }

      // `std::vector<T> v(<arg>)` — sized construction.
      if (alloc_types().count(t.text)) {
        std::size_t j = i + 1;
        if (j < code_.size() && is_punct(code_[j], "<")) {
          const std::size_t after = skip_template(code_, j);
          if (after == j) continue;
          j = after;
        }
        if (j + 1 < code_.size() && code_[j].kind == TokKind::Identifier &&
            is_punct(code_[j + 1], "(")) {
          const std::size_t close = skip_parens(code_, j + 1);
          if (!range_has_guard(j + 2, close - 1) &&
              range_is_tainted(j + 2, close - 1, tainted)) {
            report("codec-unguarded-size", t.line,
                   std::string(t.text) +
                       " constructed with a size from a decoded integer "
                       "that did not flow through get_count()");
          }
        }
      }
    }
  }

  bool range_has_guard(std::size_t begin, std::size_t end) const {
    for (std::size_t j = begin; j < end && j < code_.size(); ++j) {
      if (code_[j].kind == TokKind::Identifier &&
          (code_[j].text == "get_count" || code_[j].text == "take") &&
          j + 1 < code_.size() && is_punct(code_[j + 1], "(")) {
        return true;
      }
    }
    return false;
  }

  bool range_is_tainted(std::size_t begin, std::size_t end,
                        const std::set<std::string>& tainted) const {
    for (std::size_t j = begin; j < end && j < code_.size(); ++j) {
      const Token& t = code_[j];
      if (t.kind != TokKind::Identifier) continue;
      if (tainted.count(std::string(t.text))) return true;
      // A raw read call anywhere in the range: r.u32(), u32(), …
      if (wire_reads().count(t.text) && j + 1 < code_.size() &&
          is_punct(code_[j + 1], "(")) {
        return true;
      }
    }
    return false;
  }

  std::string file_;
  const Toks& code_;
  const Options& opts_;
  std::vector<Finding>& out_;
  std::vector<NsFrame> ns_;
  std::set<std::string> unordered_vars_;
};

}  // namespace

// ---- public interface -----------------------------------------------------

const std::vector<RuleInfo>& rules() { return rule_table(); }

bool is_rule_id(std::string_view id) {
  for (const RuleInfo& r : rule_table()) {
    if (r.id == id) return true;
  }
  return false;
}

bool Options::enabled(std::string_view rule) const {
  return std::find(disabled.begin(), disabled.end(), rule) == disabled.end();
}

std::vector<Finding> lint_source(std::string_view path, std::string_view src,
                                 const Options& opts) {
  const Toks all = tokenize(src);
  std::vector<Finding> out;
  AllowMap allows;
  parse_allows(all, allows, out, std::string(path), opts);

  // Code stream: comments and preprocessor lines out of the matcher's way.
  Toks code;
  code.reserve(all.size());
  for (const Token& t : all) {
    if (t.kind == TokKind::Comment || t.kind == TokKind::Preprocessor) {
      continue;
    }
    code.push_back(t);
  }

  // An allow escape on a comment-only line covers the next code line (the
  // NOLINTNEXTLINE pattern) — justifications often need their own line.
  {
    std::set<int> code_lines;
    for (const Token& t : code) code_lines.insert(t.line);
    std::vector<std::pair<int, std::set<std::string>>> forwarded;
    for (const auto& [line, ids] : allows.by_line) {
      if (code_lines.count(line)) continue;
      const auto next = code_lines.upper_bound(line);
      if (next != code_lines.end()) forwarded.emplace_back(*next, ids);
    }
    for (auto& [line, ids] : forwarded) {
      allows.by_line[line].insert(ids.begin(), ids.end());
    }
  }

  Linter(std::string(path), code, opts, out).run();

  // Apply per-line allow escapes (meta findings are never suppressible).
  std::vector<Finding> kept;
  kept.reserve(out.size());
  for (Finding& f : out) {
    const auto it = allows.by_line.find(f.line);
    if (it != allows.by_line.end() && it->second.count(f.rule) &&
        f.rule.rfind("lint-allow", 0) != 0) {
      continue;
    }
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

std::vector<Finding> lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("procon_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  return lint_source(path, src, opts);
}

std::string render_rule_table() {
  std::ostringstream os;
  os << "# procon_lint rules\n\n";
  os << "Generated by `procon_lint --list-rules`; CI diffs this file "
        "against the\nbinary's output, so regenerate it (`procon_lint "
        "--list-rules > docs/LINT_RULES.md`)\nwhenever the rule table "
        "changes.\n\n";
  os << "| rule | family | enforces |\n";
  os << "|------|--------|----------|\n";
  for (const RuleInfo& r : rules()) {
    os << "| `" << r.id << "` | " << r.family << " | " << r.summary
       << " |\n";
  }
  os << "\nSuppress a single line with `// lint:allow(rule-id): "
        "justification` —\nthe justification is mandatory and the escape "
        "itself is linted.\n";
  return os.str();
}

}  // namespace procon::lint
