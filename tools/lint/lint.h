// procon_lint — repo-specific contract checker for the procon codebase.
//
// Three contract families are enforced at the source level, before any test
// has to *happen* to exercise the violating path (docs/ARCHITECTURE.md
// "Contract enforcement" maps each rule to the cached-object contract it
// guards):
//
//  * determinism (det-*): result-producing namespaces (analysis, prob, sim,
//    dse, wcrt) must stay bitwise reproducible for any thread count and
//    table state, so nondeterministic sources — rand(), random_device,
//    wall-clock now(), pointer-value hashing, iteration over unordered
//    containers — are forbidden there;
//  * warm-path zero-alloc (warm-*): function definitions annotated
//    PROCON_WARM_PATH (src/util/contracts.h) are documented
//    zero-heap-allocation serving paths; local container construction,
//    `new`, std::function and unreserved push_back on body-locals are
//    flagged (member/workspace arenas stay fair game — the grow-only
//    contract lives there);
//  * codec bounds (codec-*): in src/net/codec.*, every resize/reserve or
//    sized container construction whose argument derives from a decoded
//    integer must flow through the get_count()/take() guards, so a hostile
//    length can never drive a giant allocation.
//
// Escape hatch: `// lint:allow(rule-id): justification` on the finding's
// line suppresses that rule there; an escape without a justification (or
// naming an unknown rule) is itself a finding.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace procon::lint {

struct RuleInfo {
  std::string_view id;       ///< stable rule identifier, e.g. "det-rand"
  std::string_view family;   ///< determinism | warm-path | codec-bounds | meta
  std::string_view summary;  ///< one-line description (drives --list-rules)
};

/// The full rule table in stable order. docs/LINT_RULES.md is the committed
/// `procon_lint --list-rules` rendering of exactly this table (a CI check
/// diffs the two).
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// True when `id` names a rule in rules().
[[nodiscard]] bool is_rule_id(std::string_view id);

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Rule ids switched off (findings for them are dropped entirely).
  std::vector<std::string> disabled;
  /// Path substring that activates the codec-bounds family for a file.
  std::string codec_path = "net/codec";
  /// Annotation macro marking zero-alloc warm-path function definitions.
  std::string warm_annotation = "PROCON_WARM_PATH";
  /// Namespace components whose code must be deterministic.
  std::vector<std::string> result_namespaces = {"analysis", "prob", "sim",
                                                "dse", "wcrt"};

  [[nodiscard]] bool enabled(std::string_view rule) const;
};

/// Lints one in-memory source. `path` is used for reporting and for the
/// codec-family path match only.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view src,
                                               const Options& opts);

/// Reads `path` and lints it. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& opts);

/// Renders rules() as the markdown document committed at docs/LINT_RULES.md.
[[nodiscard]] std::string render_rule_table();

}  // namespace procon::lint
