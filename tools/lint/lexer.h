// Minimal C++ tokenizer for procon_lint.
//
// procon_lint is a repo-specific contract checker, not a compiler: it needs
// identifiers, punctuation and line numbers, and it needs comments kept as
// tokens (the `// lint:allow(rule): why` escapes live there). Preprocessor
// directives are swallowed whole (one token per logical line, continuations
// included) so a `#define PROCON_WARM_PATH` never looks like an annotated
// function. String, character and raw-string literals are single tokens, so
// braces or keywords inside them can never confuse the matcher.
#pragma once

#include <string_view>
#include <vector>

namespace procon::lint {

enum class TokKind {
  Identifier,    ///< [A-Za-z_][A-Za-z0-9_]*
  Number,        ///< integer / float literal (incl. hex and digit separators)
  String,        ///< "..." or R"delim(...)delim", prefixes included
  CharLit,       ///< '...'
  Punct,         ///< operator / punctuation, longest-match over a small table
  Comment,       ///< // to end of line, or /* ... */ (delimiters included)
  Preprocessor,  ///< a whole # directive line, backslash continuations merged
};

struct Token {
  TokKind kind;
  std::string_view text;  ///< view into the source buffer passed to tokenize()
  int line;               ///< 1-based line of the token's first character
};

/// Tokenizes C++ source. Never throws on malformed input: an unterminated
/// literal or comment simply becomes a token running to end of file. The
/// returned views point into `src`, which must outlive the result.
[[nodiscard]] std::vector<Token> tokenize(std::string_view src);

}  // namespace procon::lint
