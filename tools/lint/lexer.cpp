#include "lint/lexer.h"

#include <cctype>
#include <cstddef>
#include <string>

namespace procon::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first within each leading character.
// `>>` is deliberately kept as one token; the lint matcher treats it as two
// closing angles when it walks template argument lists.
constexpr std::string_view kOps3[] = {"...", "<=>", "->*", "<<=", ">>="};
constexpr std::string_view kOps2[] = {"::", "->", "++", "--", "<<", ">>",
                                      "<=", ">=", "==", "!=", "&&", "||",
                                      "+=", "-=", "*=", "/=", "%=", "&=",
                                      "|=", "^=", "##"};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto advance_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };
  auto emit = [&](TokKind kind, std::size_t begin, std::size_t end, int at) {
    out.push_back(Token{kind, src.substr(begin, end - begin), at});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: only when '#' is the first non-space character
    // of the line. Consume the whole logical line, merging \-continuations.
    if (c == '#') {
      bool line_start = true;
      for (std::size_t k = i; k-- > 0;) {
        if (src[k] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[k]))) {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        const std::size_t begin = i;
        const int at = line;
        while (i < n) {
          if (src[i] == '\n') {
            // A backslash (possibly followed by spaces) continues the line.
            std::size_t k = i;
            bool continued = false;
            while (k-- > begin) {
              if (src[k] == '\\') {
                continued = true;
                break;
              }
              if (!std::isspace(static_cast<unsigned char>(src[k]))) break;
            }
            if (!continued) break;
            ++line;
          }
          ++i;
        }
        emit(TokKind::Preprocessor, begin, i, at);
        continue;
      }
      // '#' mid-line (token-paste in macros already swallowed above): fall
      // through to punctuation.
    }

    // Comments.
    if (c == '/' && i + 1 < n && (src[i + 1] == '/' || src[i + 1] == '*')) {
      const std::size_t begin = i;
      const int at = line;
      if (src[i + 1] == '/') {
        while (i < n && src[i] != '\n') ++i;
      } else {
        i += 2;
        while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') ++line;
          ++i;
        }
        i = i + 1 < n ? i + 2 : n;
      }
      emit(TokKind::Comment, begin, i, at);
      continue;
    }

    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix (u8R, uR, UR, LR).
    {
      std::size_t r = i;
      if (r < n && (src[r] == 'u' || src[r] == 'U' || src[r] == 'L')) {
        if (src[r] == 'u' && r + 1 < n && src[r + 1] == '8') ++r;
        ++r;
      }
      if (r < n && src[r] == 'R' && r + 1 < n && src[r + 1] == '"' &&
          (r == i || ident_start(src[i]))) {
        const std::size_t begin = i;
        const int at = line;
        std::size_t d = r + 2;
        while (d < n && src[d] != '(' && src[d] != '\n') ++d;
        const std::string_view delim = src.substr(r + 2, d - (r + 2));
        std::string close = ")";
        close.append(delim);
        close.push_back('"');
        const std::size_t end = src.find(close, d);
        i = end == std::string_view::npos ? n : end + close.size();
        advance_lines(src.substr(begin, i - begin));
        emit(TokKind::String, begin, i, at);
        continue;
      }
    }

    // String / char literal (with optional encoding prefix on strings).
    if (c == '"' || c == '\'' ||
        ((c == 'u' || c == 'U' || c == 'L') && i + 1 < n &&
         (src[i + 1] == '"' || src[i + 1] == '\''))) {
      std::size_t begin = i;
      const int at = line;
      if (c != '"' && c != '\'') {
        ++i;
        if (i < n && src[i] == '8') ++i;  // u8"..."
      }
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const char quote = src[i];
        ++i;
        while (i < n && src[i] != quote) {
          if (src[i] == '\\' && i + 1 < n) ++i;
          if (src[i] == '\n') ++line;  // unterminated; keep line count sane
          ++i;
        }
        if (i < n) ++i;  // closing quote
        emit(quote == '"' ? TokKind::String : TokKind::CharLit, begin, i, at);
        continue;
      }
      i = begin;  // lone u/U/L identifier; fall through
    }

    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < n && ident_char(src[i])) ++i;
      emit(TokKind::Identifier, begin, i, line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t begin = i;
      // pp-number-ish scan: digits, letters, quotes-as-separators, and
      // exponent signs. Good enough to keep 1'000ull or 1e-9 one token.
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > begin &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      emit(TokKind::Number, begin, i, line);
      continue;
    }

    // Punctuation, longest match first.
    {
      bool matched = false;
      for (std::string_view op : kOps3) {
        if (src.compare(i, op.size(), op) == 0) {
          emit(TokKind::Punct, i, i + op.size(), line);
          i += op.size();
          matched = true;
          break;
        }
      }
      if (matched) continue;
      for (std::string_view op : kOps2) {
        if (src.compare(i, op.size(), op) == 0) {
          emit(TokKind::Punct, i, i + op.size(), line);
          i += op.size();
          matched = true;
          break;
        }
      }
      if (matched) continue;
      emit(TokKind::Punct, i, i + 1, line);
      ++i;
    }
  }
  return out;
}

}  // namespace procon::lint
