// procon_lint CLI — see lint/lint.h for the contract families.
//
//   procon_lint [options] <file>...
//     --list-rules             print the markdown rule table and exit
//     --disable=ID[,ID...]     switch rules off
//     --codec-file=SUBSTR      path substring activating the codec family
//                              (default "net/codec")
//     --warm-annotation=NAME   warm-path marker macro (default
//                              PROCON_WARM_PATH)
//
// Exit status: 0 when every file lints clean, 1 on any finding, 2 on usage
// or I/O errors. Findings go to stdout as `file:line: [rule] message`.
#include <cstdio>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.h"

namespace {

void split_csv(std::string_view list, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    if (comma > start) out.emplace_back(list.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  procon::lint::Options opts;
  std::vector<std::string> files;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--disable=", 0) == 0) {
      split_csv(arg.substr(10), opts.disabled);
    } else if (arg.rfind("--codec-file=", 0) == 0) {
      opts.codec_path = std::string(arg.substr(13));
    } else if (arg.rfind("--warm-annotation=", 0) == 0) {
      opts.warm_annotation = std::string(arg.substr(18));
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: procon_lint [--list-rules] [--disable=ID,...] "
                   "[--codec-file=SUBSTR]\n"
                   "                   [--warm-annotation=NAME] <file>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "procon_lint: unknown option '%s'\n",
                   std::string(arg).c_str());
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  for (const std::string& id : opts.disabled) {
    if (!procon::lint::is_rule_id(id)) {
      std::fprintf(stderr, "procon_lint: --disable names unknown rule '%s'\n",
                   id.c_str());
      return 2;
    }
  }

  if (list_rules) {
    std::fputs(procon::lint::render_rule_table().c_str(), stdout);
    return 0;
  }
  if (files.empty()) {
    std::fprintf(stderr, "procon_lint: no input files (try --help)\n");
    return 2;
  }

  std::size_t total = 0;
  for (const std::string& file : files) {
    try {
      const auto findings = procon::lint::lint_file(file, opts);
      for (const auto& f : findings) {
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
      }
      total += findings.size();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (total != 0) {
    std::fprintf(stderr, "procon_lint: %zu finding(s) across %zu file(s)\n",
                 total, files.size());
    return 1;
  }
  return 0;
}
