// procon_server - one analysis shard of the net:: cluster tier.
//
// Hosts a resident api::AnalysisService behind net::AnalysisServer and
// serves the binary wire protocol (see src/net/codec.h) over TCP. Tenants
// arrive over the wire (RegisterSystem frames) — the binary takes no input
// file. A fleet of these processes plus any number of `procon client`
// invocations form the cluster: clients route tenants to shards by system
// fingerprint, so no shard needs to know about the others.
//
//   procon_server [--port P] [--bind-any] [--threads T] [--capacity S]
//                 [--completion C]
//
//   --port P        TCP port (default 0 = ephemeral; the chosen port is
//                   printed, so scripts can scrape it)
//   --bind-any      bind 0.0.0.0 instead of loopback
//   --threads T     AnalysisService worker threads (0 = hardware)
//   --capacity S    session LRU capacity (default 8)
//   --completion C  completion-writer threads (default 4)
//
// Runs until stdin reaches EOF or SIGINT/SIGTERM arrives, then prints the
// resident service's counters and the shared transposition-table stats —
// the same numbers a remote client can fetch live with a StatsRequest
// frame.
#include <csignal>
#include <iostream>
#include <string>

#include "analysis/transposition_table.h"
#include "net/server.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace procon;

std::string flag_value(int argc, char** argv, const std::string& flag,
                       const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    std::cout << "usage: procon_server [--port P] [--bind-any] [--threads T]"
                 " [--capacity S] [--completion C]\n";
    return 0;
  }
  try {
    net::ServerOptions opts;
    opts.port = static_cast<std::uint16_t>(
        std::stoul(flag_value(argc, argv, "--port", "0")));
    opts.bind_any = has_flag(argc, argv, "--bind-any");
    opts.completion_threads = static_cast<std::size_t>(
        std::stoull(flag_value(argc, argv, "--completion", "4")));
    opts.service.threads = static_cast<std::size_t>(
        std::stoull(flag_value(argc, argv, "--threads", "0")));
    opts.service.session_capacity = static_cast<std::size_t>(
        std::stoull(flag_value(argc, argv, "--capacity", "8")));

    net::AnalysisServer server(opts);
    // One parseable line, flushed before anything blocks: launch scripts
    // scrape the ephemeral port from it.
    std::cout << "procon_server: listening on "
              << (opts.bind_any ? "0.0.0.0" : "127.0.0.1") << ":"
              << server.port() << std::endl;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // Park on stdin: EOF (pipe closed by the launcher) or a signal ends the
    // shard. Polling keeps the signal path responsive without a handler
    // that must wake a blocked read.
    std::string line;
    while (g_signalled == 0 && std::getline(std::cin, line)) {
      if (line == "quit" || line == "stop") break;
    }
    server.stop();

    const api::ServiceStats stats = server.service().stats();
    util::Table table("procon_server: final counters");
    table.set_header({"counter", "value"});
    table.add_row({"submitted", std::to_string(stats.submitted)});
    table.add_row({"coalesced (shared in-flight)",
                   std::to_string(stats.coalesced)});
    table.add_row({"result-cache hits", std::to_string(stats.result_hits)});
    table.add_row({"executed", std::to_string(stats.executed)});
    table.add_row({"sessions built", std::to_string(stats.sessions_built)});
    table.add_row({"sessions evicted",
                   std::to_string(stats.sessions_evicted)});
    std::cout << table.render();
    const analysis::TranspositionTable::Stats tt =
        server.service().transposition_stats();
    std::cout << "[tt-stats: " << tt.hits << " hit(s), " << tt.misses
              << " miss(es), hit-rate "
              << util::format_double(100.0 * tt.hit_rate(), 1) << "%, "
              << tt.evictions << " eviction(s), " << tt.verify_failures
              << " verify failure(s)]\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "procon_server: error: " << e.what() << "\n";
    return 1;
  }
}
