// Zobrist fingerprints + the shared transposition table:
//
//  * incremental fingerprint maintenance: random append_app / pop_app /
//    set_mapping / Mapping mutation sequences keep System::fingerprint()
//    bitwise equal to a from-scratch reconstruction at every step;
//  * SystemView::fingerprint() equals materialise().fingerprint() and
//    tracks parent set_mapping rebinds (views are live by contract);
//  * fingerprints are name-free (renamed structures hash equal, changed
//    structure does not) — the cross-tenant sharing hook;
//  * TranspositionTable unit behaviour: round-trips, verify-tag rejection
//    of primary-hash collisions, bucketed replace-oldest eviction at tiny
//    capacity, counter bookkeeping, concurrent hammering (TSan target);
//  * bitwise identity: admission decisions (verdicts, periods, reason
//    strings), Workbench queries and AnalysisService results are identical
//    with the table on, off, warm, shared, or evicting;
//  * warm table hits are allocation-free (util/alloc_probe.h replaces
//    ::operator new for this binary), including the admission verdict-only
//    probe path with a table attached.
#include "util/alloc_probe.h"  // FIRST: replaces global new/delete

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "admission/admission.h"
#include "analysis/transposition_table.h"
#include "api/service.h"
#include "api/workbench.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "platform/system_view.h"
#include "sdf/zobrist.h"
#include "util/rng.h"

namespace procon {
namespace {

using admission::AdmissionController;
using admission::QoS;
using admission::WhatIfOptions;
using admission::WhatIfReport;
using analysis::TranspositionTable;
using analysis::TTKey;
using analysis::TTKeyBuilder;
using analysis::TTQuery;
using analysis::TTValue;
using sdf::ZobristHash;
using util::alloc_probe::allocations;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 6;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

/// Structurally identical copy of `g` under fresh names: the name-free
/// fingerprint must not distinguish them.
sdf::Graph renamed(const sdf::Graph& g, const std::string& suffix) {
  sdf::Graph r(g.name() + suffix);
  for (const sdf::Actor& a : g.actors()) r.add_actor(a.name + suffix, a.exec_time);
  for (const sdf::Channel& c : g.channels()) {
    r.add_channel(c.src, c.dst, c.prod_rate, c.cons_rate, c.initial_tokens);
  }
  return r;
}

platform::System renamed_clone(const platform::System& sys, const std::string& suffix) {
  std::vector<sdf::Graph> apps;
  apps.reserve(sys.app_count());
  for (const sdf::Graph& g : sys.apps()) apps.push_back(renamed(g, suffix));
  return platform::System(std::move(apps), sys.platform(), sys.mapping());
}

/// The from-scratch oracle: the System constructor rehashes everything.
std::uint64_t fresh_fingerprint(const platform::System& sys) {
  return platform::System(
             std::vector<sdf::Graph>(sys.apps().begin(), sys.apps().end()),
             sys.platform(), sys.mapping())
      .fingerprint();
}

TEST(Zobrist, IncrementalSystemFingerprintMatchesFromScratchOracle) {
  util::Rng rng(2007);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 2;
  gopts.max_actors = 5;
  const auto pool = gen::generate_graphs(rng, gopts, 12);
  const platform::Platform plat = platform::Platform::homogeneous(5);

  std::vector<sdf::Graph> start(pool.begin(), pool.begin() + 2);
  platform::System sys(start, plat, platform::Mapping::by_index(start, plat));
  ASSERT_EQ(sys.fingerprint(), fresh_fingerprint(sys));

  for (int step = 0; step < 200; ++step) {
    const auto op = rng.uniform_int(0, 3);
    if (op == 0) {
      // Grow: append a pool graph with an index mapping.
      const auto& g = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      std::vector<platform::NodeId> nodes(g.actor_count());
      for (std::size_t a = 0; a < nodes.size(); ++a) {
        nodes[a] = static_cast<platform::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(plat.node_count()) - 1));
      }
      sys.append_app(g, nodes);
    } else if (op == 1 && sys.app_count() > 1) {
      sys.pop_app();
    } else if (op == 2) {
      // Rebind the whole mapping.
      util::Rng map_rng(rng.uniform_int(0, 1'000'000));
      sys.set_mapping(platform::Mapping::random(sys.apps(), plat, map_rng));
    } else {
      // Move one actor (Mapping::assign's XOR-delta path).
      platform::Mapping m = sys.mapping();
      const auto app = static_cast<sdf::AppId>(
          rng.uniform_int(0, static_cast<std::int64_t>(sys.app_count()) - 1));
      const auto actor = static_cast<sdf::ActorId>(rng.uniform_int(
          0, static_cast<std::int64_t>(sys.app(app).actor_count()) - 1));
      m.assign(app, actor,
               static_cast<platform::NodeId>(rng.uniform_int(
                   0, static_cast<std::int64_t>(plat.node_count()) - 1)));
      sys.set_mapping(std::move(m));
    }
    ASSERT_EQ(sys.fingerprint(), fresh_fingerprint(sys)) << "step " << step;
  }
}

TEST(Zobrist, MappingMutationsMatchRecomputedComposition) {
  util::Rng rng(11);
  platform::Mapping m;
  std::vector<std::vector<platform::NodeId>> rows;

  const auto oracle = [&rows] {
    std::uint64_t fp = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      fp ^= ZobristHash::place(ZobristHash::kMappingTag, i,
                               ZobristHash::mapping_row_component(rows[i]));
    }
    return fp;
  };

  EXPECT_EQ(m.fingerprint(), oracle());
  for (int step = 0; step < 120; ++step) {
    const auto op = rng.uniform_int(0, 2);
    if (op == 0 || rows.empty()) {
      std::vector<platform::NodeId> row(
          static_cast<std::size_t>(rng.uniform_int(1, 5)));
      for (auto& n : row) {
        n = static_cast<platform::NodeId>(rng.uniform_int(0, 7));
      }
      m.push_app(row);
      rows.push_back(std::move(row));
    } else if (op == 1) {
      m.pop_app();
      rows.pop_back();
    } else {
      const auto app = static_cast<sdf::AppId>(
          rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
      const auto actor = static_cast<sdf::ActorId>(rng.uniform_int(
          0, static_cast<std::int64_t>(rows[app].size()) - 1));
      const auto node = static_cast<platform::NodeId>(rng.uniform_int(0, 7));
      m.assign(app, actor, node);
      rows[app][actor] = node;
    }
    ASSERT_EQ(m.fingerprint(), oracle()) << "step " << step;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(m.row_component(static_cast<sdf::AppId>(i)),
                ZobristHash::mapping_row_component(rows[i]));
    }
  }
}

TEST(Zobrist, ViewFingerprintMatchesMaterialiseAndTracksRebinds) {
  platform::System sys = random_system(42, 5);
  util::Rng rng(3);
  auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  use_cases.push_back(sys.full_use_case());

  for (const auto& uc : use_cases) {
    const platform::SystemView view(sys, uc);
    EXPECT_EQ(view.fingerprint(), view.materialise().fingerprint());
  }

  // The full view equals the system itself.
  EXPECT_EQ(platform::SystemView(sys).fingerprint(), sys.fingerprint());

  // Parent set_mapping is visible through live views: the view fingerprint
  // must follow without rebinding.
  const platform::SystemView live(sys, use_cases.front());
  const std::uint64_t before = live.fingerprint();
  util::Rng map_rng(9);
  sys.set_mapping(platform::Mapping::random(sys.apps(), sys.platform(), map_rng));
  EXPECT_NE(live.fingerprint(), before);
  EXPECT_EQ(live.fingerprint(), live.materialise().fingerprint());
}

TEST(Zobrist, FingerprintsAreNameFreeButStructureSensitive) {
  const platform::System sys = random_system(7, 3);
  const sdf::Graph& g = sys.app(0);

  // Renaming everything changes nothing.
  EXPECT_EQ(ZobristHash::graph_component(renamed(g, "-x")),
            ZobristHash::graph_component(g));
  EXPECT_EQ(renamed_clone(sys, "-y").fingerprint(), sys.fingerprint());

  // Any structural delta changes the component.
  sdf::Graph slower = renamed(g, "");
  slower.actor(0).exec_time += 1;
  EXPECT_NE(ZobristHash::graph_component(slower), ZobristHash::graph_component(g));

  sdf::Graph extra = renamed(g, "");
  extra.add_channel(0, 0, 1, 1, 1);
  EXPECT_NE(ZobristHash::graph_component(extra), ZobristHash::graph_component(g));

  // Position matters in the composition: swapping two (distinct) apps
  // changes the system fingerprint even though the XOR-ed components match.
  if (ZobristHash::graph_component(sys.app(0)) !=
      ZobristHash::graph_component(sys.app(1))) {
    std::vector<sdf::Graph> swapped(sys.apps().begin(), sys.apps().end());
    std::swap(swapped[0], swapped[1]);
    const bool same_shape =
        sys.app(0).actor_count() == sys.app(1).actor_count();
    if (same_shape) {
      platform::System other(std::move(swapped), sys.platform(), sys.mapping());
      EXPECT_NE(other.fingerprint(), sys.fingerprint());
    }
  }
}

TEST(TranspositionTable, StoreLookupRoundTripsBitwise) {
  TranspositionTable table(256, 4);
  EXPECT_GE(table.capacity(), 256u);
  EXPECT_EQ(table.shard_count(), 4u);

  TTKeyBuilder b(0xDEADBEEFULL, TTQuery::WcrtAppBound);
  b.absorb(3);
  b.absorb_double(1.5);
  const TTKey key = b.key();

  TTValue miss;
  EXPECT_FALSE(table.lookup(key, miss));

  TTValue in;
  in.primary = 123.456;
  in.secondary = -0.0;  // bitwise: -0.0 must round-trip as -0.0
  in.ids[0] = 7;
  in.ids[1] = 9;
  in.id_count = 2;
  in.flags = TTValue::kDeadlocked;
  table.store(key, in);

  TTValue out;
  ASSERT_TRUE(table.lookup(key, out));
  EXPECT_EQ(out.primary, in.primary);
  EXPECT_EQ(std::signbit(out.secondary), std::signbit(in.secondary));
  EXPECT_EQ(out.id_count, 2);
  EXPECT_EQ(out.ids[0], 7u);
  EXPECT_EQ(out.ids[1], 9u);
  EXPECT_EQ(out.flags, TTValue::kDeadlocked);

  // The same fingerprint under a different kind or parameter is a miss.
  TTKeyBuilder other(0xDEADBEEFULL, TTQuery::WcrtActorBound);
  other.absorb(3);
  other.absorb_double(1.5);
  EXPECT_FALSE(table.lookup(other.key(), out));
  TTKeyBuilder param(0xDEADBEEFULL, TTQuery::WcrtAppBound);
  param.absorb(4);
  param.absorb_double(1.5);
  EXPECT_FALSE(table.lookup(param.key(), out));

  const auto stats = table.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.shards.size(), table.shard_count());
}

TEST(TranspositionTable, VerifyTagRejectsPrimaryHashCollisions) {
  TranspositionTable table(64, 1);
  const TTKey genuine{0x1234'5678'9ABC'DEF0ULL, 0x1111ULL};
  const TTKey imposter{0x1234'5678'9ABC'DEF0ULL, 0x2222ULL};  // same bucket

  TTValue v;
  v.primary = 42.0;
  table.store(genuine, v);

  TTValue out;
  EXPECT_FALSE(table.lookup(imposter, out));  // tag mismatch: treated as miss
  ASSERT_TRUE(table.lookup(genuine, out));
  EXPECT_EQ(out.primary, 42.0);

  const auto stats = table.stats();
  EXPECT_GE(stats.verify_failures, 1u);
}

TEST(TranspositionTable, BucketedEvictionReplacesTheOldestEntry) {
  // capacity 4, 1 shard -> a single 4-way bucket: every key collides.
  TranspositionTable table(4, 1);
  EXPECT_EQ(table.capacity(), 4u);
  EXPECT_EQ(table.shard_count(), 1u);

  const auto key_of = [](std::uint64_t i) {
    return TTKeyBuilder(i, TTQuery::IsolationPeriod).key();
  };
  for (std::uint64_t i = 0; i < 4; ++i) {
    TTValue v;
    v.primary = static_cast<double>(i);
    table.store(key_of(i), v);
  }
  TTValue out;
  ASSERT_TRUE(table.lookup(key_of(0), out));  // refresh 0: 1 is now oldest

  TTValue v4;
  v4.primary = 4.0;
  table.store(key_of(4), v4);  // bucket full: evicts the oldest live entry

  EXPECT_FALSE(table.lookup(key_of(1), out)) << "oldest entry should be gone";
  for (const std::uint64_t still : {0ULL, 2ULL, 3ULL, 4ULL}) {
    ASSERT_TRUE(table.lookup(key_of(still), out)) << "key " << still;
    EXPECT_EQ(out.primary, static_cast<double>(still));
  }
  const auto stats = table.stats();
  EXPECT_EQ(stats.evictions, 1u);

  // Re-storing an existing key overwrites in place: no eviction.
  table.store(key_of(0), v4);
  EXPECT_EQ(table.stats().evictions, 1u);
  ASSERT_TRUE(table.lookup(key_of(0), out));
  EXPECT_EQ(out.primary, 4.0);
}

TEST(TranspositionTable, ConcurrentHammerKeepsValuesConsistent) {
  TranspositionTable table(1024, 8);
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  constexpr std::uint64_t kKeySpace = 97;  // shared across threads: real races

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> wrong(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &wrong, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t fp = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(kKeySpace) - 1));
        TTKeyBuilder b(fp, TTQuery::MappingScore);
        b.absorb(fp * 3);
        const TTKey key = b.key();
        TTValue v;
        if (table.lookup(key, v)) {
          // Every writer stores the same pure function of the key, so a hit
          // can only ever observe that value.
          if (v.primary != static_cast<double>(fp) * 1.25) ++wrong[t];
        } else {
          v.primary = static_cast<double>(fp) * 1.25;
          table.store(key, v);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(wrong[t], 0u);

  const auto stats = table.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(stats.stores, stats.misses);  // every miss stored exactly once
}

// ---- bitwise identity: admission --------------------------------------------

struct AdmissionStep {
  bool ok = false;
  double predicted = 0.0;
  std::string reason;
  std::vector<double> peers;
};

bool operator==(const AdmissionStep& a, const AdmissionStep& b) {
  return a.ok == b.ok && a.predicted == b.predicted && a.reason == b.reason &&
         a.peers == b.peers;
}

std::vector<platform::NodeId> index_nodes(const sdf::Graph& g) {
  std::vector<platform::NodeId> nodes(g.actor_count());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    nodes[a] = static_cast<platform::NodeId>(a);
  }
  return nodes;
}

/// A fixed admission workload: probes, admits, a rejection (reason string),
/// predictions, a removal, re-probes. Returns the full decision transcript.
std::vector<AdmissionStep> run_admission_script(AdmissionController& ctrl,
                                                std::span<const sdf::Graph> pool) {
  std::vector<AdmissionStep> log;
  const auto probe = [&](const sdf::Graph& g) {
    const WhatIfReport r = ctrl.what_if_admit(g, index_nodes(g), QoS::no_requirement());
    log.push_back({r.admissible, r.predicted_period, r.reason, r.peer_periods});
  };

  for (const sdf::Graph& g : pool) probe(g);
  const admission::Decision d0 =
      ctrl.request(pool[0], index_nodes(pool[0]), QoS::no_requirement());
  log.push_back({d0.admitted, d0.predicted_period, d0.reason, d0.peer_periods});
  const admission::Decision d1 =
      ctrl.request(pool[1], index_nodes(pool[1]), QoS::no_requirement());
  log.push_back({d1.admitted, d1.predicted_period, d1.reason, d1.peer_periods});
  // Impossible QoS: rejected, with a reason string built from the predicted
  // period — the identity contract covers the text too.
  const admission::Decision rej =
      ctrl.request(pool[2], index_nodes(pool[2]), QoS{1e-9});
  log.push_back({rej.admitted, rej.predicted_period, rej.reason, rej.peer_periods});

  for (const sdf::Graph& g : pool) probe(g);  // warm re-probes
  log.push_back({true, ctrl.predicted_period(*d0.handle), "", {}});
  const WhatIfReport wr = ctrl.what_if_remove(*d0.handle);
  log.push_back({wr.admissible, wr.predicted_period, wr.reason, wr.peer_periods});
  ctrl.remove(*d0.handle);
  for (const sdf::Graph& g : pool) probe(g);
  return log;
}

TEST(TranspositionIdentity, AdmissionTranscriptIsIdenticalTableOnOffWarmTiny) {
  util::Rng rng(606);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 5;
  auto pool = gen::generate_graphs(rng, gopts, 5);
  pool.push_back(renamed(pool[0], "-twin"));  // name-free sharing candidate
  const platform::Platform plat = platform::Platform::homogeneous(5);

  AdmissionController off(plat);
  const auto transcript = run_admission_script(off, pool);

  const auto table = std::make_shared<TranspositionTable>(1 << 12, 4);
  AdmissionController on(plat, 8, table);
  EXPECT_EQ(run_admission_script(on, pool), transcript);
  EXPECT_GT(table->stats().hits, 0u);

  // A second controller on the SAME table starts fully warm — and must
  // still reproduce the transcript bit for bit.
  AdmissionController warm(plat, 8, table);
  const auto hits_before = table->stats().hits;
  EXPECT_EQ(run_admission_script(warm, pool), transcript);
  EXPECT_GT(table->stats().hits, hits_before);

  // A pathologically tiny table evicts constantly; only speed may differ.
  const auto tiny = std::make_shared<TranspositionTable>(8, 1);
  AdmissionController evicting(plat, 8, tiny);
  EXPECT_EQ(run_admission_script(evicting, pool), transcript);
}

// ---- bitwise identity: Workbench --------------------------------------------

/// Flattens every table-backed Workbench query into one comparable record.
struct WorkbenchRecord {
  std::vector<double> doubles;
  std::vector<std::uint64_t> ints;
  std::vector<std::string> strings;

  friend bool operator==(const WorkbenchRecord&, const WorkbenchRecord&) = default;
};

WorkbenchRecord run_workbench_script(api::Workbench& wb) {
  WorkbenchRecord rec;
  const auto note = [&rec](const api::Provenance& p) {
    rec.strings.push_back(p.method);
  };
  for (sdf::AppId a = 0; a < wb.app_count(); ++a) {
    const auto thr = wb.throughput(a);
    rec.doubles.push_back(thr->period);
    rec.ints.push_back(thr->deadlocked ? 1 : 0);
    note(thr.provenance);
    const auto lat = wb.latency(a);
    rec.doubles.push_back(lat->latency);
    for (const auto id : lat->critical_actors) rec.ints.push_back(id);
    note(lat.provenance);
    const auto bot = wb.bottleneck(a);
    rec.doubles.push_back(bot->period);
    for (const auto id : bot->actors) rec.ints.push_back(id);
    note(bot.provenance);
  }
  const auto frontier =
      wb.buffer_frontier(0, dse::BufferExplorerOptions{.max_steps = 12});
  for (const auto& pt : frontier->points) {
    rec.doubles.push_back(pt.period);
    rec.ints.push_back(pt.total_tokens);
    for (const auto c : pt.capacities) rec.ints.push_back(c);
  }
  note(frontier.provenance);

  const auto bounds = wb.wcrt();
  for (const auto& b : *bounds) {
    rec.doubles.push_back(b.isolation_period);
    rec.doubles.push_back(b.worst_case_period);
    for (const auto& act : b.actors) {
      rec.doubles.push_back(act.waiting_time);
      rec.doubles.push_back(act.response_time);
    }
  }
  note(bounds.provenance);
  const platform::UseCase uc{0, 2};
  const auto tdma = wb.wcrt(
      uc, wcrt::WcrtOptions{.policy = wcrt::Policy::TdmaPreemptive, .tdma_slot = 5});
  for (const auto& b : *tdma) {
    rec.doubles.push_back(b.worst_case_period);
    for (const auto& act : b.actors) rec.doubles.push_back(act.response_time);
  }

  std::vector<platform::Mapping> candidates;
  candidates.push_back(wb.system().mapping());
  candidates.push_back(
      platform::Mapping::load_balanced(wb.system().apps(), wb.system().platform()));
  util::Rng rng(5);
  candidates.push_back(
      platform::Mapping::random(wb.system().apps(), wb.system().platform(), rng));
  const auto scores = wb.score_mappings(candidates);
  for (const double s : *scores) rec.doubles.push_back(s);

  dse::MapperOptions mopts;
  mopts.iterations = 50;
  mopts.seed = 13;
  const auto mapped = wb.optimise_mapping(mopts);
  rec.doubles.push_back(mapped->score);
  rec.doubles.push_back(mapped->initial_score);
  rec.ints.push_back(mapped->evaluations);
  rec.ints.push_back(mapped->accepted_moves);
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    for (sdf::ActorId a = 0; a < wb.system().app(i).actor_count(); ++a) {
      rec.ints.push_back(mapped->mapping.node_of(i, a));
    }
  }
  return rec;
}

TEST(TranspositionIdentity, WorkbenchQueriesAreIdenticalTableOnOffWarmTiny) {
  const platform::System sys = random_system(2026, 4);

  api::Workbench off(sys, api::WorkbenchOptions{.threads = 1});
  const WorkbenchRecord record = run_workbench_script(off);

  const auto table = std::make_shared<TranspositionTable>(1 << 14, 4);
  api::Workbench on(sys, api::WorkbenchOptions{.threads = 1, .table = table});
  EXPECT_EQ(run_workbench_script(on), record);
  EXPECT_GT(on.transposition_stats().hits, 0u);
  EXPECT_EQ(on.transposition_table().get(), table.get());

  // A fresh session over a RENAMED but structurally identical system shares
  // the warm entries (name-free fingerprints) and answers identically.
  const platform::System twin = renamed_clone(sys, "-tenant2");
  api::Workbench warm(twin, api::WorkbenchOptions{.threads = 1, .table = table});
  const auto hits_before = table->stats().hits;
  EXPECT_EQ(run_workbench_script(warm), record);
  EXPECT_GT(table->stats().hits, hits_before);

  // Sharded session + shared table: thread-count invariance holds with
  // memoisation in the loop (score_mappings probes from pool workers).
  api::Workbench sharded(sys, api::WorkbenchOptions{.threads = 4, .table = table});
  EXPECT_EQ(run_workbench_script(sharded), record);

  // Tiny evicting table: correctness-neutral.
  const auto tiny = std::make_shared<TranspositionTable>(16, 1);
  api::Workbench evicting(sys, api::WorkbenchOptions{.threads = 1, .table = tiny});
  EXPECT_EQ(run_workbench_script(evicting), record);
  EXPECT_GT(tiny->stats().evictions, 0u);

  // Table-less sessions report empty stats and no table.
  EXPECT_EQ(off.transposition_stats().hits + off.transposition_stats().misses, 0u);
  EXPECT_EQ(off.transposition_table(), nullptr);
}

// ---- bitwise identity: AnalysisService --------------------------------------

TEST(TranspositionIdentity, ServiceSharesEntriesAcrossRenamedTenants) {
  const platform::System sys_a = random_system(404, 4);
  const platform::System sys_b = renamed_clone(sys_a, "-b");

  api::Workbench oracle(sys_a, api::WorkbenchOptions{.threads = 1});
  const auto thr_oracle = oracle.throughput(0);
  const auto wcrt_oracle = oracle.wcrt();

  for (const std::size_t tt_capacity : {std::size_t{0}, std::size_t{1} << 14}) {
    api::AnalysisService service(api::ServiceOptions{
        .threads = 2, .transposition_capacity = tt_capacity});
    const api::SystemId a = service.register_system(sys_a);
    const api::SystemId b = service.register_system(sys_b);

    // Renamed tenants do NOT share a session (exact identity includes
    // names) — they share transposition entries instead.
    api::QueryDesc thr;
    thr.kind = api::QueryKind::Throughput;
    thr.app = 0;
    api::QueryDesc wc;
    wc.kind = api::QueryKind::Wcrt;

    const auto va = service.submit(a, thr).get();
    const auto vb = service.submit(b, thr).get();
    const auto wa = service.submit(a, wc).get();
    const auto wb_ = service.submit(b, wc).get();
    service.drain();
    EXPECT_EQ(service.session_count(), 2u);

    for (const auto& v : {va, vb}) {
      EXPECT_EQ(std::get<api::Report<analysis::PeriodResult>>(v)->period,
                thr_oracle->period);
    }
    for (const auto& w : {wa, wb_}) {
      const auto& r = std::get<api::Report<std::vector<wcrt::AppBound>>>(w);
      ASSERT_EQ(r->size(), wcrt_oracle->size());
      for (std::size_t i = 0; i < r->size(); ++i) {
        EXPECT_EQ((*r)[i].isolation_period, (*wcrt_oracle)[i].isolation_period);
        EXPECT_EQ((*r)[i].worst_case_period, (*wcrt_oracle)[i].worst_case_period);
      }
    }

    const auto tt = service.transposition_stats();
    if (tt_capacity == 0) {
      EXPECT_EQ(tt.hits + tt.misses + tt.stores, 0u);
    } else {
      // Tenant b's queries ran against tenant a's warm entries.
      EXPECT_GT(tt.hits, 0u);
    }
  }
}

TEST(TranspositionIdentity, ServiceStressWithSharedTableMatchesOracle) {
  const platform::System sys = random_system(777, 4);
  const platform::System twin = renamed_clone(sys, "-t");
  api::Workbench oracle(sys, api::WorkbenchOptions{.threads = 1});
  const auto est = oracle.contention();
  const auto wc = oracle.wcrt();
  const auto thr0 = oracle.throughput(0);

  api::AnalysisService service(api::ServiceOptions{.threads = 4});
  const api::SystemId a = service.register_system(sys);
  const api::SystemId b = service.register_system(twin);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kQueries = 18;
  std::vector<std::vector<api::QueryTicket>> tickets(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t k = 0; k < kQueries; ++k) {
        api::QueryDesc d;
        switch (k % 3) {
          case 0: d.kind = api::QueryKind::Throughput; d.app = 0; break;
          case 1: d.kind = api::QueryKind::Wcrt; break;
          default: d.kind = api::QueryKind::Contention; break;
        }
        tickets[c].push_back(service.submit((c + k) % 2 == 0 ? a : b, d));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t k = 0; k < kQueries; ++k) {
      const api::QueryValue& v = tickets[c][k].get();
      switch (k % 3) {
        case 0:
          EXPECT_EQ(std::get<api::Report<analysis::PeriodResult>>(v)->period,
                    thr0->period);
          break;
        case 1: {
          const auto& r = std::get<api::Report<std::vector<wcrt::AppBound>>>(v);
          ASSERT_EQ(r->size(), wc->size());
          for (std::size_t i = 0; i < r->size(); ++i) {
            EXPECT_EQ((*r)[i].worst_case_period, (*wc)[i].worst_case_period);
          }
          break;
        }
        default: {
          const auto& r =
              std::get<api::Report<std::vector<prob::AppEstimate>>>(v);
          ASSERT_EQ(r->size(), est->size());
          for (std::size_t i = 0; i < r->size(); ++i) {
            EXPECT_EQ((*r)[i].estimated_period, (*est)[i].estimated_period);
          }
          break;
        }
      }
    }
  }
  EXPECT_GT(service.transposition_stats().hits, 0u);
}

// ---- allocation-freeness ----------------------------------------------------

TEST(TranspositionAlloc, WarmLookupAndStoreAreAllocationFree) {
  TranspositionTable table(512, 2);
  // Warm: populate a handful of keys.
  for (std::uint64_t i = 0; i < 16; ++i) {
    TTKeyBuilder b(i * 0x9E37ULL, TTQuery::AdmissionPeriod);
    b.absorb(i);
    b.absorb_double(static_cast<double>(i) * 0.5);
    TTValue v;
    v.primary = static_cast<double>(i);
    table.store(b.key(), v);
  }

  const std::uint64_t before = allocations();
  std::uint64_t hits = 0;
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      TTKeyBuilder b(i * 0x9E37ULL, TTQuery::AdmissionPeriod);
      b.absorb(i);
      b.absorb_double(static_cast<double>(i) * 0.5);
      TTValue v;
      if (table.lookup(b.key(), v)) ++hits;
      table.store(b.key(), v);
    }
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "warm lookup/store allocated on the hot path";
  EXPECT_EQ(hits, 1600u);
}

TEST(TranspositionAlloc, WarmAdmissionVerdictProbeStaysAllocationFree) {
  // The existing steady-state guarantee (verdict-only probe of a cached
  // candidate: zero allocations) must survive a table in the loop — probe
  // keys are built on the stack and hits copy into caller storage.
  util::Rng rng(31);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 4;
  const auto pool = gen::generate_graphs(rng, gopts, 2);

  const auto table = std::make_shared<TranspositionTable>(1 << 10, 2);
  AdmissionController ctrl(platform::Platform::homogeneous(4), 8, table);
  const std::vector<platform::NodeId> nodes0 = index_nodes(pool[0]);
  const std::vector<platform::NodeId> nodes1 = index_nodes(pool[1]);
  ASSERT_TRUE(ctrl.request(pool[0], nodes0, QoS::no_requirement()).admitted);

  WhatIfOptions verdict_only;
  verdict_only.with_estimates = false;
  WhatIfReport out;
  // Warm-up: sizes scratch, fills the table.
  ctrl.what_if_admit(pool[1], nodes1, QoS::no_requirement(), out, verdict_only);
  ASSERT_TRUE(out.admissible);

  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t before = allocations();
    ctrl.what_if_admit(pool[1], nodes1, QoS::no_requirement(), out, verdict_only);
    EXPECT_EQ(allocations() - before, 0u)
        << "warm table-backed verdict probe allocated (rep " << rep << ")";
  }
  EXPECT_TRUE(out.admissible);
  EXPECT_GT(table->stats().hits, 0u);
}

}  // namespace
}  // namespace procon
