#include "analysis/latency.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "sdf/repetition.h"
#include "util/rng.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using sdf::Graph;

TEST(Latency, SequentialGraphLatencyEqualsPeriod) {
  // Fig. 2 graph A is fully sequential: latency == period == 300, and the
  // critical path passes through every actor.
  const auto r = compute_latency(fig2_graph_a());
  EXPECT_NEAR(r.latency, 300.0, 1e-9);
  EXPECT_EQ(r.critical_actors, (std::vector<sdf::ActorId>{0, 1, 2}));
}

TEST(Latency, PipelinedGraphLatencyExceedsPeriod) {
  // Deep pipeline: period is the bottleneck stage, latency the whole chain.
  Graph g("pipe");
  const auto s0 = g.add_actor("s0", 10);
  const auto s1 = g.add_actor("s1", 20);
  const auto s2 = g.add_actor("s2", 30);
  g.add_channel(s0, s1, 1, 1, 0);
  g.add_channel(s1, s2, 1, 1, 0);
  g.add_channel(s2, s0, 1, 1, 8);  // ample feedback tokens
  const double period = compute_period(g).period;
  const auto lat = compute_latency(g);
  EXPECT_NEAR(period, 30.0, 1e-6);   // the slowest stage
  EXPECT_NEAR(lat.latency, 60.0, 1e-9);  // 10 + 20 + 30
  EXPECT_GT(lat.latency, period);
}

TEST(Latency, SingleActor) {
  Graph g;
  g.add_actor("solo", 42);
  EXPECT_NEAR(compute_latency(g).latency, 42.0, 1e-9);
}

TEST(Latency, ExecTimeOverride) {
  const Graph g = fig2_graph_a();
  const std::vector<double> times{100.0 + 25.0 / 3.0, 50.0 + 50.0 / 3.0,
                                  100.0 + 50.0 / 3.0};
  // Responses of Fig. 3: latency = sum over the sequential chain = 358.33.
  EXPECT_NEAR(compute_latency(g, times).latency, 1075.0 / 3.0, 1e-9);
}

TEST(Latency, MultiRateCountsAllFirings) {
  // One producer, three consumer firings chained by the self-loop: the
  // critical path is p + 3 * c.
  Graph g;
  const auto p = g.add_actor("p", 10);
  const auto c = g.add_actor("c", 7);
  g.add_channel(p, c, 3, 1, 0);
  g.add_channel(c, p, 1, 3, 3);
  EXPECT_NEAR(compute_latency(g).latency, 10.0 + 3 * 7.0, 1e-9);
}

TEST(Latency, InconsistentThrows) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 2, 1, 0);
  g.add_channel(b, a, 2, 1, 0);
  EXPECT_THROW((void)compute_latency(g), sdf::GraphError);
}

TEST(Latency, DeadlockedZeroTokenCycleThrows) {
  Hsdf h;
  h.nodes = {HsdfNode{0, 0, 1.0}, HsdfNode{1, 0, 1.0}};
  h.edges = {HsdfEdge{0, 1, 0}, HsdfEdge{1, 0, 0}};
  EXPECT_THROW((void)iteration_latency(h), sdf::GraphError);
}

TEST(Latency, PathIsConsistentWithValue) {
  const Graph g = fig2_graph_a().with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  const Hsdf h = expand_to_hsdf(g, *q, {});
  const LatencyResult r = iteration_latency(h);
  double sum = 0.0;
  for (const std::uint32_t v : r.path) sum += h.nodes[v].exec_time;
  EXPECT_NEAR(sum, r.latency, 1e-9);
}

// Property: latency is always >= the period lower bound implied by any
// single actor, and >= the period for graphs without pipelining tokens.
class LatencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyProperty, LatencyBoundsOnRandomGraphs) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 4;
  opts.max_actors = 8;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const auto lat = compute_latency(g);
  // Latency dominates every single firing.
  for (const auto& a : g.actors()) {
    EXPECT_GE(lat.latency + 1e-9, static_cast<double>(a.exec_time));
  }
  // The critical path is non-empty and its actors exist.
  ASSERT_FALSE(lat.critical_actors.empty());
  for (const auto a : lat.critical_actors) {
    EXPECT_LT(a, g.actor_count());
  }
  // Iteration workload bounds latency from above (a path fires each actor
  // at most q times).
  const auto q = sdf::compute_repetition_vector(g);
  EXPECT_LE(lat.latency,
            static_cast<double>(sdf::iteration_workload(g, *q)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace procon::analysis
