// Shared test fixtures: the worked example of the paper (Figure 2) and
// small helper builders.
#pragma once

#include <vector>

#include "platform/system.h"
#include "sdf/graph.h"

namespace procon::testing {

/// Figure 2, SDFG A: actors a0 (tau=100), a1 (tau=50), a2 (tau=100),
/// repetition vector [1 2 1], cycle a0 -> a1 -> a2 -> a0 with one initial
/// token on the closing edge. Per(A) = 300.
inline sdf::Graph fig2_graph_a() {
  sdf::Graph g("A");
  const auto a0 = g.add_actor("a0", 100);
  const auto a1 = g.add_actor("a1", 50);
  const auto a2 = g.add_actor("a2", 100);
  g.add_channel(a0, a1, 2, 1, 0);  // q: 1*2 == 2*1
  g.add_channel(a1, a2, 1, 2, 0);  // q: 2*1 == 1*2
  g.add_channel(a2, a0, 1, 1, 1);  // closing edge carries the initial token
  return g;
}

/// Figure 2, SDFG B: actors b0 (tau=50), b1 (tau=100), b2 (tau=100),
/// repetition vector [2 1 1], cycle b0 -> b1 -> b2 -> b0 with initial
/// tokens on the closing edge. Per(B) = 300.
inline sdf::Graph fig2_graph_b() {
  sdf::Graph g("B");
  const auto b0 = g.add_actor("b0", 50);
  const auto b1 = g.add_actor("b1", 100);
  const auto b2 = g.add_actor("b2", 100);
  g.add_channel(b0, b1, 1, 2, 0);  // q: 2*1 == 1*2
  g.add_channel(b1, b2, 1, 1, 0);
  g.add_channel(b2, b0, 2, 1, 2);  // two tokens: both b0 firings can start
  return g;
}

/// Figure 2 B with the cycle reversed (the paper's thought experiment in
/// Section 3.1: simulated period becomes 400 instead of 300).
inline sdf::Graph fig2_graph_b_reversed() {
  sdf::Graph g("Brev");
  const auto b0 = g.add_actor("b0", 50);
  const auto b1 = g.add_actor("b1", 100);
  const auto b2 = g.add_actor("b2", 100);
  g.add_channel(b1, b0, 2, 1, 0);  // q: 1*2 == 2*1
  g.add_channel(b2, b1, 1, 1, 0);
  g.add_channel(b0, b2, 1, 2, 2);
  return g;
}

/// The paper's Section 3 platform: ai and bi share Proc_i.
inline platform::System fig2_system() {
  std::vector<sdf::Graph> apps{fig2_graph_a(), fig2_graph_b()};
  platform::Platform plat = platform::Platform::homogeneous(3);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  return platform::System(std::move(apps), std::move(plat), std::move(map));
}

/// A trivial two-actor pipeline with a feedback token, period = t0 + t1.
inline sdf::Graph two_actor_cycle(sdf::Time t0, sdf::Time t1) {
  sdf::Graph g("pair");
  const auto x = g.add_actor("x", t0);
  const auto y = g.add_actor("y", t1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 1);
  return g;
}

}  // namespace procon::testing
