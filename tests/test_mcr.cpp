#include "analysis/mcr.h"

#include <gtest/gtest.h>

#include "gen/graph_generator.h"
#include "helpers.h"
#include "sdf/repetition.h"
#include "util/rng.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;
using sdf::Graph;

Hsdf expand_closed(const Graph& g) {
  const Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  return expand_to_hsdf(closed, *q, {});
}

TEST(Mcr, PaperGraphAPeriod300) {
  const McrResult r = mcr_binary_search(expand_closed(fig2_graph_a()));
  EXPECT_TRUE(r.has_cycle);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.ratio, 300.0, 1e-6);
}

TEST(Mcr, PaperGraphBPeriod300) {
  const McrResult r = mcr_binary_search(expand_closed(fig2_graph_b()));
  EXPECT_NEAR(r.ratio, 300.0, 1e-6);
}

TEST(Mcr, ReversedBStillPeriod300InIsolation) {
  const McrResult r =
      mcr_binary_search(expand_closed(procon::testing::fig2_graph_b_reversed()));
  EXPECT_NEAR(r.ratio, 300.0, 1e-6);
}

TEST(Mcr, TwoActorSequentialCycle) {
  const McrResult r =
      mcr_binary_search(expand_closed(procon::testing::two_actor_cycle(30, 70)));
  EXPECT_NEAR(r.ratio, 100.0, 1e-6);
}

TEST(Mcr, PipelinedCycleBoundByBottleneck) {
  // Two tokens on the feedback edge: the ring constraint halves, and the
  // self-loops (no auto-concurrency) make the slower actor the bottleneck.
  Graph g;
  const auto x = g.add_actor("x", 30);
  const auto y = g.add_actor("y", 70);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 2);
  const McrResult r = mcr_binary_search(expand_closed(g));
  EXPECT_NEAR(r.ratio, 70.0, 1e-6);
}

TEST(Mcr, FractionalRatio) {
  // Ring of three with two tokens: cycle ratio 13/2 beats the self-loops.
  Graph g;
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 4);
  const auto c = g.add_actor("c", 4);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 2);
  const McrResult r = mcr_binary_search(expand_closed(g));
  EXPECT_NEAR(r.ratio, 6.5, 1e-6);
}

TEST(Mcr, DeadlockDetected) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 0);  // tokenless cycle
  const auto q = sdf::compute_repetition_vector(g);
  const McrResult r = mcr_binary_search(expand_to_hsdf(g, *q, {}));
  EXPECT_TRUE(r.deadlocked);
}

TEST(Mcr, AcyclicGraphHasNoCycle) {
  Graph g;
  const auto x = g.add_actor("x", 5);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 1, 0);
  const auto q = sdf::compute_repetition_vector(g);
  const McrResult r = mcr_binary_search(expand_to_hsdf(g, *q, {}));
  EXPECT_FALSE(r.has_cycle);
  EXPECT_FALSE(r.deadlocked);
}

TEST(Mcr, EmptyGraph) {
  const Hsdf empty;
  const McrResult r = mcr_binary_search(empty);
  EXPECT_FALSE(r.has_cycle);
}

TEST(Mcr, ZeroExecTimesGiveZeroRatio) {
  Graph g;
  const auto x = g.add_actor("x", 0);
  const auto y = g.add_actor("y", 0);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 1);
  const auto q = sdf::compute_repetition_vector(g);
  const McrResult r = mcr_binary_search(expand_to_hsdf(g, *q, {}));
  EXPECT_TRUE(r.has_cycle);
  EXPECT_NEAR(r.ratio, 0.0, 1e-9);
}

TEST(Mcr, RealValuedExecTimes) {
  const Graph g = procon::testing::two_actor_cycle(1, 1);
  const Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  const std::vector<double> times{108.0 + 1.0 / 3.0, 66.0 + 2.0 / 3.0};
  const McrResult r = mcr_binary_search(expand_to_hsdf(closed, *q, times));
  EXPECT_NEAR(r.ratio, 175.0, 1e-6);
}

TEST(McrEnumerate, MatchesBinarySearchOnPaperGraphs) {
  for (const Graph& g : {fig2_graph_a(), fig2_graph_b()}) {
    const Hsdf h = expand_closed(g);
    const McrResult bs = mcr_binary_search(h);
    const McrResult en = mcr_enumerate(h);
    EXPECT_EQ(bs.deadlocked, en.deadlocked);
    EXPECT_EQ(bs.has_cycle, en.has_cycle);
    EXPECT_NEAR(bs.ratio, en.ratio, 1e-6);
  }
}

TEST(CriticalCycle, PaperGraphACycleCoversAllActors) {
  const CriticalCycleResult r = mcr_with_critical_cycle(expand_closed(fig2_graph_a()));
  EXPECT_NEAR(r.mcr.ratio, 300.0, 1e-6);
  ASSERT_FALSE(r.cycle.empty());
  // The 300-unit cycle passes through a0, both a1 firings and a2: 4 nodes.
  EXPECT_EQ(r.cycle.size(), 4u);
}

TEST(CriticalCycle, CycleIsClosedAndAchievesRatio) {
  const Hsdf h = expand_closed(fig2_graph_b());
  const CriticalCycleResult r = mcr_with_critical_cycle(h);
  ASSERT_FALSE(r.cycle.empty());
  // Verify the reported cycle is a real cycle in the HSDF and its own
  // weight/token ratio equals the MCR.
  double weight = 0.0;
  std::uint64_t tokens = 0;
  for (std::size_t i = 0; i < r.cycle.size(); ++i) {
    const std::uint32_t from = r.cycle[i];
    const std::uint32_t to = r.cycle[(i + 1) % r.cycle.size()];
    weight += h.nodes[from].exec_time;
    // Find the minimal-token edge from -> to.
    std::uint64_t best = UINT64_MAX;
    for (const HsdfEdge& e : h.edges) {
      if (e.src == from && e.dst == to) best = std::min(best, e.tokens);
    }
    ASSERT_NE(best, UINT64_MAX) << "missing edge " << from << "->" << to;
    tokens += best;
  }
  ASSERT_GT(tokens, 0u);
  EXPECT_NEAR(weight / static_cast<double>(tokens), r.mcr.ratio,
              1e-5 * r.mcr.ratio);
}

TEST(CriticalCycle, SlowSelfLoopIsTheBottleneck) {
  // One very slow actor dominates: the critical cycle is its self-loop.
  Graph g;
  const auto x = g.add_actor("x", 1000);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 3);  // 3 tokens: ring ratio 1001/3 < 1000
  const Hsdf h = expand_closed(g);
  const CriticalCycleResult r = mcr_with_critical_cycle(h);
  EXPECT_NEAR(r.mcr.ratio, 1000.0, 1e-6);
  ASSERT_EQ(r.cycle.size(), 1u);
  EXPECT_EQ(h.nodes[r.cycle[0]].source_actor, x);
}

TEST(CriticalCycle, EmptyForAcyclicOrDeadlocked) {
  Graph g;
  const auto x = g.add_actor("x", 5);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 1, 0);
  const auto q = sdf::compute_repetition_vector(g);
  const CriticalCycleResult acyclic =
      mcr_with_critical_cycle(expand_to_hsdf(g, *q, {}));
  EXPECT_TRUE(acyclic.cycle.empty());

  g.add_channel(y, x, 1, 1, 0);  // tokenless: deadlock
  const auto q2 = sdf::compute_repetition_vector(g);
  const CriticalCycleResult dead =
      mcr_with_critical_cycle(expand_to_hsdf(g, *q2, {}));
  EXPECT_TRUE(dead.mcr.deadlocked);
  EXPECT_TRUE(dead.cycle.empty());
}

// Validity oracle shared by the Howard / Lawler cross-checks: the reported
// cycle must be closed in the HSDF and its own weight/token quotient must
// equal the reported MCR.
void expect_valid_critical_cycle(const Hsdf& h, const CriticalCycleResult& r) {
  ASSERT_FALSE(r.cycle.empty());
  double weight = 0.0;
  std::uint64_t tokens = 0;
  for (std::size_t i = 0; i < r.cycle.size(); ++i) {
    const std::uint32_t from = r.cycle[i];
    const std::uint32_t to = r.cycle[(i + 1) % r.cycle.size()];
    weight += h.nodes[from].exec_time;
    std::uint64_t best = UINT64_MAX;
    for (const HsdfEdge& e : h.edges) {
      if (e.src == from && e.dst == to) best = std::min(best, e.tokens);
    }
    ASSERT_NE(best, UINT64_MAX) << "missing edge " << from << "->" << to;
    tokens += best;
  }
  ASSERT_GT(tokens, 0u);
  EXPECT_NEAR(weight / static_cast<double>(tokens), r.mcr.ratio,
              1e-6 * std::max(1.0, r.mcr.ratio));
}

TEST(CriticalCycle, HowardAndLawlerAgreeOnPaperGraphs) {
  for (const Graph& g : {fig2_graph_a(), fig2_graph_b(),
                         procon::testing::fig2_graph_b_reversed()}) {
    const Hsdf h = expand_closed(g);
    const CriticalCycleResult howard = mcr_with_critical_cycle(h);
    const CriticalCycleResult lawler = mcr_with_critical_cycle_lawler(h);
    EXPECT_NEAR(howard.mcr.ratio, lawler.mcr.ratio,
                1e-6 * std::max(1.0, lawler.mcr.ratio));
    expect_valid_critical_cycle(h, howard);
    expect_valid_critical_cycle(h, lawler);
  }
}

// Property: on random graphs the Howard policy-graph extraction and the
// Lawler reference produce cycles that both achieve the (agreed) MCR.
class CriticalCycleCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CriticalCycleCrossValidation, HowardEqualsLawler) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 3;
  opts.max_actors = 6;
  opts.max_repetition = 3;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const Hsdf h = expand_closed(g);
  const CriticalCycleResult howard = mcr_with_critical_cycle(h);
  const CriticalCycleResult lawler = mcr_with_critical_cycle_lawler(h);
  ASSERT_TRUE(howard.mcr.has_cycle);
  ASSERT_FALSE(howard.mcr.deadlocked);
  EXPECT_NEAR(howard.mcr.ratio, lawler.mcr.ratio,
              1e-6 * std::max(1.0, lawler.mcr.ratio))
      << "seed=" << GetParam();
  expect_valid_critical_cycle(h, howard);
  expect_valid_critical_cycle(h, lawler);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalCycleCrossValidation,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(McrEnumerate, TooLargeThrows) {
  Hsdf h;
  for (int i = 0; i < 30; ++i) h.nodes.push_back(HsdfNode{0, 0, 1.0});
  EXPECT_THROW((void)mcr_enumerate(h, 24), std::invalid_argument);
}

// Property: on randomly generated (small) graphs, the parametric search and
// exhaustive enumeration agree.
class McrCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McrCrossValidation, BinarySearchEqualsEnumeration) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 3;
  opts.max_actors = 5;
  opts.max_repetition = 3;
  opts.min_exec_time = 1;
  opts.max_exec_time = 50;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const Hsdf h = expand_closed(g);
  if (h.node_count() > 16) GTEST_SKIP() << "expansion too large for enumeration";
  const McrResult bs = mcr_binary_search(h);
  const McrResult en = mcr_enumerate(h);
  ASSERT_FALSE(bs.deadlocked);
  ASSERT_FALSE(en.deadlocked);
  EXPECT_NEAR(bs.ratio, en.ratio, 1e-5 * std::max(1.0, en.ratio))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, McrCrossValidation,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace procon::analysis
