#include "analysis/state_space.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "util/rng.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;
using sdf::Graph;
using util::Rational;

TEST(StateSpace, PaperGraphAExactly300) {
  const StateSpaceResult r = self_timed_period(fig2_graph_a().with_self_loops());
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.period, Rational(300));
}

TEST(StateSpace, PaperGraphBExactly300) {
  const StateSpaceResult r = self_timed_period(fig2_graph_b().with_self_loops());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.period, Rational(300));
}

TEST(StateSpace, SequentialTwoActorCycle) {
  const StateSpaceResult r =
      self_timed_period(procon::testing::two_actor_cycle(30, 70).with_self_loops());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.period, Rational(100));
}

TEST(StateSpace, FractionalPeriod) {
  // Ring of three, two tokens: steady state completes 2 iterations per 13
  // time units -> period 13/2.
  Graph g;
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 4);
  const auto c = g.add_actor("c", 4);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 2);
  const StateSpaceResult r = self_timed_period(g.with_self_loops());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.period, Rational(13, 2));
  EXPECT_GE(r.iterations_in_cycle, 2u);
}

TEST(StateSpace, DeadlockDetected) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 0);
  const StateSpaceResult r = self_timed_period(g);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.converged);
}

TEST(StateSpace, InconsistentGraphDeadlocked) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 2, 1, 0);
  g.add_channel(y, x, 2, 1, 0);
  const StateSpaceResult r = self_timed_period(g);
  EXPECT_TRUE(r.deadlocked);
}

TEST(StateSpace, TransientThenPeriodic) {
  // A big token head start creates a transient before steady state.
  Graph g;
  const auto x = g.add_actor("x", 2);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 1, 4);  // x is 4 firings ahead
  g.add_channel(y, x, 1, 1, 0);
  const StateSpaceResult r = self_timed_period(g.with_self_loops());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.period, Rational(5));  // bottleneck actor y
}

TEST(StateSpace, MaxFiringsCapReturnsUnconverged) {
  const StateSpaceOptions opts{.max_firings = 2};
  const StateSpaceResult r =
      self_timed_period(fig2_graph_a().with_self_loops(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.deadlocked);
}

TEST(ComputePeriodExact, MatchesStateSpace) {
  EXPECT_EQ(compute_period_exact(fig2_graph_a()), Rational(300));
  EXPECT_EQ(compute_period_exact(fig2_graph_b()), Rational(300));
}

TEST(ComputePeriodExact, ThrowsOnDeadlock) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 0);
  EXPECT_THROW((void)compute_period_exact(g), sdf::GraphError);
}

// The central cross-validation property: the MCR engine (used for the
// fractional response-time graphs) and the exact state-space engine agree
// on every randomly generated integer graph.
class EngineAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineAgreement, McrEqualsStateSpace) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 4;
  opts.max_actors = 8;
  opts.max_repetition = 3;
  opts.min_exec_time = 1;
  opts.max_exec_time = 40;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const Rational exact = compute_period_exact(g);
  const PeriodResult mcr = compute_period(g);
  ASSERT_FALSE(mcr.deadlocked);
  EXPECT_NEAR(mcr.period, exact.to_double(), 1e-6 * std::max(1.0, exact.to_double()))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
}  // namespace procon::analysis
