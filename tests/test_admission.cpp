#include "admission/admission.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "prob/estimator.h"

namespace procon::admission {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;

std::vector<platform::NodeId> index_mapping(const sdf::Graph& g) {
  std::vector<platform::NodeId> nodes(g.actor_count());
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) nodes[a] = a;
  return nodes;
}

TEST(Admission, FirstAppAlwaysFitsAlone) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto g = fig2_graph_a();
  const Decision d = ctrl.request(g, index_mapping(g), QoS{350.0});
  ASSERT_TRUE(d.admitted);
  EXPECT_NEAR(d.predicted_period, 300.0, 1e-6);  // no contention yet
  EXPECT_EQ(ctrl.admitted_count(), 1u);
}

TEST(Admission, SecondAppPredictedWithContention) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  ASSERT_TRUE(ctrl.request(a, index_mapping(a), QoS{400.0}).admitted);
  const Decision d = ctrl.request(b, index_mapping(b), QoS{400.0});
  ASSERT_TRUE(d.admitted);
  // Section 3.1: the contended period estimate is 358.33.
  EXPECT_NEAR(d.predicted_period, 1075.0 / 3.0, 1e-5);
  // And A's post-admission prediction is reported and identical.
  ASSERT_EQ(d.peer_periods.size(), 1u);
  EXPECT_NEAR(d.peer_periods[0], 1075.0 / 3.0, 1e-5);
}

TEST(Admission, RejectsWhenOwnQosUnmet) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  ASSERT_TRUE(ctrl.request(a, index_mapping(a), QoS{400.0}).admitted);
  const Decision d = ctrl.request(b, index_mapping(b), QoS{310.0});
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("exceeds its QoS bound"), std::string::npos);
  EXPECT_EQ(ctrl.admitted_count(), 1u);  // state unchanged
}

TEST(Admission, RejectsWhenPeerQosWouldBreak) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  // A has a tight bound that B's arrival would violate.
  ASSERT_TRUE(ctrl.request(a, index_mapping(a), QoS{310.0}).admitted);
  const Decision d = ctrl.request(b, index_mapping(b), QoS{1000.0});
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("'A'"), std::string::npos);
}

TEST(Admission, RemoveRestoresCapacity) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  const Decision da = ctrl.request(a, index_mapping(a), QoS{310.0});
  ASSERT_TRUE(da.admitted);
  // B with a bound only satisfiable alone.
  EXPECT_FALSE(ctrl.request(b, index_mapping(b), QoS{310.0}).admitted);
  ctrl.remove(*da.handle);
  EXPECT_EQ(ctrl.admitted_count(), 0u);
  // Node composites must be (numerically) back to identity.
  for (platform::NodeId n = 0; n < 3; ++n) {
    EXPECT_NEAR(ctrl.node_load(n).probability, 0.0, 1e-12);
    EXPECT_NEAR(ctrl.node_load(n).weighted_blocking, 0.0, 1e-12);
  }
  EXPECT_TRUE(ctrl.request(b, index_mapping(b), QoS{310.0}).admitted);
}

TEST(Admission, RemoveUnknownHandleThrows) {
  AdmissionController ctrl(platform::Platform::homogeneous(2));
  EXPECT_THROW(ctrl.remove(0), std::out_of_range);
  const auto g = procon::testing::two_actor_cycle(10, 10);
  const Decision d = ctrl.request(g, index_mapping(g), QoS::no_requirement());
  ASSERT_TRUE(d.admitted);
  ctrl.remove(*d.handle);
  EXPECT_THROW(ctrl.remove(*d.handle), std::out_of_range);  // double remove
}

TEST(Admission, PredictedPeriodTracksEstimator) {
  // The controller's incremental predictions must match the batch
  // CompositionInverse estimator on the same system.
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  const Decision da = ctrl.request(a, index_mapping(a), QoS::no_requirement());
  const Decision db = ctrl.request(b, index_mapping(b), QoS::no_requirement());
  ASSERT_TRUE(da.admitted);
  ASSERT_TRUE(db.admitted);

  const auto sys = procon::testing::fig2_system();
  const auto batch = prob::ContentionEstimator(
                         prob::EstimatorOptions{.method = prob::Method::CompositionInverse})
                         .estimate(sys);
  EXPECT_NEAR(ctrl.predicted_period(*da.handle), batch[0].estimated_period, 1e-6);
  EXPECT_NEAR(ctrl.predicted_period(*db.handle), batch[1].estimated_period, 1e-6);
}

TEST(Admission, ValidationErrors) {
  AdmissionController ctrl(platform::Platform::homogeneous(2));
  const auto g = procon::testing::two_actor_cycle(10, 10);
  // Wrong mapping size.
  EXPECT_THROW((void)ctrl.request(g, {0}, QoS::no_requirement()), sdf::GraphError);
  // Nonexistent node.
  EXPECT_THROW((void)ctrl.request(g, {0, 9}, QoS::no_requirement()), sdf::GraphError);
  // Deadlocked graph.
  sdf::Graph dead("dead");
  const auto x = dead.add_actor("x", 1);
  const auto y = dead.add_actor("y", 1);
  dead.add_channel(x, y, 1, 1, 0);
  dead.add_channel(y, x, 1, 1, 0);
  EXPECT_THROW((void)ctrl.request(dead, {0, 1}, QoS::no_requirement()),
               sdf::GraphError);
}

TEST(Admission, ManyAppsAccumulateLoad) {
  // Admit the same graph repeatedly (best effort): each admission must
  // raise the predicted period of the first one monotonically.
  AdmissionController ctrl(platform::Platform::homogeneous(2));
  const auto g = procon::testing::two_actor_cycle(10, 30);
  const Decision first = ctrl.request(g, {0, 1}, QoS::no_requirement());
  ASSERT_TRUE(first.admitted);
  double last = ctrl.predicted_period(*first.handle);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ctrl.request(g, {0, 1}, QoS::no_requirement()).admitted);
    const double now = ctrl.predicted_period(*first.handle);
    EXPECT_GE(now + 1e-9, last);
    last = now;
  }
  EXPECT_EQ(ctrl.admitted_count(), 6u);
}

TEST(Admission, NodeLoadInvalidIdThrows) {
  AdmissionController ctrl(platform::Platform::homogeneous(1));
  EXPECT_THROW((void)ctrl.node_load(5), std::out_of_range);
}

TEST(Admission, WhatIfAdmitMatchesRequestWithoutCommitting) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  ASSERT_TRUE(ctrl.request(a, index_mapping(a), QoS{400.0}).admitted);

  // Probe the exact request that would be granted: same verdict and
  // predictions as request(), but nothing changes.
  const WhatIfReport would = ctrl.what_if_admit(b, index_mapping(b), QoS{400.0});
  EXPECT_TRUE(would.admissible);
  EXPECT_EQ(ctrl.admitted_count(), 1u);

  const Decision real = ctrl.request(b, index_mapping(b), QoS{400.0});
  ASSERT_TRUE(real.admitted);
  EXPECT_EQ(would.predicted_period, real.predicted_period);
  ASSERT_EQ(would.peer_periods.size(), real.peer_periods.size());
  for (std::size_t i = 0; i < would.peer_periods.size(); ++i) {
    EXPECT_EQ(would.peer_periods[i], real.peer_periods[i]);
  }
  // The full report covers active apps + candidate (last), and matches the
  // batch estimator over the committed system bit for bit.
  ASSERT_EQ(would.estimates.size(), 2u);
  const auto batch =
      prob::ContentionEstimator().estimate(ctrl.snapshot_system());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(would.estimates[i].isolation_period, batch[i].isolation_period);
    EXPECT_EQ(would.estimates[i].estimated_period, batch[i].estimated_period);
  }
}

TEST(Admission, WhatIfAdmitRejectionLeavesStateUntouched) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  ASSERT_TRUE(ctrl.request(a, index_mapping(a), QoS{310.0}).admitted);

  // B would break A's tight QoS: the probe reports it, nothing mutates.
  const WhatIfReport would =
      ctrl.what_if_admit(b, index_mapping(b), QoS{1000.0});
  EXPECT_FALSE(would.admissible);
  EXPECT_NE(would.reason.find("'A'"), std::string::npos);
  EXPECT_EQ(ctrl.admitted_count(), 1u);
  // The composites are untouched: the real request reproduces the verdict.
  EXPECT_FALSE(ctrl.request(b, index_mapping(b), QoS{1000.0}).admitted);
  // Probing repeatedly never leaks candidate state into the store.
  for (int i = 0; i < 3; ++i) {
    (void)ctrl.what_if_admit(b, index_mapping(b), QoS{1000.0});
  }
  EXPECT_EQ(ctrl.admitted_count(), 1u);
  EXPECT_NO_THROW((void)ctrl.snapshot_system().validate());
}

TEST(Admission, WhatIfRemovePredictsReliefWithoutRemoving) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const auto a = fig2_graph_a();
  const auto b = fig2_graph_b();
  const Decision da = ctrl.request(a, index_mapping(a), QoS::no_requirement());
  const Decision db = ctrl.request(b, index_mapping(b), QoS::no_requirement());
  ASSERT_TRUE(da.admitted);
  ASSERT_TRUE(db.admitted);

  const WhatIfReport relief = ctrl.what_if_remove(*db.handle);
  EXPECT_TRUE(relief.admissible);
  EXPECT_EQ(ctrl.admitted_count(), 2u);  // nothing removed
  ASSERT_EQ(relief.peer_periods.size(), 2u);
  EXPECT_EQ(relief.peer_periods[*db.handle], 0.0);
  // Alone again, A's predicted period returns to its isolation period.
  EXPECT_NEAR(relief.peer_periods[*da.handle], 300.0, 1e-6);
  ASSERT_EQ(relief.estimates.size(), 1u);
  EXPECT_NEAR(relief.estimates[0].estimated_period, 300.0, 1e-6);

  // The prediction matches what remove() actually produces.
  ctrl.remove(*db.handle);
  EXPECT_NEAR(ctrl.predicted_period(*da.handle), relief.peer_periods[*da.handle],
              1e-9);
  EXPECT_THROW((void)ctrl.what_if_remove(*db.handle), std::out_of_range);
}

}  // namespace
}  // namespace procon::admission
