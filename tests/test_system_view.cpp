// Randomized equivalence suite: SystemView-based restriction must agree
// with System::restrict_to deep copies on every observable — ids, graphs,
// mapping rows, validate(), and analysis results through the estimator and
// WCRT paths.
#include "platform/system_view.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/engine.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "helpers.h"
#include "prob/estimator.h"
#include "util/rng.h"
#include "wcrt/wcrt.h"

namespace procon::platform {
namespace {

using procon::testing::fig2_system;

System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 7;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  Platform plat = Platform::homogeneous(max_actors);
  Mapping map = Mapping::by_index(graphs, plat);
  return System(std::move(graphs), std::move(plat), std::move(map));
}

TEST(SystemView, FullViewIsIdentity) {
  const System sys = fig2_system();
  const SystemView view(sys);
  EXPECT_EQ(view.app_count(), sys.app_count());
  for (sdf::AppId i = 0; i < view.app_count(); ++i) {
    EXPECT_EQ(view.parent_app(i), i);
    EXPECT_EQ(&view.app(i), &sys.app(i));  // same object, no copy
  }
  EXPECT_EQ(view.actor_count(), 6u);
  EXPECT_EQ(view.channel_count(), 6u);
  EXPECT_NO_THROW(view.validate());
}

TEST(SystemView, MatchesRestrictToOnEveryObservable) {
  const System sys = random_system(42, 5);
  util::Rng rng(7);
  for (const auto& uc : gen::sample_use_cases(sys.app_count(), 4, rng)) {
    const SystemView view(sys, uc);
    const System sub = sys.restrict_to(uc);
    ASSERT_EQ(view.app_count(), sub.app_count());
    std::uint32_t actors = 0;
    std::uint32_t channels = 0;
    for (sdf::AppId i = 0; i < view.app_count(); ++i) {
      EXPECT_EQ(view.parent_app(i), uc[i]);
      EXPECT_EQ(view.app(i).name(), sub.app(i).name());
      EXPECT_EQ(view.app(i).actor_count(), sub.app(i).actor_count());
      EXPECT_EQ(view.app(i).channel_count(), sub.app(i).channel_count());
      EXPECT_EQ(view.actor_base(i), actors);
      EXPECT_EQ(view.channel_base(i), channels);
      for (sdf::ActorId a = 0; a < view.app(i).actor_count(); ++a) {
        EXPECT_EQ(view.node_of(i, a), sub.mapping().node_of(i, a));
        EXPECT_EQ(view.app_of_actor(actors + a), i);
      }
      actors += static_cast<std::uint32_t>(view.app(i).actor_count());
      channels += static_cast<std::uint32_t>(view.app(i).channel_count());
    }
    EXPECT_EQ(view.actor_count(), actors);
    EXPECT_EQ(view.channel_count(), channels);
    EXPECT_NO_THROW(view.validate());
    EXPECT_NO_THROW(sub.validate());
  }
}

TEST(SystemView, MaterialiseEqualsRestrictTo) {
  const System sys = random_system(99, 4);
  const UseCase uc{1, 3};
  const System a = SystemView(sys, uc).materialise();
  const System b = sys.restrict_to(uc);
  ASSERT_EQ(a.app_count(), b.app_count());
  for (sdf::AppId i = 0; i < a.app_count(); ++i) {
    EXPECT_EQ(a.app(i).name(), b.app(i).name());
    for (sdf::ActorId x = 0; x < a.app(i).actor_count(); ++x) {
      EXPECT_EQ(a.mapping().node_of(i, x), b.mapping().node_of(i, x));
    }
  }
}

TEST(SystemView, EstimatorAgreesWithRestrictedCopy) {
  const System sys = random_system(2024, 5);
  util::Rng rng(11);
  const prob::ContentionEstimator est;
  for (const auto& uc : gen::sample_use_cases(sys.app_count(), 3, rng)) {
    const auto through_view = est.estimate(SystemView(sys, uc));
    const auto through_copy = est.estimate(SystemView(sys.restrict_to(uc)));
    ASSERT_EQ(through_view.size(), through_copy.size());
    for (std::size_t i = 0; i < through_view.size(); ++i) {
      EXPECT_EQ(through_view[i].isolation_period, through_copy[i].isolation_period);
      EXPECT_EQ(through_view[i].estimated_period, through_copy[i].estimated_period);
      ASSERT_EQ(through_view[i].actors.size(), through_copy[i].actors.size());
      for (std::size_t a = 0; a < through_view[i].actors.size(); ++a) {
        EXPECT_EQ(through_view[i].actors[a].waiting_time,
                  through_copy[i].actors[a].waiting_time);
      }
    }
  }
}

TEST(SystemView, WcrtAgreesWithRestrictedCopy) {
  const System sys = random_system(31337, 4);
  util::Rng rng(5);
  for (const auto& uc : gen::sample_use_cases(sys.app_count(), 3, rng)) {
    const SystemView view(sys, uc);
    std::vector<analysis::ThroughputEngine> engines;
    for (sdf::AppId i = 0; i < view.app_count(); ++i) engines.emplace_back(view.app(i));
    std::vector<analysis::ThroughputEngine*> ptrs;
    for (auto& e : engines) ptrs.push_back(&e);

    const auto through_view = wcrt::worst_case_bounds(
        view, {}, std::span<analysis::ThroughputEngine* const>(ptrs));
    for (auto& e : engines) e.reset();
    const auto through_copy = wcrt::worst_case_bounds(sys.restrict_to(uc), {});
    ASSERT_EQ(through_view.size(), through_copy.size());
    for (std::size_t i = 0; i < through_view.size(); ++i) {
      EXPECT_EQ(through_view[i].isolation_period, through_copy[i].isolation_period);
      EXPECT_EQ(through_view[i].worst_case_period, through_copy[i].worst_case_period);
    }
  }
}

TEST(SystemView, RestrictViewsBatchesOneViewPerUseCase) {
  const System sys = random_system(12, 4);
  const auto use_cases = gen::all_use_cases(sys.app_count());
  const auto views = gen::restrict_views(sys, use_cases);
  ASSERT_EQ(views.size(), use_cases.size());
  for (std::size_t u = 0; u < views.size(); ++u) {
    ASSERT_EQ(views[u].app_count(), use_cases[u].size());
    EXPECT_EQ(&views[u].parent(), &sys);
    for (sdf::AppId i = 0; i < views[u].app_count(); ++i) {
      EXPECT_EQ(views[u].parent_app(i), use_cases[u][i]);
    }
  }
}

TEST(SystemView, UnsortedUseCaseKeepsOrder) {
  const System sys = random_system(8, 4);
  const UseCase uc{2, 0};  // restrict_to honours the given order; so must we
  const SystemView view(sys, uc);
  EXPECT_EQ(view.app(0).name(), sys.app(2).name());
  EXPECT_EQ(view.app(1).name(), sys.app(0).name());
  const System sub = sys.restrict_to(uc);
  EXPECT_EQ(sub.app(0).name(), view.app(0).name());
  EXPECT_EQ(sub.app(1).name(), view.app(1).name());
}

TEST(SystemView, OutOfRangeThrowsLikeRestrictTo) {
  const System sys = fig2_system();
  EXPECT_THROW((void)SystemView(sys, UseCase{7}), std::out_of_range);
  EXPECT_THROW((void)sys.restrict_to({7}), std::out_of_range);
  const SystemView view(sys, UseCase{1});
  EXPECT_THROW((void)view.app(1), std::out_of_range);
  EXPECT_THROW((void)view.app_of_actor(99), std::out_of_range);
}

TEST(SystemView, AppendAndPopKeepViewsConsistent) {
  System sys = random_system(64, 3);
  const std::size_t before = sys.app_count();
  sdf::Graph extra = procon::testing::fig2_graph_a();
  std::vector<NodeId> nodes(extra.actor_count(), 0);
  sys.append_app(extra, nodes);
  EXPECT_EQ(sys.app_count(), before + 1);
  const SystemView view(sys, UseCase{static_cast<sdf::AppId>(before)});
  EXPECT_EQ(view.app(0).name(), extra.name());
  EXPECT_EQ(view.node_of(0, 0), 0u);
  sys.pop_app();
  EXPECT_EQ(sys.app_count(), before);
  EXPECT_THROW(sys.append_app(extra, {0}), sdf::GraphError);  // size mismatch
}

}  // namespace
}  // namespace procon::platform
