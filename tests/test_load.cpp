#include "prob/load.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "sdf/repetition.h"

namespace procon::prob {
namespace {

TEST(BlockingProbability, PaperValues) {
  // P(a0) = 100 * 1 / 300 = 1/3 (Definition 4).
  EXPECT_NEAR(blocking_probability(100.0, 1, 300.0), 1.0 / 3.0, 1e-12);
  // a1 fires twice: P = 50 * 2 / 300 = 1/3.
  EXPECT_NEAR(blocking_probability(50.0, 2, 300.0), 1.0 / 3.0, 1e-12);
}

TEST(BlockingProbability, ClampsToOne) {
  EXPECT_DOUBLE_EQ(blocking_probability(400.0, 2, 300.0), 1.0);
}

TEST(BlockingProbability, ZeroExecTime) {
  EXPECT_DOUBLE_EQ(blocking_probability(0.0, 3, 300.0), 0.0);
}

TEST(BlockingProbability, DegeneratePeriod) {
  EXPECT_DOUBLE_EQ(blocking_probability(10.0, 1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(blocking_probability(0.0, 1, 0.0), 0.0);
}

TEST(MeanBlockingTime, HalfExecTime) {
  // Definition 5 / Eq. 2: mu = tau / 2 for constant execution times.
  EXPECT_DOUBLE_EQ(mean_blocking_time(100.0), 50.0);
  EXPECT_DOUBLE_EQ(mean_blocking_time(0.0), 0.0);
}

TEST(DeriveLoads, PaperGraphA) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  const auto loads = derive_loads(g, *q, 300.0);
  ASSERT_EQ(loads.size(), 3u);
  for (const ActorLoad& l : loads) {
    EXPECT_NEAR(l.probability, 1.0 / 3.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(loads[0].mean_blocking, 50.0);  // mu(a0)
  EXPECT_DOUBLE_EQ(loads[1].mean_blocking, 25.0);  // mu(a1)
  EXPECT_DOUBLE_EQ(loads[2].mean_blocking, 50.0);  // mu(a2)
}

TEST(DeriveLoads, PaperGraphB) {
  const sdf::Graph g = procon::testing::fig2_graph_b();
  const auto q = sdf::compute_repetition_vector(g);
  const auto loads = derive_loads(g, *q, 300.0);
  EXPECT_DOUBLE_EQ(loads[0].mean_blocking, 25.0);  // mu(b0) = 50/2
  EXPECT_DOUBLE_EQ(loads[1].mean_blocking, 50.0);
  EXPECT_DOUBLE_EQ(loads[2].mean_blocking, 50.0);
  for (const ActorLoad& l : loads) {
    EXPECT_NEAR(l.probability, 1.0 / 3.0, 1e-12);
  }
}

TEST(DeriveLoads, WeightedBlocking) {
  ActorLoad l;
  l.probability = 1.0 / 3.0;
  l.mean_blocking = 50.0;
  EXPECT_NEAR(l.weighted_blocking(), 50.0 / 3.0, 1e-12);
}

TEST(DeriveLoads, SizeMismatchThrows) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  sdf::RepetitionVector bad{1, 2};
  EXPECT_THROW((void)derive_loads(g, bad, 300.0), sdf::GraphError);
}

TEST(DeriveLoads, NonPositivePeriodThrows) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  EXPECT_THROW((void)derive_loads(g, *q, 0.0), sdf::GraphError);
  EXPECT_THROW((void)derive_loads(g, *q, -5.0), sdf::GraphError);
}

}  // namespace
}  // namespace procon::prob
