// Interconnect tier tests: platform::Topology routing/service-time
// contracts, the backward-compatibility guarantee (kind None is bitwise
// identical to a topology-free system in both analysis tiers), the
// SystemView == materialise equivalence on routed systems, a randomized
// differential suite (generated graphs x {bus, ring, mesh} x link widths,
// simulator vs estimator), and the Zobrist topology-feature property test
// (incremental System fingerprints vs the from-scratch constructor oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "gen/graph_generator.h"
#include "helpers.h"
#include "platform/system.h"
#include "platform/system_view.h"
#include "platform/topology.h"
#include "prob/estimator.h"
#include "sim/sim_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace procon {
namespace {

using platform::Link;
using platform::LinkId;
using platform::Mapping;
using platform::Platform;
using platform::System;
using platform::SystemView;
using platform::Topology;
using platform::TopologyKind;
using platform::UseCase;

// ---------------------------------------------------------------------------
// Helpers

/// Walks `route` and checks it is a contiguous src -> dst link chain.
void expect_route_connects(const Topology& topo, platform::NodeId src,
                           platform::NodeId dst, const std::vector<LinkId>& route) {
  if (topo.kind() == TopologyKind::Bus) {
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(route[0], 0u);
    return;
  }
  platform::NodeId at = src;
  for (const LinkId id : route) {
    const Link& lk = topo.link(id);
    ASSERT_EQ(lk.src, at) << "route hop does not start where the last ended";
    at = lk.dst;
  }
  EXPECT_EQ(at, dst) << "route does not terminate at the destination";
}

System make_system(std::vector<sdf::Graph> apps, std::size_t nodes) {
  Platform plat = Platform::homogeneous(nodes);
  Mapping map = Mapping::by_index(apps, plat);
  return System(std::move(apps), std::move(plat), std::move(map));
}

/// A small random multi-application system over `nodes` processors
/// (by-index mapping spreads each graph's actors over distinct nodes, so
/// most channels cross the interconnect once a topology is attached).
System random_system(std::uint64_t seed, std::size_t apps, std::size_t nodes) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = static_cast<std::uint32_t>(nodes);
  gopts.max_repetition = 3;
  return make_system(gen::generate_graphs(rng, gopts, apps, "ic"), nodes);
}

/// Bitwise SimResult comparison, including the per-link utilisation the
/// interconnect tier adds.
void expect_same(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.horizon, b.horizon);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].iterations, b.apps[i].iterations);
    EXPECT_EQ(a.apps[i].converged, b.apps[i].converged);
    EXPECT_EQ(a.apps[i].average_period, b.apps[i].average_period);
    EXPECT_EQ(a.apps[i].worst_period, b.apps[i].worst_period);
    EXPECT_EQ(a.apps[i].iteration_times, b.apps[i].iteration_times);
  }
  EXPECT_EQ(a.node_utilisation, b.node_utilisation);
  EXPECT_EQ(a.link_utilisation, b.link_utilisation);
}

// ---------------------------------------------------------------------------
// Routing and service-time unit tests

TEST(Topology, BusRoutesEveryPairOverTheSharedLink) {
  const Topology bus = Topology::bus(4, 2, 3);
  EXPECT_EQ(bus.kind(), TopologyKind::Bus);
  EXPECT_EQ(bus.link_count(), 1u);
  std::vector<LinkId> route;
  for (platform::NodeId s = 0; s < 4; ++s) {
    for (platform::NodeId d = 0; d < 4; ++d) {
      route.clear();
      const std::size_t hops = bus.route(s, d, route);
      if (s == d) {
        EXPECT_EQ(hops, 0u);
      } else {
        ASSERT_EQ(hops, 1u);
        EXPECT_EQ(route[0], 0u);
      }
    }
  }
  // service_time = latency + ceil(tokens / width); zero tokens are free.
  EXPECT_EQ(bus.service_time(0, 0), 0);
  EXPECT_EQ(bus.service_time(0, 1), 3 + 1);
  EXPECT_EQ(bus.service_time(0, 2), 3 + 1);
  EXPECT_EQ(bus.service_time(0, 3), 3 + 2);
}

TEST(Topology, RingTakesMinimalDirectionAndTiesClockwise) {
  const Topology ring = Topology::ring(5);
  EXPECT_EQ(ring.link_count(), 10u);  // 2 directed links per node
  std::vector<LinkId> route;

  // 0 -> 2: clockwise distance 2 beats counter-clockwise 3.
  ASSERT_EQ(ring.route(0, 2, route), 2u);
  EXPECT_EQ(route[0], 0u);  // 0 -> 1, clockwise link 2*0
  EXPECT_EQ(route[1], 2u);  // 1 -> 2, clockwise link 2*1
  expect_route_connects(ring, 0, 2, route);

  // 0 -> 3: counter-clockwise distance 2 beats clockwise 3.
  route.clear();
  ASSERT_EQ(ring.route(0, 3, route), 2u);
  EXPECT_EQ(route[0], 1u);  // 0 -> 4, counter-clockwise link 2*0+1
  EXPECT_EQ(route[1], 9u);  // 4 -> 3, counter-clockwise link 2*4+1
  expect_route_connects(ring, 0, 3, route);

  // Even ring: the equidistant antipode resolves clockwise.
  const Topology even = Topology::ring(4);
  route.clear();
  ASSERT_EQ(even.route(1, 3, route), 2u);
  EXPECT_EQ(even.link(route[0]).dst, 2u) << "tie must go clockwise";
  expect_route_connects(even, 1, 3, route);
}

TEST(Topology, MeshRoutesXYColumnFirst) {
  // 2 x 3 mesh: node r*3+c.   0 1 2
  //                           3 4 5
  const Topology mesh = Topology::mesh(2, 3);
  // Directed links: rows * (cols-1) horizontal + cols * (rows-1) vertical,
  // each doubled for direction.
  EXPECT_EQ(mesh.link_count(), 2u * (2 * 2 + 3 * 1));
  std::vector<LinkId> route;
  ASSERT_EQ(mesh.route(0, 5, route), 3u);
  // XY order corrects the column first: 0 -> 1 -> 2 -> 5.
  EXPECT_EQ(mesh.link(route[0]).dst, 1u);
  EXPECT_EQ(mesh.link(route[1]).dst, 2u);
  EXPECT_EQ(mesh.link(route[2]).dst, 5u);
  expect_route_connects(mesh, 0, 5, route);

  route.clear();
  ASSERT_EQ(mesh.route(5, 0, route), 3u);
  EXPECT_EQ(mesh.link(route[0]).dst, 4u);
  EXPECT_EQ(mesh.link(route[1]).dst, 3u);
  EXPECT_EQ(mesh.link(route[2]).dst, 0u);
  expect_route_connects(mesh, 5, 0, route);

  // Routing is deterministic: repeated calls append identical sequences.
  std::vector<LinkId> again;
  mesh.route(5, 0, again);
  std::vector<LinkId> expected(route);
  EXPECT_EQ(again, expected);
}

TEST(Topology, FactoriesRejectDegenerateShapes) {
  EXPECT_THROW((void)Topology::bus(0), std::invalid_argument);
  EXPECT_THROW((void)Topology::ring(1), std::invalid_argument);
  EXPECT_THROW((void)Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_THROW((void)Topology::mesh(3, 0), std::invalid_argument);
  EXPECT_THROW((void)Topology::mesh(1, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)Topology::bus(1));
  EXPECT_NO_THROW((void)Topology::mesh(1, 2));
}

TEST(Topology, AttributeClampingAndMutation) {
  Topology t = Topology::ring(3, 0, -5);  // width clamps to 1, latency to 0
  EXPECT_EQ(t.link(0).width, 1u);
  EXPECT_EQ(t.link(0).latency, 0);
  t.set_link_width(0, 4);
  t.set_link_latency(0, 7);
  EXPECT_EQ(t.service_time(0, 8), 7 + 2);
  EXPECT_THROW(t.set_link_width(99, 1), std::out_of_range);
  EXPECT_THROW((void)t.service_time(99, 1), std::out_of_range);
}

TEST(Topology, PlatformRejectsNodeCountMismatch) {
  System sys = make_system({testing::fig2_graph_a()}, 3);
  EXPECT_THROW(sys.set_topology(Topology::bus(4)), std::invalid_argument);
  EXPECT_THROW(sys.set_topology(Topology::mesh(2, 2)), std::invalid_argument);
  EXPECT_NO_THROW(sys.set_topology(Topology::ring(3)));
}

// ---------------------------------------------------------------------------
// Backward compatibility: kind None == no topology, bitwise

TEST(Interconnect, NoneTopologyIsBitwiseIdenticalToTopologyFree) {
  const System plain = testing::fig2_system();
  System with_none = testing::fig2_system();
  with_none.set_topology(Topology{});
  EXPECT_EQ(plain.fingerprint(), with_none.fingerprint());

  const sim::SimOptions sopts{.horizon = 100'000};
  expect_same(sim::simulate(plain, sopts), sim::simulate(with_none, sopts));

  const prob::ContentionEstimator est;
  const auto a = est.estimate(SystemView(plain));
  const auto b = est.estimate(SystemView(with_none));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].estimated_period, b[i].estimated_period);
    EXPECT_EQ(a[i].isolation_period, b[i].isolation_period);
  }
}

TEST(Interconnect, DetachingATopologyRestoresThePlainSystemBitwise) {
  const System plain = random_system(11, 2, 4);
  System roamed = random_system(11, 2, 4);
  ASSERT_EQ(plain.fingerprint(), roamed.fingerprint());

  roamed.set_topology(Topology::ring(4, 2, 1));
  EXPECT_NE(plain.fingerprint(), roamed.fingerprint())
      << "attaching an interconnect must change the fingerprint";
  roamed.set_topology(Topology{});
  EXPECT_EQ(plain.fingerprint(), roamed.fingerprint());

  const sim::SimOptions sopts{.horizon = 100'000};
  expect_same(sim::simulate(plain, sopts), sim::simulate(roamed, sopts));
}

// ---------------------------------------------------------------------------
// SystemView == materialise on routed systems

TEST(Interconnect, ViewMatchesMaterialiseOnRoutedSystems) {
  System sys = random_system(23, 3, 6);
  sys.set_topology(Topology::mesh(2, 3, 1, 2));
  const UseCase uc{0, 2};
  const SystemView view(sys, uc);
  const System copy = sys.restrict_to(uc);

  EXPECT_EQ(view.fingerprint(), copy.fingerprint());
  EXPECT_TRUE(copy.platform().topology() == sys.platform().topology())
      << "restriction must carry the interconnect through";

  const sim::SimOptions sopts{.horizon = 150'000};
  expect_same(sim::simulate(view, sopts), sim::simulate(copy, sopts));

  const prob::ContentionEstimator est;
  const auto from_view = est.estimate(view);
  const auto from_copy = est.estimate(SystemView(copy));
  ASSERT_EQ(from_view.size(), from_copy.size());
  for (std::size_t i = 0; i < from_view.size(); ++i) {
    EXPECT_EQ(from_view[i].estimated_period, from_copy[i].estimated_period);
    EXPECT_EQ(from_view[i].isolation_period, from_copy[i].isolation_period);
    ASSERT_EQ(from_view[i].actors.size(), from_copy[i].actors.size());
    for (std::size_t a = 0; a < from_view[i].actors.size(); ++a) {
      EXPECT_EQ(from_view[i].actors[a].waiting_time,
                from_copy[i].actors[a].waiting_time);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized differential suite: generated graphs x topology x widths

struct TopoCase {
  const char* name;
  Topology topo;
};

std::vector<TopoCase> topologies_for(std::size_t nodes, std::uint32_t width) {
  std::vector<TopoCase> out;
  out.push_back({"bus", Topology::bus(nodes, width, 1)});
  out.push_back({"ring", Topology::ring(nodes, width, 1)});
  if (nodes == 6) out.push_back({"mesh2x3", Topology::mesh(2, 3, width, 1)});
  return out;
}

TEST(Interconnect, DifferentialSimVsEstimatorOnRandomSystems) {
  // For every generated system and every topology/width combination both
  // tiers must agree qualitatively (routing slows things down, nothing
  // diverges) and quantitatively: the probabilistic estimate stays within
  // 75% (percent_abs_diff) of the simulated steady-state period. That is
  // the documented sim-estimator agreement bound for routed systems — wider
  // than the 50% processor-only bound in test_integration.cpp because the
  // link term composes a second-order approximation on top of the node
  // approximation (see the "Interconnect extension" note in
  // prob/estimator.h).
  constexpr double kRoutedAgreementBoundPct = 75.0;
  const sim::SimOptions sopts{.horizon = 200'000};
  const prob::ContentionEstimator est;

  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    const System plain = random_system(seed, 2, 6);
    const sim::SimResult base = sim::simulate(plain, sopts);
    const auto base_est = est.estimate(SystemView(plain));

    for (const std::uint32_t width : {1u, 4u}) {
      for (TopoCase& tc : topologies_for(6, width)) {
        System sys = random_system(seed, 2, 6);
        sys.set_topology(tc.topo);

        const sim::SimResult sim = sim::simulate(sys, sopts);
        const auto estd = est.estimate(SystemView(sys));
        ASSERT_EQ(sim.apps.size(), estd.size());
        ASSERT_EQ(sim.link_utilisation.size(), tc.topo.link_count())
            << tc.name << " seed=" << seed;

        double util_sum = 0.0;
        for (const double u : sim.link_utilisation) {
          EXPECT_GE(u, 0.0) << tc.name;
          EXPECT_LE(u, 1.0 + 1e-12) << tc.name;
          util_sum += u;
        }
        EXPECT_GT(util_sum, 0.0)
            << tc.name << " seed=" << seed
            << ": by-index mapping must produce inter-node traffic";

        for (std::size_t i = 0; i < estd.size(); ++i) {
          ASSERT_TRUE(sim.apps[i].converged)
              << tc.name << " seed=" << seed << " app=" << i;
          EXPECT_TRUE(std::isfinite(estd[i].estimated_period));
          // Link contention only adds delay on top of the isolation period.
          EXPECT_GE(estd[i].estimated_period + 1e-9, estd[i].isolation_period);
          // And routed estimates dominate the unrouted ones: removing the
          // interconnect can never make the estimate slower.
          EXPECT_GE(estd[i].estimated_period + 1e-9,
                    base_est[i].estimated_period)
              << tc.name << " seed=" << seed << " app=" << i;
          // Routed simulation does not outrun the unrouted baseline by more
          // than one boundary iteration: message latency can only delay
          // deposits, but the reshuffled arbitration order may land one
          // extra iteration completion just inside the horizon.
          EXPECT_LE(sim.apps[i].iterations, base.apps[i].iterations + 1);

          const double err = util::percent_abs_diff(
              estd[i].estimated_period, sim.apps[i].average_period);
          EXPECT_LT(err, kRoutedAgreementBoundPct)
              << tc.name << " width=" << width << " seed=" << seed
              << " app=" << i << " est=" << estd[i].estimated_period
              << " sim=" << sim.apps[i].average_period;
        }
      }
    }
  }
}

TEST(Interconnect, WiderLinksNeverSlowTheEstimateDown) {
  const prob::ContentionEstimator est;
  for (const std::uint64_t seed : {7ull, 8ull}) {
    double previous = std::numeric_limits<double>::infinity();
    for (const std::uint32_t width : {1u, 2u, 8u}) {
      System sys = random_system(seed, 2, 6);
      sys.set_topology(Topology::bus(6, width, 1));
      const auto estd = est.estimate(SystemView(sys));
      double total = 0.0;
      for (const auto& e : estd) total += e.estimated_period;
      EXPECT_LE(total, previous + 1e-9) << "seed=" << seed << " width=" << width;
      previous = total;
    }
  }
}

TEST(Interconnect, SimEngineMatchesOneShotSimulateOnRoutedSystems) {
  System sys = random_system(31, 3, 6);
  sys.set_topology(Topology::ring(6, 2, 1));
  const sim::SimOptions sopts{.horizon = 150'000};

  sim::SimEngine engine(sys);
  engine.reset();
  expect_same(engine.run(sopts), sim::simulate(sys, sopts));

  const UseCase uc{1, 2};
  engine.reset(uc);
  expect_same(engine.run(sopts), sim::simulate(sys.restrict_to(uc), sopts));
}

// ---------------------------------------------------------------------------
// Zobrist topology features: incremental fingerprint == from-scratch oracle

/// Rebuilds the system from its parts — the constructor computes the
/// fingerprint from scratch, so this is the oracle the incremental
/// set_topology / set_link_* deltas must match.
std::uint64_t oracle_fingerprint(const System& sys) {
  std::vector<sdf::Graph> apps(sys.apps().begin(), sys.apps().end());
  return System(std::move(apps), sys.platform(), sys.mapping()).fingerprint();
}

TEST(Interconnect, FingerprintSurvives200RandomTopologyMutations) {
  constexpr int kSteps = 200;
  System sys = random_system(47, 2, 6);
  util::Rng rng(0xF00D);

  for (int step = 0; step < kSteps; ++step) {
    const double roll = rng.uniform01();
    const std::size_t links = sys.platform().topology().link_count();
    if (roll < 0.25 || links == 0) {
      // Swap the whole interconnect (including back to None).
      switch (rng.uniform_int(0, 3)) {
        case 0: sys.set_topology(Topology{}); break;
        case 1: sys.set_topology(Topology::bus(6)); break;
        case 2: sys.set_topology(Topology::ring(6)); break;
        default: sys.set_topology(Topology::mesh(2, 3)); break;
      }
    } else if (roll < 0.625) {
      const auto id = static_cast<LinkId>(
          rng.uniform_int(0, static_cast<std::int64_t>(links) - 1));
      sys.set_link_width(id, static_cast<std::uint32_t>(rng.uniform_int(1, 8)));
    } else {
      const auto id = static_cast<LinkId>(
          rng.uniform_int(0, static_cast<std::int64_t>(links) - 1));
      sys.set_link_latency(id, rng.uniform_int(0, 15));
    }
    ASSERT_EQ(sys.fingerprint(), oracle_fingerprint(sys)) << "step " << step;
  }
}

TEST(Interconnect, DistinctTopologiesNeverAliasTheFingerprint) {
  // Same applications and mapping, different interconnects: every pair of
  // structurally distinct topologies must produce distinct fingerprints.
  std::vector<Topology> topologies;
  topologies.push_back(Topology{});
  topologies.push_back(Topology::bus(6));
  topologies.push_back(Topology::bus(6, 2, 1));
  topologies.push_back(Topology::bus(6, 1, 3));
  topologies.push_back(Topology::ring(6));
  topologies.push_back(Topology::mesh(2, 3));
  topologies.push_back(Topology::mesh(3, 2));
  {
    Topology t = Topology::ring(6);
    t.set_link_width(3, 5);
    topologies.push_back(std::move(t));
  }
  {
    Topology t = Topology::mesh(2, 3);
    t.set_link_latency(1, 9);
    topologies.push_back(std::move(t));
  }

  std::vector<std::uint64_t> prints;
  for (const Topology& t : topologies) {
    System sys = random_system(5, 2, 6);
    sys.set_topology(t);
    prints.push_back(sys.fingerprint());
  }
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    for (std::size_t j = i + 1; j < topologies.size(); ++j) {
      ASSERT_FALSE(topologies[i] == topologies[j])
          << "test list must hold structurally distinct topologies";
      EXPECT_NE(prints[i], prints[j]) << "alias between topology " << i
                                      << " and " << j;
    }
  }
}

}  // namespace
}  // namespace procon
