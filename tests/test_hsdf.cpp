#include "analysis/hsdf.h"

#include <gtest/gtest.h>

#include <map>

#include "helpers.h"
#include "sdf/repetition.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using sdf::Graph;

Hsdf expand(const Graph& g) {
  const auto q = sdf::compute_repetition_vector(g);
  return expand_to_hsdf(g, *q, {});
}

TEST(Hsdf, NodeCountIsRepetitionSum) {
  const Graph g = fig2_graph_a();
  const Hsdf h = expand(g);
  EXPECT_EQ(h.node_count(), 4u);  // q = [1 2 1]
  // Nodes carry their source actor and firing index.
  std::map<sdf::ActorId, int> firings;
  for (const HsdfNode& n : h.nodes) ++firings[n.source_actor];
  EXPECT_EQ(firings[0], 1);
  EXPECT_EQ(firings[1], 2);
  EXPECT_EQ(firings[2], 1);
}

TEST(Hsdf, ExecTimesCarriedOver) {
  const Graph g = fig2_graph_a();
  const Hsdf h = expand(g);
  for (const HsdfNode& n : h.nodes) {
    EXPECT_DOUBLE_EQ(n.exec_time, static_cast<double>(g.actor(n.source_actor).exec_time));
  }
}

TEST(Hsdf, ExecTimeOverride) {
  const Graph g = fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  const std::vector<double> times{108.5, 66.75, 116.25};
  const Hsdf h = expand_to_hsdf(g, *q, times);
  for (const HsdfNode& n : h.nodes) {
    EXPECT_DOUBLE_EQ(n.exec_time, times[n.source_actor]);
  }
}

TEST(Hsdf, OverrideSizeMismatchThrows) {
  const Graph g = fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(expand_to_hsdf(g, *q, wrong), sdf::GraphError);
}

TEST(Hsdf, RepetitionVectorMismatchThrows) {
  const Graph g = fig2_graph_a();
  sdf::RepetitionVector bad{1, 2};
  EXPECT_THROW(expand_to_hsdf(g, bad, {}), sdf::GraphError);
}

// Checks the precedence structure of Fig. 2's graph A in detail.
TEST(Hsdf, PaperGraphEdges) {
  const Graph g = fig2_graph_a();
  const Hsdf h = expand(g);
  // Node order: a0.0 (index 0), a1.0 (1), a1.1 (2), a2.0 (3).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const HsdfEdge& e : h.edges) edges[{e.src, e.dst}] = e.tokens;
  // a0 feeds both firings of a1 in the same iteration.
  ASSERT_TRUE(edges.count({0, 1}));
  EXPECT_EQ((edges[{0, 1}]), 0u);
  ASSERT_TRUE(edges.count({0, 2}));
  EXPECT_EQ((edges[{0, 2}]), 0u);
  // Both a1 firings feed a2.
  ASSERT_TRUE(edges.count({1, 3}));
  EXPECT_EQ((edges[{1, 3}]), 0u);
  ASSERT_TRUE(edges.count({2, 3}));
  EXPECT_EQ((edges[{2, 3}]), 0u);
  // a2 -> a0 carries the iteration token.
  ASSERT_TRUE(edges.count({3, 0}));
  EXPECT_EQ((edges[{3, 0}]), 1u);
}

TEST(Hsdf, SelfLoopChainsFirings) {
  const Graph g = fig2_graph_a().with_self_loops();
  const Hsdf h = expand(g);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const HsdfEdge& e : h.edges) edges[{e.src, e.dst}] = e.tokens;
  // a1 has two firings (nodes 1 and 2): the self-loop must chain
  // a1.0 -> a1.1 within the iteration and a1.1 -> a1.0 across iterations.
  ASSERT_TRUE(edges.count({1, 2}));
  EXPECT_EQ((edges[{1, 2}]), 0u);
  ASSERT_TRUE(edges.count({2, 1}));
  EXPECT_EQ((edges[{2, 1}]), 1u);
}

TEST(Hsdf, HomogeneousGraphIsIsomorphic) {
  // All rates 1: the HSDF is the graph itself.
  Graph g;
  const auto x = g.add_actor("x", 3);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 2);
  const Hsdf h = expand(g);
  EXPECT_EQ(h.node_count(), 2u);
  ASSERT_EQ(h.edge_count(), 2u);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const HsdfEdge& e : h.edges) edges[{e.src, e.dst}] = e.tokens;
  EXPECT_EQ((edges[{0, 1}]), 0u);
  EXPECT_EQ((edges[{1, 0}]), 2u);
}

TEST(Hsdf, ManyInitialTokensGiveLargerDelays) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 3);  // three tokens -> dependency 3 iterations back
  g.add_channel(y, x, 1, 1, 0);
  const Hsdf h = expand(g);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const HsdfEdge& e : h.edges) edges[{e.src, e.dst}] = e.tokens;
  EXPECT_EQ((edges[{0, 1}]), 3u);
  EXPECT_EQ((edges[{1, 0}]), 0u);
}

TEST(Hsdf, DotOutputMentionsNodes) {
  const Hsdf h = expand(fig2_graph_a());
  const std::string dot = hsdf_to_dot(h);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a1.1"), std::string::npos);
}

}  // namespace
}  // namespace procon::analysis
