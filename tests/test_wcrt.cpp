#include "wcrt/wcrt.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "prob/estimator.h"

namespace procon::wcrt {
namespace {

TEST(WcrtFormulas, RoundRobinSumsOtherExecTimes) {
  EXPECT_DOUBLE_EQ(wcrt_round_robin(10.0, {}), 10.0);
  EXPECT_DOUBLE_EQ(wcrt_round_robin(10.0, {5.0, 7.0}), 22.0);
}

TEST(WcrtFormulas, TdmaFairWheelEqualsRoundRobin) {
  // slot = own execution time -> one slot suffices: WCRT = C + (W - s).
  EXPECT_DOUBLE_EQ(wcrt_tdma(10.0, 10.0, {5.0, 7.0}), 22.0);
}

TEST(WcrtFormulas, TdmaSmallSlotsArePunishing) {
  // C = 10, s = 2 -> 5 slots, each preceded by the rest of the wheel (12).
  EXPECT_DOUBLE_EQ(wcrt_tdma(10.0, 2.0, {5.0, 7.0}), 10.0 + 5.0 * 12.0);
}

TEST(WcrtFormulas, TdmaInvalidSlotThrows) {
  EXPECT_THROW((void)wcrt_tdma(10.0, 0.0, {}), std::invalid_argument);
}

TEST(WorstCase, PaperExampleRoundRobin) {
  // On each node, the worst case adds the full execution time of the other
  // application's actor: A responses = {150, 150, 200}, giving period
  // 100+25+... -> per the cycle: 150 + 2*150 + 200 = 650. Same for B.
  const auto sys = procon::testing::fig2_system();
  const auto bounds = worst_case_bounds(sys);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_NEAR(bounds[0].isolation_period, 300.0, 1e-6);
  EXPECT_NEAR(bounds[0].actors[0].response_time, 150.0, 1e-9);  // 100 + 50
  EXPECT_NEAR(bounds[0].actors[1].response_time, 150.0, 1e-9);  // 50 + 100
  EXPECT_NEAR(bounds[0].actors[2].response_time, 200.0, 1e-9);  // 100 + 100
  EXPECT_NEAR(bounds[0].worst_case_period, 650.0, 1e-5);
  EXPECT_NEAR(bounds[1].worst_case_period, 650.0, 1e-5);
}

TEST(WorstCase, AlwaysAboveProbabilisticEstimate) {
  // WCRT is conservative: must dominate every probabilistic estimate.
  const auto sys = procon::testing::fig2_system();
  const auto bounds = worst_case_bounds(sys);
  const auto est = prob::ContentionEstimator().estimate(sys);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_GE(bounds[i].worst_case_period + 1e-9, est[i].estimated_period);
    EXPECT_GE(bounds[i].worst_case_period + 1e-9, bounds[i].isolation_period);
  }
}

TEST(WorstCase, TdmaFairWheelMatchesRoundRobinBound) {
  const auto sys = procon::testing::fig2_system();
  const auto rr = worst_case_bounds(
      sys, WcrtOptions{.policy = Policy::RoundRobinNonPreemptive});
  const auto tdma =
      worst_case_bounds(sys, WcrtOptions{.policy = Policy::TdmaPreemptive});
  for (std::size_t i = 0; i < rr.size(); ++i) {
    EXPECT_NEAR(rr[i].worst_case_period, tdma[i].worst_case_period, 1e-6);
  }
}

TEST(WorstCase, TdmaUniformSlotAtLeastNTimesExec) {
  // With n actors on a uniform-slot wheel the bound is at least n * C:
  // C + ceil(C/s)(n-1)s >= C + (C/s)(n-1)s = nC; rounding only adds.
  for (const double c : {10.0, 37.0, 100.0}) {
    for (const double s : {1.0, 7.0, 10.0, 50.0}) {
      for (int n = 2; n <= 5; ++n) {
        const std::vector<double> others(static_cast<std::size_t>(n - 1), s);
        EXPECT_GE(wcrt_tdma(c, s, others) + 1e-9, n * c)
            << "C=" << c << " s=" << s << " n=" << n;
      }
    }
  }
}

TEST(WorstCase, TdmaExactWhenSlotDividesExec) {
  // When s divides C the uniform-wheel bound is exactly n * C.
  EXPECT_DOUBLE_EQ(wcrt_tdma(100.0, 10.0, {10.0}), 200.0);
  EXPECT_DOUBLE_EQ(wcrt_tdma(100.0, 10.0, {10.0, 10.0}), 300.0);
}

TEST(WorstCase, NoContentionNoWait) {
  const auto sys = procon::testing::fig2_system().restrict_to({0});
  const auto bounds = worst_case_bounds(sys);
  EXPECT_NEAR(bounds[0].worst_case_period, bounds[0].isolation_period, 1e-9);
  for (const auto& a : bounds[0].actors) {
    EXPECT_DOUBLE_EQ(a.waiting_time, 0.0);
  }
}

TEST(WorstCase, GrowsLinearlyWithContenders) {
  // Stack k identical apps on the same nodes: the RR bound's response times
  // grow linearly in k, so the period bound must be non-decreasing.
  double last = 0.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    std::vector<sdf::Graph> apps;
    for (std::size_t i = 0; i < k; ++i) {
      apps.push_back(procon::testing::fig2_graph_a());
    }
    platform::Platform plat = platform::Platform::homogeneous(3);
    platform::Mapping m = platform::Mapping::by_index(apps, plat);
    const platform::System sys(std::move(apps), std::move(plat), std::move(m));
    const auto bounds = worst_case_bounds(sys);
    EXPECT_GE(bounds[0].worst_case_period + 1e-9, last);
    last = bounds[0].worst_case_period;
  }
  // 4 apps: every actor of A waits 3 full peers. Response times
  // {400, 200+ ...}: a0: 100+3*100, a1: 50+3*50, a2: 100+3*100 -> period
  // 400 + 2*200 + 400 = 1200 = 4x isolation.
  EXPECT_NEAR(last, 1200.0, 1e-5);
}

}  // namespace
}  // namespace procon::wcrt
