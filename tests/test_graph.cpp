#include "sdf/graph.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(Graph, AddActorsAndChannels) {
  Graph g("g");
  const ActorId a = g.add_actor("a", 10);
  const ActorId b = g.add_actor("b", 20);
  const ChannelId c = g.add_channel(a, b, 2, 3, 4);
  EXPECT_EQ(g.actor_count(), 2u);
  EXPECT_EQ(g.channel_count(), 1u);
  EXPECT_EQ(g.actor(a).name, "a");
  EXPECT_EQ(g.actor(b).exec_time, 20);
  EXPECT_EQ(g.channel(c).prod_rate, 2u);
  EXPECT_EQ(g.channel(c).cons_rate, 3u);
  EXPECT_EQ(g.channel(c).initial_tokens, 4u);
}

TEST(Graph, RejectsNegativeExecTime) {
  Graph g;
  EXPECT_THROW(g.add_actor("a", -1), GraphError);
}

TEST(Graph, RejectsZeroRates) {
  Graph g;
  const ActorId a = g.add_actor("a", 1);
  EXPECT_THROW(g.add_channel(a, a, 0, 1, 0), GraphError);
  EXPECT_THROW(g.add_channel(a, a, 1, 0, 0), GraphError);
}

TEST(Graph, RejectsInvalidEndpoints) {
  Graph g;
  const ActorId a = g.add_actor("a", 1);
  EXPECT_THROW(g.add_channel(a, 99, 1, 1, 0), GraphError);
  EXPECT_THROW(g.add_channel(99, a, 1, 1, 0), GraphError);
}

TEST(Graph, InvalidIdQueriesThrow) {
  Graph g;
  EXPECT_THROW((void)g.actor(0), GraphError);
  EXPECT_THROW((void)g.channel(0), GraphError);
  EXPECT_THROW((void)g.out_channels(0), GraphError);
}

TEST(Graph, AdjacencyLists) {
  Graph g;
  const ActorId a = g.add_actor("a", 1);
  const ActorId b = g.add_actor("b", 1);
  const ChannelId ab = g.add_channel(a, b, 1, 1, 0);
  const ChannelId ba = g.add_channel(b, a, 1, 1, 1);
  ASSERT_EQ(g.out_channels(a).size(), 1u);
  EXPECT_EQ(g.out_channels(a)[0], ab);
  ASSERT_EQ(g.in_channels(a).size(), 1u);
  EXPECT_EQ(g.in_channels(a)[0], ba);
}

TEST(Graph, SelfLoopAppearsInBothLists) {
  Graph g;
  const ActorId a = g.add_actor("a", 1);
  const ChannelId c = g.add_channel(a, a, 1, 1, 1);
  ASSERT_EQ(g.out_channels(a).size(), 1u);
  ASSERT_EQ(g.in_channels(a).size(), 1u);
  EXPECT_EQ(g.out_channels(a)[0], c);
  EXPECT_TRUE(g.channel(c).is_self_loop());
}

TEST(Graph, FindActor) {
  Graph g;
  g.add_actor("alpha", 1);
  const ActorId beta = g.add_actor("beta", 1);
  EXPECT_EQ(g.find_actor("beta"), beta);
  EXPECT_EQ(g.find_actor("gamma"), kInvalidActor);
}

TEST(Graph, TotalExecTime) {
  const Graph g = procon::testing::fig2_graph_a();
  EXPECT_EQ(g.total_exec_time(), 250);
}

TEST(Graph, WithExecTimes) {
  const Graph g = procon::testing::fig2_graph_a();
  const std::vector<Time> times{1, 2, 3};
  const Graph g2 = g.with_exec_times(times);
  EXPECT_EQ(g2.actor(0).exec_time, 1);
  EXPECT_EQ(g2.actor(2).exec_time, 3);
  // Original untouched; structure preserved.
  EXPECT_EQ(g.actor(0).exec_time, 100);
  EXPECT_EQ(g2.channel_count(), g.channel_count());
}

TEST(Graph, WithExecTimesValidates) {
  const Graph g = procon::testing::fig2_graph_a();
  EXPECT_THROW((void)g.with_exec_times(std::vector<Time>{1}), GraphError);
  EXPECT_THROW((void)g.with_exec_times(std::vector<Time>{1, -2, 3}), GraphError);
}

TEST(Graph, WithSelfLoops) {
  const Graph g = procon::testing::fig2_graph_a();
  const Graph closed = g.with_self_loops();
  EXPECT_EQ(closed.channel_count(), g.channel_count() + g.actor_count());
  for (ActorId a = 0; a < closed.actor_count(); ++a) {
    EXPECT_TRUE(closed.has_self_loop(a));
  }
  // Idempotent.
  EXPECT_EQ(closed.with_self_loops().channel_count(), closed.channel_count());
}

TEST(Graph, HasSelfLoopRequiresToken) {
  Graph g;
  const ActorId a = g.add_actor("a", 1);
  g.add_channel(a, a, 1, 1, 0);  // tokenless self-edge: deadlock, not a guard
  EXPECT_FALSE(g.has_self_loop(a));
}

}  // namespace
}  // namespace procon::sdf
