// Tests for procon_lint itself. Each fixture under tests/lint_fixtures/ is
// a deliberately violating (or deliberately clean) snippet; the assertions
// pin exact (rule, line) pairs so a matcher regression shows up as a diff,
// not a silent pass. Each rule family is additionally proven *live*: with
// the rule disabled, the same fixture must lint clean — a rule that cannot
// be switched off this way is a rule the fixture never exercised.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace procon::lint {
namespace {

#ifndef PROCON_LINT_FIXTURES_DIR
#error "PROCON_LINT_FIXTURES_DIR must be defined by the build"
#endif

std::string fixture(const std::string& name) {
  return std::string(PROCON_LINT_FIXTURES_DIR) + "/" + name;
}

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> rule_lines(const std::vector<Finding>& findings) {
  std::vector<RuleLine> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

/// Lints `name` and asserts the exact (rule, line) multiset.
void expect_findings(const std::string& name,
                     const std::vector<RuleLine>& expected,
                     Options opts = {}) {
  const std::vector<Finding> got = lint_file(fixture(name), opts);
  EXPECT_EQ(rule_lines(got), expected) << "fixture: " << name;
}

/// Proves a rule is live on its fixture: disabling exactly that rule makes
/// the fixture lint clean (any co-firing rules are disabled alongside).
void expect_rule_is_live(const std::string& name,
                         const std::vector<std::string>& rules_to_disable,
                         Options opts = {}) {
  ASSERT_FALSE(lint_file(fixture(name), opts).empty())
      << "fixture " << name << " found nothing with all rules on";
  opts.disabled.insert(opts.disabled.end(), rules_to_disable.begin(),
                       rules_to_disable.end());
  const std::vector<Finding> off = lint_file(fixture(name), opts);
  EXPECT_TRUE(off.empty())
      << "fixture " << name << " still fires with its rule(s) disabled: "
      << (off.empty() ? "" : off.front().rule);
}

// ---- determinism family ---------------------------------------------------

TEST(Lint, DetRandExactFindings) {
  expect_findings("det_rand.cpp", {{"det-rand", 6}, {"det-rand", 7}});
  expect_rule_is_live("det_rand.cpp", {"det-rand"});
}

TEST(Lint, DetRandomDeviceExactFindings) {
  expect_findings("det_random_device.cpp", {{"det-random-device", 7}});
  expect_rule_is_live("det_random_device.cpp", {"det-random-device"});
}

TEST(Lint, DetWallclockExactFindings) {
  expect_findings("det_wallclock.cpp",
                  {{"det-wallclock", 8}, {"det-wallclock", 11}});
  expect_rule_is_live("det_wallclock.cpp", {"det-wallclock"});
}

TEST(Lint, DetPointerHashExactFindings) {
  expect_findings("det_pointer_hash.cpp",
                  {{"det-pointer-hash", 8}, {"det-pointer-hash", 10}});
  expect_rule_is_live("det_pointer_hash.cpp", {"det-pointer-hash"});
}

TEST(Lint, DetUnorderedIterExactFindings) {
  expect_findings("det_unordered_iter.cpp",
                  {{"det-unordered-iter", 13}, {"det-unordered-iter", 18}});
  expect_rule_is_live("det_unordered_iter.cpp", {"det-unordered-iter"});
}

// ---- warm-path family -----------------------------------------------------

TEST(Lint, WarmNewExactFindings) {
  expect_findings("warm_new.cpp", {{"warm-new", 6}});
  expect_rule_is_live("warm_new.cpp", {"warm-new"});
}

TEST(Lint, WarmContainerConstructExactFindings) {
  expect_findings("warm_container_construct.cpp",
                  {{"warm-container-construct", 16},
                   {"warm-container-construct", 17}});
  expect_rule_is_live("warm_container_construct.cpp",
                      {"warm-container-construct"});
}

TEST(Lint, WarmStdFunctionExactFindings) {
  expect_findings("warm_std_function.cpp", {{"warm-std-function", 7}});
  expect_rule_is_live("warm_std_function.cpp", {"warm-std-function"});
}

TEST(Lint, WarmPushBackExactFindings) {
  expect_findings("warm_push_back.cpp", {{"warm-container-construct", 9},
                                         {"warm-push-back", 10},
                                         {"warm-container-construct", 11}});
  // Locals co-fire warm-container-construct; disable both to prove both.
  expect_rule_is_live("warm_push_back.cpp",
                      {"warm-push-back", "warm-container-construct"});
}

// ---- codec-bounds family --------------------------------------------------

TEST(Lint, CodecUnguardedSizeExactFindings) {
  Options opts;
  opts.codec_path = "codec_unguarded_size";
  expect_findings("codec_unguarded_size.cpp",
                  {{"codec-unguarded-size", 18}, {"codec-unguarded-size", 19}},
                  opts);
  expect_rule_is_live("codec_unguarded_size.cpp", {"codec-unguarded-size"},
                      opts);
}

TEST(Lint, CodecFamilyOnlyActiveOnCodecPath) {
  // Same fixture, default codec_path ("net/codec"): the family is inert.
  expect_findings("codec_unguarded_size.cpp", {});
}

// ---- escapes and meta rules -----------------------------------------------

TEST(Lint, AllowEscapeSemantics) {
  // Lines 9 (same-line) and 12 (preceding-line) are suppressed; line 14's
  // escape suppresses det-rand but earns the meta finding; line 16 names a
  // rule that does not exist; line 18 has no escape and fires.
  expect_findings("allow_escape.cpp",
                  {{"lint-allow-without-justification", 14},
                   {"lint-allow-unknown-rule", 16},
                   {"det-rand", 18}});
}

TEST(Lint, MetaFindingsAreNotSuppressible) {
  // lint:allow(lint-allow-without-justification) must not silence itself.
  const std::vector<Finding> got = lint_source(
      "inline.cpp",
      "namespace procon::sim {\n"
      "int f() { return rand(); }  "
      "// lint:allow(det-rand,lint-allow-without-justification)\n"
      "}\n",
      Options{});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].rule, "lint-allow-without-justification");
  EXPECT_EQ(got[0].line, 2);
}

TEST(Lint, CleanFixtureHasNoFindings) {
  expect_findings("clean.cpp", {});
}

// ---- rule table -----------------------------------------------------------

TEST(Lint, EveryRuleHasAFamilyAndSummary) {
  ASSERT_FALSE(rules().empty());
  for (const RuleInfo& r : rules()) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.family.empty());
    EXPECT_FALSE(r.summary.empty());
    EXPECT_TRUE(is_rule_id(r.id));
  }
  EXPECT_FALSE(is_rule_id("not-a-rule"));
}

TEST(Lint, RuleTableRendersEveryRule) {
  const std::string table = render_rule_table();
  for (const RuleInfo& r : rules()) {
    EXPECT_NE(table.find("`" + std::string(r.id) + "`"), std::string::npos)
        << "rule " << r.id << " missing from --list-rules output";
  }
}

}  // namespace
}  // namespace procon::lint
