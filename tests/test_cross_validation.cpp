// Cross-validation of the four period-analysis engines on random graphs,
// and of ThroughputEngine::recompute against the fresh compute_period path.
//
// The engines make very different trade-offs (policy iteration, parametric
// search, exhaustive cycle enumeration, state-space execution) but must
// agree on every consistent graph; this is the safety net under the
// warm-start optimisation: a warm-started Howard run that converged to a
// non-maximal cycle would show up here immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/engine.h"
#include "analysis/howard.h"
#include "analysis/mcr.h"
#include "analysis/state_space.h"
#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "sdf/repetition.h"
#include "util/rng.h"

namespace procon::analysis {
namespace {

double rel_tol(double reference) { return 1e-6 * std::max(1.0, reference); }

TEST(CrossValidation, AllEnginesAgreeOnRandomGraphs) {
  util::Rng rng(20070604);
  gen::GeneratorOptions gopts;  // paper defaults: 8-10 actors, q <= 4
  const auto graphs = gen::generate_graphs(rng, gopts, 20, "xv");

  for (const sdf::Graph& g : graphs) {
    const sdf::Graph closed = g.with_self_loops();
    const auto q = sdf::compute_repetition_vector(closed);
    ASSERT_TRUE(q.has_value()) << g.name();
    const Hsdf h = expand_to_hsdf(closed, *q);

    const McrResult howard = mcr_howard(h);
    const McrResult binary = mcr_binary_search(h);
    ASSERT_FALSE(howard.deadlocked) << g.name();
    ASSERT_FALSE(binary.deadlocked) << g.name();
    ASSERT_TRUE(howard.has_cycle) << g.name();
    EXPECT_NEAR(howard.ratio, binary.ratio, rel_tol(binary.ratio)) << g.name();

    const StateSpaceResult ss = self_timed_period(closed);
    ASSERT_TRUE(ss.converged) << g.name();
    ASSERT_FALSE(ss.deadlocked) << g.name();
    EXPECT_NEAR(howard.ratio, ss.period.to_double(), rel_tol(ss.period.to_double()))
        << g.name();
  }
}

TEST(CrossValidation, EnumerationAgreesOnSmallGraphs) {
  util::Rng rng(42);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  gopts.max_repetition = 2;  // keeps HSDF expansions enumerable
  const auto graphs = gen::generate_graphs(rng, gopts, 20, "small");

  std::size_t enumerated = 0;
  for (const sdf::Graph& g : graphs) {
    const sdf::Graph closed = g.with_self_loops();
    const auto q = sdf::compute_repetition_vector(closed);
    ASSERT_TRUE(q.has_value()) << g.name();
    const Hsdf h = expand_to_hsdf(closed, *q);
    if (h.node_count() > 24) continue;
    ++enumerated;

    const McrResult howard = mcr_howard(h);
    const McrResult exact = mcr_enumerate(h);
    ASSERT_EQ(howard.deadlocked, exact.deadlocked) << g.name();
    ASSERT_EQ(howard.has_cycle, exact.has_cycle) << g.name();
    EXPECT_NEAR(howard.ratio, exact.ratio, rel_tol(exact.ratio)) << g.name();
  }
  EXPECT_GE(enumerated, 10u);  // the guard must not skip the whole sample
}

TEST(CrossValidation, EngineRecomputeMatchesFreshComputePeriod) {
  util::Rng rng(20070613);
  gen::GeneratorOptions gopts;
  const auto graphs = gen::generate_graphs(rng, gopts, 20, "eng");

  for (const sdf::Graph& g : graphs) {
    ThroughputEngine engine(g);
    ASSERT_EQ(engine.actor_count(), g.actor_count());

    // Default times first: engine vs fresh path.
    const PeriodResult fresh0 = compute_period(g);
    const PeriodResult cached0 = engine.recompute();
    ASSERT_EQ(fresh0.deadlocked, cached0.deadlocked) << g.name();
    EXPECT_NEAR(cached0.period, fresh0.period, 1e-9 * std::max(1.0, fresh0.period))
        << g.name();

    // Randomised execution-time sequences: the engine warm-starts from one
    // assignment to the next and must stay identical to a fresh analysis.
    std::vector<double> times(g.actor_count());
    for (int round = 0; round < 10; ++round) {
      for (double& t : times) t = rng.uniform_real(1.0, 100.0);
      const PeriodResult fresh = compute_period(g, times);
      const PeriodResult cached = engine.recompute(times);
      ASSERT_EQ(fresh.deadlocked, cached.deadlocked) << g.name();
      EXPECT_NEAR(cached.period, fresh.period, 1e-9 * std::max(1.0, fresh.period))
          << g.name() << " round " << round;
    }
  }
}

TEST(CrossValidation, EngineHandlesPaperGraphsAndPerturbations) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  ThroughputEngine engine(g);
  EXPECT_NEAR(engine.recompute().period, 300.0, 1e-9);
  // The paper's Section 3.1 response times, via the warm-started path.
  const std::vector<double> response{100.0 + 25.0 / 3.0, 50.0 + 50.0 / 3.0,
                                     100.0 + 50.0 / 3.0};
  EXPECT_NEAR(engine.recompute(response).period, 1075.0 / 3.0, 1e-9);
  // And back: warm-start must not be sticky.
  EXPECT_NEAR(engine.recompute().period, 300.0, 1e-9);
}

TEST(CrossValidation, EngineReportsStructuralDeadlock) {
  sdf::Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 0);
  ThroughputEngine engine(g);
  EXPECT_TRUE(engine.structurally_deadlocked());
  EXPECT_TRUE(engine.recompute().deadlocked);
}

TEST(CrossValidation, EngineRejectsInconsistentGraphs) {
  sdf::Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 2, 1, 0);
  g.add_channel(b, a, 2, 1, 0);
  EXPECT_THROW((void)ThroughputEngine(g), sdf::GraphError);
}

TEST(CrossValidation, HowardFindsCycleBehindSinkDrain) {
  // Regression: with the initial policy pointing 0 -> 2 (a sink), the walk
  // drains without finding a cycle and the improvement step used to skip
  // the -inf tail, never discovering the 0 <-> 1 cycle (ratio 2/2 = 1).
  // Unreachable through ThroughputEngine (self-loop closure leaves no
  // sinks) but mcr_howard is public and must handle open HSDFs.
  Hsdf h;
  h.nodes = {HsdfNode{0, 0, 1.0}, HsdfNode{1, 0, 1.0}, HsdfNode{2, 0, 1.0}};
  h.edges = {HsdfEdge{0, 2, 1}, HsdfEdge{0, 1, 1}, HsdfEdge{1, 0, 1}};
  const McrResult howard = mcr_howard(h);
  const McrResult binary = mcr_binary_search(h);
  ASSERT_TRUE(howard.has_cycle);
  ASSERT_FALSE(howard.deadlocked);
  EXPECT_NEAR(howard.ratio, 1.0, 1e-12);
  EXPECT_NEAR(howard.ratio, binary.ratio, 1e-9);
}

TEST(CrossValidation, EngineRejectsWrongRepetitionVector) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const sdf::Graph closed = g.with_self_loops();
  sdf::RepetitionVector wrong(closed.actor_count(), 1);  // true q is [1 2 1]
  const EngineOptions opts{.assume_closed = true, .repetition = &wrong};
  EXPECT_THROW((void)ThroughputEngine(closed, opts), sdf::GraphError);
}

TEST(CrossValidation, EngineRejectsWrongTimesSize) {
  ThroughputEngine engine(procon::testing::fig2_graph_a());
  const std::vector<double> wrong(2, 1.0);
  EXPECT_THROW((void)engine.recompute(wrong), sdf::GraphError);
}

}  // namespace
}  // namespace procon::analysis
